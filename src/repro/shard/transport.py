"""Length-prefixed frame transport between the router and shards.

The shard plane moves work across a *process* boundary, so the wire
format is the contract: each message is ``MAGIC (4 bytes) | payload
length (u32 big-endian) | pickled payload``.  The magic bytes reject
cross-talk from anything that is not a shard peer (a stray client
connecting to the rendezvous port) before a single payload byte is
parsed, and the length prefix bounds each read so a truncated stream
surfaces as :class:`TransportClosed` instead of a hang.

:class:`MessagePump` owns one connected socket end and runs two
daemon threads over it:

* a **writer** draining a *bounded* send queue (``queue.Queue``), so a
  stalled peer exerts backpressure at the sender instead of buffering
  without limit -- :meth:`MessagePump.send` raises
  :class:`SendQueueFull` when the bound is hit;
* a **reader** parsing frames and handing each decoded message to the
  ``on_message`` callback, then ``on_close`` exactly once when the
  stream ends (EOF, reset, or local close).

Payloads are pickled: both ends are the same trusted codebase, the
router spawned the worker itself, and the connect-back handshake
(:func:`rendezvous_listener` / :func:`connect_back`) requires the
spawn-time secret token before any pickle is read.
"""

from __future__ import annotations

import pickle
import queue
import socket
import struct
import threading
import time
from typing import Callable, Optional, Tuple

__all__ = ["MAGIC", "MessagePump", "SendQueueFull", "TransportClosed",
           "connect_back", "read_message", "rendezvous_listener",
           "write_message"]

#: Frame preamble: rejects non-shard peers before any payload parse.
MAGIC = b"RSH1"

_HEADER = struct.Struct(">4sI")

#: Upper bound on one message (128 MiB): a corrupt length prefix fails
#: fast instead of attempting a multi-gigabyte allocation.
MAX_MESSAGE_BYTES = 128 << 20


class TransportClosed(ConnectionError):
    """The peer stream ended (EOF, reset, or local close)."""


class SendQueueFull(RuntimeError):
    """The bounded send queue is full; the peer is not draining."""

    def __init__(self, depth: int):
        super().__init__(
            f"transport send queue full ({depth} messages pending)")
        self.depth = depth


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise :class:`TransportClosed`."""
    chunks = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except OSError as exc:
            raise TransportClosed(str(exc)) from exc
        if not chunk:
            raise TransportClosed(
                f"peer closed mid-message ({n - remaining}/{n} bytes)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def write_message(sock: socket.socket, payload: object) -> None:
    """Frame and send one message (blocking on the socket)."""
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    try:
        sock.sendall(_HEADER.pack(MAGIC, len(blob)) + blob)
    except OSError as exc:
        raise TransportClosed(str(exc)) from exc


def read_message(sock: socket.socket) -> object:
    """Read and decode one framed message (blocking)."""
    magic, length = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if magic != MAGIC:
        raise TransportClosed(
            f"bad frame magic {magic!r} (not a shard peer)")
    if length > MAX_MESSAGE_BYTES:
        raise TransportClosed(
            f"frame length {length} exceeds {MAX_MESSAGE_BYTES}")
    return pickle.loads(_recv_exact(sock, length))


class MessagePump:
    """Bounded-queue writer + callback reader over one socket."""

    def __init__(self, sock: socket.socket, name: str,
                 on_message: Callable[[object], None],
                 on_close: Optional[Callable[[], None]] = None,
                 max_send_queue: int = 256):
        sock.settimeout(None)
        self.sock = sock
        self.name = name
        self._on_message = on_message
        self._on_close = on_close
        self._sendq: "queue.Queue" = queue.Queue(
            maxsize=max_send_queue)
        self._closed = threading.Event()
        self._close_notified = False
        self._close_lock = threading.Lock()
        self._writer = threading.Thread(
            target=self._write_loop, name=f"shard-tx-{name}",
            daemon=True)
        self._reader = threading.Thread(
            target=self._read_loop, name=f"shard-rx-{name}",
            daemon=True)

    def start(self) -> "MessagePump":
        self._writer.start()
        self._reader.start()
        return self

    # -- sending ---------------------------------------------------------

    def send(self, payload: object, block: bool = False,
             timeout: Optional[float] = None) -> None:
        """Enqueue one message for the writer thread.

        Non-blocking by default: raises :class:`SendQueueFull` when
        the bounded queue is full (the caller owns shedding or
        retrying -- the front door maps this onto admission
        backpressure).  Raises :class:`TransportClosed` once the pump
        is closed.
        """
        if self._closed.is_set():
            raise TransportClosed(f"pump {self.name} is closed")
        try:
            self._sendq.put(payload, block=block, timeout=timeout)
        except queue.Full:
            raise SendQueueFull(self._sendq.qsize()) from None

    def send_depth(self) -> int:
        return self._sendq.qsize()

    # -- the two pump loops ----------------------------------------------

    def _write_loop(self) -> None:
        while True:
            payload = self._sendq.get()
            if payload is _STOP or self._closed.is_set():
                return
            try:
                write_message(self.sock, payload)
            except TransportClosed:
                self._shutdown()
                return

    def _read_loop(self) -> None:
        while not self._closed.is_set():
            try:
                message = read_message(self.sock)
            except (TransportClosed, pickle.UnpicklingError,
                    EOFError, AttributeError):
                self._shutdown()
                return
            try:
                self._on_message(message)
            except Exception:  # noqa: BLE001 -- a handler bug must
                # not kill the pump; the message is dropped and the
                # stream keeps flowing.
                pass

    # -- teardown --------------------------------------------------------

    def _shutdown(self) -> None:
        self._closed.set()
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass
        try:  # unblock the writer if it is parked on the queue
            self._sendq.put_nowait(_STOP)
        except queue.Full:
            pass
        with self._close_lock:
            if self._close_notified:
                return
            self._close_notified = True
        if self._on_close is not None:
            try:
                self._on_close()
            except Exception:  # noqa: BLE001
                pass

    def close(self) -> None:
        """Close the socket and stop both loops (idempotent)."""
        self._shutdown()
        for thread in (self._writer, self._reader):
            if thread.is_alive() and \
                    thread is not threading.current_thread():
                thread.join(timeout=2.0)

    @property
    def closed(self) -> bool:
        return self._closed.is_set()


class _Stop:
    pass


_STOP = _Stop()


# -- connect-back rendezvous ----------------------------------------------
#
# The router cannot hand a connected socket to a *spawned* child (the
# fd does not survive pickling), so the child connects back: the
# router listens on an ephemeral loopback port and passes (host, port,
# token) as plain spawn arguments; the child's first message must be
# the token, or the connection is dropped before any pickle decode.

def rendezvous_listener() -> Tuple[socket.socket, str, int]:
    """Loopback listener for worker connect-back; returns (sock, host, port)."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind(("127.0.0.1", 0))
    listener.listen(8)
    host, port = listener.getsockname()
    return listener, host, port


def accept_worker(listener: socket.socket, token: bytes,
                  timeout_s: float = 10.0) -> socket.socket:
    """Accept one worker connection and verify its hello token."""
    deadline = time.monotonic() + timeout_s
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise TimeoutError("no worker connected back in time")
        listener.settimeout(remaining)
        try:
            sock, _addr = listener.accept()
        except socket.timeout:
            raise TimeoutError(
                "no worker connected back in time") from None
        sock.settimeout(remaining)
        try:
            hello = _recv_exact(sock, len(MAGIC) + len(token))
        except TransportClosed:
            sock.close()
            continue
        if hello != MAGIC + token:
            sock.close()
            continue
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock


def connect_back(host: str, port: int, token: bytes,
                 timeout_s: float = 10.0) -> socket.socket:
    """Worker side: dial the router and present the hello token."""
    sock = socket.create_connection((host, port), timeout=timeout_s)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    sock.sendall(MAGIC + token)
    sock.settimeout(None)
    return sock
