"""``python -m repro.shard``: open-loop load against the shard plane.

Spins up a :class:`~repro.shard.router.ShardRouter` with N supervised
worker processes, drives K synthetic client sessions as an open-loop
(Poisson-arrival) workload, and writes the latency/goodput report to
``<out>/shard_report.json`` plus a stamped ``BENCH_serve.json``.  With
``--smoke`` it additionally requires every offered frame tracked and
every trajectory bit-identical to a solo tracker run (closed-loop
submission for determinism), exiting non-zero on violation.  With
``--shards 0`` the router runs inline -- the single-process baseline
on the same code path.
"""

from __future__ import annotations

import argparse
import json
import logging
from pathlib import Path

from repro.obs import setup_logging
from repro.serve.loadgen import (
    build_workload,
    run_load,
    run_open_loop_load,
    service_trajectories,
    solo_trajectories,
    trajectories_match,
    write_bench_report,
)
from repro.serve.service import _FRONTENDS
from repro.shard.router import ShardRouter
from repro.shard.supervisor import Supervisor
from repro.shard.worker import ShardSpec
from repro.vo.config import TrackerConfig

log = logging.getLogger("repro.shard.cli")


def main(argv=None) -> int:
    """Entry point of the sharded load generator."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.shard", description=__doc__)
    parser.add_argument("--shards", type=int, default=3,
                        help="worker processes (0 = inline, no "
                             "processes)")
    parser.add_argument("--workers", type=int, default=1,
                        help="device-pool workers per shard")
    parser.add_argument("--sessions", type=int, default=6,
                        help="concurrent client sessions")
    parser.add_argument("--frames", type=int, default=20,
                        help="frames per client session")
    parser.add_argument("--rate-hz", type=float, default=30.0,
                        help="per-session open-loop arrival rate")
    parser.add_argument("--closed-loop", action="store_true",
                        help="closed-loop clients (frame N+1 waits "
                             "for frame N) instead of open-loop "
                             "arrivals")
    parser.add_argument("--frontend", choices=sorted(_FRONTENDS),
                        default="pim", help="tracker arithmetic")
    parser.add_argument("--device-detect", action="store_true",
                        help="run edge detection on the simulated "
                             "device")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="image scale relative to QVGA")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--deadline-s", type=float, default=None,
                        help="per-request queue deadline")
    parser.add_argument("--checkpoint-s", type=float, default=0.5,
                        help="supervisor checkpoint sweep interval")
    parser.add_argument("--program-store", default=None,
                        metavar="DIR",
                        help="shared persistent program store "
                             "directory (all shards warm-start from "
                             "it)")
    parser.add_argument("--start-method", default="forkserver",
                        choices=["fork", "forkserver", "spawn"],
                        help="multiprocessing start method for shard "
                             "workers")
    parser.add_argument("--status-port", type=int, default=None,
                        metavar="PORT",
                        help="serve /metrics, /healthz and /shards "
                             "on PORT while the load runs (0 = "
                             "ephemeral)")
    parser.add_argument("--out", default="shard_output",
                        help="output directory for the report")
    parser.add_argument("--smoke", action="store_true",
                        help="closed-loop completeness + solo "
                             "bit-identity gate")
    parser.add_argument("--verbose", action="store_true",
                        help="debug-level console logging")
    args = parser.parse_args(argv)
    for flag, value in (("--frames", args.frames),
                        ("--sessions", args.sessions),
                        ("--workers", args.workers)):
        if value < 1:
            parser.error(f"{flag} must be >= 1")
    if args.shards < 0:
        parser.error("--shards must be >= 0")
    setup_logging(verbose=args.verbose)
    out = Path(args.out)
    out.mkdir(exist_ok=True)

    config = TrackerConfig(pim_device_detect=args.device_detect)
    if args.scale != 1.0:
        import dataclasses
        config = dataclasses.replace(
            config, camera=config.camera.scaled(args.scale))
    spec = ShardSpec(workers=args.workers, frontend=args.frontend,
                     config=config, device_detect=args.device_detect,
                     program_store=args.program_store,
                     start_method=args.start_method)
    workload = build_workload(sessions=args.sessions,
                              frames=args.frames, scale=args.scale,
                              seed=args.seed)
    closed_loop = args.closed_loop or args.smoke
    log.info("%s load: %d sessions x %d frames over %d shard(s)",
             "closed-loop" if closed_loop else "open-loop",
             args.sessions, args.frames, args.shards)

    router = ShardRouter(shards=args.shards, spec=spec,
                         incident_dir=out)
    supervisor = None
    status = None
    with router:
        if not router.inline:
            supervisor = Supervisor(
                router, checkpoint_interval_s=args.checkpoint_s,
                incident_dir=out).start()
        if args.status_port is not None:
            from repro.serve.status import StatusServer
            status = StatusServer(router,
                                  port=args.status_port).start()
        try:
            if closed_loop:
                report, clients = run_load(
                    router, workload, deadline_s=args.deadline_s) \
                    if router.inline else _closed_loop_sharded(
                        router, workload, args.deadline_s)
            else:
                report, clients = run_open_loop_load(
                    router, workload, rate_hz=args.rate_hz,
                    seed=args.seed, deadline_s=args.deadline_s)
            report["shards_status"] = router.shards_status()
            if status is not None:
                from urllib.request import urlopen
                with urlopen(f"{status.url}/metrics",
                             timeout=10) as resp:
                    (out / "metrics.prom").write_bytes(resp.read())
        finally:
            if status is not None:
                status.stop()
            if supervisor is not None:
                supervisor.stop()

    failures = []
    if args.smoke:
        offered = sum(len(seq.frames) for seq in workload.values())
        tracked = report["frames_tracked"]
        if tracked != offered:
            failures.append(f"tracked {tracked} of {offered} frames")
        served = service_trajectories(
            [r for c in clients for r in c.results])
        solo = solo_trajectories(workload,
                                 _FRONTENDS[args.frontend], config)
        failures.extend(trajectories_match(served, solo))
        report["smoke"] = {"passed": not failures,
                           "failures": failures}
        for failure in failures:
            log.error("smoke failure: %s", failure)
        if not failures:
            log.info("smoke ok: all %d frames tracked, every "
                     "trajectory bit-identical to its solo run",
                     tracked)

    report_path = out / "shard_report.json"
    report_path.write_text(json.dumps(report, indent=2,
                                      default=float) + "\n")
    bench_path = write_bench_report(report, out / "BENCH_serve.json")
    log.info("wrote %s and %s", report_path, bench_path)
    return 1 if failures else 0


def _closed_loop_sharded(router, workload, deadline_s):
    """Closed-loop clients against the sharded front door.

    :func:`run_load`'s report reads the in-process pool stats, which a
    sharded router does not expose; this drives the same client model
    and reports the router-side view instead.
    """
    import threading
    import time

    from repro.obs.slo import percentile
    from repro.serve.loadgen import ClientStats, _client

    clients = [ClientStats(sid=sid, sequence=seq.name)
               for sid, seq in workload.items()]
    threads = [
        threading.Thread(target=_client, name=f"loadgen-{c.sid}",
                         args=(router, c.sid, workload[c.sid], c,
                               1000, deadline_s))
        for c in clients]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall_s = time.perf_counter() - t0
    results = [r for c in clients for r in c.results]
    queue_s = [r.queue_s for r in results]
    report = {
        "mode": "closed-loop",
        "sessions": len(clients),
        "frames_submitted": sum(len(workload[c.sid].frames)
                                for c in clients),
        "frames_tracked": len(results),
        "wall_s": wall_s,
        "throughput_fps": len(results) / wall_s if wall_s else 0.0,
        "queue_latency_s": {
            "p50": percentile(queue_s, 50),
            "p95": percentile(queue_s, 95),
            "p99": percentile(queue_s, 99),
        },
        "retries": sum(c.retries for c in clients),
        "deadline_misses": sum(c.deadline_misses for c in clients),
        "per_session": {c.sid: {
            "sequence": c.sequence,
            "frames": len(c.results),
            "retries": c.retries,
            "errors": c.errors,
        } for c in clients},
    }
    return report, clients


if __name__ == "__main__":
    raise SystemExit(main())
