"""Pure placement policy of the shard plane: ring, backoff, replay.

Three deliberately side-effect-free pieces live here so the
property-test suite can pin them without processes or sockets:

* :class:`HashRing` -- consistent hashing of session ids onto shard
  ids.  Each shard owns ``vnodes`` points on a 64-bit ring (SHA-256
  derived, so placement is stable across processes and python runs);
  a key maps to the first point clockwise from its own hash.  The
  property that makes elastic scale-out cheap: adding a shard only
  remaps keys that now land on the *new* shard, and removing one only
  remaps keys that lived on the *removed* shard -- everything else
  stays put (~K/N of K keys move for an N-shard ring).
* :class:`RestartBackoff` -- exponential respawn delay with a hard
  cap and a restart *budget*: a crashing shard is respawned after
  ``base * factor**attempt`` seconds (never above ``cap_s``), and
  after ``budget`` respawns without a clean recovery the supervisor
  gives up and marks the shard failed instead of flapping forever.
  A shard that stays up for ``reset_after_s`` earns its budget back.
* :func:`failover_replay_plan` -- given the last checkpoint watermark
  and the captured tail (completed frames from the router's
  :class:`~repro.snap.capture.CaptureRing` plus still-pending
  requests), produce the exact ordered frame list that rebuilds the
  session bit-identically on the target shard.  Raises
  :class:`ReplayGap` when the tail is not contiguous (ring overflow),
  because replaying across a gap would silently corrupt the stream.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["HashRing", "ReplayGap", "RestartBackoff",
           "failover_replay_plan"]


def _point(material: str) -> int:
    """Stable 64-bit ring position of a string."""
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent hash ring mapping string keys to shard ids."""

    def __init__(self, shards: Iterable[int] = (), vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("vnodes must be positive")
        self.vnodes = vnodes
        self._points: List[int] = []
        self._owner: Dict[int, int] = {}
        self._shards: set = set()
        for shard in shards:
            self.add(shard)

    def add(self, shard: int) -> None:
        """Place one shard's virtual nodes on the ring (idempotent)."""
        if shard in self._shards:
            return
        self._shards.add(shard)
        for v in range(self.vnodes):
            point = _point(f"shard:{shard}:vnode:{v}")
            # SHA-256 collisions across distinct labels are not a
            # practical concern; keep the first owner if one occurs.
            if point in self._owner:
                continue
            bisect.insort(self._points, point)
            self._owner[point] = shard

    def remove(self, shard: int) -> None:
        """Take one shard's virtual nodes off the ring (idempotent)."""
        if shard not in self._shards:
            return
        self._shards.discard(shard)
        stale = [p for p, s in self._owner.items() if s == shard]
        for point in stale:
            del self._owner[point]
            index = bisect.bisect_left(self._points, point)
            del self._points[index]

    def shards(self) -> List[int]:
        return sorted(self._shards)

    def __contains__(self, shard: int) -> bool:
        return shard in self._shards

    def __len__(self) -> int:
        return len(self._shards)

    def lookup(self, key: str,
               exclude: Iterable[int] = ()) -> Optional[int]:
        """Owning shard of ``key`` (first ring point clockwise).

        ``exclude`` skips shards (the failover path excludes the dead
        one and takes the next point clockwise, so the fallback target
        is as stable as the ring itself).  Returns ``None`` when no
        eligible shard exists.
        """
        excluded = set(exclude)
        eligible = self._shards - excluded
        if not eligible or not self._points:
            return None
        start = bisect.bisect_right(self._points, _point(f"key:{key}"))
        n = len(self._points)
        for step in range(n):
            owner = self._owner[self._points[(start + step) % n]]
            if owner not in excluded:
                return owner
        return None


class RestartBackoff:
    """Exponential respawn delay with a hard cap and restart budget."""

    def __init__(self, base_s: float = 0.05, factor: float = 2.0,
                 cap_s: float = 2.0, budget: int = 5,
                 reset_after_s: float = 30.0):
        if base_s <= 0 or cap_s <= 0:
            raise ValueError("base_s and cap_s must be positive")
        if factor < 1.0:
            raise ValueError("factor must be >= 1")
        if budget < 1:
            raise ValueError("budget must be positive")
        self.base_s = base_s
        self.factor = factor
        self.cap_s = min(cap_s, max(base_s, cap_s))
        if self.cap_s < base_s:
            self.cap_s = base_s
        self.budget = budget
        self.reset_after_s = reset_after_s
        self.attempts = 0

    def next_delay_s(self) -> float:
        """Delay before the next respawn; consumes one budget slot."""
        delay = self.base_s * (self.factor ** self.attempts)
        self.attempts += 1
        return min(delay, self.cap_s)

    def exhausted(self) -> bool:
        """True once the restart budget is spent."""
        return self.attempts >= self.budget

    def remaining(self) -> int:
        return max(0, self.budget - self.attempts)

    def note_stable(self, uptime_s: float) -> None:
        """A shard that stayed up long enough earns its budget back."""
        if uptime_s >= self.reset_after_s:
            self.reset()

    def reset(self) -> None:
        self.attempts = 0

    def stats(self) -> dict:
        return {
            "attempts": self.attempts,
            "budget": self.budget,
            "remaining": self.remaining(),
            "cap_s": self.cap_s,
        }


class ReplayGap(RuntimeError):
    """The captured tail is not contiguous after the watermark.

    Raised when the capture ring overflowed past the last checkpoint:
    replaying across the gap would rebuild a *different* stream, so
    failover refuses and reports the session lost instead of serving
    silently-corrupt state.
    """

    def __init__(self, session: str, watermark: int,
                 missing: Sequence[int]):
        super().__init__(
            f"session {session!r}: frames {list(missing)} missing "
            f"from the capture tail after watermark {watermark}")
        self.session = session
        self.watermark = watermark
        self.missing = list(missing)


def failover_replay_plan(session: str, watermark: int,
                         tail: Sequence[Tuple[int, object]],
                         pending: Sequence[Tuple[int, object]],
                         holes: Iterable[int] = ()
                         ) -> List[Tuple[int, object]]:
    """Ordered ``(seq, frame)`` list that rebuilds a session's state.

    ``watermark`` is the **applied** sequence watermark covered by the
    restored checkpoint (max seq whose frame mutated the exported
    state); ``tail`` holds the completed frames captured by the router
    after that point, and ``pending`` the in-flight requests whose
    replies never arrived.  ``holes`` are sequence numbers the router
    *knows* never touched the session's state -- admission sheds
    (``Backpressure``) and queue expiries (``DeadlineExceeded``) --
    so their absence from the tail is expected, not a gap.  The plan
    is every non-hole frame past the watermark exactly once, in
    strictly increasing sequence order -- per-session ordering across
    failover is exactly this function's output contract.

    Raises :class:`ReplayGap` when the combined tail has an
    unexplained hole, and ``ValueError`` on duplicate sequence
    numbers (two frames claiming one slot can never both be
    replayed).
    """
    holes = {int(h) for h in holes}
    merged: Dict[int, object] = {}
    for seq, frame in list(tail) + list(pending):
        seq = int(seq)
        if seq <= watermark:
            continue
        if seq in merged:
            raise ValueError(
                f"session {session!r}: duplicate frame seq {seq} in "
                f"the failover tail")
        merged[seq] = frame
    if not merged:
        return []
    ordered = sorted(merged)
    expected = set(range(watermark + 1, ordered[-1] + 1)) - holes
    missing = sorted(expected - set(ordered))
    if missing:
        raise ReplayGap(session, watermark, missing)
    return [(seq, merged[seq]) for seq in ordered]
