"""Scale-out serving: supervised multi-process shards with failover.

``repro.serve`` is one process; this package is the plane that makes
it many.  A :class:`ShardRouter` front door hashes sessions onto N
worker *processes* (each running its own
:class:`~repro.serve.service.VOService`), and a :class:`Supervisor`
makes worker death a recoverable event instead of an outage:

* :mod:`repro.shard.placement` -- the pure policy layer: a
  consistent-hash :class:`HashRing` (adding/removing a shard moves
  only ~K/N sessions), :class:`RestartBackoff` (exponential respawn
  delay, hard cap, restart budget), and
  :func:`failover_replay_plan` (the exact ordered frame list that
  rebuilds a session from checkpoint + captured tail + pending
  requests, refusing gaps with :class:`ReplayGap`).
* :mod:`repro.shard.transport` -- length-prefixed pickle framing over
  loopback TCP with token-authenticated connect-back (works under
  every ``multiprocessing`` start method) and a bounded-send-queue
  :class:`MessagePump` per shard.
* :mod:`repro.shard.worker` -- the child-process entry
  (:func:`shard_worker_main`): serves ``frame`` / ``checkpoint`` /
  ``export_session`` / ``restore_session`` ops and heartbeats.
* :mod:`repro.shard.router` -- the front door: sticky ring placement,
  per-shard circuit breakers, a pending table + capture-ring tail,
  snapshot-based :meth:`ShardRouter.fail_over`, and elastic
  ``add_shard``/``remove_shard`` with live session drain.
* :mod:`repro.shard.supervisor` -- heartbeat liveness, crash/hang
  detection (SIGKILL escalation), backoff respawn within a restart
  budget, crash incident bundles, periodic checkpoint sweeps.

``shards=0`` runs the router inline (one in-process service, no
transport) bit-identically to the plain ``repro.serve`` path.  The
chaos kill storm (``python -m repro.verify chaos --kill``) gates the
whole plane on zero lost sessions under SIGKILL; see
``docs/sharding.md``.
"""

from repro.shard.placement import (
    HashRing,
    ReplayGap,
    RestartBackoff,
    failover_replay_plan,
)
from repro.shard.router import SessionLost, ShardHandle, ShardRouter
from repro.shard.supervisor import Supervisor
from repro.shard.transport import (
    MessagePump,
    SendQueueFull,
    TransportClosed,
)
from repro.shard.worker import ShardSpec, shard_worker_main

__all__ = [
    "HashRing",
    "MessagePump",
    "ReplayGap",
    "RestartBackoff",
    "SendQueueFull",
    "SessionLost",
    "ShardHandle",
    "ShardRouter",
    "ShardSpec",
    "Supervisor",
    "TransportClosed",
    "failover_replay_plan",
    "shard_worker_main",
]
