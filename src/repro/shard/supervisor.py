"""Supervision: crash/hang detection, respawn, periodic checkpoints.

The :class:`Supervisor` runs two daemon threads over a
:class:`~repro.shard.router.ShardRouter`:

**Monitor** (every ``poll_s``): a shard counts as *dead* when its
process is no longer alive, its transport closed, or -- the hang case
-- its heartbeat beacon is older than ``heartbeat_timeout_s`` (the
worker heartbeats every ``spec.heartbeat_s``, so the timeout is many
missed beats; keep it generous, because a worker saturated with
GIL-heavy tracking can legitimately starve its beacon thread for
seconds and a false positive costs a SIGKILL plus a failover).  A hung process is escalated with SIGKILL first, then
treated exactly like a crash.  Death triggers, in order: a
flight-recorder **crash incident** (dumped to ``incident_dir`` when
set, with the capture ring co-dumping a replay bundle via the PR 9
hook), **failover** of every resident session onto surviving shards
(:meth:`ShardRouter.fail_over`), and a **respawn schedule** from the
shard's :class:`~repro.shard.placement.RestartBackoff` -- exponential
delay, hard cap, and a restart budget after which the shard is marked
``failed`` and left down (a flapping worker must not take the router
down with it).  A shard that stays up ``reset_after_s`` earns its
budget back.

**Checkpointer** (every ``checkpoint_interval_s``): pulls a consistent
snapshot of every session on every up shard
(:meth:`ShardRouter.checkpoint_shard`), which also prunes the
router's capture ring up to each new watermark -- this loop is what
bounds both the failover replay cost and the ring's memory.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Optional

from repro.obs.metrics import get_registry
from repro.shard.router import BACKOFF, FAILED, UP, ShardRouter
from repro.shard.transport import SendQueueFull, TransportClosed

__all__ = ["Supervisor"]


class Supervisor:
    """Liveness monitor + respawner + periodic checkpointer."""

    def __init__(self, router: ShardRouter,
                 poll_s: float = 0.05,
                 heartbeat_timeout_s: float = 10.0,
                 checkpoint_interval_s: float = 1.0,
                 incident_dir=None):
        if router.inline:
            raise ValueError(
                "an inline router has no processes to supervise")
        self.router = router
        self.poll_s = poll_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.checkpoint_interval_s = checkpoint_interval_s
        self.incident_dir = incident_dir \
            if incident_dir is None else Path(incident_dir)
        self._stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        self._checkpointer: Optional[threading.Thread] = None
        self._incident_count = 0
        registry = get_registry()
        self._m_crashes = registry.counter(
            "serve_shard_crashes_total",
            "Shard worker deaths detected, by shard and reason")
        self._m_restarts = registry.counter(
            "serve_shard_restarts_total",
            "Shard worker processes respawned, by shard")
        self._m_checkpoints = registry.counter(
            "serve_shard_checkpoints_total",
            "Periodic per-shard session checkpoints taken")

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "Supervisor":
        if self._monitor is not None:
            return self
        self._stop.clear()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="shard-supervisor",
            daemon=True)
        self._checkpointer = threading.Thread(
            target=self._checkpoint_loop, name="shard-checkpointer",
            daemon=True)
        self._monitor.start()
        self._checkpointer.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        for thread in (self._monitor, self._checkpointer):
            if thread is not None:
                thread.join(timeout=5.0)
        self._monitor = None
        self._checkpointer = None

    def __enter__(self) -> "Supervisor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- monitoring ------------------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.poll_s):
            if self.router._closed:
                return
            # shard_ids() snapshots under the route lock -- iterating
            # self.router.shards directly would race a concurrent
            # add/remove_shard and RuntimeError this thread to death.
            for shard_id in self.router.shard_ids():
                handle = self.router.shards.get(shard_id)
                if handle is None:
                    continue
                try:
                    if handle.state == UP:
                        self._check_up(handle)
                    elif handle.state == BACKOFF and \
                            time.monotonic() >= handle.respawn_at and \
                            handle.respawn_at > 0:
                        self._respawn(handle)
                except Exception as exc:  # noqa: BLE001
                    # One shard's bad day must never kill the monitor
                    # thread -- that would silently end all
                    # supervision.  Log to the flight recorder and
                    # keep polling.
                    self.router.flight.event(
                        "supervisor_error", shard=shard_id,
                        error=type(exc).__name__, message=str(exc))

    def _check_up(self, handle) -> None:
        reason = None
        process = handle.process
        try:
            alive = process is not None and process.is_alive()
        except ValueError:  # already closed
            alive = False
        if not alive:
            reason = "crash"
        elif handle.pump is None or handle.pump.closed:
            reason = "transport"
        else:
            age = handle.heartbeat_age_s()
            if age is not None and age > self.heartbeat_timeout_s:
                # Hung, not dead: the process is alive but its beacons
                # stopped.  Escalate to SIGKILL, then recover exactly
                # like a crash.
                reason = "hang"
                try:
                    process.kill()
                except (ValueError, OSError):
                    pass
        if reason is None:
            handle.backoff.note_stable(handle.uptime_s())
            return
        self._handle_death(handle, reason)

    def _handle_death(self, handle, reason: str) -> None:
        shard_id = handle.shard_id
        self._m_crashes.inc(shard=str(shard_id), reason=reason)
        process = handle.process
        if process is not None:
            try:
                process.join(timeout=5.0)
            except ValueError:
                pass
        outcome = self.router.fail_over(shard_id, reason=reason)
        self._dump_incident(handle, reason, outcome)
        if handle.backoff.exhausted():
            handle.state = FAILED
            handle.respawn_at = 0.0
            self.router.flight.event(
                "shard_restart_budget_exhausted", shard=shard_id,
                budget=handle.backoff.budget)
            return
        delay = handle.backoff.next_delay_s()
        handle.state = BACKOFF
        handle.respawn_at = time.monotonic() + delay
        self.router.flight.event("shard_respawn_scheduled",
                                 shard=shard_id, delay_s=delay,
                                 reason=reason)

    def _dump_incident(self, handle, reason: str,
                       outcome: dict) -> None:
        """Crash incident: flight-recorder bundle (+ replay sibling)."""
        flight = self.router.flight
        flight.incident(
            f"shard_{reason}", session="", seq=handle.shard_id,
            spans=[])
        if self.incident_dir is None:
            return
        self._incident_count += 1
        self.incident_dir.mkdir(parents=True, exist_ok=True)
        path = self.incident_dir / (
            f"shard{handle.shard_id}_{reason}_"
            f"{self._incident_count}.json")
        try:
            flight.dump(path, reason=f"shard_{reason}",
                        shard=handle.shard_id, pid=handle.pid,
                        moved=outcome["moved"],
                        lost=outcome["lost"])
        except OSError:
            pass

    def _respawn(self, handle) -> None:
        shard_id = handle.shard_id
        try:
            self.router._spawn(handle)
        except Exception:  # noqa: BLE001 -- spawn failed: consume
            # another budget slot and retry later, or give up.
            if handle.backoff.exhausted():
                handle.state = FAILED
                handle.respawn_at = 0.0
            else:
                handle.respawn_at = time.monotonic() + \
                    handle.backoff.next_delay_s()
            return
        handle.restarts += 1
        handle.respawn_at = 0.0
        self.router.ring.add(shard_id)
        self._m_restarts.inc(shard=str(shard_id))
        self.router.flight.event("shard_respawned", shard=shard_id,
                                 pid=handle.pid,
                                 restarts=handle.restarts)

    # -- checkpointing ---------------------------------------------------

    def _checkpoint_loop(self) -> None:
        while not self._stop.wait(self.checkpoint_interval_s):
            if self.router._closed:
                return
            self.checkpoint_now()

    def checkpoint_now(self) -> int:
        """One checkpoint sweep over every up shard; returns sessions
        checkpointed (also callable by hand, e.g. from tests)."""
        total = 0
        for shard_id in self.router.shard_ids():
            handle = self.router.shards.get(shard_id)
            if handle is None or handle.state != UP:
                continue
            try:
                count = self.router.checkpoint_shard(shard_id)
            except (TransportClosed, SendQueueFull, TimeoutError,
                    RuntimeError, KeyError):
                continue
            if count:
                self._m_checkpoints.inc()
                total += count
        return total

    def stats(self) -> dict:
        return {
            "running": self._monitor is not None,
            "poll_s": self.poll_s,
            "heartbeat_timeout_s": self.heartbeat_timeout_s,
            "checkpoint_interval_s": self.checkpoint_interval_s,
            "incidents_dumped": self._incident_count,
        }
