"""The shard plane's front door: session-affine routing over processes.

:class:`ShardRouter` is the client-facing replacement for a single
:class:`~repro.serve.service.VOService` once one process is not
enough.  It hashes each session onto one of N worker *processes*
(:class:`~repro.shard.placement.HashRing`, sticky after first
placement), moves frames over the length-prefixed transport with
per-shard bounded send queues, and keeps everything it needs to
survive a worker's death:

* a per-session **sequence counter** (1-based, contiguous) -- every
  frame of a session carries its stream index, and the worker exports
  the **applied** watermark with each checkpoint (the max seq whose
  frame actually mutated the state; shed, expired and rolled-back
  frames never advance it);
* per-session **hole** and **taint** ledgers -- sheds/expiries never
  touched state (replay skips them), while a terminal error rolled
  the session back to its keyframe (replay refuses until the next
  checkpoint covers the rollback);
* a **pending table** of every request whose reply has not arrived,
  holding the inbound arrays so an orphaned request can be
  re-dispatched verbatim;
* a router-side :class:`~repro.snap.capture.CaptureRing` of completed
  frames, pruned up to each session's last checkpoint watermark -- the
  replay *tail*;
* the latest **checkpoint record** per session, refreshed by the
  supervisor's periodic ``checkpoint`` RPC.

Failover (:meth:`fail_over`) composes those: restore the dead shard's
checkpoint onto a healthy shard, replay the captured tail in sequence
order to rebuild post-checkpoint state, then re-dispatch the pending
requests -- so the recovered trajectory is bit-identical from the last
checkpoint and no client future is ever dropped.  A session whose tail
has a gap (capture ring overflow) raises
:class:`~repro.shard.placement.ReplayGap` and is counted lost rather
than silently corrupted.

With ``shards=0`` the router runs **inline**: one in-process
``VOService``, no transport, no supervision -- bit-identical to the
plain ``repro.serve`` path (gated by tests), so callers can adopt the
front-door API before they need processes.

Per-shard :class:`~repro.serve.pool.CircuitBreaker` instances guard
dispatch: a shard that keeps failing requests sheds load as
``Backpressure`` until its cooldown, mirroring the in-process pool's
per-worker breakers one level up.
"""

from __future__ import annotations

import multiprocessing
import secrets
import threading
import time
from concurrent.futures import Future
from typing import Dict, List, Optional

import numpy as np

from repro.obs.flight import FlightRecorder
from repro.obs.metrics import get_registry
from repro.serve.pool import CircuitBreaker
from repro.serve.scheduler import Backpressure, DeadlineExceeded
from repro.serve.service import VOService
from repro.shard.placement import (
    HashRing,
    ReplayGap,
    RestartBackoff,
    failover_replay_plan,
)
from repro.shard.transport import (
    MessagePump,
    SendQueueFull,
    TransportClosed,
    accept_worker,
    rendezvous_listener,
)
from repro.shard.worker import ShardSpec, shard_worker_main
from repro.snap.capture import CaptureRing

__all__ = ["SessionLost", "ShardHandle", "ShardRouter"]

#: Shard lifecycle states (see :class:`ShardHandle`).
UP, BACKOFF, FAILED, STOPPED = "up", "backoff", "failed", "stopped"


class SessionLost(RuntimeError):
    """A session could not be failed over losslessly."""

    def __init__(self, session: str, reason: str):
        super().__init__(f"session {session!r} lost: {reason}")
        self.session = session
        self.reason = reason


class _Pending:
    """One dispatched request awaiting its reply."""

    __slots__ = ("req_id", "session", "seq", "gray", "depth",
                 "timestamp", "deadline_s", "future", "shard",
                 "internal")

    def __init__(self, req_id, session, seq, gray, depth, timestamp,
                 deadline_s, shard, internal=False):
        self.req_id = req_id
        self.session = session
        self.seq = seq
        self.gray = gray
        self.depth = depth
        self.timestamp = timestamp
        self.deadline_s = deadline_s
        self.future: Future = Future()
        self.shard = shard
        #: Internal replays rebuild state after failover: their client
        #: already has the result, so completion must neither touch a
        #: client future nor re-record the frame in the capture ring.
        self.internal = internal


class ShardHandle:
    """Router-side bookkeeping for one worker process slot."""

    def __init__(self, shard_id: int, backoff: RestartBackoff):
        self.shard_id = shard_id
        self.state = STOPPED
        self.process = None
        self.pump: Optional[MessagePump] = None
        self.pid: Optional[int] = None
        self.backoff = backoff
        self.started_at = 0.0
        self.last_heartbeat = 0.0
        self.heartbeats = 0
        self.restarts = 0
        self.respawn_at = 0.0
        self.breaker = None  # set by the router (shared defaults)

    def uptime_s(self) -> float:
        if self.state != UP:
            return 0.0
        return time.monotonic() - self.started_at

    def heartbeat_age_s(self) -> Optional[float]:
        if self.state != UP or not self.last_heartbeat:
            return None
        return time.monotonic() - self.last_heartbeat


class ShardRouter:
    """Front door: hash sessions onto worker processes, survive them."""

    def __init__(self, shards: int = 2,
                 spec: Optional[ShardSpec] = None,
                 vnodes: int = 64,
                 capture_capacity: int = 2048,
                 max_send_queue: int = 256,
                 breaker_threshold: int = 3,
                 breaker_cooldown_s: float = 0.25,
                 backoff_base_s: float = 0.05,
                 backoff_cap_s: float = 2.0,
                 restart_budget: int = 5,
                 backoff_reset_after_s: float = 30.0,
                 spawn_timeout_s: float = 60.0,
                 flight: Optional[FlightRecorder] = None,
                 incident_dir=None):
        if shards < 0:
            raise ValueError("shards must be >= 0")
        self.spec = spec if spec is not None else ShardSpec()
        self.inline = shards == 0
        self.flight = flight if flight is not None else FlightRecorder()
        self.incident_dir = incident_dir
        self._closed = False
        self._started = False

        registry = get_registry()
        self._m_frames = registry.counter(
            "serve_shard_frames_total",
            "Frames dispatched to shards, by shard")
        self._m_failovers = registry.counter(
            "serve_failovers_total",
            "Sessions failed over to a surviving shard")
        self._m_restarts = registry.counter(
            "serve_shard_restarts_total",
            "Shard worker processes respawned, by shard")
        self._m_crashes = registry.counter(
            "serve_shard_crashes_total",
            "Shard worker deaths detected, by shard and reason")
        self._m_lost = registry.counter(
            "serve_sessions_lost_total",
            "Sessions that could not be failed over losslessly")
        self._m_up = registry.gauge(
            "serve_shards_up", "Shard worker processes currently up")

        if self.inline:
            self.local = VOService(**self.spec.service_kwargs())
            return

        self.local = None
        self._mp = multiprocessing.get_context(self.spec.start_method)
        self._listener, self._host, self._port = rendezvous_listener()
        self._spawn_timeout_s = spawn_timeout_s
        self._spawn_lock = threading.Lock()
        self.ring = HashRing(vnodes=vnodes)
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown_s = breaker_cooldown_s
        self._backoff_kwargs = dict(
            base_s=backoff_base_s, cap_s=backoff_cap_s,
            budget=restart_budget,
            reset_after_s=backoff_reset_after_s)
        self.shards: Dict[int, ShardHandle] = {}
        for shard_id in range(shards):
            self.shards[shard_id] = self._new_handle(shard_id)
        self._max_send_queue = max_send_queue

        # Routing state.  _route_lock serialises placement decisions
        # and dispatch; reply handling only takes the small
        # _state_lock.  Failover takes the route lock only for its
        # bookkeeping edges -- the restore/replay RPCs run without it,
        # with the affected sessions parked in _failing_over so no
        # new frame can interleave with the rebuild.
        self._route_lock = threading.RLock()
        self._state_lock = threading.Lock()
        self._placement: Dict[str, int] = {}
        self._session_seq: Dict[str, int] = {}
        self._pending: Dict[int, _Pending] = {}
        self._control: Dict[int, tuple] = {}
        self._next_id = 0
        self._lost_sessions: Dict[str, str] = {}
        self._failing_over: set = set()
        self._failovers = 0
        # Per-session sequence numbers that are definitively *not*
        # part of the applied stream (guarded by _state_lock, pruned
        # at each checkpoint):
        #
        # _holes  -- shed (Backpressure) or expired (DeadlineExceeded)
        #            frames: they never touched session state, so a
        #            failover replay plan skips them without calling
        #            the tail gapped.
        # _taints -- terminally-failed frames: the worker rolled the
        #            session back to its last good keyframe, so state
        #            past a taint is *not* a pure function of the
        #            applied stream and cannot be rebuilt
        #            bit-identically until the next checkpoint covers
        #            the rollback.  Failover refuses (session lost)
        #            rather than silently rebuilding a different
        #            trajectory.
        self._holes: Dict[str, set] = {}
        self._taints: Dict[str, set] = {}

        # Failover inputs: latest checkpoint per session, and the
        # completed-frame tail since that checkpoint.
        self.capture = CaptureRing(capacity=capture_capacity)
        self.capture.bind(self.spec.frontend, self.spec.config)
        self._checkpoints: Dict[str, dict] = {}

    # -- construction helpers --------------------------------------------

    def _new_handle(self, shard_id: int) -> ShardHandle:
        handle = ShardHandle(
            shard_id, RestartBackoff(**self._backoff_kwargs))
        handle.breaker = CircuitBreaker(
            threshold=self._breaker_threshold,
            cooldown_s=self._breaker_cooldown_s)
        return handle

    def _alloc_id(self) -> int:
        with self._state_lock:
            self._next_id += 1
            return self._next_id

    def _next_seq(self, session: str) -> int:
        with self._state_lock:
            seq = self._session_seq.get(session, 0) + 1
            self._session_seq[session] = seq
            return seq

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "ShardRouter":
        if self._started:
            return self
        self._started = True
        if self.inline:
            self.local.start()
            return self
        try:
            for shard_id in sorted(self.shards):
                self._spawn(self.shards[shard_id])
                self.ring.add(shard_id)
        except BaseException:
            self.close()
            raise
        return self

    def _spawn(self, handle: ShardHandle) -> None:
        """Spawn one worker process and wire its pump (serialised)."""
        with self._spawn_lock:
            token = secrets.token_bytes(16)
            process = self._mp.Process(
                target=shard_worker_main,
                args=(handle.shard_id, self._host, self._port, token,
                      self.spec),
                name=f"repro-shard-{handle.shard_id}", daemon=True)
            process.start()
            try:
                sock = accept_worker(self._listener, token,
                                     timeout_s=self._spawn_timeout_s)
            except BaseException:
                process.terminate()
                process.join(timeout=5.0)
                raise
        shard_id = handle.shard_id
        pump = MessagePump(
            sock, name=f"s{shard_id}",
            on_message=lambda msg: self._on_message(shard_id, msg),
            on_close=lambda: self._on_pump_close(shard_id),
            max_send_queue=self._max_send_queue)
        handle.process = process
        handle.pump = pump
        handle.pid = process.pid
        handle.state = UP
        handle.started_at = time.monotonic()
        handle.last_heartbeat = time.monotonic()
        pump.start()
        self._m_up.set(sum(1 for h in self.shards.values()
                           if h.state == UP))

    def close(self) -> None:
        """Stop shards and fail every still-pending future (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self.inline:
            self.local.close()
            return
        for handle in self.shards.values():
            pump = handle.pump
            process = handle.process
            if pump is not None and not pump.closed:
                try:
                    pump.send({"op": "shutdown",
                               "id": self._alloc_id()})
                except (TransportClosed, SendQueueFull):
                    pass
            if process is not None:
                process.join(timeout=5.0)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=5.0)
                process.close()
                handle.process = None
            if pump is not None:
                pump.close()
            handle.state = STOPPED
        try:
            self._listener.close()
        except OSError:
            pass
        error = RuntimeError("router closed")
        with self._state_lock:
            pending = list(self._pending.values())
            self._pending.clear()
            control = list(self._control.values())
            self._control.clear()
        for entry in pending:
            # Internal replay futures too: a failover thread waiting
            # on one must unblock when the router goes away.
            if not entry.future.done():
                entry.future.set_exception(error)
        for _shard, future in control:
            if not future.done():
                future.set_exception(error)
        self._m_up.set(0)

    def __enter__(self) -> "ShardRouter":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reply plumbing ---------------------------------------------------

    def _on_message(self, shard_id: int, msg: object) -> None:
        if not isinstance(msg, dict):
            return
        op = msg.get("op")
        handle = self.shards.get(shard_id)
        if op == "heartbeat":
            if handle is not None:
                handle.last_heartbeat = time.monotonic()
                handle.heartbeats += 1
            return
        if op == "hello":
            return
        if op != "result":
            return
        req_id = msg.get("id")
        with self._state_lock:
            control = self._control.pop(req_id, None)
        if control is not None:
            control[1].set_result(msg)
            return
        with self._state_lock:
            pending = self._pending.pop(req_id, None)
        if pending is None:
            return
        if msg.get("ok"):
            result = msg["result"]
            if handle is not None:
                handle.breaker.record_clean()
            if not pending.internal:
                self.capture.record(
                    pending.session, pending.seq, pending.gray,
                    pending.depth, pending.timestamp,
                    self.capture.ok_outcome(result))
            pending.future.set_result(result)
            return
        exc = self._rebuild_error(pending, msg)
        if handle is not None and not isinstance(
                exc, (Backpressure, DeadlineExceeded)):
            handle.breaker.record_fault()
        if not pending.internal:
            # Bookkeep what this failure means for the applied
            # stream: a shed/expiry never touched state (a *hole* the
            # replay plan may skip), while a terminal error rolled the
            # session back (a *taint* that poisons replay until the
            # next checkpoint covers it).
            with self._state_lock:
                if isinstance(exc, (Backpressure, DeadlineExceeded)):
                    self._holes.setdefault(
                        pending.session, set()).add(pending.seq)
                else:
                    self._taints.setdefault(
                        pending.session, set()).add(pending.seq)
        # Internal replay futures complete too: the failover path
        # waits on them, so a failed replay is never silently
        # swallowed (it retries the shed or marks the session lost).
        pending.future.set_exception(exc)

    @staticmethod
    def _rebuild_error(pending: _Pending, msg: dict) -> BaseException:
        name = msg.get("error", "RuntimeError")
        if name == "Backpressure":
            return Backpressure(depth=0, retry_after_s=float(
                msg.get("retry_after_s", 0.05)))
        if name == "DeadlineExceeded":
            return DeadlineExceeded(pending.session, pending.seq, 0.0)
        return RuntimeError(
            f"shard {msg.get('shard')}: {name}: "
            f"{msg.get('message', '')}")

    def _on_pump_close(self, shard_id: int) -> None:
        """Fail this shard's control RPCs fast; the supervisor (or the
        next dispatch) notices the dead pump and drives failover."""
        with self._state_lock:
            stale = [rid for rid, (sid, _f) in self._control.items()
                     if sid == shard_id]
            futures = [self._control.pop(rid)[1] for rid in stale]
        error = TransportClosed(f"shard {shard_id} connection lost")
        for future in futures:
            if not future.done():
                future.set_exception(error)

    def _rpc(self, shard_id: int, payload: dict,
             timeout_s: float = 30.0) -> dict:
        """Send one control op and wait for its typed reply."""
        handle = self.shards[shard_id]
        if handle.pump is None or handle.pump.closed:
            raise TransportClosed(f"shard {shard_id} is down")
        req_id = self._alloc_id()
        payload = dict(payload, id=req_id)
        future: Future = Future()
        with self._state_lock:
            self._control[req_id] = (shard_id, future)
        try:
            handle.pump.send(payload, block=True, timeout=5.0)
            reply = future.result(timeout_s)
        finally:
            with self._state_lock:
                self._control.pop(req_id, None)
        if not reply.get("ok"):
            raise RuntimeError(
                f"shard {shard_id} {payload['op']} failed: "
                f"{reply.get('error')}: {reply.get('message')}")
        return reply

    # -- the request path -------------------------------------------------

    def submit_nowait(self, session_id: str, gray, depth,
                      timestamp: float = 0.0,
                      deadline_s: Optional[float] = None) -> Future:
        """Route one frame; returns a future for its ``TrackResult``.

        Raises :class:`~repro.serve.scheduler.Backpressure` when the
        target shard's breaker is open or its send queue is full, and
        :class:`SessionLost` for a session a previous failover could
        not recover.
        """
        if self._closed:
            raise RuntimeError("router is closed")
        if self.inline:
            return self.local.submit_nowait(
                session_id, gray, depth, timestamp=timestamp,
                deadline_s=deadline_s)
        gray = np.asarray(gray)
        depth = np.asarray(depth)
        with self._route_lock:
            with self._state_lock:
                lost = self._lost_sessions.get(session_id)
                failing_over = session_id in self._failing_over
            if lost is not None:
                raise SessionLost(session_id, lost)
            if failing_over:
                # The session is mid-rebuild on a new shard; admitting
                # a frame now would interleave with the replay.  Shed
                # -- the client retries once the failover settles.
                raise Backpressure(depth=0, retry_after_s=0.25)
            shard_id = self._place(session_id)
            handle = self.shards[shard_id]
            if not handle.breaker.allow():
                raise Backpressure(
                    depth=0,
                    retry_after_s=handle.breaker.cooldown_s)
            seq = self._next_seq(session_id)
            pending = _Pending(
                self._alloc_id(), session_id, seq, gray, depth,
                float(timestamp), deadline_s, shard_id)
            with self._state_lock:
                self._pending[pending.req_id] = pending
            try:
                self._send_frame(handle, pending)
            except BaseException:
                with self._state_lock:
                    self._pending.pop(pending.req_id, None)
                    # The seq was never dispatched: give it back so
                    # the session's stream stays contiguous.
                    if self._session_seq.get(session_id) == seq:
                        self._session_seq[session_id] = seq - 1
                raise
        return pending.future

    def submit(self, session_id: str, gray, depth,
               timestamp: float = 0.0,
               timeout: Optional[float] = None,
               deadline_s: Optional[float] = None):
        """Blocking :meth:`submit_nowait` (the ``VOService.submit``
        shape, so clients and loadgen drive either transparently)."""
        if self.inline:
            return self.local.submit(session_id, gray, depth,
                                     timestamp=timestamp,
                                     timeout=timeout,
                                     deadline_s=deadline_s)
        return self.submit_nowait(
            session_id, gray, depth, timestamp=timestamp,
            deadline_s=deadline_s).result(timeout)

    def _place(self, session_id: str) -> int:
        """Sticky placement: ring on first sight, stable afterwards."""
        shard_id = self._placement.get(session_id)
        if shard_id is not None and \
                self.shards[shard_id].state == UP:
            return shard_id
        down = {sid for sid, h in self.shards.items()
                if h.state != UP}
        target = self.ring.lookup(session_id, exclude=down)
        if target is None:
            raise Backpressure(depth=0, retry_after_s=0.25)
        self._placement[session_id] = target
        return target

    def _send_frame(self, handle: ShardHandle,
                    pending: _Pending) -> None:
        if handle.pump is None or handle.pump.closed:
            raise Backpressure(depth=0, retry_after_s=0.25)
        message = {
            "op": "frame", "id": pending.req_id,
            "session": pending.session, "seq": pending.seq,
            "gray": pending.gray, "depth": pending.depth,
            "timestamp": pending.timestamp,
        }
        if pending.deadline_s is not None:
            message["deadline_s"] = pending.deadline_s
        try:
            handle.pump.send(message)
        except SendQueueFull as exc:
            raise Backpressure(depth=exc.depth,
                               retry_after_s=0.05) from exc
        except TransportClosed as exc:
            raise Backpressure(depth=0, retry_after_s=0.25) from exc
        self._m_frames.inc(shard=str(handle.shard_id))

    # -- checkpointing -----------------------------------------------------

    def checkpoint_shard(self, shard_id: int,
                         timeout_s: float = 30.0) -> int:
        """Pull a consistent checkpoint of every session on a shard.

        Updates the per-session checkpoint records and prunes each
        session's capture-ring tail up to the new watermark.  Returns
        the number of sessions checkpointed.  The supervisor calls
        this periodically; it is also safe to call by hand (e.g. right
        before a planned kill in tests).
        """
        # Taints recorded before the checkpoint request goes out are
        # certainly covered by the cut (the frame completed -- and
        # rolled back -- before the worker quiesced), even when no
        # later frame advanced the applied watermark past them.
        with self._state_lock:
            pre_taints = {sid: set(seqs)
                          for sid, seqs in self._taints.items()}
        reply = self._rpc(shard_id, {"op": "checkpoint"},
                          timeout_s=timeout_s)
        sessions = reply.get("sessions", {})
        for sid, entry in sessions.items():
            watermark = int(entry["watermark"])
            with self._state_lock:
                self._checkpoints[sid] = {
                    "record": entry["record"],
                    "watermark": watermark,
                    "shard": shard_id,
                }
                self._prune_stream_gaps(
                    sid, watermark,
                    covered_taints=pre_taints.get(sid, ()))
            self.capture.prune(sid, watermark)
        return len(sessions)

    def _prune_stream_gaps(self, sid: str, watermark: int,
                           covered_taints=()) -> None:
        """Drop hole/taint seqs a new checkpoint covers (state-lock
        held).  A hole stays relevant until the applied watermark
        passes it (the replay plan needs it to explain the missing
        seq); a taint is resolved once the watermark passes it *or*
        the checkpoint cut demonstrably postdates the rollback
        (``covered_taints``) -- the exported state already reflects
        it, so replay from this checkpoint is pure again."""
        holes = self._holes.get(sid)
        if holes:
            kept = {s for s in holes if s > watermark}
            if kept:
                self._holes[sid] = kept
            else:
                self._holes.pop(sid, None)
        taints = self._taints.get(sid)
        if taints:
            kept = {s for s in taints
                    if s > watermark and s not in covered_taints}
            if kept:
                self._taints[sid] = kept
            else:
                self._taints.pop(sid, None)

    # -- failover ----------------------------------------------------------

    def fail_over(self, shard_id: int, reason: str = "crash") -> dict:
        """Move every session of a dead shard onto healthy ones.

        For each affected session: restore its last checkpoint on the
        failover target (ring lookup excluding down shards), replay
        the captured tail in sequence order to rebuild
        post-checkpoint state, then re-dispatch the orphaned pending
        requests so their original client futures complete with
        results from the new shard.  Sessions that cannot be rebuilt
        losslessly (tail gap, post-checkpoint terminal error, failed
        replay) fail their pending futures with :class:`SessionLost`
        and are counted, never silently reset.

        The route lock is held only for the bookkeeping edges; the
        per-session restore/replay RPCs run without it, so failing
        over a shard with many sessions never stalls traffic to the
        healthy ones.  Affected sessions are parked in the
        failing-over set meanwhile: new frames for them shed as
        :class:`~repro.serve.scheduler.Backpressure` until their
        rebuild settles, so nothing can interleave with the replay.
        """
        with self._route_lock:
            handle = self.shards[shard_id]
            if handle.pump is not None:
                handle.pump.close()
            if handle.state == UP:
                handle.state = BACKOFF
            self.ring.remove(shard_id)
            self._m_up.set(sum(1 for h in self.shards.values()
                               if h.state == UP))
            affected = sorted(
                sid for sid, placed in self._placement.items()
                if placed == shard_id)
            with self._state_lock:
                self._failing_over.update(affected)
        moved, lost = [], []
        try:
            for sid in affected:
                try:
                    target = self._fail_over_session(sid, shard_id)
                    with self._route_lock:
                        self._placement[sid] = target
                except (ReplayGap, SessionLost, ValueError, KeyError,
                        Backpressure, TransportClosed, TimeoutError,
                        RuntimeError) as exc:
                    self._mark_lost(sid, str(exc))
                    lost.append(sid)
                    continue
                finally:
                    # Unpark as soon as this session's own rebuild
                    # settles (placement already points at the new
                    # owner) -- later sessions' rebuilds must not
                    # keep shedding an already-recovered stream.
                    with self._state_lock:
                        self._failing_over.discard(sid)
                moved.append(sid)
                self._failovers += 1
                self._m_failovers.inc()
        finally:
            with self._state_lock:
                self._failing_over.difference_update(affected)
        self.flight.event("shard_failover", shard=shard_id,
                          reason=reason, moved=len(moved),
                          lost=len(lost))
        return {"shard": shard_id, "moved": moved, "lost": lost}

    def _orphaned(self, sid: str, dead_shard: int) -> List[_Pending]:
        with self._state_lock:
            entries = [p for p in self._pending.values()
                       if p.session == sid and p.shard == dead_shard]
        return sorted(entries, key=lambda p: p.seq)

    def _fail_over_session(self, sid: str, dead_shard: int) -> int:
        with self._route_lock:
            down = {s for s, h in self.shards.items()
                    if h.state != UP}
            target = self.ring.lookup(sid, exclude=down)
        if target is None:
            raise SessionLost(sid, "no healthy shard to fail over to")
        with self._state_lock:
            checkpoint = self._checkpoints.get(sid)
            holes = set(self._holes.get(sid, ()))
            taints = sorted(self._taints.get(sid, ()))
        watermark = int(checkpoint["watermark"]) \
            if checkpoint is not None else 0
        tainted = [t for t in taints if t > watermark]
        if tainted:
            # A terminal error past the checkpoint rolled the session
            # back to its last good keyframe: state from there on is
            # not a pure function of the applied stream, so no replay
            # can be bit-identical.  Refuse rather than rebuild a
            # silently different trajectory.
            raise SessionLost(
                sid, f"frame {tainted[0]} failed terminally after "
                     f"the last checkpoint; the rollback makes the "
                     f"tail non-replayable")
        if checkpoint is not None:
            self._rpc(target, {"op": "restore_session",
                               "record": checkpoint["record"]})
        orphans = self._orphaned(sid, dead_shard)
        tail = [(rec["seq"], rec)
                for rec in self.capture.tail(sid, watermark)]
        plan = failover_replay_plan(sid, watermark, tail,
                                    [(p.seq, p) for p in orphans],
                                    holes=holes)
        orphan_seqs = {p.seq for p in orphans}
        shed_rest = False
        for seq, entry in plan:
            handle = self.shards.get(target)
            if handle is None or handle.state != UP:
                raise SessionLost(
                    sid, f"failover target shard {target} went down "
                         f"mid-rebuild")
            if seq not in orphan_seqs:
                # A frame the client already saw: replay purely to
                # rebuild state.  The reply is awaited, never
                # discarded -- a failed replay must not leave the
                # rebuilt state silently missing this frame.
                self._replay_frame(handle, sid, seq, entry)
                continue
            # A live client request: re-dispatch under its original
            # id so the reply completes the original future.
            if shed_rest:
                self._shed_orphan(entry)
                continue
            entry.shard = target
            try:
                self._send_frame(handle, entry)
            except Backpressure:
                self._shed_orphan(entry)
                shed_rest = True
                continue
            # Await the outcome so a worker-side admission shed can
            # never let a later orphan overtake this seq: once one
            # orphan sheds, every later one sheds too and the clients
            # retry them in order (exactly the live-path contract).
            try:
                entry.future.result(timeout=60.0)
            except Backpressure:
                shed_rest = True
            except DeadlineExceeded:
                # Expired in the target's queue: the hole is already
                # recorded and state was never touched -- later
                # frames proceed, matching live expiry semantics.
                pass
            except TimeoutError as exc:
                raise SessionLost(
                    sid, f"re-dispatched frame {seq} did not "
                         f"complete during failover") from exc
            except Exception:
                # Terminal frame error on the new shard: the client
                # saw it and the taint is recorded; the live
                # contract continues the stream from the restored
                # keyframe, so later orphans still run.
                pass
        return target

    def _replay_frame(self, handle: ShardHandle, sid: str, seq: int,
                      rec: dict, attempts: int = 20,
                      timeout_s: float = 60.0) -> None:
        """Replay one captured frame on the failover target and wait.

        An admission shed (target momentarily saturated by the
        failover storm) retries with a bounded budget; any other
        failure -- or exhausting the budget -- aborts the rebuild so
        the session is marked lost instead of silently serving state
        that misses this frame.
        """
        for _ in range(attempts):
            replay = _Pending(
                self._alloc_id(), sid, seq, rec["gray"], rec["depth"],
                rec["timestamp"], None, handle.shard_id, internal=True)
            with self._state_lock:
                self._pending[replay.req_id] = replay
            try:
                self._send_frame(handle, replay)
            except Backpressure as exc:
                with self._state_lock:
                    self._pending.pop(replay.req_id, None)
                time.sleep(min(max(exc.retry_after_s, 0.01), 0.25))
                continue
            try:
                replay.future.result(timeout=timeout_s)
                return
            except Backpressure as exc:
                time.sleep(min(max(exc.retry_after_s, 0.01), 0.25))
                continue
            except TimeoutError as exc:
                with self._state_lock:
                    self._pending.pop(replay.req_id, None)
                raise SessionLost(
                    sid, f"replay of frame {seq} timed out during "
                         f"failover") from exc
            except Exception as exc:
                raise SessionLost(
                    sid, f"replay of frame {seq} failed on the "
                         f"failover target: {exc}") from exc
        raise SessionLost(
            sid, f"replay of frame {seq} kept shedding on the "
                 f"failover target")

    def _shed_orphan(self, entry: _Pending) -> None:
        """Fail one orphaned request as a shed (hole, not a loss)."""
        with self._state_lock:
            self._pending.pop(entry.req_id, None)
            self._holes.setdefault(entry.session,
                                   set()).add(entry.seq)
        if not entry.future.done():
            entry.future.set_exception(
                Backpressure(depth=0, retry_after_s=0.25))

    def _mark_lost(self, sid: str, reason: str) -> None:
        error = SessionLost(sid, reason)
        with self._state_lock:
            self._lost_sessions[sid] = reason
            entries = [p for p in self._pending.values()
                       if p.session == sid]
            for entry in entries:
                self._pending.pop(entry.req_id, None)
            self._holes.pop(sid, None)
            self._taints.pop(sid, None)
            self._checkpoints.pop(sid, None)
        self._m_lost.inc()
        for entry in entries:
            # Internal replay futures fail too, so a failover thread
            # blocked on one can never hang on a lost session.
            if not entry.future.done():
                entry.future.set_exception(error)
        self.flight.incident("session_lost", session=sid,
                             spans=[])

    # -- elastic scale-up/down ---------------------------------------------

    def add_shard(self, rebalance: bool = True) -> int:
        """Spawn one more shard; optionally migrate the sessions the
        ring now maps onto it (drain from their current owners)."""
        if self.inline:
            raise RuntimeError("inline router has no shards to scale")
        with self._route_lock:
            shard_id = max(self.shards, default=-1) + 1
            handle = self._new_handle(shard_id)
            self.shards[shard_id] = handle
            self._spawn(handle)
            self.ring.add(shard_id)
            if rebalance:
                with self._state_lock:
                    parked = (set(self._failing_over) |
                              set(self._lost_sessions))
                movers = [sid for sid, placed
                          in self._placement.items()
                          if placed != shard_id and
                          sid not in parked and
                          self.ring.lookup(sid) == shard_id and
                          self.shards[placed].state == UP]
                for sid in movers:
                    self._migrate(sid, self._placement[sid], shard_id)
            return shard_id

    def remove_shard(self, shard_id: int,
                     timeout_s: float = 30.0) -> List[str]:
        """Drain a shard's sessions onto the rest, then retire it."""
        if self.inline:
            raise RuntimeError("inline router has no shards to scale")
        with self._route_lock:
            handle = self.shards[shard_id]
            self.ring.remove(shard_id)
            drained = []
            if handle.state == UP:
                residents = [sid for sid, placed
                             in self._placement.items()
                             if placed == shard_id]
                for sid in residents:
                    down = {s for s, h in self.shards.items()
                            if h.state != UP or s == shard_id}
                    target = self.ring.lookup(sid, exclude=down)
                    if target is None:
                        raise RuntimeError(
                            "no shard left to drain onto")
                    self._migrate(sid, shard_id, target)
                    drained.append(sid)
                try:
                    self._rpc(shard_id, {"op": "shutdown"},
                              timeout_s=5.0)
                except (TransportClosed, RuntimeError, TimeoutError):
                    pass
            if handle.pump is not None:
                handle.pump.close()
            if handle.process is not None:
                handle.process.join(timeout=timeout_s)
                if handle.process.is_alive():
                    handle.process.kill()
                    handle.process.join(timeout=5.0)
                handle.process.close()
                handle.process = None
            handle.state = STOPPED
            del self.shards[shard_id]
            self._m_up.set(sum(1 for h in self.shards.values()
                               if h.state == UP))
            return drained

    def _migrate(self, sid: str, source: int, target: int) -> None:
        """Live-migrate one session between up shards (lossless)."""
        with self._state_lock:
            pre_taints = set(self._taints.get(sid, ()))
        reply = self._rpc(source, {"op": "export_session",
                                   "session": sid})
        self._rpc(target, {"op": "restore_session",
                           "record": reply["record"]})
        # Checkpoint bookkeeping moves with the session: the exported
        # record is strictly fresher than any stored checkpoint.
        watermark = int(reply["watermark"])
        with self._state_lock:
            self._checkpoints[sid] = {"record": reply["record"],
                                      "watermark": watermark,
                                      "shard": target}
            self._prune_stream_gaps(sid, watermark,
                                    covered_taints=pre_taints)
        self.capture.prune(sid, watermark)
        handle = self.shards[target]
        for entry in self._orphaned(sid, source):
            entry.shard = target
            self._send_frame(handle, entry)
        self._placement[sid] = target
        self.flight.event("session_migrated", session=sid,
                          source=source, target=target)

    # -- introspection -----------------------------------------------------

    def shard_ids(self) -> List[int]:
        """Stable snapshot of the shard-slot ids (safe to iterate
        while add/remove_shard run concurrently)."""
        if self.inline:
            return []
        with self._route_lock:
            return sorted(self.shards)

    def shards_status(self) -> dict:
        """JSON-safe per-shard status (the ``/shards`` endpoint)."""
        if self.inline:
            return {
                "mode": "inline",
                "shards": [],
                "sessions": len(self.local.sessions),
                "healthy": self.local.healthy(),
                "degraded": False,
                "failovers_total": 0,
                "lost_sessions": [],
            }
        rows = []
        with self._route_lock:
            placement_counts: Dict[int, int] = {}
            for placed in self._placement.values():
                placement_counts[placed] = \
                    placement_counts.get(placed, 0) + 1
            n_sessions = len(self._placement)
            for shard_id in sorted(self.shards):
                handle = self.shards[shard_id]
                age = handle.heartbeat_age_s()
                rows.append({
                    "shard": shard_id,
                    "state": handle.state,
                    "pid": handle.pid,
                    "sessions": placement_counts.get(shard_id, 0),
                    "uptime_s": round(handle.uptime_s(), 3),
                    "heartbeat_age_s": (None if age is None
                                        else round(age, 3)),
                    "heartbeats": handle.heartbeats,
                    "restarts": handle.restarts,
                    "restart_budget_remaining":
                        handle.backoff.remaining(),
                    "breaker": handle.breaker.state,
                    "send_depth": (handle.pump.send_depth()
                                   if handle.pump is not None else 0),
                })
        with self._state_lock:
            lost = sorted(self._lost_sessions)
            n_checkpointed = len(self._checkpoints)
        up = sum(1 for r in rows if r["state"] == UP)
        degraded = any(r["state"] in (BACKOFF, FAILED) for r in rows)
        return {
            "mode": "sharded",
            "shards": rows,
            "up": up,
            "sessions": n_sessions,
            "healthy": bool(up) and not self._closed,
            "degraded": degraded,
            "failovers_total": self._failovers,
            "lost_sessions": lost,
            "checkpointed_sessions": n_checkpointed,
        }

    def stats(self) -> dict:
        if self.inline:
            stats = self.local.stats()
            stats["shards"] = self.shards_status()
            return stats
        status = self.shards_status()
        with self._state_lock:
            pending = len(self._pending)
        return {
            "shards": status,
            "pending": pending,
            "health": {
                "closed": self._closed,
                "healthy": status["healthy"],
                "degraded": status["degraded"],
            },
            "flight": self.flight.stats(),
            "capture": self.capture.stats(),
        }

    def healthy(self) -> bool:
        """At least one shard can take traffic right now."""
        if self.inline:
            return self.local.healthy()
        return bool(self.shards_status()["healthy"])

    def degraded(self) -> bool:
        """Serving, but a shard is down, respawning, or failed."""
        if self.inline:
            return False
        return bool(self.shards_status()["degraded"])
