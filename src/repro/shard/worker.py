"""The shard worker process: one ``VOService`` behind a socket.

:func:`shard_worker_main` is the child-process entry point (module
level, so every ``multiprocessing`` start method -- fork, forkserver,
spawn -- can reach it).  The child dials the router back over loopback
TCP (:func:`~repro.shard.transport.connect_back`; a connected fd
cannot ride through ``spawn`` pickling, so connect-back it is),
presents the spawn-time token, and then serves the router's ops over
one :class:`~repro.shard.transport.MessagePump`:

``frame``
    Enqueue one frame under the router-assigned per-session sequence
    number (``VOService.requeue_frame``): non-blocking, the reply is
    sent from the future's done-callback on the pool thread.
    Admission :class:`~repro.serve.scheduler.Backpressure` travels
    back as a typed error reply carrying ``retry_after_s``.
``checkpoint``
    Quiesce every resident session, export each one through the
    ``repro.snap`` codec, resubmit the extracted queued frames, and
    reply with the encoded records plus per-session applied-seq
    watermarks (the max router seq each exported state covers).
    This runs *on the pump's reader thread* deliberately: no new
    frames are admitted while state is being exported, so each record
    is a consistent cut at a known watermark.
``export_session`` / ``restore_session``
    The drain/rebalance pair: export quiesces one session, cancels its
    still-queued frames (the router re-dispatches them from its own
    pending table), removes it, and ships the encoded record; restore
    imports a record with a forced device reset, exactly like a
    migration.
``stats`` / ``shutdown``
    Health introspection and clean teardown.

A heartbeat thread pushes liveness beacons every ``heartbeat_s``; the
supervisor treats a stale beacon as a hang and escalates to SIGKILL.
If the router connection drops, the worker shuts itself down -- an
orphaned shard must not keep burning CPU behind a dead front door.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.serve.scheduler import Backpressure
from repro.serve.service import VOService
from repro.shard.transport import (
    MessagePump,
    SendQueueFull,
    TransportClosed,
    connect_back,
)
from repro.snap.codec import encode
from repro.snap.state import restore_session_record
from repro.vo.config import TrackerConfig

__all__ = ["ShardSpec", "shard_worker_main"]


@dataclass
class ShardSpec:
    """Picklable recipe for one shard's inner ``VOService``.

    Travels as a plain spawn argument, so it must stay picklable under
    every start method.  ``idle_timeout_s`` defaults high: a sharded
    session's state must not idle-evict between frames -- the router
    owns placement, the shard only hosts.
    """

    workers: int = 1
    frontend: str = "pim"
    config: Optional[TrackerConfig] = None
    device_detect: bool = False
    max_queue: int = 64
    max_batch: int = 4
    idle_timeout_s: float = 3600.0
    max_sessions: int = 256
    min_service_s: float = 0.0
    device_clock_hz: Optional[float] = None
    max_retries: int = 1
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 0.25
    program_store: Optional[str] = None
    heartbeat_s: float = 0.25
    quiesce_timeout_s: float = 10.0
    start_method: str = "forkserver"
    extra: dict = field(default_factory=dict)

    def service_kwargs(self) -> dict:
        return {
            "workers": self.workers,
            "frontend": self.frontend,
            "config": self.config,
            "device_detect": self.device_detect,
            "max_queue": self.max_queue,
            "max_batch": self.max_batch,
            "idle_timeout_s": self.idle_timeout_s,
            "max_sessions": self.max_sessions,
            "min_service_s": self.min_service_s,
            "device_clock_hz": self.device_clock_hz,
            "max_retries": self.max_retries,
            "breaker_threshold": self.breaker_threshold,
            "breaker_cooldown_s": self.breaker_cooldown_s,
            "program_store": self.program_store,
        }


class _ShardWorker:
    """The in-child event loop around one inner ``VOService``."""

    def __init__(self, shard_id: int, pump: MessagePump,
                 service: VOService, spec: ShardSpec):
        self.shard_id = shard_id
        self.pump = pump
        self.service = service
        self.spec = spec
        self._stop = threading.Event()
        self._hb_seq = 0

    # -- replies ---------------------------------------------------------

    def _reply(self, payload: dict) -> None:
        """Send one reply, blocking: replies must never be shed."""
        try:
            self.pump.send(payload, block=True, timeout=5.0)
        except (TransportClosed, SendQueueFull):
            self._stop.set()

    def _error_reply(self, msg: dict, exc: BaseException) -> dict:
        reply = {"op": "result", "id": msg.get("id"),
                 "shard": self.shard_id, "ok": False,
                 "error": type(exc).__name__, "message": str(exc)}
        if isinstance(exc, Backpressure):
            reply["retry_after_s"] = exc.retry_after_s
        return reply

    # -- op handlers -----------------------------------------------------

    def _handle_frame(self, msg: dict) -> None:
        session = msg["session"]
        try:
            self.service.sessions.touch(session)
            future = self.service.requeue_frame(
                session, int(msg["seq"]), msg["gray"], msg["depth"],
                msg.get("timestamp", 0.0),
                deadline_s=msg.get("deadline_s"))
        except BaseException as exc:  # noqa: BLE001 -- typed reply
            self._reply(self._error_reply(msg, exc))
            return

        def _complete(fut, req_id=msg.get("id")):
            if fut.cancelled():
                # Cancelled == the session was exported mid-queue; the
                # router re-dispatches from its pending table, so a
                # reply here would double-complete the request.
                return
            exc = fut.exception()
            if exc is not None:
                self._reply(self._error_reply(msg, exc))
            else:
                self._reply({"op": "result", "id": req_id,
                             "shard": self.shard_id, "ok": True,
                             "result": fut.result()})

        future.add_done_callback(_complete)

    def _checkpoint_sessions(self) -> dict:
        """Consistent per-session export of everything resident.

        The watermark is the session's **applied** sequence watermark
        (max router-assigned seq whose frame mutated the exported
        state), *not* the processed-frame count: shed/expired frames
        never reach the state and terminally-failed ones are rolled
        back, so only the applied watermark lines up with the router's
        capture-tail pruning and failover replay plans.
        """
        out = {}
        for sid in self.service.sessions.sids():
            try:
                extracted = self.service.quiesce_session(
                    sid, timeout_s=self.spec.quiesce_timeout_s)
            except TimeoutError:
                continue
            try:
                record = self.service.sessions.export_session(sid)
            except (KeyError, RuntimeError):
                record = None
            for item in extracted:
                self.service.scheduler.submit(item)
            if record is not None:
                out[sid] = {"record": encode(record),
                            "watermark": int(record["applied_seq"])}
        return out

    def _handle_checkpoint(self, msg: dict) -> None:
        try:
            sessions = self._checkpoint_sessions()
        except BaseException as exc:  # noqa: BLE001
            self._reply(self._error_reply(msg, exc))
            return
        self._reply({"op": "result", "id": msg.get("id"),
                     "shard": self.shard_id, "ok": True,
                     "sessions": sessions})

    def _handle_export_session(self, msg: dict) -> None:
        sid = msg["session"]
        try:
            extracted = self.service.quiesce_session(
                sid, timeout_s=self.spec.quiesce_timeout_s)
            record = self.service.sessions.export_session(sid)
            self.service.sessions.remove(sid, reason="migrated")
        except BaseException as exc:  # noqa: BLE001
            self._reply(self._error_reply(msg, exc))
            return
        # The extracted futures belong to requests the router still
        # holds; cancelling suppresses their replies (see _complete)
        # and the router re-dispatches onto the new owner.
        pending = []
        for item in extracted:
            item.future.cancel()
            pending.append(int(item.seq))
        self._reply({"op": "result", "id": msg.get("id"),
                     "shard": self.shard_id, "ok": True,
                     "record": encode(record),
                     "watermark": int(record["applied_seq"]),
                     "pending_seqs": pending})

    def _handle_restore_session(self, msg: dict) -> None:
        try:
            session = restore_session_record(
                self.service.sessions, msg["record"],
                force_device_reset=True)
        except BaseException as exc:  # noqa: BLE001
            self._reply(self._error_reply(msg, exc))
            return
        self._reply({"op": "result", "id": msg.get("id"),
                     "shard": self.shard_id, "ok": True,
                     "session": session.sid,
                     "generation": int(session.generation),
                     "frames": int(session.frames)})

    def _handle_stats(self, msg: dict) -> None:
        try:
            stats = self.service.stats()
        except BaseException as exc:  # noqa: BLE001
            self._reply(self._error_reply(msg, exc))
            return
        self._reply({"op": "result", "id": msg.get("id"),
                     "shard": self.shard_id, "ok": True,
                     "stats": stats,
                     "sessions": self.service.sessions.sids()})

    def _on_message(self, msg: object) -> None:
        if not isinstance(msg, dict):
            return
        op = msg.get("op")
        if op == "frame":
            self._handle_frame(msg)
        elif op == "checkpoint":
            self._handle_checkpoint(msg)
        elif op == "export_session":
            self._handle_export_session(msg)
        elif op == "restore_session":
            self._handle_restore_session(msg)
        elif op == "stats":
            self._handle_stats(msg)
        elif op == "shutdown":
            self._reply({"op": "result", "id": msg.get("id"),
                         "shard": self.shard_id, "ok": True})
            self._stop.set()

    # -- heartbeat -------------------------------------------------------

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.spec.heartbeat_s):
            self._hb_seq += 1
            try:
                self.pump.send({
                    "op": "heartbeat", "shard": self.shard_id,
                    "n": self._hb_seq,
                    "sessions": len(self.service.sessions),
                    "healthy": self.service.healthy(),
                })
            except (TransportClosed, SendQueueFull):
                # A full queue just skips one beacon; a closed pump
                # ends the worker below.
                if self.pump.closed:
                    self._stop.set()

    # -- lifecycle -------------------------------------------------------

    def run(self) -> None:
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            name=f"shard-hb-{self.shard_id}", daemon=True)
        heartbeat.start()
        try:
            self._stop.wait()
        finally:
            self._stop.set()
            try:
                self.service.close()
            finally:
                self.pump.close()
            heartbeat.join(timeout=2.0)

    def stop(self) -> None:
        self._stop.set()


def shard_worker_main(shard_id: int, host: str, port: int,
                      token: bytes, spec: ShardSpec) -> None:
    """Child-process entry: build the service, dial back, serve ops."""
    sock = connect_back(host, port, token)
    service = VOService(**spec.service_kwargs())
    worker_box: dict = {}

    def _dispatch(msg: object) -> None:
        worker = worker_box.get("worker")
        if worker is not None:
            worker._on_message(msg)

    def _on_close() -> None:
        worker = worker_box.get("worker")
        if worker is not None:
            worker.stop()

    pump = MessagePump(sock, name=f"w{shard_id}",
                       on_message=_dispatch, on_close=_on_close)
    worker = _ShardWorker(shard_id, pump, service, spec)
    worker_box["worker"] = worker
    try:
        service.start()
    except BaseException:
        pump.close()
        raise
    pump.start()
    try:
        pump.send({"op": "hello", "shard": shard_id,
                   "pid": os.getpid()}, block=True, timeout=5.0)
    except (TransportClosed, SendQueueFull):
        worker.stop()
    worker.run()
