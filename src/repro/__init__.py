"""Reproduction of "Processing-in-SRAM Acceleration for Ultra-Low Power
Visual 3D Perception" (He et al., DAC 2022).

The package is organised in layers mirroring the paper:

* :mod:`repro.fixedpoint` -- Q-format fixed-point arithmetic substrate.
* :mod:`repro.pim` -- the physical layer: a bit-parallel SRAM-PIM device
  simulator with cycle and energy accounting.
* :mod:`repro.vision`, :mod:`repro.geometry` -- image-processing and 3D
  geometry substrates (float reference implementations).
* :mod:`repro.kernels` -- the algorithm layer: PIM-friendly mappings of the
  EBVO hot kernels (LPF, HPF, NMS, warp, Jacobian, Hessian).
* :mod:`repro.vo` -- the edge-based visual odometry system itself.
* :mod:`repro.dataset` -- synthetic RGB-D sequences and TUM format I/O.
* :mod:`repro.evaluation` -- RPE/ATE trajectory metrics.
* :mod:`repro.baseline` -- the PicoVO-on-MCU cost baseline.
* :mod:`repro.analysis` -- experiment drivers that regenerate every table
  and figure of the paper's evaluation section.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
