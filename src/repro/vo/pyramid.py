"""Image pyramids for coarse-to-fine edge alignment.

The EBVO literature (REVO, Canny-VO) tracks over an image pyramid so
that inter-frame motions larger than the DT convergence basin are first
resolved at coarse scale.  The paper tracks at a single QVGA level
(its sequences are 30 fps hand-held motion); this extension adds the
pyramid for robustness to faster motion, with the downsampling built
from the same PIM-friendly 2x2 averaging as the LPF kernel.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.fixedpoint import ops

__all__ = ["downsample_gray", "downsample_depth", "build_pyramid"]


def downsample_gray(gray: np.ndarray) -> np.ndarray:
    """Half-resolution intensity via exact 2x2 averaging (PIM floor)."""
    img = np.asarray(gray, dtype=np.int64)
    h2, w2 = img.shape[0] // 2, img.shape[1] // 2
    img = img[:h2 * 2, :w2 * 2]
    top = ops.average(img[0::2, 0::2], img[0::2, 1::2])
    bot = ops.average(img[1::2, 0::2], img[1::2, 1::2])
    return ops.average(top, bot)


def downsample_depth(depth: np.ndarray) -> np.ndarray:
    """Half-resolution depth by nearest sampling (no mixing across
    depth discontinuities, matching how RGB-D pyramids are built)."""
    depth = np.asarray(depth, dtype=np.float64)
    h2, w2 = depth.shape[0] // 2, depth.shape[1] // 2
    return depth[:h2 * 2:2, :w2 * 2:2]


def build_pyramid(gray: np.ndarray, depth: np.ndarray,
                  levels: int) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Pyramid of ``(gray, depth)`` pairs, level 0 = full resolution."""
    if levels < 1:
        raise ValueError("need at least one level")
    out = [(np.asarray(gray, dtype=np.int64),
            np.asarray(depth, dtype=np.float64))]
    for _ in range(levels - 1):
        g, d = out[-1]
        if min(g.shape) < 32:
            break
        out.append((downsample_gray(g), downsample_depth(d)))
    return out
