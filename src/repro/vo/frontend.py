"""Float and PIM-quantized EBVO frontends.

A frontend owns the arithmetic of the pipeline: edge detection,
keyframe map preparation, feature representation, and the per-iteration
linearization (residuals, Jacobians, Gauss-Newton system).  The LM
solver and the tracker are frontend-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.fixedpoint import Q14_2
from repro.geometry.camera import inverse_depth_coords
from repro.geometry.se3 import SE3
from repro.kernels.edge_detect import detect_edges_fast, detect_edges_replay
from repro.kernels.hessian import hessian_fast, unpack_symmetric
from repro.kernels.jacobian import jacobian_fast, jacobian_float
from repro.kernels.warp import (
    UV_FORMAT,
    quantize_features,
    quantize_pose,
    warp_fast,
    warp_float,
)
from repro.obs.metrics import get_registry
from repro.obs.tracer import span as obs_span
from repro.vision.distance_transform import distance_transform, dt_gradient
from repro.vision.edges import detect_edges_reference
from repro.vo.config import TrackerConfig
from repro.vo.features import FeatureSet
from repro.vo.health import CorruptFrameError

__all__ = ["KeyframeMaps", "FloatFrontend", "PIMFrontend"]


def _check_frame(gray: np.ndarray) -> np.ndarray:
    """Last line of defence: no non-finite frame reaches a kernel.

    The tracker's input validation repairs or rejects corrupted frames
    long before this point; anything non-finite arriving here means a
    caller bypassed it, and failing fast beats silently loading NaN
    bit patterns into the (simulated) PIM array.
    """
    gray = np.asarray(gray)
    if not np.isfinite(gray).all():
        raise CorruptFrameError(
            "frame contains non-finite intensities; run "
            "repro.vo.health.validate_frame or enable "
            "TrackerConfig.validate_inputs")
    return gray


@dataclass
class KeyframeMaps:
    """Pre-computed lookup maps of one keyframe (paper section 2.3).

    ``grad_u``/``grad_v`` are the DT gradients pre-multiplied by the
    focal lengths, matching the ``(I_u, I_v)`` of Fig. 5-c.  The
    quantized fields are present only for the PIM frontend.
    """

    dt: np.ndarray
    grad_u: np.ndarray
    grad_v: np.ndarray
    dt_raw: Optional[np.ndarray] = None
    gu_raw: Optional[np.ndarray] = None
    gv_raw: Optional[np.ndarray] = None


def _bilinear(grid: np.ndarray, u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Bilinear interpolation with edge clamping."""
    h, w = grid.shape
    u = np.clip(u, 0.0, w - 1.0)
    v = np.clip(v, 0.0, h - 1.0)
    u0 = np.floor(u).astype(np.int64)
    v0 = np.floor(v).astype(np.int64)
    u1 = np.minimum(u0 + 1, w - 1)
    v1 = np.minimum(v0 + 1, h - 1)
    fu = u - u0
    fv = v - v0
    return ((1 - fv) * ((1 - fu) * grid[v0, u0] + fu * grid[v0, u1]) +
            fv * ((1 - fu) * grid[v1, u0] + fu * grid[v1, u1]))


class FloatFrontend:
    """Double-precision pipeline (the PicoVO-class baseline)."""

    def __init__(self, config: TrackerConfig):
        self.config = config

    def detect(self, gray: np.ndarray) -> np.ndarray:
        """Boolean edge map of a frame."""
        gray = _check_frame(gray)
        return detect_edges_reference(gray, self.config.th1,
                                      self.config.th2)

    def prepare_keyframe(self, edge_map: np.ndarray) -> KeyframeMaps:
        """Distance transform and focal-scaled gradient maps."""
        cam = self.config.camera
        dt = distance_transform(edge_map)
        gu, gv = dt_gradient(dt)
        return KeyframeMaps(dt=dt, grad_u=gu * cam.fx, grad_v=gv * cam.fy)

    def make_features(self, features: FeatureSet):
        """Frontend representation: float inverse-depth triples."""
        return inverse_depth_coords(self.config.camera, features.u,
                                    features.v, features.depth)

    def _warp_and_lookup(self, feats, pose: SE3, maps: KeyframeMaps):
        a, b, c = feats
        res = warp_float(pose, a, b, c, self.config.camera)
        valid = res.valid
        r = np.zeros_like(res.u)
        r[valid] = _bilinear(maps.dt, res.u[valid], res.v[valid])
        r = np.minimum(r, self.config.residual_clamp)
        return res, r, valid

    def error(self, feats, pose: SE3, maps: KeyframeMaps) -> Tuple[float,
                                                                   int]:
        """Mean squared residual and valid count at a pose."""
        _, r, valid = self._warp_and_lookup(feats, pose, maps)
        n = int(valid.sum())
        if n == 0:
            return np.inf, 0
        return float(np.mean(r[valid] ** 2)), n

    def linearize(self, feats, pose: SE3, maps: KeyframeMaps):
        """Gauss-Newton system ``(H, b, err, n_valid)`` at a pose."""
        a, b, c = feats
        res, r, valid = self._warp_and_lookup(feats, pose, maps)
        n = int(valid.sum())
        if n == 0:
            return np.zeros((6, 6)), np.zeros(6), np.inf, 0
        u, v = res.u[valid], res.v[valid]
        gu = _bilinear(maps.grad_u, u, v)
        gv = _bilinear(maps.grad_v, u, v)
        cv = np.asarray(c)[valid]
        z_real = res.z[valid] / cv
        x_real = res.rx[valid] * z_real
        y_real = res.ry[valid] * z_real
        jac = jacobian_float(x_real, y_real, z_real, gu, gv)
        rv = r[valid]
        if self.config.huber_delta is not None:
            # Iteratively reweighted least squares with Huber weights
            # w = min(1, delta / |r|) applied to H and b.
            delta = self.config.huber_delta
            w = np.minimum(1.0, delta / np.maximum(np.abs(rv), 1e-12))
            jw = jac * w[:, None]
            h = jw.T @ jac
            g = jw.T @ rv
        else:
            h = jac.T @ jac
            g = jac.T @ rv
        return h, g, float(np.mean(rv ** 2)), n


class PIMFrontend:
    """Fully quantized pipeline with exact PIM arithmetic."""

    def __init__(self, config: TrackerConfig):
        self.config = config
        # One simulated device per frame shape (pyramid level), reused
        # across frames; the compiled kernel programs themselves live in
        # the process-wide KERNEL_PROGRAM_CACHE, keyed by geometry, so
        # each level's LPF/HPF/NMS bodies are recorded exactly once.
        self._detect_devices: dict = {}
        #: Per-stage device cycles of the most recent detect() when
        #: ``config.pim_device_detect`` is on (empty otherwise).
        self.last_detect_cycles: dict = {}

    def _detect_device(self, shape):
        device = self._detect_devices.get(shape)
        if device is None:
            from repro.pim import PIMConfig, PIMDevice
            height, width = shape
            device = PIMDevice(PIMConfig(wordline_bits=width * 8,
                                         num_rows=height + 8))
            self._detect_devices[shape] = device
        return device

    def detect(self, gray: np.ndarray) -> np.ndarray:
        """Boolean edge map via the in-PIM kernel chain.

        With ``config.pim_device_detect`` the chain runs on the
        simulated device via compiled-program replay (bit-identical
        mask, per-stage cycles in :attr:`last_detect_cycles`);
        otherwise on the vectorized numpy mirror.
        """
        gray = _check_frame(gray)
        if self.config.pim_device_detect:
            device = self._detect_device(gray.shape)
            snap = device.ledger.snapshot()
            with obs_span("frontend_detect", device=device, category="vo",
                          shape=list(gray.shape)):
                result = detect_edges_replay(device, gray, self.config.th1,
                                             self.config.th2)
            delta = device.ledger.delta_since(snap)
            registry = get_registry()
            registry.histogram(
                "frame_detect_cycles",
                "Device cycles per detected frame").observe(delta.cycles)
            registry.histogram(
                "frame_detect_energy_pj",
                "Device energy (pJ) per detected frame").observe(
                    delta.energy().total_pj)
            registry.histogram(
                "frame_edge_pixels",
                "Edge pixels per detected frame").observe(
                    int(result.edge_map.sum()))
            self.last_detect_cycles = dict(result.cycles)
            return result.edge_map
        return detect_edges_fast(gray, self.config.th1,
                                 self.config.th2).edge_map

    def prepare_keyframe(self, edge_map: np.ndarray) -> KeyframeMaps:
        """DT on the host (per the paper), lookups quantized to Q14.2."""
        cam = self.config.camera
        dt = distance_transform(edge_map)
        gu, gv = dt_gradient(dt)
        grad_u, grad_v = gu * cam.fx, gv * cam.fy
        return KeyframeMaps(
            dt=dt, grad_u=grad_u, grad_v=grad_v,
            dt_raw=np.asarray(Q14_2.quantize(dt), dtype=np.int64),
            gu_raw=np.asarray(Q14_2.quantize(grad_u), dtype=np.int64),
            gv_raw=np.asarray(Q14_2.quantize(grad_v), dtype=np.int64))

    def make_features(self, features: FeatureSet):
        """Frontend representation: Q4.12 inverse-depth raws."""
        a, b, c = inverse_depth_coords(self.config.camera, features.u,
                                       features.v, features.depth)
        return quantize_features(a, b, c)

    @staticmethod
    def _bilinear_q2(grid_raw: np.ndarray, u_raw: np.ndarray,
                     v_raw: np.ndarray) -> np.ndarray:
        """Quarter-pixel bilinear lookup from Q14.2 coordinates.

        The blend weights are the two fractional bits themselves
        (values 0..4 in quarter units), so the interpolation is pure
        integer arithmetic: ``sum(w_i * raw_i) >> 4``.
        """
        h, w = grid_raw.shape
        u0 = np.clip(u_raw >> 2, 0, w - 1)
        v0 = np.clip(v_raw >> 2, 0, h - 1)
        u1 = np.minimum(u0 + 1, w - 1)
        v1 = np.minimum(v0 + 1, h - 1)
        fu = u_raw & 3
        fv = v_raw & 3
        top = (4 - fu) * grid_raw[v0, u0] + fu * grid_raw[v0, u1]
        bot = (4 - fu) * grid_raw[v1, u0] + fu * grid_raw[v1, u1]
        return ((4 - fv) * top + fv * bot) >> 4

    def _warp_and_lookup(self, qfeats, pose: SE3, maps: KeyframeMaps):
        qpose = quantize_pose(pose)
        res = warp_fast(qpose, qfeats, self.config.camera)
        valid = res.valid
        h, w = maps.dt_raw.shape
        # Nearest integer pixel for the gradient lookups.
        half = UV_FORMAT.scale // 2
        ui = np.clip((res.u + half) >> 2, 0, w - 1).astype(np.int64)
        vi = np.clip((res.v + half) >> 2, 0, h - 1).astype(np.int64)
        clamp_raw = int(Q14_2.quantize(self.config.residual_clamp))
        r_raw = np.zeros_like(res.u)
        if self.config.pim_bilinear_residual:
            looked_up = self._bilinear_q2(maps.dt_raw, res.u[valid],
                                          res.v[valid])
        else:
            looked_up = maps.dt_raw[vi[valid], ui[valid]]
        r_raw[valid] = np.minimum(looked_up, clamp_raw)
        return res, r_raw, ui, vi, valid

    def error(self, qfeats, pose: SE3, maps: KeyframeMaps) -> Tuple[float,
                                                                    int]:
        """Mean squared residual (in pixels) and valid count."""
        _, r_raw, _, _, valid = self._warp_and_lookup(qfeats, pose, maps)
        n = int(valid.sum())
        if n == 0:
            return np.inf, 0
        r = Q14_2.to_float(r_raw[valid])
        return float(np.mean(r ** 2)), n

    def linearize(self, qfeats, pose: SE3, maps: KeyframeMaps):
        """Gauss-Newton system from the quantized kernels."""
        res, r_raw, ui, vi, valid = self._warp_and_lookup(qfeats, pose,
                                                          maps)
        n = int(valid.sum())
        if n == 0:
            return np.zeros((6, 6)), np.zeros(6), np.inf, 0
        iu = np.zeros_like(res.u)
        iv = np.zeros_like(res.u)
        iu[valid] = maps.gu_raw[vi[valid], ui[valid]]
        iv[valid] = maps.gv_raw[vi[valid], ui[valid]]
        jac = jacobian_fast(res, qfeats.c, iu, iv,
                            feature_frac=qfeats.fmt.fraction_bits)
        # Invalid features contribute zero rows/residuals.
        jac = np.where(valid[:, None], jac, 0)
        r_used = np.where(valid, r_raw, 0)
        h_raw, b_raw = hessian_fast(jac, r_used)
        h = unpack_symmetric(np.asarray(h_raw, dtype=np.float64) / 8.0)
        b = np.asarray(b_raw, dtype=np.float64) / 8.0
        r = Q14_2.to_float(r_raw[valid])
        return h, b, float(np.mean(r ** 2)), n
