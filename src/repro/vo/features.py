"""Edge-feature extraction: edge pixels with valid depth."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FeatureSet", "extract_features"]


@dataclass
class FeatureSet:
    """Edge features anchored in one frame.

    Attributes:
        u, v: Pixel coordinates (float64).
        depth: Depths in metres.
    """

    u: np.ndarray
    v: np.ndarray
    depth: np.ndarray

    def __len__(self) -> int:
        return int(self.u.size)


def extract_features(edge_map: np.ndarray, depth_map: np.ndarray,
                     max_features: int, min_depth: float,
                     max_depth: float) -> FeatureSet:
    """Collect edge pixels with usable depth, capped to a budget.

    When more edges than the budget exist, a deterministic stride
    subsampling keeps the selection spatially uniform (the paper's
    feature counts of 3000~6000 at QVGA come from the scene texture,
    not from a scoring pass).
    """
    edge_map = np.asarray(edge_map, dtype=bool)
    depth_map = np.asarray(depth_map, dtype=np.float64)
    vs, us = np.nonzero(edge_map)
    d = depth_map[vs, us]
    ok = np.isfinite(d) & (d > min_depth) & (d < max_depth)
    us, vs, d = us[ok], vs[ok], d[ok]
    if us.size > max_features:
        idx = np.linspace(0, us.size - 1, max_features).astype(np.int64)
        us, vs, d = us[idx], vs[idx], d[idx]
    return FeatureSet(u=us.astype(np.float64), v=vs.astype(np.float64),
                      depth=d)
