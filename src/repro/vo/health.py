"""Tracking-health machinery: input validation and divergence detection.

Real ultra-low-power deployments treat sensor dropouts and tracking
loss as normal operating conditions (Navion budgets for them; TinyDEVO
recovers on MCUs), so the tracker carries an explicit health state
machine instead of silently poisoning the trajectory:

* ``OK`` -- the last frame tracked cleanly.
* ``DEGRADED`` -- the last frame's solve was untrustworthy (residual
  blow-up, feature collapse, pose jump, or rejected input); its pose
  came from the constant-velocity motion model instead of the solver.
* ``LOST`` -- several consecutive degraded frames; the next frame
  attempts relocalization against the recent keyframes.

Two pieces live here because they are pure functions of one frame:

* :func:`validate_frame` -- rejects or repairs corrupted gray/depth
  input *before* it reaches the frontends (and thus the PIM device):
  non-finite pixels, out-of-range intensities, negative or NaN depth,
  shape mismatches.
* :func:`divergence_signals` -- classifies one LM solve against the
  sanity bounds in :class:`~repro.vo.config.TrackerConfig`.

The thresholds are deliberately far outside anything a clean sequence
produces, so on fault-free input no signal ever fires and the tracker
output stays bit-identical to a build without this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.geometry.se3 import SE3, so3_log

__all__ = [
    "OK", "DEGRADED", "LOST", "HEALTH_LEVELS",
    "CorruptFrameError", "FrameCheck", "validate_frame",
    "divergence_signals", "sync_health_gauge",
]

#: Health states, ordered by severity (the gauge exports the index).
OK = "OK"
DEGRADED = "DEGRADED"
LOST = "LOST"
HEALTH_LEVELS = (OK, DEGRADED, LOST)


def sync_health_gauge(health: str) -> None:
    """Publish ``health`` on the ``vo_tracking_state`` gauge.

    The tracker keeps the gauge current while *it* drives the state
    machine; any path that rewrites ``TrackerState.health`` behind the
    tracker's back -- a checkpoint restore, a session import after
    migration, a whole-service snapshot restore -- must call this so
    the *observable* health matches the stored one.
    """
    from repro.obs.metrics import get_registry
    get_registry().gauge(
        "vo_tracking_state",
        "Tracking health (0=OK, 1=DEGRADED, 2=LOST)").set(
            HEALTH_LEVELS.index(health))


class CorruptFrameError(ValueError):
    """A frame with non-finite or malformed data reached a frontend.

    Raised by the frontends as a last line of defence; under normal
    operation :func:`validate_frame` repairs or rejects such frames
    in the tracker before any kernel (or simulated PIM device) sees
    them.
    """


@dataclass
class FrameCheck:
    """Outcome of validating one gray/depth frame pair.

    ``ok`` means the (possibly repaired) arrays are safe to track.
    ``events`` lists what happened, e.g. ``"repaired:gray-nonfinite"``
    or ``"rejected:shape-mismatch"`` -- the chaos harness uses these
    to attribute injected faults.  When nothing needed repair the
    original arrays are returned unchanged (same objects), so the
    clean path is bit-identical and copy-free.
    """

    ok: bool
    gray: Optional[np.ndarray]
    depth: Optional[np.ndarray]
    events: Tuple[str, ...] = ()

    @property
    def repaired(self) -> bool:
        return any(e.startswith("repaired:") for e in self.events)


def validate_frame(gray, depth,
                   max_bad_fraction: float = 0.5) -> FrameCheck:
    """Reject or repair a corrupted RGB-D frame.

    Repairs (returning modified copies):

    * non-finite gray pixels -> 0 intensity;
    * gray intensities outside [0, 255] -> clipped;
    * NaN or negative depth -> ``inf`` (the "no geometry" marker the
      feature extractor already filters via its depth range).

    Rejections (``ok=False``; the tracker falls back to the motion
    model without touching the frontends):

    * arrays that are not 2-D or whose shapes disagree;
    * empty arrays;
    * more than ``max_bad_fraction`` of gray pixels non-finite (the
      frame carries too little real signal to repair).
    """
    events: List[str] = []
    gray = np.asarray(gray)
    depth = np.asarray(depth)
    if gray.ndim != 2 or depth.ndim != 2 or gray.size == 0:
        return FrameCheck(ok=False, gray=None, depth=None,
                          events=("rejected:malformed",))
    if gray.shape != depth.shape:
        return FrameCheck(ok=False, gray=None, depth=None,
                          events=("rejected:shape-mismatch",))
    if not np.issubdtype(gray.dtype, np.number) or \
            not np.issubdtype(depth.dtype, np.number):
        return FrameCheck(ok=False, gray=None, depth=None,
                          events=("rejected:non-numeric",))

    bad_gray = ~np.isfinite(gray)
    n_bad = int(bad_gray.sum())
    if n_bad > max_bad_fraction * gray.size:
        return FrameCheck(ok=False, gray=None, depth=None,
                          events=("rejected:gray-mostly-invalid",))
    if n_bad:
        gray = np.where(bad_gray, 0.0, gray.astype(np.float64))
        events.append("repaired:gray-nonfinite")
    out_of_range = np.isfinite(gray) & ((gray < 0) | (gray > 255))
    if out_of_range.any():
        gray = np.clip(gray, 0, 255)
        events.append("repaired:gray-range")

    bad_depth = np.isnan(depth) | (depth < 0)
    if bad_depth.any():
        depth = np.where(bad_depth, np.inf, depth.astype(np.float64))
        events.append("repaired:depth-invalid")
    return FrameCheck(ok=True, gray=gray, depth=depth,
                      events=tuple(events))


def divergence_signals(stats, prev_world: Optional[SE3],
                       pose_world: SE3, config) -> Tuple[str, ...]:
    """Sanity-check one solve; returns the fired signal names.

    Signals (all thresholds from ``config``, all far outside clean
    operation):

    * ``"residual-blowup"`` -- the converged mean squared residual is
      still huge (``> health_max_error`` px^2, vs. the ~5 px^2
      keyframe re-anchor trigger), i.e. the alignment found nothing.
    * ``"feature-collapse"`` -- the solver itself declared the frame
      lost (valid features under ``min_features``).
    * ``"pose-jump"`` -- the implied frame-to-frame motion exceeds
      ``health_max_translation`` / ``health_max_rotation`` (a camera
      does not move 30 cm or rotate 17 degrees in one 30 fps frame).
    """
    signals: List[str] = []
    if stats.lost:
        signals.append("feature-collapse")
    elif stats.final_error > config.health_max_error:
        signals.append("residual-blowup")
    if prev_world is not None:
        step = prev_world.inverse() @ pose_world
        t_jump = float(np.linalg.norm(step.t))
        r_jump = float(np.linalg.norm(so3_log(step.R)))
        if t_jump > config.health_max_translation or \
                r_jump > config.health_max_rotation:
            signals.append("pose-jump")
    return tuple(signals)
