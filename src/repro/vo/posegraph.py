"""Minimal pose-graph optimization (a g2o-style backend, paper ref [15]).

EBVO is the *frontend* of a vSLAM system; the paper's LM solver cites
g2o [Kuemmerle et al. 2011], the standard graph-optimization backend.
This module provides the matching backend substrate: a 6-DOF pose
graph over the tracker's keyframe odometry, optimized by damped
Gauss-Newton, so loop closures (re-recognizing a previously visited
view and measuring the relative pose with the same DT alignment)
can be folded back into the trajectory.

The implementation favours clarity over scale: residuals are
``log(meas^-1 (T_i^-1 T_j))`` with numerical Jacobians, solved densely
- ample for the tens of keyframes a VO session produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.geometry.se3 import SE3, se3_exp, se3_log

__all__ = ["PoseGraphEdge", "PoseGraph"]

_EPS = 1e-7


@dataclass
class PoseGraphEdge:
    """A relative-pose constraint ``T_i^-1 T_j ~ measurement``."""

    i: int
    j: int
    measurement: SE3
    weight: float = 1.0


@dataclass
class PoseGraph:
    """A 6-DOF pose graph with dense damped Gauss-Newton optimization.

    Vertex 0 is the gauge anchor (held fixed).
    """

    vertices: List[SE3] = field(default_factory=list)
    edges: List[PoseGraphEdge] = field(default_factory=list)

    def add_vertex(self, pose: SE3) -> int:
        """Add a pose; returns its index."""
        self.vertices.append(SE3(pose.R.copy(), pose.t.copy()))
        return len(self.vertices) - 1

    def add_edge(self, i: int, j: int, measurement: SE3,
                 weight: float = 1.0) -> None:
        """Constrain ``T_i^-1 T_j`` to the measured relative pose."""
        n = len(self.vertices)
        if not (0 <= i < n and 0 <= j < n) or i == j:
            raise ValueError(f"invalid edge ({i}, {j}) for {n} vertices")
        self.edges.append(PoseGraphEdge(i, j, measurement, weight))

    # -- residuals ---------------------------------------------------------

    def _edge_residual(self, edge: PoseGraphEdge,
                       poses: List[SE3]) -> np.ndarray:
        rel = poses[edge.i].inverse() @ poses[edge.j]
        return np.sqrt(edge.weight) * se3_log(
            edge.measurement.inverse() @ rel)

    def total_error(self, poses: Optional[List[SE3]] = None) -> float:
        """Sum of squared edge residuals."""
        poses = poses if poses is not None else self.vertices
        return float(sum(
            np.sum(self._edge_residual(e, poses) ** 2)
            for e in self.edges))

    # -- optimization --------------------------------------------------------

    def optimize(self, iterations: int = 15, damping: float = 1e-6,
                 tol: float = 1e-10) -> dict:
        """Damped Gauss-Newton over all vertices but the anchor.

        Returns:
            Stats dict with initial/final error and iteration count.
        """
        n = len(self.vertices)
        if n < 2 or not self.edges:
            return {"initial_error": 0.0, "final_error": 0.0,
                    "iterations": 0}
        initial = self.total_error()
        lam = damping
        current = initial
        done_iters = 0
        for _ in range(iterations):
            jac, res = self._linearize()
            h = jac.T @ jac
            g = jac.T @ res
            h += lam * np.diag(np.maximum(np.diagonal(h), 1e-9))
            try:
                delta = np.linalg.solve(h, -g)
            except np.linalg.LinAlgError:
                break
            candidate = self._retract(delta)
            cand_err = self.total_error(candidate)
            done_iters += 1
            if cand_err < current:
                self.vertices = candidate
                lam = max(lam * 0.5, 1e-9)
                if current - cand_err < tol * max(current, 1.0):
                    current = cand_err
                    break
                current = cand_err
            else:
                lam *= 10.0
                if lam > 1e3:
                    break
        return {"initial_error": initial, "final_error": current,
                "iterations": done_iters}

    def _retract(self, delta: np.ndarray) -> List[SE3]:
        poses = [SE3(self.vertices[0].R.copy(),
                     self.vertices[0].t.copy())]
        for k in range(1, len(self.vertices)):
            xi = delta[6 * (k - 1): 6 * k]
            poses.append(se3_exp(xi) @ self.vertices[k])
        return poses

    def _linearize(self):
        """Stack residuals and numerical Jacobians over free vertices."""
        n_free = len(self.vertices) - 1
        rows = 6 * len(self.edges)
        jac = np.zeros((rows, 6 * n_free))
        res = np.zeros(rows)
        for e_idx, edge in enumerate(self.edges):
            sl = slice(6 * e_idx, 6 * e_idx + 6)
            res[sl] = self._edge_residual(edge, self.vertices)
            for vertex in (edge.i, edge.j):
                if vertex == 0:
                    continue
                col = slice(6 * (vertex - 1), 6 * vertex)
                jac[sl, col] = self._numeric_block(edge, vertex)
        return jac, res

    def _numeric_block(self, edge: PoseGraphEdge,
                       vertex: int) -> np.ndarray:
        """d(residual)/d(xi_vertex) by central differences."""
        block = np.zeros((6, 6))
        base = self.vertices[vertex]
        for axis in range(6):
            xi = np.zeros(6)
            xi[axis] = _EPS
            for sign, target in ((1.0, 0), (-1.0, 1)):
                self.vertices[vertex] = se3_exp(sign * xi) @ base
                r = self._edge_residual(edge, self.vertices)
                if target == 0:
                    plus = r
                else:
                    minus = r
            block[:, axis] = (plus - minus) / (2 * _EPS)
        self.vertices[vertex] = base
        return block

    # -- convenience ---------------------------------------------------------

    @classmethod
    def from_trajectory(cls, poses: List[SE3],
                        odometry_weight: float = 1.0) -> "PoseGraph":
        """Chain graph from a trajectory (consecutive odometry edges)."""
        graph = cls()
        for pose in poses:
            graph.add_vertex(pose)
        for k in range(len(poses) - 1):
            rel = poses[k].inverse() @ poses[k + 1]
            graph.add_edge(k, k + 1, rel, odometry_weight)
        return graph
