"""Frame-to-keyframe EBVO tracking with keyframe management.

Optionally tracks coarse-to-fine over an image pyramid
(``config.pyramid_levels > 1``): the relative pose is first estimated
at the coarsest level, then refined downward - the standard robustness
extension for motions larger than the DT convergence basin.

Tracking failure is a first-class state, not an exception: every frame
moves an explicit health machine (``OK / DEGRADED / LOST``, see
:mod:`repro.vo.health`).  Corrupted input is repaired or rejected
before it reaches the frontends; a diverged solve (residual blow-up,
feature collapse, pose jump) is replaced by the constant-velocity
motion model; several consecutive degraded frames trigger
relocalization against the recent keyframes.  On clean input none of
the detectors fire and the trajectory is bit-identical to a tracker
without the health machinery.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.geometry.se3 import SE3, so3_log
from repro.obs.metrics import get_registry
from repro.obs.tracer import span as obs_span
from repro.vo.config import TrackerConfig
from repro.vo.features import extract_features
from repro.vo.frontend import FloatFrontend, KeyframeMaps
from repro.vo.health import (
    DEGRADED,
    LOST,
    OK,
    divergence_signals,
    sync_health_gauge,
    validate_frame,
)
from repro.vo.lm import LMStats, lm_estimate
from repro.vo.pyramid import build_pyramid

__all__ = ["EBVOTracker", "FrameResult", "Keyframe", "TrackerState"]


@dataclass
class FrameResult:
    """Per-frame tracking output."""

    pose: SE3                 # camera-to-world
    is_keyframe: bool
    lm: Optional[LMStats]
    num_features: int
    timestamp: float = 0.0
    #: Tracking health after this frame (``OK/DEGRADED/LOST``).
    health: str = OK
    #: What happened to this frame beyond plain tracking, e.g.
    #: ``"repaired:gray-nonfinite"``, ``"signal:pose-jump"``,
    #: ``"fallback:motion-model"``, ``"relocalized"``.  Empty on a
    #: clean frame; the chaos harness attributes injected faults by
    #: matching these.
    events: Tuple[str, ...] = ()


@dataclass
class Keyframe:
    """The reference frame tracking aligns against."""

    pose_world: SE3           # keyframe camera-to-world
    maps: List[KeyframeMaps]  # one per pyramid level (0 = full res)


@dataclass
class TrackerState:
    """The mutable per-client state of one tracking stream.

    Everything a tracker accumulates while following one camera lives
    here -- the current keyframe, the last relative pose, and the
    per-frame results -- while :class:`EBVOTracker` itself holds only
    configuration and (stateless-per-frame) frontends.  The split lets
    one tracker serve many interleaved streams by swapping
    :attr:`EBVOTracker.state` between frames (see
    :mod:`repro.serve.session`); a state detached mid-stream and
    re-attached later resumes bit-identically.

    Two snapshot granularities support the serving layer's fault
    containment:

    * :meth:`checkpoint` / :meth:`restore` -- deep, detached copies
      for durable per-session checkpoints (survive any mutation of the
      live state, used to resume from the last good keyframe).
    * :meth:`restore_point` / :meth:`rollback` -- O(1) shallow marks
      for in-place retry of a single frame (valid because ``process``
      only ever *replaces* keyframes/poses and *appends* results,
      never mutates them).
    """

    keyframe: Optional[Keyframe] = None
    last_rel: SE3 = field(default_factory=SE3.identity)  # cur -> keyframe
    results: List[FrameResult] = field(default_factory=list)
    #: Tracking health (``OK/DEGRADED/LOST``).
    health: str = OK
    #: Consecutive degraded frames since the last clean one.
    degraded_streak: int = 0
    #: Last clean frame-to-frame world motion (constant-velocity model).
    last_delta: SE3 = field(default_factory=SE3.identity)
    #: Recent keyframes retained as relocalization candidates
    #: (newest last; bounded by ``config.reloc_keyframes``).
    recent_keyframes: List[Keyframe] = field(default_factory=list)

    @property
    def trajectory(self) -> List[SE3]:
        """Estimated camera-to-world poses, one per processed frame."""
        return [r.pose for r in self.results]

    # -- snapshots -------------------------------------------------------

    def checkpoint(self) -> "TrackerState":
        """Deep, detached snapshot; safe to keep across any mutation."""
        return copy.deepcopy(self)

    def restore(self, snapshot: "TrackerState") -> "TrackerState":
        """Load a :meth:`checkpoint` snapshot in place; returns self.

        The snapshot itself stays untouched (fields are deep-copied
        in), so one checkpoint can be restored any number of times.
        """
        other = copy.deepcopy(snapshot)
        self.keyframe = other.keyframe
        self.last_rel = other.last_rel
        self.results = other.results
        self.health = other.health
        self.degraded_streak = other.degraded_streak
        self.last_delta = other.last_delta
        self.recent_keyframes = other.recent_keyframes
        return self

    def restore_point(self) -> tuple:
        """O(1) mark for :meth:`rollback` after a failed frame."""
        return (self.keyframe, self.last_rel, len(self.results),
                self.health, self.degraded_streak, self.last_delta,
                list(self.recent_keyframes))

    def rollback(self, point: tuple) -> None:
        """Undo every mutation since the matching :meth:`restore_point`."""
        (self.keyframe, self.last_rel, n_results, self.health,
         self.degraded_streak, self.last_delta, recent) = point
        del self.results[n_results:]
        self.recent_keyframes = list(recent)


# Back-compat alias for the former private name.
_Keyframe = Keyframe


class EBVOTracker:
    """The EBVO system of Fig. 1 with a pluggable arithmetic frontend.

    Usage::

        tracker = EBVOTracker(PIMFrontend(config), config)
        for gray, depth, ts in frames:
            result = tracker.process(gray, depth, ts)

    All mutable tracking state lives in :attr:`state` (a
    :class:`TrackerState`); replacing that attribute switches the
    tracker to another stream without rebuilding frontends or devices.
    """

    def __init__(self, frontend=None, config: Optional[TrackerConfig] = None):
        self.config = config or TrackerConfig()
        base = frontend or FloatFrontend(self.config)
        self.frontend = base
        self._frontends = [base]
        for level in range(1, self.config.pyramid_levels):
            self._frontends.append(
                type(base)(self.config.scaled_for_level(level)))
        self.state = TrackerState()

    @property
    def results(self) -> List[FrameResult]:
        """Per-frame results of the attached state."""
        return self.state.results

    @property
    def trajectory(self) -> List[SE3]:
        """Estimated camera-to-world poses, one per processed frame."""
        return self.state.trajectory

    def _make_keyframe(self, pyramid, pose_world: SE3,
                       edge_map_l0: np.ndarray) -> None:
        maps = [self._frontends[0].prepare_keyframe(edge_map_l0)]
        for level in range(1, min(len(self._frontends), len(pyramid))):
            frontend = self._frontends[level]
            edges = frontend.detect(pyramid[level][0])
            maps.append(frontend.prepare_keyframe(edges))
        self.state.keyframe = Keyframe(pose_world=pose_world, maps=maps)
        self.state.last_rel = SE3.identity()
        self.state.recent_keyframes.append(self.state.keyframe)
        keep = max(1, self.config.reloc_keyframes)
        del self.state.recent_keyframes[:-keep]

    def _needs_keyframe(self, rel_pose: SE3, stats: LMStats,
                        n_features: int) -> bool:
        cfg = self.config
        t_dist = float(np.linalg.norm(rel_pose.t))
        r_dist = float(np.linalg.norm(so3_log(rel_pose.R)))
        if t_dist > cfg.keyframe_translation:
            return True
        if r_dist > cfg.keyframe_rotation:
            return True
        if n_features and stats.valid_features / max(n_features, 1) < \
                cfg.keyframe_min_valid:
            return True
        if stats.final_error > cfg.keyframe_max_error:
            return True
        return False

    def _estimate(self, pyramid, features_l0, init: SE3):
        """Coarse-to-fine pose estimation against the keyframe maps."""
        pose = init
        stats = None
        levels = min(len(self.state.keyframe.maps), len(pyramid))
        for level in reversed(range(levels)):
            frontend = self._frontends[level]
            cfg = frontend.config
            if level == 0:
                feature_set = features_l0
            else:
                edges = frontend.detect(pyramid[level][0])
                feature_set = extract_features(
                    edges, pyramid[level][1], cfg.max_features,
                    cfg.min_depth, cfg.max_depth)
            feats = frontend.make_features(feature_set)
            pose, stats = lm_estimate(frontend, feats,
                                      self.state.keyframe.maps[level],
                                      pose, cfg)
            if stats.lost and level > 0:
                pose = init  # coarse level unusable; retry finer
        return pose, stats

    # -- health bookkeeping ----------------------------------------------

    def _set_health(self, health: str) -> None:
        state = self.state
        if health != state.health:
            get_registry().counter(
                "vo_tracking_transitions_total",
                "Tracking-health transitions").inc(
                    src=state.health, dst=health)
            state.health = health
        sync_health_gauge(health)

    def _mark_degraded(self, reasons) -> str:
        state = self.state
        state.degraded_streak += 1
        registry = get_registry()
        for reason in reasons:
            registry.counter(
                "vo_frames_degraded_total",
                "Frames degraded by divergence signal").inc(
                    reason=reason)
        lost = state.degraded_streak >= self.config.health_max_degraded
        self._set_health(LOST if lost else DEGRADED)
        return state.health

    def _mark_healthy(self) -> None:
        self.state.degraded_streak = 0
        self._set_health(OK)

    def _prev_world(self) -> Optional[SE3]:
        results = self.state.results
        return results[-1].pose if results else None

    def _predicted_world(self) -> SE3:
        """Constant-velocity prediction of this frame's world pose."""
        prev = self._prev_world()
        if prev is None:
            return SE3.identity()
        return prev @ self.state.last_delta

    # -- the frame pipeline ----------------------------------------------

    def process(self, gray: np.ndarray, depth: np.ndarray,
                timestamp: float = 0.0) -> FrameResult:
        """Track one RGB-D frame; returns its world pose estimate."""
        with obs_span("frame", category="frame",
                      frame_index=len(self.results)) as frame_span:
            result = self._process(gray, depth, timestamp, frame_span)
        registry = get_registry()
        registry.counter("vo_frames_total",
                         "Frames processed by the tracker").inc()
        if result.is_keyframe:
            registry.counter("vo_keyframe_insertions_total",
                             "Keyframes inserted by the tracker").inc()
        if result.lm is not None:
            registry.histogram(
                "vo_frame_features",
                "Features extracted per frame").observe(
                    result.num_features)
        return result

    def _finish(self, result: FrameResult, frame_span) -> FrameResult:
        frame_span.set_attr("is_keyframe", result.is_keyframe)
        frame_span.set_attr("health", result.health)
        if result.events:
            frame_span.set_attr("events", list(result.events))
        self.results.append(result)
        return result

    def _process(self, gray: np.ndarray, depth: np.ndarray,
                 timestamp: float, frame_span) -> FrameResult:
        cfg = self.config
        events: List[str] = []
        if cfg.validate_inputs:
            check = validate_frame(gray, depth)
            registry = get_registry()
            for event in check.events:
                kind, _, reason = event.partition(":")
                registry.counter(
                    "vo_frames_repaired_total" if kind == "repaired"
                    else "vo_frames_rejected_total",
                    "Input frames repaired/rejected by validation, "
                    "by reason").inc(reason=reason)
            if not check.ok:
                return self._rejected_input(timestamp, check.events,
                                            frame_span)
            gray, depth = check.gray, check.depth
            events.extend(check.events)

        pyramid = build_pyramid(gray, depth, cfg.pyramid_levels)
        edge_map = self._frontends[0].detect(pyramid[0][0])
        features = extract_features(edge_map, pyramid[0][1],
                                    cfg.max_features, cfg.min_depth,
                                    cfg.max_depth)

        if self.state.keyframe is None:
            self._make_keyframe(pyramid, SE3.identity(), edge_map)
            self._mark_healthy()
            result = FrameResult(pose=SE3.identity(), is_keyframe=True,
                                 lm=None, num_features=len(features),
                                 timestamp=timestamp, health=OK,
                                 events=tuple(events))
            return self._finish(result, frame_span)

        if self.state.health == LOST:
            return self._relocalize(pyramid, edge_map, features,
                                    timestamp, events, frame_span)

        # Initialize from the last relative pose.  At 30 fps the
        # inter-frame motion is a few millimetres, well inside the LM
        # convergence basin; constant-velocity extrapolation is riskier
        # (an overshoot near a motion reversal can land in a wrong DT
        # basin and corrupt the next keyframe).
        rel_pose, stats = self._estimate(pyramid, features,
                                         self.state.last_rel)
        pose_world = self.state.keyframe.pose_world @ rel_pose
        signals = divergence_signals(stats, self._prev_world(),
                                     pose_world, cfg)

        if signals == ("feature-collapse",) and not events:
            # The solver starved on an otherwise clean frame: hold the
            # pose and re-anchor (the pre-health-machine recovery, kept
            # bit-identical).  The health machine still records it.
            rel_pose = self.state.last_rel
            pose_world = self.state.keyframe.pose_world @ rel_pose
            self._make_keyframe(pyramid, pose_world, edge_map)
            health = self._mark_degraded(["feature-collapse"])
            result = FrameResult(pose=pose_world, is_keyframe=True,
                                 lm=stats, num_features=len(features),
                                 timestamp=timestamp, health=health,
                                 events=tuple(events) +
                                 ("signal:feature-collapse",
                                  "reanchored"))
            return self._finish(result, frame_span)

        if signals:
            # Untrustworthy solve (or solver starvation on a repaired
            # frame): discard it, coast on the motion model, and never
            # anchor a keyframe on suspect data.
            return self._motion_fallback(stats, len(features),
                                         timestamp, events, signals,
                                         frame_span)

        prev_world = self._prev_world()
        if prev_world is not None:
            self.state.last_delta = prev_world.inverse() @ pose_world
        self._mark_healthy()

        is_keyframe = self._needs_keyframe(rel_pose, stats,
                                           len(features))
        if is_keyframe:
            self._make_keyframe(pyramid, pose_world, edge_map)
        else:
            self.state.last_rel = rel_pose

        frame_span.set_attr("num_features", len(features))
        result = FrameResult(pose=pose_world, is_keyframe=is_keyframe,
                             lm=stats, num_features=len(features),
                             timestamp=timestamp, health=OK,
                             events=tuple(events))
        return self._finish(result, frame_span)

    # -- recovery policies -----------------------------------------------

    def _rejected_input(self, timestamp: float, events, frame_span
                        ) -> FrameResult:
        """The frame never reached a frontend: coast on the model."""
        pose_world = self._predicted_world()
        if self.state.keyframe is not None:
            self.state.last_rel = \
                self.state.keyframe.pose_world.inverse() @ pose_world
        health = self._mark_degraded(["rejected-input"])
        result = FrameResult(pose=pose_world, is_keyframe=False,
                             lm=None, num_features=0,
                             timestamp=timestamp, health=health,
                             events=tuple(events) +
                             ("fallback:motion-model",))
        return self._finish(result, frame_span)

    def _motion_fallback(self, stats, n_features: int, timestamp: float,
                         events, signals, frame_span) -> FrameResult:
        """Replace a diverged solve with the constant-velocity pose."""
        pose_world = self._predicted_world()
        self.state.last_rel = \
            self.state.keyframe.pose_world.inverse() @ pose_world
        health = self._mark_degraded(signals)
        result = FrameResult(pose=pose_world, is_keyframe=False,
                             lm=stats, num_features=n_features,
                             timestamp=timestamp, health=health,
                             events=tuple(events) +
                             tuple(f"signal:{s}" for s in signals) +
                             ("fallback:motion-model",))
        return self._finish(result, frame_span)

    def _relocalize(self, pyramid, edge_map, features, timestamp: float,
                    events, frame_span) -> FrameResult:
        """LOST: re-align against the recent keyframes, newest first.

        The newest candidate is tried with the last relative pose (the
        status-quo alignment); older ones with the held world pose
        mapped into their frame.  A candidate matches when its solve
        keeps enough features and lands under ``reloc_max_error``.
        Failing every candidate, the tracker re-anchors a fresh
        keyframe at the held pose -- tracking continues, permanently
        offset at worst, instead of dying.
        """
        cfg = self.config
        frontend = self._frontends[0]
        feats = frontend.make_features(features)
        held_world = self.state.keyframe.pose_world @ self.state.last_rel
        registry = get_registry()
        reloc_ctr = registry.counter(
            "vo_relocalizations_total",
            "Relocalization attempts while LOST, by outcome")

        candidates = list(reversed(self.state.recent_keyframes))
        for rank, kf in enumerate(candidates):
            init = self.state.last_rel if rank == 0 else \
                kf.pose_world.inverse() @ held_world
            pose, stats = lm_estimate(frontend, feats, kf.maps[0],
                                      init, cfg)
            if stats.lost or stats.final_error > cfg.reloc_max_error:
                continue
            reloc_ctr.inc(outcome="matched")
            self.state.keyframe = kf
            pose_world = kf.pose_world @ pose
            prev_world = self._prev_world()
            if prev_world is not None:
                self.state.last_delta = prev_world.inverse() @ pose_world
            self.state.degraded_streak = 0
            self._set_health(DEGRADED)  # one clean frame promotes to OK
            is_keyframe = self._needs_keyframe(pose, stats,
                                               len(features))
            if is_keyframe:
                self._make_keyframe(pyramid, pose_world, edge_map)
            else:
                self.state.last_rel = pose
            result = FrameResult(
                pose=pose_world, is_keyframe=is_keyframe, lm=stats,
                num_features=len(features), timestamp=timestamp,
                health=DEGRADED,
                events=tuple(events) + (f"relocalized:rank{rank}",))
            return self._finish(result, frame_span)

        # No candidate matched: re-anchor at the held pose and keep
        # going (the legacy lost recovery).
        reloc_ctr.inc(outcome="reanchored")
        self._make_keyframe(pyramid, held_world, edge_map)
        self.state.degraded_streak = 0
        self._set_health(DEGRADED)
        result = FrameResult(pose=held_world, is_keyframe=True,
                             lm=None, num_features=len(features),
                             timestamp=timestamp, health=DEGRADED,
                             events=tuple(events) +
                             ("reloc-failed", "reanchored"))
        return self._finish(result, frame_span)
