"""Frame-to-keyframe EBVO tracking with keyframe management.

Optionally tracks coarse-to-fine over an image pyramid
(``config.pyramid_levels > 1``): the relative pose is first estimated
at the coarsest level, then refined downward - the standard robustness
extension for motions larger than the DT convergence basin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.geometry.se3 import SE3, so3_log
from repro.obs.metrics import get_registry
from repro.obs.tracer import span as obs_span
from repro.vo.config import TrackerConfig
from repro.vo.features import extract_features
from repro.vo.frontend import FloatFrontend, KeyframeMaps
from repro.vo.lm import LMStats, lm_estimate
from repro.vo.pyramid import build_pyramid

__all__ = ["EBVOTracker", "FrameResult", "Keyframe", "TrackerState"]


@dataclass
class FrameResult:
    """Per-frame tracking output."""

    pose: SE3                 # camera-to-world
    is_keyframe: bool
    lm: Optional[LMStats]
    num_features: int
    timestamp: float = 0.0


@dataclass
class Keyframe:
    """The reference frame tracking aligns against."""

    pose_world: SE3           # keyframe camera-to-world
    maps: List[KeyframeMaps]  # one per pyramid level (0 = full res)


@dataclass
class TrackerState:
    """The mutable per-client state of one tracking stream.

    Everything a tracker accumulates while following one camera lives
    here -- the current keyframe, the last relative pose, and the
    per-frame results -- while :class:`EBVOTracker` itself holds only
    configuration and (stateless-per-frame) frontends.  The split lets
    one tracker serve many interleaved streams by swapping
    :attr:`EBVOTracker.state` between frames (see
    :mod:`repro.serve.session`); a state detached mid-stream and
    re-attached later resumes bit-identically.
    """

    keyframe: Optional[Keyframe] = None
    last_rel: SE3 = field(default_factory=SE3.identity)  # cur -> keyframe
    results: List[FrameResult] = field(default_factory=list)

    @property
    def trajectory(self) -> List[SE3]:
        """Estimated camera-to-world poses, one per processed frame."""
        return [r.pose for r in self.results]


# Back-compat alias for the former private name.
_Keyframe = Keyframe


class EBVOTracker:
    """The EBVO system of Fig. 1 with a pluggable arithmetic frontend.

    Usage::

        tracker = EBVOTracker(PIMFrontend(config), config)
        for gray, depth, ts in frames:
            result = tracker.process(gray, depth, ts)

    All mutable tracking state lives in :attr:`state` (a
    :class:`TrackerState`); replacing that attribute switches the
    tracker to another stream without rebuilding frontends or devices.
    """

    def __init__(self, frontend=None, config: Optional[TrackerConfig] = None):
        self.config = config or TrackerConfig()
        base = frontend or FloatFrontend(self.config)
        self.frontend = base
        self._frontends = [base]
        for level in range(1, self.config.pyramid_levels):
            self._frontends.append(
                type(base)(self.config.scaled_for_level(level)))
        self.state = TrackerState()

    @property
    def results(self) -> List[FrameResult]:
        """Per-frame results of the attached state."""
        return self.state.results

    @property
    def trajectory(self) -> List[SE3]:
        """Estimated camera-to-world poses, one per processed frame."""
        return self.state.trajectory

    def _make_keyframe(self, pyramid, pose_world: SE3,
                       edge_map_l0: np.ndarray) -> None:
        maps = [self._frontends[0].prepare_keyframe(edge_map_l0)]
        for level in range(1, min(len(self._frontends), len(pyramid))):
            frontend = self._frontends[level]
            edges = frontend.detect(pyramid[level][0])
            maps.append(frontend.prepare_keyframe(edges))
        self.state.keyframe = Keyframe(pose_world=pose_world, maps=maps)
        self.state.last_rel = SE3.identity()

    def _needs_keyframe(self, rel_pose: SE3, stats: LMStats,
                        n_features: int) -> bool:
        cfg = self.config
        t_dist = float(np.linalg.norm(rel_pose.t))
        r_dist = float(np.linalg.norm(so3_log(rel_pose.R)))
        if t_dist > cfg.keyframe_translation:
            return True
        if r_dist > cfg.keyframe_rotation:
            return True
        if n_features and stats.valid_features / max(n_features, 1) < \
                cfg.keyframe_min_valid:
            return True
        if stats.final_error > cfg.keyframe_max_error:
            return True
        return False

    def _estimate(self, pyramid, features_l0, init: SE3):
        """Coarse-to-fine pose estimation against the keyframe maps."""
        pose = init
        stats = None
        levels = min(len(self.state.keyframe.maps), len(pyramid))
        for level in reversed(range(levels)):
            frontend = self._frontends[level]
            cfg = frontend.config
            if level == 0:
                feature_set = features_l0
            else:
                edges = frontend.detect(pyramid[level][0])
                feature_set = extract_features(
                    edges, pyramid[level][1], cfg.max_features,
                    cfg.min_depth, cfg.max_depth)
            feats = frontend.make_features(feature_set)
            pose, stats = lm_estimate(frontend, feats,
                                      self.state.keyframe.maps[level],
                                      pose, cfg)
            if stats.lost and level > 0:
                pose = init  # coarse level unusable; retry finer
        return pose, stats

    def process(self, gray: np.ndarray, depth: np.ndarray,
                timestamp: float = 0.0) -> FrameResult:
        """Track one RGB-D frame; returns its world pose estimate."""
        with obs_span("frame", category="frame",
                      frame_index=len(self.results)) as frame_span:
            result = self._process(gray, depth, timestamp, frame_span)
        registry = get_registry()
        registry.counter("vo_frames_total",
                         "Frames processed by the tracker").inc()
        if result.is_keyframe:
            registry.counter("vo_keyframe_insertions_total",
                             "Keyframes inserted by the tracker").inc()
        if result.lm is not None:
            registry.histogram(
                "vo_frame_features",
                "Features extracted per frame").observe(
                    result.num_features)
        return result

    def _process(self, gray: np.ndarray, depth: np.ndarray,
                 timestamp: float, frame_span) -> FrameResult:
        cfg = self.config
        pyramid = build_pyramid(gray, depth, cfg.pyramid_levels)
        edge_map = self._frontends[0].detect(pyramid[0][0])
        features = extract_features(edge_map, pyramid[0][1],
                                    cfg.max_features, cfg.min_depth,
                                    cfg.max_depth)

        if self.state.keyframe is None:
            self._make_keyframe(pyramid, SE3.identity(), edge_map)
            frame_span.set_attr("is_keyframe", True)
            result = FrameResult(pose=SE3.identity(), is_keyframe=True,
                                 lm=None, num_features=len(features),
                                 timestamp=timestamp)
            self.results.append(result)
            return result

        # Initialize from the last relative pose.  At 30 fps the
        # inter-frame motion is a few millimetres, well inside the LM
        # convergence basin; constant-velocity extrapolation is riskier
        # (an overshoot near a motion reversal can land in a wrong DT
        # basin and corrupt the next keyframe).
        rel_pose, stats = self._estimate(pyramid, features,
                                         self.state.last_rel)
        if stats.lost:
            rel_pose = self.state.last_rel  # hold pose, re-anchor below
        pose_world = self.state.keyframe.pose_world @ rel_pose

        is_keyframe = stats.lost or self._needs_keyframe(
            rel_pose, stats, len(features))
        if is_keyframe:
            self._make_keyframe(pyramid, pose_world, edge_map)
        else:
            self.state.last_rel = rel_pose

        frame_span.set_attr("is_keyframe", is_keyframe)
        frame_span.set_attr("num_features", len(features))
        result = FrameResult(pose=pose_world, is_keyframe=is_keyframe,
                             lm=stats, num_features=len(features),
                             timestamp=timestamp)
        self.results.append(result)
        return result
