"""Levenberg-Marquardt pose estimation (paper Fig. 1-c).

Minimizes the mean squared DT residual over the relative pose.  The
damping multiplies ``diag(H)`` (Fletcher's variant) rather than the
identity, which keeps the step well-scaled against the large dynamic
range between translational and rotational Hessian blocks; the paper's
``(H + lambda I)`` is recovered with ``scale_free_damping=True``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.geometry.se3 import SE3, se3_exp
from repro.obs.metrics import get_registry
from repro.obs.tracer import span as obs_span
from repro.vo.config import TrackerConfig

__all__ = ["LMStats", "lm_estimate"]


@dataclass
class LMStats:
    """Diagnostics of one LM run."""

    iterations: int = 0
    converged: bool = False
    lost: bool = False
    initial_error: float = np.inf
    final_error: float = np.inf
    valid_features: int = 0
    errors: List[float] = field(default_factory=list)
    #: Damping escalations (rejected trial steps) across the solve --
    #: a cheap conditioning signal: healthy solves reject a handful,
    #: a solve fighting corrupted residuals rejects most attempts.
    rejected_steps: int = 0

    @property
    def outcome(self) -> str:
        """``"lost"``, ``"converged"`` or ``"maxiter"``."""
        if self.lost:
            return "lost"
        return "converged" if self.converged else "maxiter"


def _solve_step(h: np.ndarray, b: np.ndarray, lam: float,
                scale_free: bool) -> np.ndarray:
    damping = lam * (np.eye(6) if scale_free
                     else np.diag(np.maximum(np.diagonal(h), 1e-6)))
    try:
        return np.linalg.solve(h + damping, -b)
    except np.linalg.LinAlgError:
        return np.zeros(6)


def lm_estimate(frontend, feats, maps, init_pose: SE3,
                config: TrackerConfig,
                scale_free_damping: bool = False) -> tuple:
    """Estimate the relative pose by LM over the DT residual.

    Args:
        frontend: Object with ``linearize(feats, pose, maps)`` and
            ``error(feats, pose, maps)``.
        feats: Frontend-specific feature representation.
        maps: Keyframe lookup maps.
        init_pose: Initial relative pose (current -> keyframe).
        config: Tracker configuration (iteration caps, thresholds).
        scale_free_damping: Use ``lambda I`` (the paper's formula)
            instead of ``lambda diag(H)``.

    Returns:
        ``(pose, stats)``.
    """
    with obs_span("lm_solve", category="vo") as lm_span:
        pose, stats = _lm_loop(frontend, feats, maps, init_pose, config,
                               scale_free_damping)
        lm_span.set_attr("iterations", stats.iterations)
        lm_span.set_attr("converged", stats.converged)
        lm_span.set_attr("lost", stats.lost)
    registry = get_registry()
    registry.histogram(
        "lm_iterations", "LM iterations per solve").observe(
            stats.iterations)
    registry.counter(
        "lm_solves_total",
        "LM solves by outcome").inc(outcome=stats.outcome)
    return pose, stats


def _lm_loop(frontend, feats, maps, init_pose: SE3,
             config: TrackerConfig, scale_free_damping: bool) -> tuple:
    pose = init_pose
    lam = config.lm_lambda_init
    stats = LMStats()
    err, n = frontend.error(feats, pose, maps)
    stats.initial_error = err
    stats.final_error = err
    stats.valid_features = n
    if n < config.min_features:
        stats.lost = True
        return pose, stats

    for _ in range(config.lm_max_iterations):
        h, b, err, n = frontend.linearize(feats, pose, maps)
        if n < config.min_features:
            stats.lost = True
            break
        stats.iterations += 1
        stats.errors.append(err)
        accepted = False
        for _attempt in range(6):
            delta = _solve_step(h, b, lam, scale_free_damping)
            candidate = se3_exp(delta) @ pose
            new_err, new_n = frontend.error(feats, candidate, maps)
            if new_n >= config.min_features and new_err < err:
                pose = candidate
                lam = max(lam * 0.5, 1e-9)
                accepted = True
                stats.final_error = new_err
                stats.valid_features = new_n
                break
            lam = min(lam * 4.0, 1e6)
            stats.rejected_steps += 1
        if not accepted:
            stats.converged = True
            break
        if float(np.linalg.norm(delta)) < config.lm_min_delta:
            stats.converged = True
            break
    if not stats.errors:
        stats.final_error = err
    return pose, stats
