"""The edge-based visual odometry system (paper Fig. 1).

Frame-to-keyframe tracking: edges detected per frame anchor 3D features
(via the depth map); the per-frame pose is estimated by aligning the
warped features against the keyframe's edge distance transform with a
Levenberg-Marquardt solver.

Two interchangeable frontends carry the arithmetic:

* :class:`~repro.vo.frontend.FloatFrontend` -- double-precision
  pipeline (the PicoVO-on-MCU stand-in for Table 1).
* :class:`~repro.vo.frontend.PIMFrontend` -- fully quantized pipeline
  with exact PIM arithmetic (Q4.12 features, Q1.15 poses, Q14.2
  Jacobians, Q29.3 Hessian).
"""

from repro.vo.config import TrackerConfig
from repro.vo.features import FeatureSet, extract_features
from repro.vo.frontend import FloatFrontend, KeyframeMaps, PIMFrontend
from repro.vo.health import (
    DEGRADED,
    LOST,
    OK,
    CorruptFrameError,
    FrameCheck,
    divergence_signals,
    validate_frame,
)
from repro.vo.lm import LMStats, lm_estimate
from repro.vo.posegraph import PoseGraph, PoseGraphEdge
from repro.vo.tracker import (
    EBVOTracker,
    FrameResult,
    Keyframe,
    TrackerState,
)

__all__ = [
    "TrackerConfig",
    "FeatureSet",
    "extract_features",
    "OK",
    "DEGRADED",
    "LOST",
    "CorruptFrameError",
    "FrameCheck",
    "validate_frame",
    "divergence_signals",
    "FloatFrontend",
    "PIMFrontend",
    "KeyframeMaps",
    "LMStats",
    "lm_estimate",
    "PoseGraph",
    "PoseGraphEdge",
    "EBVOTracker",
    "FrameResult",
    "Keyframe",
    "TrackerState",
]
