"""Tracker configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.geometry.camera import CameraIntrinsics, TUM_QVGA

__all__ = ["TrackerConfig"]


@dataclass
class TrackerConfig:
    """Parameters of the EBVO tracker.

    Attributes:
        camera: Pinhole intrinsics of the input frames.
        th1: Edge-strength threshold of the NMS stage.
        th2: Local-maximum margin of the NMS stage.
        max_features: Feature budget per frame (the paper tracks
            3000~6000 at QVGA).
        min_depth / max_depth: Valid depth range for features (metres);
            the minimum also keeps inverse depth inside Q4.12.
        residual_clamp: Residual lookups are clamped to this many
            pixels - a crude robustifier applied identically in both
            frontends.
        huber_delta: Optional Huber threshold (pixels) for the float
            frontend's iteratively-reweighted least squares; ``None``
            (default) keeps plain least squares for comparability with
            the PIM frontend, whose hardware-friendly robustifier is
            the residual clamp.
        pim_bilinear_residual: Use the quarter-pixel integer bilinear
            DT lookup in the PIM frontend (4 reads, 2-bit weights)
            instead of nearest-pixel (1 read).  Off by default: the
            lookup ablation shows nearest is cheaper *and* at least as
            accurate at QVGA (the smoothed residual pairs
            inconsistently with the nearest-sampled gradient maps);
            bilinear only pays off at coarser resolutions.
        lm_max_iterations: LM iteration cap (the paper converges in
            ~8.1 iterations on average).
        lm_lambda_init: Initial damping (scaled by diag(H)).
        lm_min_delta: Twist-norm convergence threshold.
        keyframe_translation / keyframe_rotation: Relative-pose
            distances (m / rad) that trigger a new keyframe, keeping
            pose entries inside Q1.15.
        keyframe_min_valid: Valid-warp ratio under which a new keyframe
            is forced.
        keyframe_max_error: Mean squared residual (px^2) above which a
            new keyframe is forced - alignment quality degrades with
            viewpoint change (occlusion edges) before the pose-distance
            triggers fire.
        min_features: Below this many features, tracking is declared
            lost for the frame.
        pyramid_levels: Coarse-to-fine levels (1 = the paper's single
            QVGA level; more levels extend the convergence basin for
            fast motion).
        pim_device_detect: Run the PIM frontend's edge detection
            through the simulated device with compiled-program replay
            (bit-identical to the default vectorized path, and it
            fills a per-frame cycle ledger).  Off by default: the
            numpy mirror is faster when no device accounting is
            wanted.
        validate_inputs: Reject/repair corrupted gray/depth frames
            (:func:`repro.vo.health.validate_frame`) before they reach
            the frontends.  Clean frames pass through untouched, so
            this costs one finiteness scan and never changes fault-free
            output.
        health_max_error: Mean squared residual (px^2) above which a
            solve is declared diverged -- far above the ~5 px^2
            keyframe re-anchor trigger, so it only fires on garbage.
        health_max_translation / health_max_rotation: Frame-to-frame
            motion bounds (m / rad) of the pose-jump sanity check;
            clean 30 fps motion is millimetres, so these catch only
            solver blow-ups.
        health_max_degraded: Consecutive degraded frames before the
            tracker declares itself LOST and tries relocalization.
        reloc_keyframes: How many recent keyframes to retain as
            relocalization candidates when LOST.
        reloc_max_error: Mean squared residual (px^2) under which a
            relocalization attempt counts as a match.
    """

    camera: CameraIntrinsics = field(default_factory=lambda: TUM_QVGA)
    th1: int = 40
    th2: int = 2
    max_features: int = 6000
    min_depth: float = 0.2
    max_depth: float = 10.0
    residual_clamp: float = 32.0
    huber_delta: Optional[float] = None
    pim_bilinear_residual: bool = False
    lm_max_iterations: int = 10
    lm_lambda_init: float = 1e-4
    lm_min_delta: float = 1e-6
    keyframe_translation: float = 0.20
    keyframe_rotation: float = 0.18
    keyframe_min_valid: float = 0.60
    keyframe_max_error: float = 5.0
    min_features: int = 60
    pyramid_levels: int = 1
    pim_device_detect: bool = False
    validate_inputs: bool = True
    health_max_error: float = 75.0
    health_max_translation: float = 0.30
    health_max_rotation: float = 0.30
    health_max_degraded: int = 3
    reloc_keyframes: int = 3
    reloc_max_error: float = 8.0

    def scaled_for_level(self, level: int) -> "TrackerConfig":
        """Configuration for pyramid level ``level`` (half-res each)."""
        import dataclasses
        factor = 0.5 ** level
        return dataclasses.replace(
            self,
            camera=self.camera.scaled(factor),
            max_features=max(self.max_features // (4 ** level), 200),
            min_features=max(self.min_features // (2 ** level), 20))
