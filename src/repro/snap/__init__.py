"""Deterministic whole-service snapshots, migration, and record/replay.

The PIM-SRAM VO pipeline is fixed-point and fully deterministic, so the
*entire* service state -- device SRAM contents, tracker state, session
table, scheduler queue -- is snapshottable and bit-exactly restorable,
the property large simulator deployments build their operational
tooling on.  This package turns that property into three tools:

* :mod:`repro.snap.codec` -- the versioned snapshot format
  (``repro.snap/1``): a tagged canonical encoding of numpy arrays,
  poses, and whitelisted dataclasses with a per-section content-hash
  manifest, atomic on-disk serialization, and strict integrity
  verification on load (a corrupt or truncated snapshot is rejected
  before anything is restored).
* :mod:`repro.snap.state` -- snapshot/restore of each state-bearing
  component (:class:`~repro.pim.device.PIMDevice` SRAM + registers,
  :class:`~repro.vo.tracker.TrackerState`, the session table, the
  scheduler queue, circuit breakers, metrics watermarks) and of a
  whole :class:`~repro.serve.service.VOService`; restore asserts
  bit-exactness by construction (re-snapshot equals the input hash).
* :mod:`repro.snap.capture` -- the record/replay path: a per-session
  inbound-frame + seed capture ring that dumps replayable incident
  bundles (wired into the flight recorder's breaker-open path), and
  an offline replayer that re-executes an incident to the exact
  faulting frame under the tracer.

``python -m repro.snap replay <bundle>`` is the operator entry point.
"""

from repro.snap.codec import (
    SNAP_SCHEMA,
    SnapshotError,
    content_hash,
    decode,
    encode,
    load_snapshot,
    make_snapshot,
    verify_snapshot,
    write_snapshot,
)
from repro.snap.capture import CaptureRing, ReplayReport, replay_bundle
from repro.snap.state import (
    restore_service,
    restore_session_record,
    restore_tracker_state,
    snapshot_service,
    snapshot_tracker_state,
)

__all__ = [
    "SNAP_SCHEMA",
    "SnapshotError",
    "CaptureRing",
    "ReplayReport",
    "content_hash",
    "decode",
    "encode",
    "load_snapshot",
    "make_snapshot",
    "replay_bundle",
    "restore_service",
    "restore_session_record",
    "restore_tracker_state",
    "snapshot_service",
    "snapshot_tracker_state",
    "verify_snapshot",
    "write_snapshot",
]
