"""The versioned snapshot format: canonical encoding + content hashes.

Snapshots must satisfy three contracts the rest of the package builds
on:

* **Bit-exact round trip** -- ``decode(encode(x))`` reproduces every
  numpy array byte-for-byte (dtype, shape, contents) and every scalar
  exactly.  Floats ride through JSON via ``repr`` round-tripping
  (exact for every finite double) and non-finite values use JSON's
  ``Infinity``/``NaN`` extension, which the stdlib parser accepts.
* **Canonical bytes** -- one logical state has one serialization:
  ``canonical_bytes`` sorts keys and strips whitespace, so equal
  states hash equal and differing states hash different.  That makes
  the content hash a *state identity*, which is what lets restore
  assert bit-exactness by construction (re-snapshot, compare hashes).
* **No partial restore** -- :func:`load_snapshot` verifies the schema,
  every per-section hash, and the manifest's content hash *before*
  returning; a corrupt or truncated snapshot raises
  :class:`SnapshotError` and nothing downstream ever sees it.

The encoding is a tagged JSON dialect (``{"__snap__": kind, ...}``)
over a *whitelist* of types: numpy arrays, SE3 poses, tuples, bytes,
``Counter`` objects with OpKind-bearing keys, and the registered
dataclasses of the tracker/serving layers.  Arbitrary objects are
rejected at encode time -- an explicit format beats pickle because a
snapshot outlives the process that wrote it.
"""

from __future__ import annotations

import base64
import dataclasses
import hashlib
import json
import os
import tempfile
from collections import Counter
from pathlib import Path
from typing import Any, Dict, Optional

import numpy as np

from repro.obs.stamp import run_stamp

__all__ = [
    "SNAP_SCHEMA",
    "SnapshotError",
    "canonical_bytes",
    "content_hash",
    "decode",
    "encode",
    "load_snapshot",
    "make_snapshot",
    "register_dataclass",
    "write_snapshot",
]

#: Snapshot schema identifier (bump on incompatible change).  Policy:
#: a loader accepts exactly the schemas it names; there is no silent
#: best-effort parse of newer or older formats (see docs/snapshots.md).
SNAP_SCHEMA = "repro.snap/1"

_TAG = "__snap__"


class SnapshotError(ValueError):
    """A snapshot failed validation (corrupt, truncated, or foreign).

    Raised *before* any state is mutated: loading and restoring are
    two phases, and every integrity check lives in the first.
    """


# -- dataclass whitelist --------------------------------------------------

#: name -> class for dataclasses allowed in snapshots.  Populated by
#: :func:`register_dataclass` and by :func:`_builtin_registry` on first
#: use (lazy, to keep this module import-light).
_DATACLASSES: Dict[str, type] = {}
_BUILTINS_LOADED = False


def register_dataclass(cls: type, name: Optional[str] = None) -> type:
    """Whitelist a dataclass for snapshot encoding; returns ``cls``."""
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"{cls!r} is not a dataclass")
    _DATACLASSES[name or cls.__name__] = cls
    return cls


def _load_builtins() -> None:
    """Register the tracker/serving dataclasses (idempotent, lazy)."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    from repro.geometry.camera import CameraIntrinsics
    from repro.geometry.se3 import SE3
    from repro.pim.config import PIMConfig
    from repro.pim.cost import CostLedger
    from repro.vo.config import TrackerConfig
    from repro.vo.frontend import KeyframeMaps
    from repro.vo.lm import LMStats
    from repro.vo.tracker import FrameResult, Keyframe, TrackerState
    for cls in (CameraIntrinsics, SE3, PIMConfig, CostLedger,
                TrackerConfig, KeyframeMaps, LMStats, FrameResult,
                Keyframe, TrackerState):
        register_dataclass(cls)


def _dataclass_name(obj) -> Optional[str]:
    _load_builtins()
    for name, cls in _DATACLASSES.items():
        if type(obj) is cls:
            return name
    return None


# -- encode / decode ------------------------------------------------------

def _b64(raw: bytes) -> str:
    return base64.b64encode(raw).decode("ascii")


def _unb64(text: str) -> bytes:
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except Exception as exc:
        raise SnapshotError(f"invalid base64 payload: {exc}") from exc


def encode(obj: Any) -> Any:
    """Encode a whitelisted object graph into JSON-safe structures."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj
    if isinstance(obj, np.generic):
        # A 0-d scalar keeps its dtype through the array encoding, so
        # e.g. an np.int64 count round-trips as np.int64, not int.
        return encode(np.asarray(obj))
    if isinstance(obj, np.ndarray):
        # ascontiguousarray promotes 0-d to 1-d, so keep the original
        # shape: a scalar array must round-trip as a scalar array.
        arr = np.ascontiguousarray(obj)
        return {_TAG: "nd", "dtype": arr.dtype.str,
                "shape": list(obj.shape), "data": _b64(arr.tobytes())}
    if isinstance(obj, bytes):
        return {_TAG: "bytes", "data": _b64(obj)}
    if isinstance(obj, tuple):
        return {_TAG: "tuple", "items": [encode(v) for v in obj]}
    if isinstance(obj, list):
        return [encode(v) for v in obj]
    if isinstance(obj, Counter):
        # Counter keys may be OpKind enums or (OpKind, ...) tuples;
        # store as an ordered pair list so keys stay structured.
        return {_TAG: "counter",
                "items": [[encode(_encode_key(k)), int(v)]
                          for k, v in sorted(
                              obj.items(), key=lambda kv: repr(kv[0]))]}
    if isinstance(obj, dict):
        bad = [k for k in obj if not isinstance(k, str)]
        if bad:
            raise SnapshotError(
                f"dict keys must be strings, got {bad[:3]!r}")
        if _TAG in obj:
            raise SnapshotError(f"dict key {_TAG!r} is reserved")
        return {k: encode(v) for k, v in obj.items()}
    name = _dataclass_name(obj)
    if name is not None:
        fields = {f.name: encode(getattr(obj, f.name))
                  for f in dataclasses.fields(obj)}
        return {_TAG: "dc", "type": name, "fields": fields}
    from repro.pim.isa import OpKind
    if isinstance(obj, OpKind):
        return {_TAG: "opkind", "name": obj.name}
    raise SnapshotError(
        f"cannot snapshot object of type {type(obj).__name__}; "
        f"register it or encode it explicitly")


def _encode_key(key: Any) -> Any:
    """Counter keys: enums, strings, ints, or tuples thereof."""
    return key


def decode(obj: Any) -> Any:
    """Inverse of :func:`encode`; raises :class:`SnapshotError`."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, list):
        return [decode(v) for v in obj]
    if not isinstance(obj, dict):
        raise SnapshotError(f"unexpected node {type(obj).__name__}")
    kind = obj.get(_TAG)
    if kind is None:
        return {k: decode(v) for k, v in obj.items()}
    if kind == "nd":
        try:
            dtype = np.dtype(obj["dtype"])
            shape = tuple(int(s) for s in obj["shape"])
            raw = _unb64(obj["data"])
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(f"malformed array node: {exc}") from exc
        expect = dtype.itemsize * int(np.prod(shape, dtype=np.int64)) \
            if shape else dtype.itemsize
        if len(raw) != expect:
            raise SnapshotError(
                f"array payload is {len(raw)} bytes, expected "
                f"{expect} for dtype {dtype} shape {shape}")
        return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
    if kind == "bytes":
        return _unb64(obj["data"])
    if kind == "tuple":
        return tuple(decode(v) for v in obj["items"])
    if kind == "counter":
        counter: Counter = Counter()
        for key, value in obj["items"]:
            counter[decode(key)] = int(value)
        return counter
    if kind == "opkind":
        from repro.pim.isa import OpKind
        try:
            return OpKind[obj["name"]]
        except KeyError as exc:
            raise SnapshotError(
                f"unknown OpKind {obj.get('name')!r}") from exc
    if kind == "dc":
        _load_builtins()
        cls = _DATACLASSES.get(obj.get("type"))
        if cls is None:
            raise SnapshotError(
                f"unknown dataclass {obj.get('type')!r} in snapshot")
        fields = {k: decode(v) for k, v in obj["fields"].items()}
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(fields) - known
        if unknown:
            raise SnapshotError(
                f"{obj['type']} snapshot carries unknown fields "
                f"{sorted(unknown)}; likely a newer format")
        return cls(**fields)
    raise SnapshotError(f"unknown node kind {kind!r}")


# -- hashing and the manifest ---------------------------------------------

def canonical_bytes(obj: Any) -> bytes:
    """One logical value, one byte string (sorted keys, no spaces)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      allow_nan=True).encode("utf-8")


def content_hash(obj: Any) -> str:
    """sha256 hex digest of the canonical encoding of ``obj``."""
    return hashlib.sha256(canonical_bytes(obj)).hexdigest()


def make_snapshot(kind: str, sections: Dict[str, Any],
                  **context) -> dict:
    """Assemble a snapshot document with its content-hash manifest.

    ``sections`` maps section names to *already encoded* JSON-safe
    values (use :func:`encode`).  The manifest hashes each section
    individually and then hashes ``{schema, kind, section_hashes}``
    into the overall ``content_hash`` -- the stamp and ``context``
    are provenance, deliberately outside the hash, so two snapshots of
    the same state taken at different times hash identically.
    """
    section_hashes = {name: content_hash(payload)
                      for name, payload in sections.items()}
    overall = content_hash({"schema": SNAP_SCHEMA, "kind": kind,
                            "sections": section_hashes})
    return {
        "schema": SNAP_SCHEMA,
        "kind": kind,
        "stamp": run_stamp(),
        "context": context,
        "manifest": {"sections": section_hashes,
                     "content_hash": overall},
        "sections": sections,
    }


def verify_snapshot(snap: Any, kind: Optional[str] = None) -> dict:
    """Validate structure + every hash; returns ``snap``.

    Raises :class:`SnapshotError` on any mismatch.  This is the whole
    corrupt/truncated-bundle defence: nothing is decoded or restored
    until the document's bytes hash to what its manifest claims.
    """
    if not isinstance(snap, dict):
        raise SnapshotError("snapshot is not a JSON object")
    if snap.get("schema") != SNAP_SCHEMA:
        raise SnapshotError(
            f"unsupported snapshot schema {snap.get('schema')!r} "
            f"(this build reads {SNAP_SCHEMA!r})")
    if kind is not None and snap.get("kind") != kind:
        raise SnapshotError(
            f"snapshot kind {snap.get('kind')!r} where {kind!r} "
            f"was required")
    manifest = snap.get("manifest")
    sections = snap.get("sections")
    if not isinstance(manifest, dict) or not isinstance(sections, dict):
        raise SnapshotError("snapshot is missing manifest or sections")
    claimed = manifest.get("sections")
    if not isinstance(claimed, dict) or \
            set(claimed) != set(sections):
        raise SnapshotError("manifest does not cover the sections")
    for name, payload in sections.items():
        actual = content_hash(payload)
        if actual != claimed[name]:
            raise SnapshotError(
                f"section {name!r} hash mismatch: snapshot is corrupt "
                f"({actual[:12]} != {str(claimed[name])[:12]})")
    overall = content_hash({"schema": snap["schema"],
                            "kind": snap.get("kind"),
                            "sections": claimed})
    if overall != manifest.get("content_hash"):
        raise SnapshotError("manifest content hash mismatch")
    return snap


def write_snapshot(path, snap: dict) -> Path:
    """Atomically serialize a snapshot document to ``path``.

    Written to a temp file in the destination directory, flushed,
    fsynced, then renamed into place -- a reader can never observe a
    half-written snapshot, and a crash mid-write leaves the previous
    file (if any) intact.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(snap, sort_keys=True, indent=1,
                         allow_nan=True) + "\n"
    fd, tmp = tempfile.mkstemp(dir=path.parent,
                               prefix=path.name + ".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_snapshot(path, kind: Optional[str] = None) -> dict:
    """Read and fully verify a snapshot file.

    Raises :class:`SnapshotError` (with the path in the message) on a
    missing, truncated, corrupt, or foreign-schema file; no partial
    result ever escapes.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") \
            from exc
    try:
        snap = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SnapshotError(
            f"snapshot {path} is not valid JSON (truncated?): "
            f"{exc}") from exc
    try:
        return verify_snapshot(snap, kind=kind)
    except SnapshotError as exc:
        raise SnapshotError(f"snapshot {path}: {exc}") from exc
