"""Record/replay: per-session inbound-frame capture + offline replay.

The serving stack is deterministic: a session's trajectory is a pure
function of its inbound frame stream (PR 3's solo bit-identity gate is
exactly that statement).  So an *incident* -- a breaker trip, an
unrecovered chaos session, a mysterious trajectory -- is fully
reproducible offline from nothing but the frames the service received.

:class:`CaptureRing` is the always-on recorder: a bounded per-session
ring of ``(gray, depth, timestamp)`` inbound frames paired with the
live outcome of each (pose, health, events, device cycles, span
count).  :meth:`CaptureRing.bundle` freezes the rings into a
``repro.snap/1`` document (kind ``capture``); the ring also registers
as a flight-recorder dump hook, so every breaker-open incident bundle
gains a ``*_replay.json`` sibling that re-executes.

:func:`replay_bundle` is the offline side: it rebuilds a solo
:class:`~repro.vo.tracker.EBVOTracker` from the captured
configuration, re-feeds the frames in order -- under the tracer, when
tracing is enabled -- and compares every frame bit-exactly against the
live outcomes: poses (exact array equality), per-frame device-cycle
ledger deltas, health/events, and kernel span counts.  Replay walks
each stream **to the exact faulting frame**: a frame the live run
failed terminally ends that stream's replay (the live service restored
the session from its checkpoint there, so later live frames are not a
pure function of the inbound stream alone).

Two limitations are explicit rather than silent: a stream whose ring
overflowed (``dropped > 0``) is not replayable from its start and is
reported as such, and a live failure caused by *device-level* fault
injection (as opposed to corrupt inbound frames, which replay exactly)
will not reproduce on the clean offline device -- the report marks the
faulting frame ``reproduced: false`` instead of pretending.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.snap.codec import (
    decode,
    encode,
    load_snapshot,
    make_snapshot,
    verify_snapshot,
    write_snapshot,
)

__all__ = ["CaptureRing", "ReplayReport", "replay_bundle",
           "CAPTURE_KIND"]

#: ``kind`` field of capture-bundle documents.
CAPTURE_KIND = "capture"

#: Span categories that belong to the serving plane, not the compute
#: path; excluded from the per-frame span counts so live and replay
#: counts are comparable.
_SERVE_CATEGORIES = ("serve", "replay")


def _compute_span_count(tracer, trace_id: int) -> Optional[int]:
    """Frame/kernel spans of one trace (None when untraced)."""
    if not trace_id:
        return None
    return sum(1 for s in tracer.spans_for_trace(trace_id)
               if s.category not in _SERVE_CATEGORIES)


class CaptureRing:
    """Bounded per-session ring of inbound frames + live outcomes.

    ``capacity`` bounds the frames kept *per session*; overflow drops
    the oldest (counted -- a truncated stream is flagged not fully
    replayable).  Recording copies the inbound arrays, so the ring
    never aliases caller buffers.
    """

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._streams: Dict[str, deque] = {}
        self._dropped: Dict[str, int] = {}
        #: Highest sequence number pruned per session (see
        #: :meth:`prune`): pruned frames were covered by a checkpoint,
        #: so unlike ``dropped`` they do not hurt replayability from
        #: that checkpoint onward.
        self._pruned: Dict[str, int] = {}
        self._frontend: Optional[str] = None
        self._config = None
        self.seeds = None

    def bind(self, frontend: str, config) -> None:
        """Attach the service configuration bundles will embed."""
        self._frontend = frontend
        self._config = config

    # -- recording -------------------------------------------------------

    def record(self, session: str, seq: int, gray, depth,
               timestamp: float, outcome: dict) -> None:
        """Append one completed frame and its live outcome."""
        record = {
            "seq": int(seq),
            "timestamp": float(timestamp),
            "gray": np.array(gray, copy=True),
            "depth": np.array(depth, copy=True),
            "outcome": outcome,
        }
        with self._lock:
            stream = self._streams.get(session)
            if stream is None:
                stream = deque(maxlen=self.capacity)
                self._streams[session] = stream
                self._dropped[session] = 0
            if len(stream) == stream.maxlen:
                self._dropped[session] += 1
            stream.append(record)

    @staticmethod
    def ok_outcome(result, span_count: Optional[int] = None) -> dict:
        """Live outcome of a successful frame (a ``TrackResult``)."""
        return {
            "kind": "ok",
            "pose": result.pose,
            "frame_index": int(result.frame_index),
            "is_keyframe": bool(result.is_keyframe),
            "health": result.health,
            "events": list(result.events),
            "device_cycles": int(result.device_cycles),
            "lm_iterations": int(result.lm_iterations),
            "num_features": int(result.num_features),
            "retries": int(result.retries),
            "span_count": span_count,
        }

    @staticmethod
    def error_outcome(exc: BaseException) -> dict:
        """Live outcome of a terminally failed frame."""
        return {
            "kind": "error",
            "error": type(exc).__name__,
            "message": str(exc),
        }

    # -- failover tails --------------------------------------------------

    def tail(self, session: str, after_seq: int) -> List[dict]:
        """Recorded frames of ``session`` with ``seq > after_seq``.

        The shard router's failover path reads this: everything the
        session completed after its last checkpoint watermark, in
        recording order, each entry a copy-safe reference to the
        stored record (callers must not mutate the arrays).  Unknown
        sessions yield an empty tail.
        """
        with self._lock:
            stream = self._streams.get(session)
            if stream is None:
                return []
            return [rec for rec in stream
                    if rec["seq"] > int(after_seq)]

    def prune(self, session: str, upto_seq: int) -> int:
        """Drop frames with ``seq <= upto_seq`` (checkpoint covered).

        Bounds the ring's memory between checkpoints without charging
        the ``dropped`` counter -- a pruned prefix is recoverable from
        the checkpoint, an overflow-dropped one is not.  Returns the
        number of frames pruned.
        """
        upto_seq = int(upto_seq)
        with self._lock:
            stream = self._streams.get(session)
            if stream is None:
                return 0
            kept = [rec for rec in stream if rec["seq"] > upto_seq]
            pruned = len(stream) - len(kept)
            if pruned:
                stream.clear()
                stream.extend(kept)
                self._pruned[session] = max(
                    self._pruned.get(session, 0), upto_seq)
            return pruned

    def pruned_watermark(self, session: str) -> int:
        """Highest sequence number pruned for ``session`` (0 if none)."""
        with self._lock:
            return self._pruned.get(session, 0)

    # -- bundles ---------------------------------------------------------

    def sessions(self) -> List[str]:
        with self._lock:
            return sorted(self._streams)

    def stats(self) -> dict:
        with self._lock:
            return {
                "sessions": len(self._streams),
                "capacity": self.capacity,
                "frames": sum(len(s) for s in self._streams.values()),
                "dropped": dict(self._dropped),
                "pruned": dict(self._pruned),
            }

    def bundle(self, sessions: Optional[List[str]] = None,
               reason: str = "", **context) -> dict:
        """Freeze the rings into a verifiable replay bundle."""
        with self._lock:
            picked = sorted(self._streams) if sessions is None \
                else [s for s in sessions if s in self._streams]
            streams = []
            for sid in picked:
                streams.append({
                    "session": sid,
                    "dropped": int(self._dropped.get(sid, 0)),
                    "frames": [encode(rec)
                               for rec in self._streams[sid]],
                })
            frontend = self._frontend
            config = self._config
            seeds = self.seeds
        sections = {
            "meta": {
                "frontend": frontend,
                "config": encode(config),
                "capacity": self.capacity,
                "complete": all(s["dropped"] == 0 for s in streams),
            },
            "streams": streams,
            "rng": {"seeds": encode(seeds)},
        }
        return make_snapshot(CAPTURE_KIND, sections, reason=reason,
                             **context)

    def dump(self, path, sessions: Optional[List[str]] = None,
             reason: str = "", **context) -> Path:
        """Atomically write :meth:`bundle` to ``path``."""
        return write_snapshot(
            path, self.bundle(sessions, reason=reason, **context))

    def dump_hook(self, path, reason: str,
                  context: dict) -> Optional[Path]:
        """Flight-recorder dump hook: co-dump a replay bundle.

        Registered via ``FlightRecorder.attach_dump_hook``; every
        incident bundle the recorder writes gains a replayable
        ``<name>_replay.json`` sibling.
        """
        path = Path(path)
        sibling = path.with_name(path.stem + "_replay.json")
        return self.dump(sibling, reason=reason, **context)

    def reset(self) -> None:
        with self._lock:
            self._streams.clear()
            self._dropped.clear()
            self._pruned.clear()


# -- offline replay -------------------------------------------------------

@dataclass
class ReplayReport:
    """Outcome of replaying one capture bundle offline.

    ``ok`` is True when every replayed OK frame matched the live run
    bit-exactly (pose arrays, health, events, keyframe decisions,
    device-cycle deltas, and span counts where both sides were
    traced).  Faulting frames and truncated streams are reported in
    ``faults`` / ``sessions`` rather than folded into ``ok``.
    """

    ok: bool
    frames_replayed: int
    frames_recorded: int
    recorded_device_cycles: int
    replayed_device_cycles: int
    sessions: List[dict] = field(default_factory=list)
    mismatches: List[dict] = field(default_factory=list)
    #: Terminal live failures, with whether replay reproduced an
    #: error at the same frame.
    faults: List[dict] = field(default_factory=list)

    def summary(self) -> str:
        lines = [
            f"replayed {self.frames_replayed}/{self.frames_recorded} "
            f"frames across {len(self.sessions)} sessions: "
            f"{'BIT-EXACT' if self.ok else 'MISMATCH'}",
            f"device cycles: recorded {self.recorded_device_cycles} "
            f"replayed {self.replayed_device_cycles}",
        ]
        for miss in self.mismatches[:10]:
            lines.append(
                f"  mismatch {miss['session']}[{miss['index']}]: "
                f"{miss['field']}")
        for fault in self.faults:
            lines.append(
                f"  fault {fault['session']}[{fault['index']}]: "
                f"{fault['error']} "
                f"(reproduced: {fault['reproduced']})")
        return "\n".join(lines)


def _frame_cycles(tracker) -> int:
    total = 0
    for frontend in getattr(tracker, "_frontends",
                            [tracker.frontend]):
        for dev in getattr(frontend, "_detect_devices", {}).values():
            total += dev.ledger.cycles
    return total


def _compare_frame(session: str, index: int, outcome: dict,
                   frame, cycles: int,
                   span_count: Optional[int]) -> List[dict]:
    """Field-by-field bit comparison of one replayed frame."""
    mismatches = []

    def check(name, match):
        if not match:
            mismatches.append({"session": session, "index": index,
                               "field": name})

    pose = outcome["pose"]
    check("pose", np.array_equal(pose.R, frame.pose.R) and
          np.array_equal(pose.t, frame.pose.t))
    check("is_keyframe",
          bool(outcome["is_keyframe"]) == bool(frame.is_keyframe))
    check("health", outcome["health"] == frame.health)
    check("events", list(outcome["events"]) == list(frame.events))
    check("num_features",
          int(outcome["num_features"]) == int(frame.num_features))
    check("lm_iterations",
          int(outcome["lm_iterations"]) ==
          (frame.lm.iterations if frame.lm else 0))
    check("device_cycles", int(outcome["device_cycles"]) == cycles)
    recorded_spans = outcome.get("span_count")
    if recorded_spans is not None and span_count is not None:
        check("span_count", int(recorded_spans) == span_count)
    return mismatches


def replay_bundle(bundle, stop_on_mismatch: bool = False
                  ) -> ReplayReport:
    """Re-execute a capture bundle offline and compare bit-exactly.

    ``bundle`` is a path or an already-loaded document; either way it
    is integrity-verified before anything executes.  Each stream gets
    its own fresh solo tracker (mirroring a pool worker serving the
    session from its first frame) and is fed its frames in recorded
    order.  When tracing is enabled each frame runs under a
    ``replay_frame`` root span, so the incident's compute tree is
    inspectable with the PR 2 trace tooling.
    """
    from repro.obs.tracer import get_tracer, tracing_enabled
    from repro.vo.frontend import FloatFrontend, PIMFrontend
    from repro.vo.tracker import EBVOTracker

    if isinstance(bundle, (str, Path)):
        bundle = load_snapshot(bundle, kind=CAPTURE_KIND)
    else:
        verify_snapshot(bundle, kind=CAPTURE_KIND)
    meta = bundle["sections"]["meta"]
    config = decode(meta["config"])
    frontend_cls = {"float": FloatFrontend,
                    "pim": PIMFrontend}[meta["frontend"]]

    report = ReplayReport(ok=True, frames_replayed=0,
                          frames_recorded=0,
                          recorded_device_cycles=0,
                          replayed_device_cycles=0)
    tracer = get_tracer()
    for stream in bundle["sections"]["streams"]:
        sid = stream["session"]
        tracker = EBVOTracker(frontend_cls(config), config)
        session_row = {
            "session": sid,
            "frames": len(stream["frames"]),
            "dropped": int(stream["dropped"]),
            "replayable": int(stream["dropped"]) == 0,
            "replayed": 0,
            "final_pose_match": None,
        }
        report.frames_recorded += len(stream["frames"])
        if stream["dropped"]:
            # The ring overflowed: the stream's prefix is gone, so a
            # from-scratch replay cannot be bit-exact.  Report, skip.
            report.sessions.append(session_row)
            continue
        for index, raw in enumerate(stream["frames"]):
            rec = decode(raw)
            outcome = rec["outcome"]
            before = _frame_cycles(tracker)
            error: Optional[BaseException] = None
            frame = None
            span_count = None
            if tracing_enabled():
                # A *context-manager* span: the tracker's compute
                # spans nest under it on this thread's stack, exactly
                # as they nest under the worker's track span live.
                with tracer.span("replay_frame", category="replay",
                                 session=sid, index=index) as tspan:
                    try:
                        frame = tracker.process(
                            rec["gray"], rec["depth"],
                            rec["timestamp"])
                    except Exception as exc:  # noqa: BLE001
                        error = exc
                    tspan.set_attr("outcome",
                                   "error" if error else "ok")
                    trace_id = tspan.context.trace_id
                # The replay_frame root is category "replay", so the
                # serving-plane filter excludes it: the count covers
                # exactly the compute spans, like the live side.
                span_count = _compute_span_count(tracer, trace_id)
            else:
                try:
                    frame = tracker.process(rec["gray"], rec["depth"],
                                            rec["timestamp"])
                except Exception as exc:  # noqa: BLE001 -- as worker
                    error = exc
            cycles = _frame_cycles(tracker) - before
            if outcome["kind"] == "error":
                # The exact faulting frame: the live run failed
                # terminally here and restored from checkpoint, so
                # this stream's replay ends at this frame.
                report.faults.append({
                    "session": sid, "index": index,
                    "error": outcome["error"],
                    "reproduced": error is not None,
                    "replay_error": type(error).__name__
                    if error else None,
                })
                session_row["replayed"] = index + 1
                report.frames_replayed += 1
                break
            if error is not None:
                # Live succeeded, replay failed: a hard mismatch.
                report.mismatches.append({
                    "session": sid, "index": index,
                    "field": f"unexpected_error:{type(error).__name__}",
                })
                report.ok = False
                session_row["replayed"] = index + 1
                report.frames_replayed += 1
                break
            report.recorded_device_cycles += \
                int(outcome["device_cycles"])
            report.replayed_device_cycles += cycles
            mismatches = _compare_frame(sid, index, outcome, frame,
                                        cycles, span_count)
            session_row["replayed"] = index + 1
            session_row["final_pose_match"] = not any(
                m["field"] == "pose" for m in mismatches)
            report.frames_replayed += 1
            if mismatches:
                report.mismatches.extend(mismatches)
                report.ok = False
                if stop_on_mismatch:
                    break
        report.sessions.append(session_row)
    return report
