"""Operator CLI for snapshots and replay bundles.

``python -m repro.snap replay <bundle>`` re-executes a captured
incident offline (see :mod:`repro.snap.capture`); ``info`` and
``verify`` inspect and integrity-check any ``repro.snap/1`` document.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys

from repro.snap.capture import replay_bundle
from repro.snap.codec import SnapshotError, load_snapshot

log = logging.getLogger("repro.snap")


def _cmd_replay(args: argparse.Namespace) -> int:
    if args.trace:
        from repro.obs.tracer import enable_tracing
        enable_tracing()
    report = replay_bundle(args.bundle)
    print(report.summary())
    if args.json:
        payload = {
            "ok": report.ok,
            "frames_replayed": report.frames_replayed,
            "frames_recorded": report.frames_recorded,
            "recorded_device_cycles": report.recorded_device_cycles,
            "replayed_device_cycles": report.replayed_device_cycles,
            "sessions": report.sessions,
            "mismatches": report.mismatches,
            "faults": report.faults,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=1)
            handle.write("\n")
        log.info("replay report written to %s", args.json)
    return 0 if report.ok else 1


def _cmd_info(args: argparse.Namespace) -> int:
    snap = load_snapshot(args.snapshot)
    manifest = snap["manifest"]
    print(f"schema:       {snap['schema']}")
    print(f"kind:         {snap['kind']}")
    print(f"content hash: {manifest['content_hash']}")
    stamp = snap.get("stamp") or {}
    print(f"taken:        {stamp.get('timestamp')} "
          f"@ {stamp.get('git_sha')}")
    print("sections:")
    for name, digest in sorted(manifest["sections"].items()):
        print(f"  {name:12s} {digest[:16]}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    snap = load_snapshot(args.snapshot)
    print(f"OK: {args.snapshot} verifies as {snap['kind']!r} "
          f"({snap['manifest']['content_hash'][:16]})")
    return 0


def main(argv=None) -> int:
    logging.basicConfig(level=logging.INFO,
                        format="%(levelname)s %(name)s: %(message)s")
    parser = argparse.ArgumentParser(
        prog="python -m repro.snap",
        description="Snapshot and replay-bundle tooling")
    sub = parser.add_subparsers(dest="command", required=True)

    replay = sub.add_parser(
        "replay", help="re-execute a capture bundle offline and "
                       "compare bit-exactly against the live run")
    replay.add_argument("bundle", help="capture bundle path")
    replay.add_argument("--trace", action="store_true",
                        help="run the replay under the tracer")
    replay.add_argument("--json", metavar="PATH",
                        help="write the machine-readable report here")
    replay.set_defaults(func=_cmd_replay)

    info = sub.add_parser("info",
                          help="describe a snapshot document")
    info.add_argument("snapshot")
    info.set_defaults(func=_cmd_info)

    verify = sub.add_parser(
        "verify", help="integrity-check a snapshot document")
    verify.add_argument("snapshot")
    verify.set_defaults(func=_cmd_verify)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except SnapshotError as exc:
        log.error("%s", exc)
        return 2


if __name__ == "__main__":
    sys.exit(main())
