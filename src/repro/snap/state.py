"""Whole-service snapshot and bit-exact restore.

The serving stack's state decomposes cleanly, and this module walks
that decomposition:

* per-session tracker state (+ checkpoint, generation, stream
  counters) via :meth:`SessionManager.export_session`;
* the generation watermark table (so restored ids can never reuse a
  generation);
* every worker's per-shape simulated devices via
  :meth:`PIMDevice.snapshot` (SRAM, Tmp registers, precision, ledger);
* every worker's circuit breaker counters;
* the admission queue's still-pending frames, in order;
* the service's RNG seeds (whatever the workload generator used) and
  request-sequence watermark.

Restore targets a *compatible, quiescent* service -- same frontend,
worker count and tracker configuration, no resident sessions, empty
queue, pool not yet started -- and then asserts bit-exactness **by
construction**: it re-snapshots the restored service and requires the
content hash to equal the input's (wall-clock provenance is outside
the hash, so this is a pure state identity check).  A restore that
cannot prove itself bit-exact raises and says so.

Metrics are handled as *watermarks*: counter totals at snapshot time
ride in the (unhashed) context, and restore stores them on the target
service as ``metrics_watermarks`` so post-restore deltas can be
interpreted against the live run -- global registry counters are
process-scoped and are deliberately not rewritten.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.snap.codec import (
    SnapshotError,
    canonical_bytes,
    decode,
    encode,
    make_snapshot,
    verify_snapshot,
)

__all__ = [
    "metrics_watermarks",
    "restore_device",
    "restore_service",
    "restore_session_record",
    "restore_tracker_state",
    "snapshot_device",
    "snapshot_service",
    "snapshot_tracker_state",
]

#: ``kind`` field of whole-service snapshot documents.
SERVICE_KIND = "service"


# -- component snapshots --------------------------------------------------

def snapshot_tracker_state(state) -> dict:
    """JSON-safe encoding of one :class:`TrackerState` (detached)."""
    return encode(state.checkpoint())


def restore_tracker_state(encoded) -> "object":
    """Rebuild a :class:`TrackerState` from its encoding."""
    from repro.vo.tracker import TrackerState
    state = decode(encoded)
    if not isinstance(state, TrackerState):
        raise SnapshotError(
            f"encoded tracker state decoded to "
            f"{type(state).__name__}")
    return state


def snapshot_device(device) -> dict:
    """JSON-safe encoding of one :meth:`PIMDevice.snapshot`."""
    return encode(device.snapshot())


def restore_device(device, encoded) -> None:
    """Restore one device from :func:`snapshot_device` output."""
    device.restore(decode(encoded))


def restore_session_record(manager, encoded_record,
                           force_device_reset: bool = True):
    """Import one encoded session record into a ``SessionManager``."""
    return manager.import_session(decode(encoded_record),
                                  force_device_reset=force_device_reset)


def metrics_watermarks() -> Dict[str, float]:
    """Counter totals at this instant, for post-restore delta reading."""
    from repro.obs.metrics import Counter, get_registry
    registry = get_registry()
    marks: Dict[str, float] = {}
    for name in registry.names():
        instrument = registry.get(name)
        if isinstance(instrument, Counter):
            marks[name] = instrument.total()
    return marks


# -- whole-service snapshot -----------------------------------------------

def _worker_devices(worker) -> List[dict]:
    """Per-frontend-level device snapshots of one pool worker."""
    levels = []
    for frontend in getattr(worker.tracker, "_frontends",
                            [worker.tracker.frontend]):
        devices = getattr(frontend, "_detect_devices", {})
        levels.append([
            {"shape": list(shape), "device": snapshot_device(dev)}
            for shape, dev in sorted(devices.items())])
    return levels


def _breaker_record(breaker) -> dict:
    return {
        "state": breaker.state,
        "consecutive_faults": int(breaker.consecutive_faults),
        "faults_total": int(breaker.faults_total),
        "trips_total": int(breaker.trips_total),
    }


def snapshot_service(service, seeds: Optional[dict] = None) -> dict:
    """Snapshot an entire :class:`~repro.serve.service.VOService`.

    The service must be *quiescent*: no session checked out by a
    worker and no frame in flight (queued-but-undispatched frames are
    fine -- they are part of the snapshot).  The usual callers satisfy
    this by construction: a not-yet-started service, or one whose pool
    has been stopped.  ``seeds`` records whatever RNG seeds drove the
    workload, so a restored run can regenerate identical traffic.
    """
    sessions = [encode(service.sessions.export_session(sid))
                for sid in service.sessions.sids()]
    queued = []
    for item in service.scheduler.queued_items():
        gray, depth, timestamp = item.payload
        queued.append({
            "session": item.session,
            "seq": int(item.seq),
            "timestamp": float(timestamp),
            "gray": encode(np.asarray(gray)),
            "depth": encode(np.asarray(depth)),
        })
    if seeds is None:
        seeds = getattr(service, "rng_seeds", None)
    sections = {
        "meta": {
            "frontend": service.frontend,
            "workers": len(service.pool.workers),
            "config": encode(service.config),
            "seq_watermark": int(service.seq_watermark()),
        },
        "sessions": sessions,
        "generations": {
            sid: int(gen) for sid, gen in
            service.sessions.generation_watermarks().items()},
        "scheduler": {"queued": queued},
        "devices": [_worker_devices(w) for w in service.pool.workers],
        "workers": [{"worker": w.index, "frames": int(w.frames),
                     "breaker": _breaker_record(w.breaker)}
                    for w in service.pool.workers],
        "rng": {"seeds": encode(seeds)},
    }
    return make_snapshot(SERVICE_KIND, sections,
                         metrics_watermarks=metrics_watermarks())


def _require_compatible(snap: dict, service) -> None:
    meta = snap["sections"]["meta"]
    if meta["frontend"] != service.frontend:
        raise SnapshotError(
            f"snapshot was taken with the {meta['frontend']!r} "
            f"frontend; this service runs {service.frontend!r}")
    if meta["workers"] != len(service.pool.workers):
        raise SnapshotError(
            f"snapshot has {meta['workers']} workers; this service "
            f"has {len(service.pool.workers)}")
    if canonical_bytes(meta["config"]) != \
            canonical_bytes(encode(service.config)):
        raise SnapshotError(
            "snapshot tracker configuration differs from the "
            "service's; restore requires an identical TrackerConfig")


def _require_quiescent_fresh(service) -> None:
    if service.sessions.sids():
        raise SnapshotError(
            "restore target already has resident sessions; restore "
            "into a fresh service")
    if service.scheduler.depth():
        raise SnapshotError(
            "restore target has queued frames; restore into a fresh "
            "service")


def restore_service(snap: dict, service, verify: bool = True) -> dict:
    """Rebuild ``service`` from a whole-service snapshot document.

    ``service`` must be compatible (same frontend/workers/config) and
    fresh (no sessions, empty queue, pool not started -- workers must
    not race the restore).  Returns ``{"sessions": n, "requeued":
    [futures...]}``; the re-queued frames complete once the pool
    starts, continuing exactly where the snapshot left off.

    With ``verify`` (the default), the restored service is immediately
    re-snapshotted and its content hash compared to the input's --
    restore is bit-exact *by construction*, not by convention.
    """
    verify_snapshot(snap, kind=SERVICE_KIND)
    _require_compatible(snap, service)
    _require_quiescent_fresh(service)
    sections = snap["sections"]

    service.sessions.restore_generation_watermarks(
        {sid: int(gen)
         for sid, gen in sections["generations"].items()})
    for record in sections["sessions"]:
        # Devices are restored below, bit-exactly, so the first frame
        # must NOT wipe them the way a migration (which moves no
        # device state) would.
        restore_session_record(service.sessions, record,
                               force_device_reset=False)

    for worker, levels in zip(service.pool.workers,
                              sections["devices"]):
        frontends = getattr(worker.tracker, "_frontends",
                            [worker.tracker.frontend])
        for frontend, entries in zip(frontends, levels):
            for entry in entries:
                shape = tuple(int(s) for s in entry["shape"])
                restore_device(frontend._detect_device(shape),
                               entry["device"])

    for worker, record in zip(service.pool.workers,
                              sections["workers"]):
        worker.frames = int(record["frames"])
        breaker = worker.breaker
        saved = record["breaker"]
        breaker.consecutive_faults = int(saved["consecutive_faults"])
        breaker.faults_total = int(saved["faults_total"])
        breaker.trips_total = int(saved["trips_total"])
        if saved["state"] != breaker.state:
            # Route through _transition so the circuit gauge and any
            # observers see the restored state; an OPEN breaker starts
            # its cooldown at restore time.
            breaker._transition(saved["state"])

    service.restore_seq(sections["meta"]["seq_watermark"])
    service.rng_seeds = decode(sections["rng"]["seeds"])
    service.metrics_watermarks = dict(
        snap.get("context", {}).get("metrics_watermarks", {}))

    futures = []
    for entry in sections["scheduler"]["queued"]:
        futures.append(service.requeue_frame(
            entry["session"], int(entry["seq"]),
            decode(entry["gray"]), decode(entry["depth"]),
            float(entry["timestamp"])))

    if verify:
        again = snapshot_service(service)
        before = snap["manifest"]["content_hash"]
        after = again["manifest"]["content_hash"]
        if before != after:
            mismatched = [
                name for name in snap["manifest"]["sections"]
                if snap["manifest"]["sections"][name] !=
                again["manifest"]["sections"].get(name)]
            raise SnapshotError(
                f"restore is not bit-exact: re-snapshot hash "
                f"{after[:12]} != {before[:12]} "
                f"(sections differing: {mismatched})")
    return {"sessions": len(sections["sessions"]),
            "requeued": futures}
