"""SO(3)/SE(3) Lie-group utilities for pose representation.

Twists are 6-vectors ``xi = (v, w)`` with translational part first, the
convention used by the LM solver: the pose update of Fig. 1-c is
``pose = exp(delta_xi) o pose``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["hat", "so3_exp", "so3_log", "se3_exp", "se3_log", "SE3"]

_EPS = 1e-10


def hat(w: np.ndarray) -> np.ndarray:
    """Skew-symmetric matrix of a 3-vector."""
    wx, wy, wz = np.asarray(w, dtype=np.float64)
    return np.array([[0.0, -wz, wy],
                     [wz, 0.0, -wx],
                     [-wy, wx, 0.0]])


def so3_exp(w: np.ndarray) -> np.ndarray:
    """Rodrigues' formula: rotation matrix of an axis-angle vector."""
    w = np.asarray(w, dtype=np.float64)
    theta = np.linalg.norm(w)
    k = hat(w)
    if theta < _EPS:
        return np.eye(3) + k + 0.5 * (k @ k)
    a = np.sin(theta) / theta
    b = (1.0 - np.cos(theta)) / (theta * theta)
    return np.eye(3) + a * k + b * (k @ k)


def so3_log(rot: np.ndarray) -> np.ndarray:
    """Axis-angle vector of a rotation matrix."""
    rot = np.asarray(rot, dtype=np.float64)
    cos_theta = np.clip((np.trace(rot) - 1.0) / 2.0, -1.0, 1.0)
    theta = np.arccos(cos_theta)
    if theta < _EPS:
        return np.array([rot[2, 1] - rot[1, 2],
                         rot[0, 2] - rot[2, 0],
                         rot[1, 0] - rot[0, 1]]) / 2.0
    if abs(np.pi - theta) < 1e-6:
        # Near pi: extract the axis from R + I.
        m = (rot + np.eye(3)) / 2.0
        axis = np.sqrt(np.maximum(np.diagonal(m), 0.0))
        # Fix signs from off-diagonals using the largest component.
        i = int(np.argmax(axis))
        if axis[i] > 0:
            for j in range(3):
                if j != i:
                    axis[j] = m[i, j] / axis[i]
        norm = np.linalg.norm(axis)
        if norm > _EPS:
            axis = axis / norm
        return theta * axis
    return theta * np.array([rot[2, 1] - rot[1, 2],
                             rot[0, 2] - rot[2, 0],
                             rot[1, 0] - rot[0, 1]]) / (2.0 * np.sin(theta))


def _left_jacobian(w: np.ndarray) -> np.ndarray:
    """The SO(3) left Jacobian V used in the SE(3) exponential."""
    theta = np.linalg.norm(w)
    k = hat(w)
    if theta < _EPS:
        return np.eye(3) + 0.5 * k + (k @ k) / 6.0
    a = (1.0 - np.cos(theta)) / (theta * theta)
    b = (theta - np.sin(theta)) / (theta ** 3)
    return np.eye(3) + a * k + b * (k @ k)


def se3_exp(xi: np.ndarray) -> "SE3":
    """Exponential map: twist ``(v, w)`` to a rigid transform."""
    xi = np.asarray(xi, dtype=np.float64)
    v, w = xi[:3], xi[3:]
    rot = so3_exp(w)
    t = _left_jacobian(w) @ v
    return SE3(rot, t)


def se3_log(transform: "SE3") -> np.ndarray:
    """Logarithm map: rigid transform to a twist ``(v, w)``."""
    w = so3_log(transform.R)
    v = np.linalg.solve(_left_jacobian(w), transform.t)
    return np.concatenate([v, w])


@dataclass
class SE3:
    """A rigid transform ``x' = R x + t``."""

    R: np.ndarray
    t: np.ndarray

    def __post_init__(self) -> None:
        self.R = np.asarray(self.R, dtype=np.float64).reshape(3, 3)
        self.t = np.asarray(self.t, dtype=np.float64).reshape(3)

    @classmethod
    def identity(cls) -> "SE3":
        """The identity transform."""
        return cls(np.eye(3), np.zeros(3))

    @classmethod
    def exp(cls, xi: np.ndarray) -> "SE3":
        """Alias for :func:`se3_exp`."""
        return se3_exp(xi)

    def log(self) -> np.ndarray:
        """Alias for :func:`se3_log`."""
        return se3_log(self)

    @classmethod
    def from_matrix(cls, m: np.ndarray) -> "SE3":
        """From a 4x4 homogeneous matrix."""
        m = np.asarray(m, dtype=np.float64)
        return cls(m[:3, :3], m[:3, 3])

    @classmethod
    def from_quaternion(cls, t: np.ndarray, q_xyzw: np.ndarray) -> "SE3":
        """From translation and quaternion (x, y, z, w), TUM convention."""
        x, y, z, w = np.asarray(q_xyzw, dtype=np.float64)
        n = x * x + y * y + z * z + w * w
        if n < _EPS:
            return cls(np.eye(3), t)
        s = 2.0 / n
        rot = np.array([
            [1 - s * (y * y + z * z), s * (x * y - z * w), s * (x * z + y * w)],
            [s * (x * y + z * w), 1 - s * (x * x + z * z), s * (y * z - x * w)],
            [s * (x * z - y * w), s * (y * z + x * w), 1 - s * (x * x + y * y)],
        ])
        return cls(rot, t)

    def to_quaternion(self) -> np.ndarray:
        """Quaternion (x, y, z, w) of the rotation part."""
        m = self.R
        tr = np.trace(m)
        if tr > 0:
            s = np.sqrt(tr + 1.0) * 2.0
            return np.array([(m[2, 1] - m[1, 2]) / s,
                             (m[0, 2] - m[2, 0]) / s,
                             (m[1, 0] - m[0, 1]) / s,
                             0.25 * s])
        i = int(np.argmax(np.diagonal(m)))
        j, k = (i + 1) % 3, (i + 2) % 3
        s = np.sqrt(max(m[i, i] - m[j, j] - m[k, k] + 1.0, 0.0)) * 2.0
        q = np.zeros(4)
        q[i] = 0.25 * s
        q[j] = (m[j, i] + m[i, j]) / s
        q[k] = (m[k, i] + m[i, k]) / s
        q[3] = (m[k, j] - m[j, k]) / s
        return q

    @property
    def matrix(self) -> np.ndarray:
        """The 4x4 homogeneous matrix."""
        m = np.eye(4)
        m[:3, :3] = self.R
        m[:3, 3] = self.t
        return m

    def inverse(self) -> "SE3":
        """The inverse transform."""
        rt = self.R.T
        return SE3(rt, -rt @ self.t)

    def __matmul__(self, other: "SE3") -> "SE3":
        """Composition: ``(self @ other)(x) = self(other(x))``."""
        return SE3(self.R @ other.R, self.R @ other.t + self.t)

    def apply(self, points: np.ndarray) -> np.ndarray:
        """Transform points of shape (..., 3)."""
        pts = np.asarray(points, dtype=np.float64)
        return pts @ self.R.T + self.t

    def distance_to(self, other: "SE3") -> tuple:
        """(translation, rotation-angle) distance to another pose."""
        delta = self.inverse() @ other
        return float(np.linalg.norm(delta.t)), float(
            np.linalg.norm(so3_log(delta.R)))
