"""Pinhole camera model and the inverse-depth feature coordinates.

The paper expresses a 3D feature anchored at pixel ``(u, v)`` with depth
``d`` as the quantized inverse-depth triple (Fig. 5-a):

``a = (u - cx) / f``, ``b = (v - cy) / f``, ``c = 1 / d``.

The triple embeds the intrinsics, keeps every component in a small
dynamic range (Q4.12-friendly), and makes the warp of Fig. 5-b a pure
multiply-add: ``(X, Y, Z) = R (a, b, 1) + T c`` followed by projection,
which is scale-invariant so the missing factor ``d`` cancels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CameraIntrinsics", "TUM_QVGA", "inverse_depth_coords"]


@dataclass(frozen=True)
class CameraIntrinsics:
    """Pinhole intrinsics with image bounds."""

    fx: float
    fy: float
    cx: float
    cy: float
    width: int
    height: int

    def project(self, points: np.ndarray) -> tuple:
        """Project camera-frame points (..., 3) to pixels.

        Returns:
            ``(uv, valid)``: pixel coordinates (..., 2) and a mask that
            is True where the point is in front of the camera and the
            projection lands inside the image.
        """
        pts = np.asarray(points, dtype=np.float64)
        z = pts[..., 2]
        safe_z = np.where(np.abs(z) < 1e-12, 1e-12, z)
        u = self.fx * pts[..., 0] / safe_z + self.cx
        v = self.fy * pts[..., 1] / safe_z + self.cy
        uv = np.stack([u, v], axis=-1)
        valid = (z > 1e-6) & (u >= 0) & (u <= self.width - 1) & \
            (v >= 0) & (v <= self.height - 1)
        return uv, valid

    def backproject(self, u, v, depth) -> np.ndarray:
        """Lift pixels with depth to camera-frame 3D points (..., 3)."""
        u = np.asarray(u, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        depth = np.asarray(depth, dtype=np.float64)
        x = (u - self.cx) / self.fx * depth
        y = (v - self.cy) / self.fy * depth
        return np.stack([x, y, depth], axis=-1)

    def pixel_grid(self) -> tuple:
        """Meshgrid of pixel coordinates ``(u, v)`` for the full image."""
        u, v = np.meshgrid(np.arange(self.width, dtype=np.float64),
                           np.arange(self.height, dtype=np.float64))
        return u, v

    def scaled(self, factor: float) -> "CameraIntrinsics":
        """Intrinsics for an image resized by ``factor``."""
        return CameraIntrinsics(
            fx=self.fx * factor, fy=self.fy * factor,
            cx=self.cx * factor, cy=self.cy * factor,
            width=int(round(self.width * factor)),
            height=int(round(self.height * factor)))


#: TUM fr1-style intrinsics scaled from 640x480 to QVGA, the paper's
#: working resolution.
TUM_QVGA = CameraIntrinsics(fx=258.6, fy=262.6, cx=159.2, cy=127.0,
                            width=320, height=240)


def inverse_depth_coords(camera: CameraIntrinsics, u, v, depth) -> tuple:
    """The paper's inverse-depth feature triple ``(a, b, c)`` (Fig. 5-a).

    Args:
        camera: Intrinsics of the anchoring frame.
        u, v: Pixel coordinates of the features.
        depth: Depths (must be positive).

    Returns:
        Arrays ``(a, b, c)`` with ``a = (u - cx)/fx``, ``b = (v - cy)/fy``
        and ``c = 1/d``.
    """
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    depth = np.asarray(depth, dtype=np.float64)
    if np.any(depth <= 0):
        raise ValueError("depths must be positive")
    a = (u - camera.cx) / camera.fx
    b = (v - camera.cy) / camera.fy
    c = 1.0 / depth
    return a, b, c
