"""3D geometry substrate: Lie groups and the pinhole camera model."""

from repro.geometry.se3 import SE3, se3_exp, se3_log, so3_exp, so3_log
from repro.geometry.camera import (
    CameraIntrinsics,
    TUM_QVGA,
    inverse_depth_coords,
)

__all__ = [
    "SE3",
    "se3_exp",
    "se3_log",
    "so3_exp",
    "so3_log",
    "CameraIntrinsics",
    "TUM_QVGA",
    "inverse_depth_coords",
]
