"""A functional bit-serial in-SRAM computer (Neural-Cache style).

The section 2.2 comparison uses :mod:`repro.pim.bitserial`'s *cost
model*; this module provides the matching *functional* machine so the
algorithms themselves are demonstrated, not just priced:

* Data lives **transposed**: element ``j`` occupies bitline column
  ``j``; bit ``i`` of an n-bit operand lives in row ``base + i``
  (LSB first).  One array operation touches all columns at once.
* Each cycle the array performs one bulk bitwise step: a dual-row
  activation reads ``AND`` and ``XOR`` of two bit planes through the
  two sense amplifiers, combined with a carry latch row, and one
  result plane is written back.
* Addition ripples through the bit planes serially (2 ops per bit:
  the sum plane and the carry update), subtraction adds the inverted
  subtrahend with carry-in 1, and multiplication performs one masked
  addition per multiplier bit - the textbook bit-serial algorithms
  whose latency the paper's bit-parallel design avoids.

The ledger charges one cycle per bulk bitwise step, so measured op
counts can be compared against the analytic formulas of
:class:`~repro.pim.bitserial.BitSerialCostModel`.
"""

from __future__ import annotations

import numpy as np

from repro.pim.bitsram import BitSRAM
from repro.pim.cost import CostLedger
from repro.pim.isa import OpKind

__all__ = ["BitSerialDevice"]


class BitSerialDevice:
    """Transposed bit-plane computer over a :class:`BitSRAM` array."""

    def __init__(self, columns: int = 256, num_rows: int = 128):
        self.columns = columns
        self.num_rows = num_rows
        self.sram = BitSRAM(num_rows, columns)
        self.ledger = CostLedger()

    # -- host DMA (transposition included; excluded from cycles, like
    # the word-level device's I/O) ---------------------------------------

    def load(self, base_row: int, values, bits: int) -> None:
        """Write unsigned values as ``bits`` bit planes (LSB first)."""
        vals = np.zeros(self.columns, dtype=np.int64)
        arr = np.asarray(values, dtype=np.int64).ravel()
        if arr.size > self.columns:
            raise ValueError("more elements than columns")
        if arr.size and (arr.min() < 0 or arr.max() >> bits):
            raise ValueError(f"values exceed unsigned {bits}-bit range")
        vals[:arr.size] = arr
        for i in range(bits):
            plane = ((vals >> i) & 1).astype(np.uint8)
            self.sram.write_row(base_row + i, plane)
        self.ledger.charge_host_transfer(bits)

    def store(self, base_row: int, bits: int) -> np.ndarray:
        """Read ``bits`` bit planes back as unsigned values."""
        out = np.zeros(self.columns, dtype=np.int64)
        for i in range(bits):
            out |= self.sram.read_row(base_row + i).astype(np.int64) << i
        self.ledger.charge_host_transfer(bits)
        return out

    # -- bulk bitwise steps ------------------------------------------------

    def _step(self, kind: OpKind) -> None:
        self.ledger.charge(kind, cycles=1, sram_reads=1, sram_writes=1,
                           logic_ops=1)

    def add(self, dst: int, a: int, b: int, bits: int,
            carry_in: int = 0) -> np.ndarray:
        """Ripple addition over bit planes; returns the carry-out plane.

        Two bulk steps per bit: the dual-row activation yields
        ``a AND b`` and ``a XOR b`` in one access; combining with the
        carry latch and writing the sum plane is the second.
        """
        carry = np.full(self.columns, carry_in, dtype=np.uint8)
        for i in range(bits):
            a_and_b = self.sram.bitline_and(a + i, b + i)
            a_xor_b = self.sram.bitline_xor(a + i, b + i)
            self._step(OpKind.AND)
            total = a_xor_b ^ carry
            carry = a_and_b | (a_xor_b & carry)
            self.sram.write_row(dst + i, total)
            self._step(OpKind.ADD)
        return carry

    def invert(self, dst: int, a: int, bits: int) -> None:
        """Plane-wise complement (one step per bit via NOR with self)."""
        for i in range(bits):
            plane = 1 - self.sram.read_row(a + i)
            self.sram.write_row(dst + i, plane)
            self._step(OpKind.NOR)

    def sub(self, dst: int, a: int, b: int, bits: int,
            scratch: int = None) -> np.ndarray:
        """``a - b`` as ``a + ~b + 1``; returns the not-borrow plane."""
        if scratch is None:
            scratch = self.num_rows - bits
        self.invert(scratch, b, bits)
        return self.add(dst, a, scratch, bits, carry_in=1)

    def multiply(self, dst: int, a: int, b: int, bits: int,
                 scratch: int = None) -> None:
        """Bit-serial multiplication: one masked addition per
        multiplier bit into a ``2 * bits``-plane accumulator at
        ``dst``.

        Per multiplier bit ``i``: the multiplicand planes are ANDed
        with the multiplier's bit plane (predication) and ripple-added
        into the accumulator at offset ``i`` - ~3 bulk steps per
        (multiplier bit x addend bit), the quadratic cost the paper's
        bit-parallel multiplier avoids.
        """
        if scratch is None:
            scratch = self.num_rows - bits
        zero = np.zeros(self.columns, dtype=np.uint8)
        for i in range(2 * bits):
            self.sram.write_row(dst + i, zero)
        for i in range(bits):
            # Predicated addend planes: multiplicand AND multiplier bit
            # (a dual-row activation per plane).
            for k in range(bits):
                plane = self.sram.bitline_and(a + k, b + i)
                self.sram.write_row(scratch + k, plane)
                self._step(OpKind.AND)
            # Ripple the addend into acc[i .. i+bits] with carry.
            carry = np.zeros(self.columns, dtype=np.uint8)
            for k in range(bits):
                acc = self.sram.read_row(dst + i + k)
                add = self.sram.read_row(scratch + k)
                total = acc ^ add ^ carry
                carry = (acc & add) | (carry & (acc ^ add))
                self.sram.write_row(dst + i + k, total)
                self._step(OpKind.ADD)
                self._step(OpKind.ADD)
            if i + bits < 2 * bits:
                self.sram.write_row(dst + i + bits, carry)
                self._step(OpKind.ADD)
