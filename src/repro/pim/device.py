"""The SRAM-PIM device simulators.

Two devices share one micro-op interface and one cost contract:

* :class:`PIMDevice` -- the word-level device.  Rows are stored as raw
  bytes; every micro-op interprets them as lanes of the current
  precision, computes with the lane semantics of
  :mod:`repro.fixedpoint.ops`, and charges the
  :class:`~repro.pim.cost.CostLedger`.  This is the device the EBVO
  kernels program, fast enough to process full QVGA frames.

* :class:`BitPIMDevice` -- the bit-true reference.  Rows live in a
  :class:`~repro.pim.bitsram.BitSRAM`; addition/subtraction walk the
  8-bit accumulator slices with gated carries
  (:class:`~repro.pim.accumulator.SliceAccumulator`); multiplication and
  division execute the actual MSB-first shift-add and restoring-division
  loops of Fig. 7.  Property tests pin :class:`PIMDevice` to it.

Operands are SRAM rows (``int`` indices), the Tmp register (the
:data:`TMP` sentinel) or broadcast immediates (:class:`Imm`, routed
through the input multiplexer).  Results go to a row (paying the
write-back cycle) or to the Tmp register (free, the paper's key energy
optimization).

Cost contract (DESIGN.md section 5):

* every basic op is 1 cycle; ``mul``/``div`` are ``n + 2`` cycles
  including their internal SRAM read/write overhead;
* an SRAM destination adds 1 write-back cycle and 1 SRAM write access;
* each SRAM source costs one row activation; each Tmp source or
  destination costs one Tmp access;
* composite ops (absolute difference, min/max) are built from the basic
  ops, so their cost emerges from composition;
* host DMA (``load``/``store``) is tracked separately and excluded from
  cycle counts, matching the paper's exclusion of I/O overhead.

Both devices price micro-ops through :func:`repro.pim.isa.charge_plan`
and :func:`repro.pim.isa.step_cost`; so does the
:class:`~repro.pim.program.ProgramRecorder`, which is why a recorded
program's aggregate ledger can be multiplied out analytically by
:meth:`PIMDevice.run_program` without drifting from eager execution.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fixedpoint import ops
from repro.obs.metrics import get_registry
from repro.obs.tracer import CLOCK, get_tracer
from repro.pim.accumulator import SliceAccumulator
from repro.pim.bitsram import BitSRAM, bits_to_lanes, lanes_to_bits
from repro.pim.config import DEFAULT_CONFIG, PIMConfig
from repro.pim.cost import CostLedger
from repro.pim.isa import (
    TMP,
    ChargeStep,
    Dst,
    Imm,
    OpKind,
    Rel,
    Src,
    Tmp,
    TraceRecord,
    _TmpSentinel,
    charge_plan,
    step_cost,
)

__all__ = ["PIMDevice", "BitPIMDevice", "TMP", "Tmp", "Imm", "Rel"]

_LANE_DTYPES = {8: "<u1", 16: "<u2", 32: "<u4", 64: "<u8"}


def _read_signedness(method: str, kwargs: dict) -> bool:
    """Signedness with which a micro-op interprets its source lanes."""
    if method.startswith("logic_"):
        return False
    return bool(kwargs.get("signed", True))


def _check_multiplier(vb: np.ndarray, multiplier_bits: Optional[int],
                      signed: bool) -> None:
    """Enforce the declared multiplier width of a shortened MUL loop."""
    if multiplier_bits is None:
        return
    lo = -(1 << (multiplier_bits - 1)) if signed else 0
    hi = (1 << (multiplier_bits - 1)) - 1 if signed \
        else (1 << multiplier_bits) - 1
    if vb.size and (vb.min() < lo or vb.max() > hi):
        raise ValueError(
            f"multiplier values exceed {multiplier_bits} bits")


def _compute(method: str, n: int, vals: Tuple[np.ndarray, ...],
             kwargs: dict) -> np.ndarray:
    """Lane semantics of one micro-op, shape-polymorphic.

    ``vals`` holds the already-read source operands as int64 arrays;
    the same function serves the eager path (1-D, one row) and the
    batched replay path (2-D, all target rows at once) because every
    underlying :mod:`repro.fixedpoint.ops` primitive is elementwise and
    lane shifts index the last axis.
    """
    signed = bool(kwargs.get("signed", True))
    if method == "add":
        a, b = vals
        if kwargs.get("saturate"):
            return ops.sat_add(a, b, n, signed)
        return ops.wrap(a + b, n, signed)
    if method == "sub":
        a, b = vals
        if kwargs.get("saturate"):
            return ops.sat_sub(a, b, n, signed)
        return ops.wrap(a - b, n, signed)
    if method == "avg":
        return ops.average(vals[0], vals[1])
    if method == "cmp_gt":
        return ops.greater_than(vals[0], vals[1])
    if method == "logic_and":
        return vals[0] & vals[1]
    if method == "logic_or":
        return vals[0] | vals[1]
    if method == "logic_xor":
        return vals[0] ^ vals[1]
    if method == "logic_nor":
        # The raw sense-amp output; the complement is wrapped back to
        # lane width by the pack step.
        return ~(vals[0] | vals[1])
    if method == "shift_lanes":
        va = vals[0]
        pixels = kwargs["pixels"]
        out = np.zeros_like(va)
        if pixels == 0:
            out[...] = va
        elif pixels > 0:
            out[..., :-pixels or None] = va[..., pixels:]
        else:
            out[..., -pixels:] = va[..., :pixels]
        return out
    if method == "shift_bits":
        amount = kwargs["amount"]
        if amount >= 0:
            return ops.shift_left(vals[0], amount, n, signed)
        return ops.shift_right(vals[0], -amount, arithmetic=signed)
    if method == "copy":
        return vals[0]
    if method == "abs_diff":
        return ops.abs_diff(vals[0], vals[1])
    if method == "maximum":
        return ops.branchfree_max(vals[0], vals[1], n, signed)
    if method == "minimum":
        return ops.branchfree_min(vals[0], vals[1], n, signed)
    if method == "mul":
        prod = ops.multiply(vals[0], vals[1], n, signed) \
            >> kwargs.get("rshift", 0)
        if kwargs.get("saturate", True):
            return ops.saturate(prod, n, signed)
        return ops.wrap(prod, n, signed)
    if method == "div":
        va = vals[0] << kwargs.get("lshift", 0)
        vb = vals[1]
        wide = max(n, 63)
        q = ops.divide(va, vb, wide, signed)
        # Division by zero saturates toward the *lane* bound, as the
        # restoring loop would leave an all-ones quotient.  64-bit
        # lanes take the signed bound regardless of view (int64 host
        # bound, see repro.fixedpoint.ops._bounds).
        lane_hi = (1 << (n - 1)) - 1 if signed or n >= 64 \
            else (1 << n) - 1
        q = np.where(vb == 0,
                     np.where(va >= 0, lane_hi,
                              -lane_hi if signed else lane_hi), q)
        return ops.saturate(q, n, signed)
    raise ValueError(f"unknown micro-op {method!r}")


class _DeviceCore:
    """State and cost accounting shared by both device flavours."""

    def __init__(self, config: PIMConfig = DEFAULT_CONFIG,
                 trace: bool = False,
                 max_trace: Optional[int] = None):
        self.config = config
        self.ledger = CostLedger()
        self._precision = 8
        #: Whether charges advance the shared simulated-cycle clock.
        #: Executing devices do; the ProgramRecorder (whose charges are
        #: compile-time aggregates, not execution) clears it.
        self._advances_clock = True
        self._trace_enabled = trace
        if max_trace is not None and max_trace < 1:
            raise ValueError("max_trace must be positive (or None)")
        self._max_trace = max_trace
        self.trace: List[TraceRecord] = []

    # -- configuration -------------------------------------------------

    @property
    def precision(self) -> int:
        """Current lane width in bits."""
        return self._precision

    def set_precision(self, precision: int) -> None:
        """Reconfigure the carry control to a new lane width.

        Run-time reconfiguration is a control-register write; we charge
        no cycles for it (it overlaps with instruction issue).
        """
        self.config.validate_precision(precision)
        self._precision = precision

    @property
    def lanes(self) -> int:
        """SIMD lanes at the current precision."""
        return self.config.lanes(self._precision)

    # -- cost accounting -----------------------------------------------

    def _charge_step(self, step: ChargeStep) -> None:
        """Charge one accumulator step, priced by the shared cost fn."""
        cost = step_cost(step, self._precision)
        self.ledger.charge(step.kind, cost.cycles,
                           sram_reads=cost.sram_reads,
                           sram_writes=cost.sram_writes,
                           tmp_accesses=cost.tmp_accesses,
                           logic_ops=cost.logic_ops,
                           precision=cost.precision)
        # Observability charge hook: advance the shared simulated-cycle
        # clock so span timestamps stay monotone across devices.  One
        # attribute check when tracing is off.
        if CLOCK.enabled and self._advances_clock:
            CLOCK.advance(cost.cycles)
        if self._trace_enabled:
            self._append_trace(TraceRecord(
                kind=step.kind, precision=cost.precision,
                cycles=cost.cycles, dst=self._name(step.dst),
                srcs=tuple(self._name(s) for s in step.srcs),
                note=step.note))

    def _charge(self, kind: OpKind, srcs, dst: Dst,
                note: Optional[str] = None,
                operand_bits: Optional[int] = None) -> None:
        self._charge_step(ChargeStep(kind, tuple(srcs), dst, note,
                                     operand_bits))

    def _append_trace(self, record: TraceRecord) -> None:
        """Append with ring-buffer semantics when ``max_trace`` is set."""
        self.trace.append(record)
        if self._max_trace is not None and \
                len(self.trace) > self._max_trace:
            del self.trace[:len(self.trace) - self._max_trace]

    @staticmethod
    def _name(operand) -> str:
        if isinstance(operand, Imm):
            return f"#{operand.value}"
        if isinstance(operand, _TmpSentinel):
            return "tmp" if operand.index == 0 else f"tmp{operand.index}"
        return f"r{int(operand)}"


class PIMDevice(_DeviceCore):
    """Word-level SRAM-PIM device with cycle/energy accounting."""

    def __init__(self, config: PIMConfig = DEFAULT_CONFIG,
                 trace: bool = False,
                 max_trace: Optional[int] = None):
        super().__init__(config, trace, max_trace)
        self._mem = np.zeros((config.num_rows, config.row_bytes),
                             dtype=np.uint8)
        self._tmp = [np.zeros(config.row_bytes, dtype=np.uint8)
                     for _ in range(config.num_tmp_registers)]
        self._fault_injector = None
        #: Stored bits flipped via :meth:`inject_fault` since the last
        #: reset -- the health signal the serve pool's faulty-device
        #: eviction path checks.
        self._stored_faults = 0

    def reset(self) -> None:
        """Return the device to its power-on state, keeping the config.

        Zeroes the SRAM array and every Tmp register, resets the
        :class:`~repro.pim.cost.CostLedger` and drops the trace stream,
        detaches any attached fault injector (clearing both stored and
        transient faults), and restores the default 8-bit lane width.
        A reset device is bit-identical to a freshly constructed one
        (equivalence tests pin this), which is what lets a pool worker
        hand its device to a new session without reallocating anything
        (:class:`repro.serve.pool.DevicePool`).
        """
        self._mem.fill(0)
        for reg in self._tmp:
            reg.fill(0)
        self.ledger.reset()
        self.trace.clear()
        self._precision = 8
        self._fault_injector = None
        self._stored_faults = 0

    # -- whole-device snapshots ------------------------------------------

    def snapshot(self) -> dict:
        """Complete architectural state as detached host structures.

        Covers everything :meth:`restore` needs to resume bit-exact
        execution: the SRAM array, every Tmp register, the configured
        lane width, the stored-fault count (the health signal the
        serve pool's eviction path reads), and the cost ledger.  The
        ``config_digest`` field guards restores onto a device of a
        different geometry.  Deliberately excluded: the trace stream
        (observability, not architecture) and any attached fault
        injector (an injector is an experiment harness; a restored
        device starts un-instrumented, exactly like :meth:`reset`).
        """
        return {
            "config_digest": self.config.digest(),
            "precision": int(self._precision),
            "mem": self._mem.copy(),
            "tmp": [reg.copy() for reg in self._tmp],
            "stored_faults": int(self._stored_faults),
            "ledger": self.ledger.snapshot(),
        }

    def restore(self, snap: dict) -> None:
        """Load a :meth:`snapshot` in place, bit-exactly.

        Validates geometry before touching anything, so a mismatched
        snapshot leaves the device unchanged.  The snapshot itself is
        never aliased (arrays are copied in), so one snapshot can be
        restored any number of times.  Like :meth:`reset`, restoring
        detaches any fault injector and drops the trace stream.
        """
        if snap.get("config_digest") != self.config.digest():
            raise ValueError(
                f"snapshot geometry {snap.get('config_digest')!r} does "
                f"not match device geometry {self.config.digest()!r}")
        mem = np.asarray(snap["mem"], dtype=np.uint8)
        if mem.shape != self._mem.shape:
            raise ValueError(
                f"snapshot SRAM shape {mem.shape} != {self._mem.shape}")
        tmp = snap["tmp"]
        if len(tmp) != len(self._tmp):
            raise ValueError(
                f"snapshot has {len(tmp)} Tmp registers, device has "
                f"{len(self._tmp)}")
        self._mem[:] = mem
        for reg, saved in zip(self._tmp, tmp):
            reg[:] = np.asarray(saved, dtype=np.uint8)
        self._precision = int(snap["precision"])
        self._stored_faults = int(snap["stored_faults"])
        self.ledger.reset()
        self.ledger.merge(snap["ledger"])
        self.trace.clear()
        self._fault_injector = None

    # -- storage views ---------------------------------------------------

    def _unpack(self, raw_bytes: np.ndarray, signed: bool) -> np.ndarray:
        """Interpret row bytes as int64 lane values at current precision.

        Works on one row (1-D bytes) or a stack of rows (2-D bytes);
        lane decoding always applies to the last axis.
        """
        lanes = raw_bytes.view(_LANE_DTYPES[self._precision])
        vals = lanes.astype(np.int64) if self._precision < 64 else \
            lanes.view(np.int64).copy()
        if signed:
            vals = ops.wrap(vals, self._precision, signed=True)
        return vals

    def _pack(self, values: np.ndarray) -> np.ndarray:
        """Pack int64 lane values (any sign) into row bytes, wrapping."""
        n = self._precision
        u = np.asarray(values, dtype=np.int64)
        if n < 64:
            u = u & ((1 << n) - 1)
            # order="C": inputs that went through a broadcast (batched
            # replay of absolute-row reads) can arrive F-ordered, which
            # the byte view below cannot reinterpret.
            return u.astype(_LANE_DTYPES[n], order="C").view(np.uint8)
        return np.ascontiguousarray(u).view(np.uint64).astype(
            "<u8").view(np.uint8)

    def _read(self, src: Src, signed: bool) -> np.ndarray:
        if isinstance(src, Imm):
            val = int(src.value)
            lo, hi = (-(1 << (self._precision - 1)),
                      (1 << (self._precision - 1)) - 1) if signed else \
                (0, (1 << self._precision) - 1)
            if not lo <= val <= hi:
                raise ValueError(
                    f"immediate {val} exceeds {self._precision}-bit range")
            return np.full(self.lanes, val, dtype=np.int64)
        if isinstance(src, _TmpSentinel):
            self._check_tmp(src)
            return self._unpack(self._tmp[src.index], signed)
        self._check_row(src)
        raw = self._mem[src]
        if self._fault_injector is not None:
            raw = self._fault_injector.corrupt_read(raw, int(src))
        return self._unpack(raw, signed)

    def _write(self, dst: Dst, values: np.ndarray) -> None:
        packed = self._pack(values)
        if isinstance(dst, _TmpSentinel):
            self._check_tmp(dst)
            self._tmp[dst.index][:] = packed
        else:
            self._check_row(dst)
            self._mem[dst][:] = packed

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.config.num_rows:
            raise IndexError(
                f"row {row} out of range [0, {self.config.num_rows})")

    def _check_tmp(self, tmp: _TmpSentinel) -> None:
        if not 0 <= tmp.index < self.config.num_tmp_registers:
            raise IndexError(
                f"tmp register {tmp.index} out of range "
                f"[0, {self.config.num_tmp_registers})")

    # -- host DMA (excluded from cycle counts) ---------------------------

    def load(self, row: int, values, signed: bool = True) -> None:
        """Host DMA: write lane values into a row.

        Short vectors are zero-padded; values must fit the current lane
        width (signed or unsigned per ``signed``).
        """
        self._check_row(row)
        vals = np.asarray(values, dtype=np.int64).ravel()
        if vals.size > self.lanes:
            raise ValueError(f"{vals.size} values exceed {self.lanes} lanes")
        lo = -(1 << (self._precision - 1)) if signed else 0
        hi = (1 << (self._precision - 1)) - 1 if signed \
            else (1 << self._precision) - 1
        if vals.size and (vals.min() < lo or vals.max() > hi):
            raise ValueError(f"values exceed {self._precision}-bit range")
        full = np.zeros(self.lanes, dtype=np.int64)
        full[:vals.size] = vals
        self._mem[row][:] = self._pack(full)
        self.ledger.charge_host_transfer()

    def store(self, row: int, signed: bool = True) -> np.ndarray:
        """Host DMA: read a row back as lane values."""
        self._check_row(row)
        self.ledger.charge_host_transfer()
        return self._read(row, signed)

    def load_rows(self, rows: Sequence[int], values,
                  signed: bool = True) -> None:
        """Host DMA: write a 2-D block of lane values, one row each.

        ``values`` has shape ``(len(rows), <= lanes)``; short rows are
        zero-padded.  Charges one host transfer per row, identical to a
        loop of :meth:`load`, but performs the pack and the memory
        scatter as single numpy operations.
        """
        idx = np.asarray([int(r) for r in rows], dtype=np.int64)
        if idx.size == 0:
            return
        if idx.min() < 0 or idx.max() >= self.config.num_rows:
            raise IndexError(
                f"rows outside [0, {self.config.num_rows})")
        vals = np.asarray(values, dtype=np.int64)
        if vals.ndim != 2 or vals.shape[0] != idx.size:
            raise ValueError(
                f"values must have shape ({idx.size}, <= {self.lanes})")
        if vals.shape[1] > self.lanes:
            raise ValueError(
                f"{vals.shape[1]} values exceed {self.lanes} lanes")
        lo = -(1 << (self._precision - 1)) if signed else 0
        hi = (1 << (self._precision - 1)) - 1 if signed \
            else (1 << self._precision) - 1
        if vals.size and (vals.min() < lo or vals.max() > hi):
            raise ValueError(f"values exceed {self._precision}-bit range")
        full = np.zeros((idx.size, self.lanes), dtype=np.int64)
        full[:, :vals.shape[1]] = vals
        self._mem[idx] = self._pack(full)
        self.ledger.charge_host_transfer(int(idx.size))

    def store_rows(self, rows: Sequence[int],
                   signed: bool = True) -> np.ndarray:
        """Host DMA: read several rows back as a 2-D lane-value block."""
        idx = np.asarray([int(r) for r in rows], dtype=np.int64)
        if idx.size == 0:
            return np.zeros((0, self.lanes), dtype=np.int64)
        if idx.min() < 0 or idx.max() >= self.config.num_rows:
            raise IndexError(
                f"rows outside [0, {self.config.num_rows})")
        self.ledger.charge_host_transfer(int(idx.size))
        return self._unpack(self._mem[idx], signed)

    def read_tmp(self, signed: bool = True, index: int = 0) -> np.ndarray:
        """Host debug view of a Tmp register (no charge)."""
        return self._unpack(self._tmp[index], signed)

    def inject_fault(self, row: int, bit: int) -> None:
        """Flip one stored SRAM bit (fault-injection hook for tests).

        Args:
            row: Word line index.
            bit: Bit position within the word line (0 = LSB of lane 0).
        """
        self._check_row(row)
        if not 0 <= bit < self.config.wordline_bits:
            raise IndexError(f"bit {bit} outside the word line")
        self._mem[row][bit // 8] ^= np.uint8(1 << (bit % 8))
        self._stored_faults += 1
        if self._fault_injector is not None:
            self._fault_injector.record_stored()

    def attach_fault_injector(self, injector) -> None:
        """Arm a :class:`~repro.pim.faults.FaultInjector` on this device.

        The plan's stored flips are applied to the array immediately;
        transient read errors corrupt every subsequent row read until
        :meth:`detach_fault_injector` or :meth:`reset`.
        """
        self._fault_injector = injector
        for row, bit in injector.plan.stored_flips:
            self.inject_fault(row, bit)

    def detach_fault_injector(self) -> None:
        """Stop corrupting reads.  Stored flips remain until reset."""
        self._fault_injector = None

    def fault_state(self) -> dict:
        """Health view: faults injected since the last reset.

        ``suspect`` is True when the array may hold corrupted state --
        the signal :class:`repro.serve.pool.PoolWorker` uses to evict
        (reset) a device between frames.
        """
        injector = self._fault_injector
        return {
            "stored_faults": self._stored_faults,
            "read_faults": injector.read_faults if injector else 0,
            "injector_attached": injector is not None,
            "suspect": self._stored_faults > 0 or injector is not None,
        }

    # -- micro-op execution -----------------------------------------------

    def _execute(self, method: str, dst: Dst, srcs: Tuple[Src, ...],
                 kwargs: dict) -> None:
        """Read, charge (per the shared plan), compute, write."""
        signed = _read_signedness(method, kwargs)
        vals = tuple(self._read(s, signed) for s in srcs)
        if method == "mul":
            _check_multiplier(vals[1], kwargs.get("multiplier_bits"),
                              bool(kwargs.get("signed", True)))
        for step in charge_plan(method, dst, srcs, **kwargs):
            self._charge_step(step)
        self._write(dst, _compute(method, self._precision, vals, kwargs))

    # -- single-cycle micro-ops -------------------------------------------

    def add(self, dst: Dst, a: Src, b: Src, saturate: bool = False,
            signed: bool = True) -> None:
        """``dst = a + b`` (wrapping, or saturating when requested)."""
        self._execute("add", dst, (a, b),
                      {"saturate": saturate, "signed": signed})

    def sub(self, dst: Dst, a: Src, b: Src, saturate: bool = False,
            signed: bool = True) -> None:
        """``dst = a - b`` (wrapping, or saturating when requested)."""
        self._execute("sub", dst, (a, b),
                      {"saturate": saturate, "signed": signed})

    def avg(self, dst: Dst, a: Src, b: Src, signed: bool = False) -> None:
        """``dst = (a + b) >> 1`` -- the LPF primitive."""
        self._execute("avg", dst, (a, b), {"signed": signed})

    def cmp_gt(self, dst: Dst, a: Src, b: Src, signed: bool = True) -> None:
        """``dst = (a > b) ? 1 : 0`` per lane (borrow-derived mask)."""
        self._execute("cmp_gt", dst, (a, b), {"signed": signed})

    def logic_and(self, dst: Dst, a: Src, b: Src) -> None:
        """Bitwise AND (in-array when both operands are rows)."""
        self._execute("logic_and", dst, (a, b), {})

    def logic_or(self, dst: Dst, a: Src, b: Src) -> None:
        """Bitwise OR."""
        self._execute("logic_or", dst, (a, b), {})

    def logic_xor(self, dst: Dst, a: Src, b: Src) -> None:
        """Bitwise XOR."""
        self._execute("logic_xor", dst, (a, b), {})

    def logic_nor(self, dst: Dst, a: Src, b: Src) -> None:
        """Bitwise NOR -- the native sense-amp output (Fig. 6-a)."""
        self._execute("logic_nor", dst, (a, b), {})

    def shift_lanes(self, dst: Dst, a: Src, pixels: int,
                    signed: bool = False) -> None:
        """Shift by whole lanes: lane ``i`` receives lane ``i + pixels``.

        Positive shifts bring in right-hand neighbours (the "<< 1pix"
        of Fig. 2); vacated lanes are zero-filled.
        """
        self._execute("shift_lanes", dst, (a,),
                      {"pixels": pixels, "signed": signed})

    def shift_bits(self, dst: Dst, a: Src, amount: int,
                   signed: bool = True) -> None:
        """Shift each lane by ``amount`` bits (positive = left, wrapping;
        negative = right, arithmetic when ``signed``)."""
        self._execute("shift_bits", dst, (a,),
                      {"amount": amount, "signed": signed})

    def copy(self, dst: Dst, src: Src, signed: bool = True) -> None:
        """Move a value through the accumulator unchanged."""
        self._execute("copy", dst, (src,), {"signed": signed})

    # -- composite single-cycle-per-step macros ----------------------------

    def abs_diff(self, dst: Dst, a: Src, b: Src,
                 signed: bool = False) -> None:
        """``dst = |a - b|`` via the carry-extension trick (Fig. 7-a).

        Two accumulator steps: the subtraction that latches the borrow
        mask, then the conditional negation ``(M + N) ^ N``.
        """
        self._execute("abs_diff", dst, (a, b), {"signed": signed})

    def maximum(self, dst: Dst, a: Src, b: Src,
                signed: bool = False) -> None:
        """``dst = max(a, b) = sat0(a - b) + b`` (Fig. 7-b)."""
        self._execute("maximum", dst, (a, b), {"signed": signed})

    def minimum(self, dst: Dst, a: Src, b: Src,
                signed: bool = False) -> None:
        """``dst = min(a, b) = a - sat0(a - b)`` (Fig. 7-b)."""
        self._execute("minimum", dst, (a, b), {"signed": signed})

    # -- multi-cycle ops ----------------------------------------------------

    def mul(self, dst: Dst, a: Src, b: Src, rshift: int = 0,
            saturate: bool = True, signed: bool = True,
            multiplier_bits: Optional[int] = None) -> None:
        """``dst = (a * b) >> rshift`` in ``n + 2`` cycles (Fig. 7-c).

        The full 2n-bit product is formed MSB-first in the accumulator;
        ``rshift`` realigns fixed-point products (for example Q1.15 x
        Q4.12 with ``rshift=15`` yields Q4.12).  The narrowed result
        saturates by default, wraps otherwise.

        ``multiplier_bits`` shortens the MSB-first loop when operand
        ``b`` is known to be narrower than the lane (e.g. 16-bit Q14.2
        Jacobians multiplied inside 32-bit Q29.3 accumulation lanes):
        the loop runs one step per multiplier bit, so cycles become
        ``multiplier_bits + 2``.  The values of ``b`` are checked
        against the declared width.
        """
        self._execute("mul", dst, (a, b),
                      {"rshift": rshift, "saturate": saturate,
                       "signed": signed,
                       "multiplier_bits": multiplier_bits})

    def div(self, dst: Dst, a: Src, b: Src, lshift: int = 0,
            signed: bool = True) -> None:
        """``dst = (a << lshift) / b`` in ``n + 2`` cycles (Fig. 7-d).

        Restoring division on magnitudes with sign fix-up (C-style
        truncation); ``lshift`` pre-scales the numerator for fixed-point
        quotients.  Division by zero saturates toward the signed bound.
        """
        self._execute("div", dst, (a, b),
                      {"lshift": lshift, "signed": signed})

    # -- recorded-program replay -------------------------------------------

    def run_program(self, program, base_rows: Sequence[int],
                    mode: str = "auto") -> None:
        """Replay a recorded program once per base row.

        Args:
            program: A :class:`~repro.pim.program.PIMProgram`.
            base_rows: Row indices substituted for the program's
                :class:`~repro.pim.isa.Rel` operands, one replay each,
                in order.
            mode: ``"auto"`` runs the compiled plan when provably
                equivalent (falling back to the interpreted batched
                executor if lowering declined the program, and to
                eager on a hazard); ``"compiled"`` is ``"auto"`` with
                the explicit intent recorded in metrics/spans;
                ``"eager"`` forces one-by-one replay through the
                ordinary micro-op methods; ``"batched"`` demands the
                interpreted vectorized executor and raises if the
                program/bases combination cannot be batched.

        Vectorized execution (batched or compiled, see
        :mod:`repro.pim.lowering`) performs the recorded ops across
        all base rows at once and charges the ledger in O(1) (program
        aggregate x number of bases).  Memory contents, ledger totals
        and (when tracing) the trace stream are identical to the eager
        path; the program's hazard analysis plus the base-row checks
        below guarantee it, and equivalence tests pin it.

        Every call records its decision in the metrics registry
        (``pim_replay_total{mode=...}``; auto/compiled-mode fallbacks
        also bump ``pim_replay_fallback_total{reason=...}`` with the
        hazard rule that fired, see :meth:`batch_rejection_reason`,
        or ``"lowering-unsupported"``) and, when tracing, runs under a
        ``run_program:<name>`` span carrying the same attributes.
        """
        if mode not in ("auto", "eager", "batched", "compiled"):
            raise ValueError(f"unknown replay mode {mode!r}")
        if program.config_digest != self.config.digest():
            raise ValueError(
                "program was recorded for a different device geometry")
        bases = [int(b) for b in base_rows]
        if not bases:
            return
        if mode == "eager":
            reason: Optional[str] = "mode-forced-eager"
        else:
            reason = self.batch_rejection_reason(program, bases)
        if mode == "batched" and reason is not None:
            raise ValueError(
                f"program cannot be replayed in batched mode for these "
                f"base rows: {reason} (see PIMProgram.batchable)")
        plan = None
        fallback: Optional[str] = reason
        if reason is None and mode in ("auto", "compiled"):
            from repro.pim.lowering import compiled_plan
            plan = compiled_plan(program, self.config)
            if plan is None:
                fallback = "lowering-unsupported"
        if reason is not None:
            executed = "eager"
        elif plan is not None:
            executed = "compiled"
        else:
            executed = "batched"
        registry = get_registry()
        registry.counter(
            "pim_replay_total",
            "run_program calls by executed replay mode").inc(
                mode=executed)
        if mode in ("auto", "compiled") and fallback is not None:
            registry.counter(
                "pim_replay_fallback_total",
                "auto-mode compiled/batched->eager fallbacks by rule"
            ).inc(reason=fallback)
        attrs = {"program": program.name, "bases": len(bases),
                 "requested_mode": mode, "executed_mode": executed}
        if fallback is not None:
            attrs["fallback_reason"] = fallback
        with get_tracer().span(f"run_program:{program.name}",
                               device=self, category="replay",
                               **attrs):
            self.set_precision(program.initial_precision)
            if reason is not None:
                for base in bases:
                    program.replay(self, base)
                return
            base_arr = np.asarray(bases, dtype=np.int64)
            if plan is not None:
                self._replay_compiled(program, plan, base_arr)
            else:
                self._replay_batched(program, base_arr)

    def _replay_compiled(self, program, plan,
                         bases: np.ndarray) -> None:
        """Execute a lowered plan with the O(1) aggregate charge."""
        reps = int(bases.size)
        self.ledger.charge_program(program.aggregate, reps)
        if CLOCK.enabled and self._advances_clock:
            CLOCK.advance(program.aggregate.cycles * reps)
        plan.execute(self, bases)
        if self._trace_enabled:
            self._emit_program_trace(program, bases)

    def batch_rejection_reason(self, program,
                               bases: List[int]) -> Optional[str]:
        """Why batched replay is not provably equivalent (None = it is).

        The structural half (:attr:`PIMProgram.batchable`) covers
        relative-operand and register hazards; the rest checks the
        properties only known at replay time: bases strictly
        increasing (eager order equals row order) and no collision
        between absolute rows and the rows addressed relatively.
        A program whose relative op order is *not* provably safe can
        still batch when the bases are spread further apart than the
        program's relative footprint (disjoint footprints cannot
        alias across elements).

        With a single base row the cross-element hazards vanish: the
        batched executor's per-element Tmp/abs buffers reproduce eager
        visibility exactly at ``reps == 1`` (read-before-first-write
        broadcasts the pre-state, later reads see the buffered write,
        and the lone element's value is what gets written back), so
        the ``registers_ok`` and ``rel_order_safe`` structural checks
        are skipped.  The fault-injection and abs/rel aliasing checks
        still apply: the compiled executor defers relative-row
        scatters to section boundaries, so an absolute read of a
        relatively-written row could otherwise observe stale memory.

        Returns the name of the first hazard rule that fired --
        ``"fault-injection-active"``, ``"bases-not-increasing"``,
        ``"precision-switch-mid-program"``,
        ``"register-reuse-hazard"``, ``"rel-aliasing-within-span"``,
        ``"abs-write-aliases-rel-row"`` or
        ``"abs-read-aliases-rel-write"`` -- so auto-mode fallbacks
        are attributable instead of silent.
        """
        if self._fault_injector is not None and \
                self._fault_injector.transient:
            # Transient read errors must hit each per-row read in
            # eager order so the seeded draw sequence is well defined;
            # the batched path reads memory wholesale and would skip
            # the corruption hook.
            return "fault-injection-active"
        if len(bases) > 1 and any(b2 <= b1 for b1, b2 in
                                  zip(bases, bases[1:])):
            return "bases-not-increasing"
        if len(bases) > 1 and not program.precision_stable:
            # Eager replay is base-major: a precision switch recorded
            # after a compute op persists into the next base's replay
            # of the earlier ops, so op-major execution would compute
            # (and charge) those ops at the wrong precision.
            return "precision-switch-mid-program"
        if len(bases) > 1 and not program.registers_ok:
            return "register-reuse-hazard"
        if len(bases) > 1 and not program.rel_order_safe:
            span = program.rel_span
            if any(b2 - b1 <= span for b1, b2 in zip(bases, bases[1:])):
                return "rel-aliasing-within-span"
        rel_rows = {b + off for b in bases
                    for off in program.rel_read_offsets |
                    program.rel_write_offsets}
        if rel_rows and (min(rel_rows) < 0 or
                         max(rel_rows) >= self.config.num_rows):
            raise IndexError(
                f"program addresses rows outside "
                f"[0, {self.config.num_rows}) for these bases")
        if program.abs_write_rows & rel_rows:
            return "abs-write-aliases-rel-row"
        rel_written = {b + off for b in bases
                       for off in program.rel_write_offsets}
        if program.abs_read_rows & rel_written:
            return "abs-read-aliases-rel-write"
        return None

    def _bases_batchable(self, program, bases: List[int]) -> bool:
        """Back-compat wrapper: batched replay provably equivalent?"""
        return self.batch_rejection_reason(program, bases) is None

    def _replay_batched(self, program, bases: np.ndarray) -> None:
        reps = int(bases.size)
        self.ledger.charge_program(program.aggregate, reps)
        # O(1) counterpart of the per-step clock hook in _charge_step.
        if CLOCK.enabled and self._advances_clock:
            CLOCK.advance(program.aggregate.cycles * reps)
        # Per-element views of Tmp registers and absolute rows: each
        # base row gets its own copy (created lazily on first write;
        # the hazard rules guarantee write-before-first-read), and the
        # final memory/register state is the last base's value --
        # exactly what sequential eager replay leaves behind.
        tmp_buf: Dict[int, np.ndarray] = {}
        abs_buf: Dict[int, np.ndarray] = {}

        def read(src: Src, signed: bool) -> np.ndarray:
            if isinstance(src, Imm):
                return np.full((reps, self.lanes), int(src.value),
                               dtype=np.int64)
            if isinstance(src, _TmpSentinel):
                self._check_tmp(src)
                buf = tmp_buf.get(src.index)
                if buf is not None:
                    return self._unpack(buf, signed)
                return np.broadcast_to(
                    self._unpack(self._tmp[src.index], signed),
                    (reps, self.lanes))
            if isinstance(src, Rel):
                return self._unpack(self._mem[bases + int(src)], signed)
            self._check_row(src)
            buf = abs_buf.get(int(src))
            if buf is not None:
                return self._unpack(buf, signed)
            return np.broadcast_to(self._unpack(self._mem[src], signed),
                                   (reps, self.lanes))

        def write(dst: Dst, values: np.ndarray) -> None:
            packed = self._pack(values)
            if isinstance(dst, _TmpSentinel):
                self._check_tmp(dst)
                buf = tmp_buf.get(dst.index)
                if buf is None:
                    buf = tmp_buf[dst.index] = np.empty(
                        (reps, self.config.row_bytes), dtype=np.uint8)
                buf[:] = packed
            elif isinstance(dst, Rel):
                self._mem[bases + int(dst)] = packed
            else:
                self._check_row(dst)
                buf = abs_buf.get(int(dst))
                if buf is None:
                    buf = abs_buf[int(dst)] = np.empty(
                        (reps, self.config.row_bytes), dtype=np.uint8)
                buf[:] = packed

        for op in program.ops:
            if op.method == "set_precision":
                self.set_precision(op.kwargs["precision"])
                continue
            signed = _read_signedness(op.method, op.kwargs)
            vals = tuple(read(s, signed) for s in op.srcs)
            if op.method == "mul":
                _check_multiplier(vals[1],
                                  op.kwargs.get("multiplier_bits"),
                                  bool(op.kwargs.get("signed", True)))
            write(op.dst, _compute(op.method, self._precision, vals,
                                   op.kwargs))

        for index, buf in tmp_buf.items():
            self._tmp[index][:] = buf[-1]
        for row, buf in abs_buf.items():
            self._mem[row][:] = buf[-1]
        if self._trace_enabled:
            self._emit_program_trace(program, bases)

    def _emit_program_trace(self, program, bases: np.ndarray) -> None:
        """Emit the eager-identical trace stream for a vectorized run."""
        for base in bases:
            for op in program.ops:
                for step, cost in zip(op.plan, op.costs):
                    self._append_trace(TraceRecord(
                        kind=step.kind, precision=cost.precision,
                        cycles=cost.cycles,
                        dst=self._resolved_name(step.dst, base),
                        srcs=tuple(self._resolved_name(s, base)
                                   for s in step.srcs),
                        note=step.note))

    @classmethod
    def _resolved_name(cls, operand, base: int) -> str:
        if isinstance(operand, Rel):
            return f"r{base + int(operand)}"
        return cls._name(operand)


class BitPIMDevice(_DeviceCore):
    """Bit-true reference device built on the slice accumulator.

    Supports the same micro-ops as :class:`PIMDevice` (minus the
    fixed-point ``rshift``/``lshift`` conveniences) but computes through
    the explicit bit datapath: sense-amp logic for AND/OR/XOR, gated
    slice carries for add/sub, and the genuine iterative algorithms of
    Fig. 7 for absolute difference, min/max, multiplication and
    division.  Intended for small configurations in equivalence tests.
    """

    def __init__(self, config: PIMConfig = PIMConfig(wordline_bits=64,
                                                     num_rows=16),
                 trace: bool = False,
                 max_trace: Optional[int] = None):
        super().__init__(config, trace, max_trace)
        self.sram = BitSRAM(config.num_rows, config.wordline_bits)
        self.acc = SliceAccumulator(config.wordline_bits, config.slice_bits)
        self._tmp_bits = [np.zeros(config.wordline_bits, dtype=np.uint8)
                          for _ in range(config.num_tmp_registers)]

    # -- bit-level operand plumbing --------------------------------------

    def _to_unsigned(self, vals: np.ndarray) -> np.ndarray:
        vals = np.asarray(vals, dtype=np.int64)
        if self._precision >= 64:
            return vals.view(np.uint64).copy()
        mask = (1 << self._precision) - 1
        return (vals & mask).astype(np.uint64)

    def _from_unsigned(self, u: np.ndarray, signed: bool) -> np.ndarray:
        vals = u.astype(np.int64)
        return ops.wrap(vals, self._precision, signed) if signed else vals

    def _read_bits(self, src: Src) -> np.ndarray:
        if isinstance(src, Imm):
            u = self._to_unsigned(np.full(self.lanes, int(src.value)))
            return lanes_to_bits(u, self._precision,
                                 self.config.wordline_bits)
        if isinstance(src, _TmpSentinel):
            return self._tmp_bits[src.index].copy()
        return self.sram.read_row(src)

    def _write_bits(self, dst: Dst, bits: np.ndarray) -> None:
        if isinstance(dst, _TmpSentinel):
            self._tmp_bits[dst.index] = np.asarray(bits,
                                                   dtype=np.uint8).copy()
        else:
            self.sram.write_row(dst, bits)

    def _lanes_of(self, bits: np.ndarray, signed: bool) -> np.ndarray:
        return self._from_unsigned(
            bits_to_lanes(bits, self._precision), signed)

    def _bits_of(self, vals: np.ndarray) -> np.ndarray:
        return lanes_to_bits(self._to_unsigned(vals), self._precision,
                             self.config.wordline_bits)

    # -- host DMA ---------------------------------------------------------

    def load(self, row: int, values, signed: bool = True) -> None:
        """Host DMA: write lane values into a row."""
        vals = np.asarray(values, dtype=np.int64).ravel()
        full = np.zeros(self.lanes, dtype=np.int64)
        full[:vals.size] = vals
        self.sram.write_row(row, self._bits_of(full))
        self.ledger.charge_host_transfer()

    def store(self, row: int, signed: bool = True) -> np.ndarray:
        """Host DMA: read a row back as lane values."""
        self.ledger.charge_host_transfer()
        return self._lanes_of(self.sram.read_row(row), signed)

    def read_tmp(self, signed: bool = True, index: int = 0) -> np.ndarray:
        """Host debug view of a Tmp register (no charge)."""
        return self._lanes_of(self._tmp_bits[index], signed)

    # -- micro-ops through the slice datapath ------------------------------

    def _saturate_from_masks(self, sum_bits: np.ndarray, va: np.ndarray,
                             vb: np.ndarray, subtract: bool,
                             signed: bool) -> np.ndarray:
        """Apply the saturation unit to a raw accumulator result.

        The hardware decides saturation from the carry-extension mask
        and the operand sign bits; functionally that equals clamping the
        wide-precision result, which is what we compute here from the
        already-available lane values.
        """
        wide = va - vb if subtract else va + vb
        return self._bits_of(ops.saturate(wide, self._precision, signed))

    def add(self, dst: Dst, a: Src, b: Src, saturate: bool = False,
            signed: bool = True) -> None:
        """``dst = a + b`` through the slice adder."""
        a_bits, b_bits = self._read_bits(a), self._read_bits(b)
        self._charge(OpKind.ADD, (a, b), dst)
        result = self.acc.add(a_bits, b_bits, self._precision)
        out = result.sum_bits
        if saturate:
            out = self._saturate_from_masks(
                out, self._lanes_of(a_bits, signed),
                self._lanes_of(b_bits, signed), False, signed)
        self._write_bits(dst, out)

    def sub(self, dst: Dst, a: Src, b: Src, saturate: bool = False,
            signed: bool = True) -> None:
        """``dst = a - b`` via two's complement through the slice adder."""
        a_bits, b_bits = self._read_bits(a), self._read_bits(b)
        self._charge(OpKind.SUB, (a, b), dst)
        result = self.acc.subtract(a_bits, b_bits, self._precision)
        out = result.sum_bits
        if saturate:
            out = self._saturate_from_masks(
                out, self._lanes_of(a_bits, signed),
                self._lanes_of(b_bits, signed), True, signed)
        self._write_bits(dst, out)

    def avg(self, dst: Dst, a: Src, b: Src, signed: bool = False) -> None:
        """``dst = (a + b) >> 1`` -- slice add, then the carry mask
        supplies the shifted-out ninth bit."""
        a_bits, b_bits = self._read_bits(a), self._read_bits(b)
        self._charge(OpKind.AVG, (a, b), dst)
        result = self.acc.add(a_bits, b_bits, self._precision)
        vals = bits_to_lanes(result.sum_bits, self._precision).astype(
            np.int64)
        vals |= result.carry_mask.astype(np.int64) << self._precision
        if signed:
            sa = self._lanes_of(a_bits, True)
            sb = self._lanes_of(b_bits, True)
            vals = (sa + sb)
        self._write_bits(dst, self._bits_of(vals >> 1))

    def cmp_gt(self, dst: Dst, a: Src, b: Src, signed: bool = True) -> None:
        """``dst = a > b`` from the borrow mask of ``b - a``."""
        a_bits, b_bits = self._read_bits(a), self._read_bits(b)
        self._charge(OpKind.CMP_GT, (a, b), dst)
        if signed:
            mask = (self._lanes_of(a_bits, True) >
                    self._lanes_of(b_bits, True)).astype(np.int64)
        else:
            # not-borrow of (b - a) is 1 when b >= a; invert for a > b.
            result = self.acc.subtract(b_bits, a_bits, self._precision)
            mask = 1 - result.carry_mask.astype(np.int64)
        self._write_bits(dst, self._bits_of(mask))

    def logic_and(self, dst: Dst, a: Src, b: Src) -> None:
        """In-array AND when both operands are rows, else gate logic."""
        self._charge(OpKind.AND, (a, b), dst)
        if isinstance(a, int) and isinstance(b, int):
            self._write_bits(dst, self.sram.bitline_and(a, b))
        else:
            self._write_bits(dst, self._read_bits(a) & self._read_bits(b))

    def logic_or(self, dst: Dst, a: Src, b: Src) -> None:
        """In-array OR (NOT NOR) when both operands are rows."""
        self._charge(OpKind.OR, (a, b), dst)
        if isinstance(a, int) and isinstance(b, int):
            self._write_bits(dst, self.sram.bitline_or(a, b))
        else:
            self._write_bits(dst, self._read_bits(a) | self._read_bits(b))

    def logic_xor(self, dst: Dst, a: Src, b: Src) -> None:
        """In-array XOR (NOR of the two SA outputs) for row operands."""
        self._charge(OpKind.XOR, (a, b), dst)
        if isinstance(a, int) and isinstance(b, int):
            self._write_bits(dst, self.sram.bitline_xor(a, b))
        else:
            self._write_bits(dst, self._read_bits(a) ^ self._read_bits(b))

    def logic_nor(self, dst: Dst, a: Src, b: Src) -> None:
        """In-array NOR -- the second sense amplifier of Fig. 6-a."""
        self._charge(OpKind.NOR, (a, b), dst)
        if isinstance(a, int) and isinstance(b, int):
            self._write_bits(dst, self.sram.bitline_nor(a, b))
        else:
            self._write_bits(
                dst, 1 - (self._read_bits(a) | self._read_bits(b)))

    def shift_lanes(self, dst: Dst, a: Src, pixels: int,
                    signed: bool = False) -> None:
        """Shift the word line by whole lanes through the shifter."""
        bits = self._read_bits(a)
        self._charge(OpKind.SHIFT_LANES, (a,), dst, f"{pixels}pix")
        self._write_bits(
            dst, self.acc.shift_lanes(bits, pixels, self._precision))

    def shift_bits(self, dst: Dst, a: Src, amount: int,
                   signed: bool = True) -> None:
        """Shift each lane by ``amount`` bits (left positive)."""
        bits = self._read_bits(a)
        self._charge(OpKind.SHIFT_BITS, (a,), dst, f"{amount}b")
        if amount >= 0:
            vals = self._lanes_of(bits, signed)
            out = ops.shift_left(vals, amount, self._precision, signed)
            self._write_bits(dst, self._bits_of(out))
        else:
            self._write_bits(dst, self.acc.shift_bits_right(
                bits, -amount, self._precision, arithmetic=signed))

    def copy(self, dst: Dst, src: Src, signed: bool = True) -> None:
        """Move a value through the accumulator unchanged."""
        bits = self._read_bits(src)
        self._charge(OpKind.COPY, (src,), dst)
        self._write_bits(dst, bits)

    def abs_diff(self, dst: Dst, a: Src, b: Src,
                 signed: bool = False) -> None:
        """Fig. 7-a executed literally on the bit datapath."""
        a_bits, b_bits = self._read_bits(a), self._read_bits(b)
        self._charge(OpKind.SUB, (a, b), TMP, "absdiff:diff")
        self._charge(OpKind.XOR, (TMP,), dst, "absdiff:neg")
        diff = self.acc.subtract(a_bits, b_bits, self._precision)
        # N: all-ones in lanes whose difference is negative.  For
        # unsigned lanes that is the borrow (carry-out 0); for signed
        # lanes the saturation unit uses the signed comparison instead.
        if signed:
            negative = (self._lanes_of(a_bits, True) <
                        self._lanes_of(b_bits, True)).astype(np.uint64)
        else:
            negative = 1 - diff.carry_mask.astype(np.uint64)
        n_mask_vals = negative * ((1 << self._precision) - 1)
        n_bits = lanes_to_bits(n_mask_vals, self._precision,
                               self.config.wordline_bits)
        plus_n = self.acc.add(diff.sum_bits, n_bits, self._precision)
        out = plus_n.sum_bits ^ n_bits
        self._write_bits(dst, out)

    def maximum(self, dst: Dst, a: Src, b: Src,
                signed: bool = False) -> None:
        """``max(a, b) = sat0(a - b) + b`` on the bit datapath."""
        a_bits, b_bits = self._read_bits(a), self._read_bits(b)
        self._charge(OpKind.SUB, (a, b), TMP, "max:satsub")
        self._charge(OpKind.ADD, (TMP, b), dst, "max:add")
        diff = self._sat0_diff(a_bits, b_bits, signed)
        out = self.acc.add(diff, b_bits, self._precision)
        self._write_bits(dst, out.sum_bits)

    def minimum(self, dst: Dst, a: Src, b: Src,
                signed: bool = False) -> None:
        """``min(a, b) = a - sat0(a - b)`` on the bit datapath."""
        a_bits, b_bits = self._read_bits(a), self._read_bits(b)
        self._charge(OpKind.SUB, (a, b), TMP, "min:satsub")
        self._charge(OpKind.SUB, (a, TMP), dst, "min:sub")
        diff = self._sat0_diff(a_bits, b_bits, signed)
        out = self.acc.subtract(a_bits, diff, self._precision)
        self._write_bits(dst, out.sum_bits)

    def _sat0_diff(self, a_bits: np.ndarray, b_bits: np.ndarray,
                   signed: bool) -> np.ndarray:
        """``max(a - b, 0)`` as bits, via the borrow/sign masks."""
        diff = self.acc.subtract(a_bits, b_bits, self._precision)
        if signed:
            negative = (self._lanes_of(a_bits, True) <
                        self._lanes_of(b_bits, True))
        else:
            negative = diff.carry_mask == 0  # borrowed
        vals = bits_to_lanes(diff.sum_bits, self._precision)
        vals = np.where(negative, np.uint64(0), vals)
        return lanes_to_bits(vals, self._precision,
                             self.config.wordline_bits)

    def mul(self, dst: Dst, a: Src, b: Src, rshift: int = 0,
            saturate: bool = True, signed: bool = True) -> None:
        """MSB-first shift-add multiplication (Fig. 7-c), bit-level.

        Negative operands are inverted before and the product sign
        restored after, as the paper prescribes.  The double-width
        product is accumulated lane-locally, then ``rshift`` and the
        narrowing to lane width are applied by the shifter/saturation
        unit.
        """
        n = self._precision
        va = self._lanes_of(self._read_bits(a), signed)
        vb = self._lanes_of(self._read_bits(b), signed)
        self._charge(OpKind.MUL, (a, b), dst, f">>{rshift}")
        mag_a = np.abs(va).astype(np.uint64)
        mag_b = np.abs(vb).astype(np.uint64)
        # The genuine MSB-first loop: shift partial product left, add the
        # multiplicand where the current multiplier bit is set.
        partial = np.zeros_like(mag_a)
        for bit in range(n - 1, -1, -1):
            partial = partial << np.uint64(1)
            take = (mag_b >> np.uint64(bit)) & np.uint64(1)
            partial = partial + mag_a * take
        if signed or n >= 64:
            prod = partial.astype(np.int64)
            neg = (va < 0) ^ (vb < 0)
            prod = np.where(neg, -prod, prod) >> rshift
        else:
            # The exact 2n-bit unsigned product can exceed int64 at
            # n = 32; keep it in uint64 (wrap/saturate narrow it).
            prod = partial >> np.uint64(rshift)
        out = ops.saturate(prod, n, signed) if saturate else \
            ops.wrap(prod, n, signed)
        self._write_bits(dst, self._bits_of(out))

    def div(self, dst: Dst, a: Src, b: Src, lshift: int = 0,
            signed: bool = True) -> None:
        """Restoring division (Fig. 7-d), bit-level.

        ``lshift`` is unsupported here (word-level only); quotient bits
        are developed MSB-first into the LSBs while the partial
        remainder lives in the Tmp register.
        """
        if lshift:
            raise NotImplementedError(
                "BitPIMDevice models plain n-bit division only")
        n = self._precision
        va = self._lanes_of(self._read_bits(a), signed)
        vb = self._lanes_of(self._read_bits(b), signed)
        self._charge(OpKind.DIV, (a, b), dst)
        # Magnitudes develop in uint64: |INT64_MIN| does not exist in
        # int64, and the restoring loop's partial remainder is unsigned
        # in the hardware anyway.
        ua = va.astype(np.uint64)
        ub = vb.astype(np.uint64)
        num = np.where(va < 0, ~ua + np.uint64(1), ua)
        den = np.where(vb < 0, ~ub + np.uint64(1), ub)
        remainder = np.zeros_like(num)
        quotient = np.zeros_like(num)
        for bit in range(n - 1, -1, -1):
            remainder = (remainder << np.uint64(1)) | \
                ((num >> np.uint64(bit)) & np.uint64(1))
            ok = (remainder >= den) & (den > np.uint64(0))
            remainder = np.where(ok, remainder - den, remainder)
            quotient = (quotient << np.uint64(1)) | ok.astype(np.uint64)
        neg = (va < 0) ^ (vb < 0)
        quotient = np.where(neg, ~quotient + np.uint64(1),
                            quotient).astype(np.int64)
        # 64-bit lanes take the signed bounds regardless of view (the
        # int64 host bound; see repro.fixedpoint.ops._bounds).
        _, hi = (-(1 << (n - 1)), (1 << (n - 1)) - 1) \
            if signed or n >= 64 else (0, (1 << n) - 1)
        overflow = np.where(va >= 0, hi, -hi if signed else hi)
        quotient = np.where(vb == 0, overflow, quotient)
        self._write_bits(dst, self._bits_of(
            ops.saturate(quotient, n, signed)))
