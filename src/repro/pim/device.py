"""The SRAM-PIM device simulators.

Two devices share one micro-op interface and one cost contract:

* :class:`PIMDevice` -- the word-level device.  Rows are stored as raw
  bytes; every micro-op interprets them as lanes of the current
  precision, computes with the lane semantics of
  :mod:`repro.fixedpoint.ops`, and charges the
  :class:`~repro.pim.cost.CostLedger`.  This is the device the EBVO
  kernels program, fast enough to process full QVGA frames.

* :class:`BitPIMDevice` -- the bit-true reference.  Rows live in a
  :class:`~repro.pim.bitsram.BitSRAM`; addition/subtraction walk the
  8-bit accumulator slices with gated carries
  (:class:`~repro.pim.accumulator.SliceAccumulator`); multiplication and
  division execute the actual MSB-first shift-add and restoring-division
  loops of Fig. 7.  Property tests pin :class:`PIMDevice` to it.

Operands are SRAM rows (``int`` indices), the Tmp register (the
:data:`TMP` sentinel) or broadcast immediates (:class:`Imm`, routed
through the input multiplexer).  Results go to a row (paying the
write-back cycle) or to the Tmp register (free, the paper's key energy
optimization).

Cost contract (DESIGN.md section 5):

* every basic op is 1 cycle; ``mul``/``div`` are ``n + 2`` cycles
  including their internal SRAM read/write overhead;
* an SRAM destination adds 1 write-back cycle and 1 SRAM write access;
* each SRAM source costs one row activation; each Tmp source or
  destination costs one Tmp access;
* composite ops (absolute difference, min/max) are built from the basic
  ops, so their cost emerges from composition;
* host DMA (``load``/``store``) is tracked separately and excluded from
  cycle counts, matching the paper's exclusion of I/O overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from repro.fixedpoint import ops
from repro.pim.accumulator import SliceAccumulator
from repro.pim.bitsram import BitSRAM, bits_to_lanes, lanes_to_bits
from repro.pim.config import DEFAULT_CONFIG, PIMConfig
from repro.pim.cost import CostLedger
from repro.pim.isa import OpKind, TraceRecord, op_cycles

__all__ = ["PIMDevice", "BitPIMDevice", "TMP", "Tmp", "Imm"]


class _TmpSentinel:
    """Marker for a Tmp register operand.

    The paper's design has one Tmp register; section 5.4 notes that
    "we could use more registers to further improve the efficiency".
    The device supports a configurable bank: :data:`TMP` is register 0,
    ``Tmp(i)`` addresses the others.
    """

    def __init__(self, index: int = 0):
        self.index = index

    def __repr__(self) -> str:
        return "TMP" if self.index == 0 else f"TMP{self.index}"

    def __eq__(self, other) -> bool:
        return isinstance(other, _TmpSentinel) and \
            other.index == self.index

    def __hash__(self) -> int:
        return hash(("tmp", self.index))


#: The (first) Tmp register operand.
TMP = _TmpSentinel(0)


def Tmp(index: int) -> _TmpSentinel:  # noqa: N802 (operand constructor)
    """Operand for Tmp register ``index`` (0 is :data:`TMP`)."""
    return _TmpSentinel(index)


@dataclass(frozen=True)
class Imm:
    """A broadcast immediate routed through the input multiplexer.

    The hardware feeds constants (thresholds, shift counts) to the
    accumulator without an SRAM access; we model that as a free operand.
    """

    value: Union[int, float]


Src = Union[int, _TmpSentinel, Imm]
Dst = Union[int, _TmpSentinel]

_LANE_DTYPES = {8: "<u1", 16: "<u2", 32: "<u4", 64: "<u8"}


class _DeviceCore:
    """State and cost accounting shared by both device flavours."""

    def __init__(self, config: PIMConfig = DEFAULT_CONFIG,
                 trace: bool = False):
        self.config = config
        self.ledger = CostLedger()
        self._precision = 8
        self._trace_enabled = trace
        self.trace: List[TraceRecord] = []

    # -- configuration -------------------------------------------------

    @property
    def precision(self) -> int:
        """Current lane width in bits."""
        return self._precision

    def set_precision(self, precision: int) -> None:
        """Reconfigure the carry control to a new lane width.

        Run-time reconfiguration is a control-register write; we charge
        no cycles for it (it overlaps with instruction issue).
        """
        self.config.validate_precision(precision)
        self._precision = precision

    @property
    def lanes(self) -> int:
        """SIMD lanes at the current precision."""
        return self.config.lanes(self._precision)

    # -- cost accounting -----------------------------------------------

    def _charge(self, kind: OpKind, srcs, dst: Dst,
                note: Optional[str] = None,
                operand_bits: Optional[int] = None) -> None:
        n = operand_bits or self._precision
        cycles = op_cycles(kind, n)
        sram_reads = sum(1 for s in srcs if isinstance(s, int))
        tmp_accesses = sum(1 for s in srcs if isinstance(s, _TmpSentinel))
        sram_writes = 0
        logic = 1
        if kind in (OpKind.MUL, OpKind.DIV):
            # n shift-add/subtract steps, partial results held in Tmp.
            logic = n
            tmp_accesses += n
        if isinstance(dst, int):
            sram_writes += 1
            if kind not in (OpKind.MUL, OpKind.DIV):
                cycles += 1  # write-back cycle (mul/div include theirs)
        else:
            tmp_accesses += 1
        self.ledger.charge(kind, cycles, sram_reads=sram_reads,
                           sram_writes=sram_writes,
                           tmp_accesses=tmp_accesses, logic_ops=logic,
                           precision=n)
        if self._trace_enabled:
            self.trace.append(TraceRecord(
                kind=kind, precision=n, cycles=cycles,
                dst=self._name(dst),
                srcs=tuple(self._name(s) for s in srcs), note=note))

    @staticmethod
    def _name(operand) -> str:
        if isinstance(operand, Imm):
            return f"#{operand.value}"
        if isinstance(operand, _TmpSentinel):
            return "tmp" if operand.index == 0 else f"tmp{operand.index}"
        return f"r{operand}"


class PIMDevice(_DeviceCore):
    """Word-level SRAM-PIM device with cycle/energy accounting."""

    def __init__(self, config: PIMConfig = DEFAULT_CONFIG,
                 trace: bool = False):
        super().__init__(config, trace)
        self._mem = np.zeros((config.num_rows, config.row_bytes),
                             dtype=np.uint8)
        self._tmp = [np.zeros(config.row_bytes, dtype=np.uint8)
                     for _ in range(config.num_tmp_registers)]

    # -- storage views ---------------------------------------------------

    def _unpack(self, raw_bytes: np.ndarray, signed: bool) -> np.ndarray:
        """Interpret row bytes as int64 lane values at current precision."""
        lanes = raw_bytes.view(_LANE_DTYPES[self._precision])
        vals = lanes.astype(np.int64) if self._precision < 64 else \
            lanes.view(np.int64).copy()
        if signed:
            vals = ops.wrap(vals, self._precision, signed=True)
        return vals

    def _pack(self, values: np.ndarray) -> np.ndarray:
        """Pack int64 lane values (any sign) into row bytes, wrapping."""
        n = self._precision
        u = np.asarray(values, dtype=np.int64)
        if n < 64:
            u = u & ((1 << n) - 1)
            return u.astype(_LANE_DTYPES[n]).view(np.uint8)
        return u.view(np.uint64).astype("<u8").view(np.uint8)

    def _read(self, src: Src, signed: bool) -> np.ndarray:
        if isinstance(src, Imm):
            val = int(src.value)
            lo, hi = (-(1 << (self._precision - 1)),
                      (1 << (self._precision - 1)) - 1) if signed else \
                (0, (1 << self._precision) - 1)
            if not lo <= val <= hi:
                raise ValueError(
                    f"immediate {val} exceeds {self._precision}-bit range")
            return np.full(self.lanes, val, dtype=np.int64)
        if isinstance(src, _TmpSentinel):
            self._check_tmp(src)
            return self._unpack(self._tmp[src.index], signed)
        self._check_row(src)
        return self._unpack(self._mem[src], signed)

    def _write(self, dst: Dst, values: np.ndarray) -> None:
        packed = self._pack(values)
        if isinstance(dst, _TmpSentinel):
            self._check_tmp(dst)
            self._tmp[dst.index][:] = packed
        else:
            self._check_row(dst)
            self._mem[dst][:] = packed

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.config.num_rows:
            raise IndexError(
                f"row {row} out of range [0, {self.config.num_rows})")

    def _check_tmp(self, tmp: _TmpSentinel) -> None:
        if not 0 <= tmp.index < self.config.num_tmp_registers:
            raise IndexError(
                f"tmp register {tmp.index} out of range "
                f"[0, {self.config.num_tmp_registers})")

    # -- host DMA (excluded from cycle counts) ---------------------------

    def load(self, row: int, values, signed: bool = True) -> None:
        """Host DMA: write lane values into a row.

        Short vectors are zero-padded; values must fit the current lane
        width (signed or unsigned per ``signed``).
        """
        self._check_row(row)
        vals = np.asarray(values, dtype=np.int64).ravel()
        if vals.size > self.lanes:
            raise ValueError(f"{vals.size} values exceed {self.lanes} lanes")
        lo = -(1 << (self._precision - 1)) if signed else 0
        hi = (1 << (self._precision - 1)) - 1 if signed \
            else (1 << self._precision) - 1
        if vals.size and (vals.min() < lo or vals.max() > hi):
            raise ValueError(f"values exceed {self._precision}-bit range")
        full = np.zeros(self.lanes, dtype=np.int64)
        full[:vals.size] = vals
        self._mem[row][:] = self._pack(full)
        self.ledger.charge_host_transfer()

    def store(self, row: int, signed: bool = True) -> np.ndarray:
        """Host DMA: read a row back as lane values."""
        self._check_row(row)
        self.ledger.charge_host_transfer()
        return self._read(row, signed)

    def read_tmp(self, signed: bool = True, index: int = 0) -> np.ndarray:
        """Host debug view of a Tmp register (no charge)."""
        return self._unpack(self._tmp[index], signed)

    def inject_fault(self, row: int, bit: int) -> None:
        """Flip one stored SRAM bit (fault-injection hook for tests).

        Args:
            row: Word line index.
            bit: Bit position within the word line (0 = LSB of lane 0).
        """
        self._check_row(row)
        if not 0 <= bit < self.config.wordline_bits:
            raise IndexError(f"bit {bit} outside the word line")
        self._mem[row][bit // 8] ^= np.uint8(1 << (bit % 8))

    # -- single-cycle micro-ops -------------------------------------------

    def _binary(self, kind: OpKind, dst: Dst, a: Src, b: Src, fn,
                signed: bool, note: Optional[str] = None) -> None:
        va = self._read(a, signed)
        vb = self._read(b, signed)
        self._charge(kind, (a, b), dst, note)
        self._write(dst, fn(va, vb))

    def add(self, dst: Dst, a: Src, b: Src, saturate: bool = False,
            signed: bool = True) -> None:
        """``dst = a + b`` (wrapping, or saturating when requested)."""
        n = self._precision
        fn = (lambda x, y: ops.sat_add(x, y, n, signed)) if saturate else \
            (lambda x, y: ops.wrap(x + y, n, signed))
        self._binary(OpKind.ADD, dst, a, b, fn, signed,
                     "sat" if saturate else None)

    def sub(self, dst: Dst, a: Src, b: Src, saturate: bool = False,
            signed: bool = True) -> None:
        """``dst = a - b`` (wrapping, or saturating when requested)."""
        n = self._precision
        fn = (lambda x, y: ops.sat_sub(x, y, n, signed)) if saturate else \
            (lambda x, y: ops.wrap(x - y, n, signed))
        self._binary(OpKind.SUB, dst, a, b, fn, signed,
                     "sat" if saturate else None)

    def avg(self, dst: Dst, a: Src, b: Src, signed: bool = False) -> None:
        """``dst = (a + b) >> 1`` -- the LPF primitive."""
        self._binary(OpKind.AVG, dst, a, b, ops.average, signed)

    def cmp_gt(self, dst: Dst, a: Src, b: Src, signed: bool = True) -> None:
        """``dst = (a > b) ? 1 : 0`` per lane (borrow-derived mask)."""
        self._binary(OpKind.CMP_GT, dst, a, b, ops.greater_than, signed)

    def logic_and(self, dst: Dst, a: Src, b: Src) -> None:
        """Bitwise AND (in-array when both operands are rows)."""
        self._binary(OpKind.AND, dst, a, b, lambda x, y: x & y, False)

    def logic_or(self, dst: Dst, a: Src, b: Src) -> None:
        """Bitwise OR."""
        self._binary(OpKind.OR, dst, a, b, lambda x, y: x | y, False)

    def logic_xor(self, dst: Dst, a: Src, b: Src) -> None:
        """Bitwise XOR."""
        self._binary(OpKind.XOR, dst, a, b, lambda x, y: x ^ y, False)

    def shift_lanes(self, dst: Dst, a: Src, pixels: int,
                    signed: bool = False) -> None:
        """Shift by whole lanes: lane ``i`` receives lane ``i + pixels``.

        Positive shifts bring in right-hand neighbours (the "<< 1pix"
        of Fig. 2); vacated lanes are zero-filled.
        """
        va = self._read(a, signed)
        self._charge(OpKind.SHIFT_LANES, (a,), dst, f"{pixels}pix")
        out = np.zeros_like(va)
        if pixels == 0:
            out[:] = va
        elif pixels > 0:
            out[:-pixels or None] = va[pixels:]
        else:
            out[-pixels:] = va[:pixels]
        self._write(dst, out)

    def shift_bits(self, dst: Dst, a: Src, amount: int,
                   signed: bool = True) -> None:
        """Shift each lane by ``amount`` bits (positive = left, wrapping;
        negative = right, arithmetic when ``signed``)."""
        va = self._read(a, signed)
        self._charge(OpKind.SHIFT_BITS, (a,), dst, f"{amount}b")
        if amount >= 0:
            out = ops.shift_left(va, amount, self._precision, signed)
        else:
            out = ops.shift_right(va, -amount, arithmetic=signed)
        self._write(dst, out)

    def copy(self, dst: Dst, src: Src, signed: bool = True) -> None:
        """Move a value through the accumulator unchanged."""
        va = self._read(src, signed)
        self._charge(OpKind.COPY, (src,), dst)
        self._write(dst, va)

    # -- composite single-cycle-per-step macros ----------------------------

    def abs_diff(self, dst: Dst, a: Src, b: Src,
                 signed: bool = False) -> None:
        """``dst = |a - b|`` via the carry-extension trick (Fig. 7-a).

        Two accumulator steps: the subtraction that latches the borrow
        mask, then the conditional negation ``(M + N) ^ N``.
        """
        va = self._read(a, signed)
        vb = self._read(b, signed)
        self._charge(OpKind.SUB, (a, b), TMP, "absdiff:diff")
        self._charge(OpKind.XOR, (TMP,), dst, "absdiff:neg")
        self._write(dst, ops.abs_diff(va, vb))

    def maximum(self, dst: Dst, a: Src, b: Src,
                signed: bool = False) -> None:
        """``dst = max(a, b) = sat0(a - b) + b`` (Fig. 7-b)."""
        va = self._read(a, signed)
        vb = self._read(b, signed)
        n = self._precision
        self._charge(OpKind.SUB, (a, b), TMP, "max:satsub")
        self._charge(OpKind.ADD, (TMP, b), dst, "max:add")
        self._write(dst, ops.branchfree_max(va, vb, n, signed))

    def minimum(self, dst: Dst, a: Src, b: Src,
                signed: bool = False) -> None:
        """``dst = min(a, b) = a - sat0(a - b)`` (Fig. 7-b)."""
        va = self._read(a, signed)
        vb = self._read(b, signed)
        n = self._precision
        self._charge(OpKind.SUB, (a, b), TMP, "min:satsub")
        self._charge(OpKind.SUB, (a, TMP), dst, "min:sub")
        self._write(dst, ops.branchfree_min(va, vb, n, signed))

    # -- multi-cycle ops ----------------------------------------------------

    def mul(self, dst: Dst, a: Src, b: Src, rshift: int = 0,
            saturate: bool = True, signed: bool = True,
            multiplier_bits: Optional[int] = None) -> None:
        """``dst = (a * b) >> rshift`` in ``n + 2`` cycles (Fig. 7-c).

        The full 2n-bit product is formed MSB-first in the accumulator;
        ``rshift`` realigns fixed-point products (for example Q1.15 x
        Q4.12 with ``rshift=15`` yields Q4.12).  The narrowed result
        saturates by default, wraps otherwise.

        ``multiplier_bits`` shortens the MSB-first loop when operand
        ``b`` is known to be narrower than the lane (e.g. 16-bit Q14.2
        Jacobians multiplied inside 32-bit Q29.3 accumulation lanes):
        the loop runs one step per multiplier bit, so cycles become
        ``multiplier_bits + 2``.  The values of ``b`` are checked
        against the declared width.
        """
        va = self._read(a, signed)
        vb = self._read(b, signed)
        n = self._precision
        if multiplier_bits is not None:
            lo = -(1 << (multiplier_bits - 1)) if signed else 0
            hi = (1 << (multiplier_bits - 1)) - 1 if signed \
                else (1 << multiplier_bits) - 1
            if vb.size and (vb.min() < lo or vb.max() > hi):
                raise ValueError(
                    f"multiplier values exceed {multiplier_bits} bits")
        self._charge(OpKind.MUL, (a, b), dst, f">>{rshift}",
                     operand_bits=multiplier_bits)
        prod = ops.multiply(va, vb, n, signed) >> rshift
        out = ops.saturate(prod, n, signed) if saturate else \
            ops.wrap(prod, n, signed)
        self._write(dst, out)

    def div(self, dst: Dst, a: Src, b: Src, lshift: int = 0,
            signed: bool = True) -> None:
        """``dst = (a << lshift) / b`` in ``n + 2`` cycles (Fig. 7-d).

        Restoring division on magnitudes with sign fix-up (C-style
        truncation); ``lshift`` pre-scales the numerator for fixed-point
        quotients.  Division by zero saturates toward the signed bound.
        """
        va = self._read(a, signed) << lshift
        vb = self._read(b, signed)
        n = self._precision
        self._charge(OpKind.DIV, (a, b), dst, f"<<{lshift}")
        wide = max(n, int(va.dtype.itemsize * 8) - 1)
        q = ops.divide(va, vb, wide, signed)
        # Division by zero saturates toward the *lane* bound, as the
        # restoring loop would leave an all-ones quotient.
        lane_hi = (1 << (n - 1)) - 1 if signed else (1 << n) - 1
        q = np.where(vb == 0, np.where(va >= 0, lane_hi,
                                       -lane_hi if signed else lane_hi), q)
        self._write(dst, ops.saturate(q, n, signed))


class BitPIMDevice(_DeviceCore):
    """Bit-true reference device built on the slice accumulator.

    Supports the same micro-ops as :class:`PIMDevice` (minus the
    fixed-point ``rshift``/``lshift`` conveniences) but computes through
    the explicit bit datapath: sense-amp logic for AND/OR/XOR, gated
    slice carries for add/sub, and the genuine iterative algorithms of
    Fig. 7 for absolute difference, min/max, multiplication and
    division.  Intended for small configurations in equivalence tests.
    """

    def __init__(self, config: PIMConfig = PIMConfig(wordline_bits=64,
                                                     num_rows=16),
                 trace: bool = False):
        super().__init__(config, trace)
        self.sram = BitSRAM(config.num_rows, config.wordline_bits)
        self.acc = SliceAccumulator(config.wordline_bits, config.slice_bits)
        self._tmp_bits = [np.zeros(config.wordline_bits, dtype=np.uint8)
                          for _ in range(config.num_tmp_registers)]

    # -- bit-level operand plumbing --------------------------------------

    def _to_unsigned(self, vals: np.ndarray) -> np.ndarray:
        mask = (1 << self._precision) - 1
        return (np.asarray(vals, dtype=np.int64) & mask).astype(np.uint64)

    def _from_unsigned(self, u: np.ndarray, signed: bool) -> np.ndarray:
        vals = u.astype(np.int64)
        return ops.wrap(vals, self._precision, signed) if signed else vals

    def _read_bits(self, src: Src) -> np.ndarray:
        if isinstance(src, Imm):
            u = self._to_unsigned(np.full(self.lanes, int(src.value)))
            return lanes_to_bits(u, self._precision,
                                 self.config.wordline_bits)
        if isinstance(src, _TmpSentinel):
            return self._tmp_bits[src.index].copy()
        return self.sram.read_row(src)

    def _write_bits(self, dst: Dst, bits: np.ndarray) -> None:
        if isinstance(dst, _TmpSentinel):
            self._tmp_bits[dst.index] = np.asarray(bits,
                                                   dtype=np.uint8).copy()
        else:
            self.sram.write_row(dst, bits)

    def _lanes_of(self, bits: np.ndarray, signed: bool) -> np.ndarray:
        return self._from_unsigned(
            bits_to_lanes(bits, self._precision), signed)

    def _bits_of(self, vals: np.ndarray) -> np.ndarray:
        return lanes_to_bits(self._to_unsigned(vals), self._precision,
                             self.config.wordline_bits)

    # -- host DMA ---------------------------------------------------------

    def load(self, row: int, values, signed: bool = True) -> None:
        """Host DMA: write lane values into a row."""
        vals = np.asarray(values, dtype=np.int64).ravel()
        full = np.zeros(self.lanes, dtype=np.int64)
        full[:vals.size] = vals
        self.sram.write_row(row, self._bits_of(full))
        self.ledger.charge_host_transfer()

    def store(self, row: int, signed: bool = True) -> np.ndarray:
        """Host DMA: read a row back as lane values."""
        self.ledger.charge_host_transfer()
        return self._lanes_of(self.sram.read_row(row), signed)

    def read_tmp(self, signed: bool = True, index: int = 0) -> np.ndarray:
        """Host debug view of a Tmp register (no charge)."""
        return self._lanes_of(self._tmp_bits[index], signed)

    # -- micro-ops through the slice datapath ------------------------------

    def _saturate_from_masks(self, sum_bits: np.ndarray, va: np.ndarray,
                             vb: np.ndarray, subtract: bool,
                             signed: bool) -> np.ndarray:
        """Apply the saturation unit to a raw accumulator result.

        The hardware decides saturation from the carry-extension mask
        and the operand sign bits; functionally that equals clamping the
        wide-precision result, which is what we compute here from the
        already-available lane values.
        """
        wide = va - vb if subtract else va + vb
        return self._bits_of(ops.saturate(wide, self._precision, signed))

    def add(self, dst: Dst, a: Src, b: Src, saturate: bool = False,
            signed: bool = True) -> None:
        """``dst = a + b`` through the slice adder."""
        a_bits, b_bits = self._read_bits(a), self._read_bits(b)
        self._charge(OpKind.ADD, (a, b), dst)
        result = self.acc.add(a_bits, b_bits, self._precision)
        out = result.sum_bits
        if saturate:
            out = self._saturate_from_masks(
                out, self._lanes_of(a_bits, signed),
                self._lanes_of(b_bits, signed), False, signed)
        self._write_bits(dst, out)

    def sub(self, dst: Dst, a: Src, b: Src, saturate: bool = False,
            signed: bool = True) -> None:
        """``dst = a - b`` via two's complement through the slice adder."""
        a_bits, b_bits = self._read_bits(a), self._read_bits(b)
        self._charge(OpKind.SUB, (a, b), dst)
        result = self.acc.subtract(a_bits, b_bits, self._precision)
        out = result.sum_bits
        if saturate:
            out = self._saturate_from_masks(
                out, self._lanes_of(a_bits, signed),
                self._lanes_of(b_bits, signed), True, signed)
        self._write_bits(dst, out)

    def avg(self, dst: Dst, a: Src, b: Src, signed: bool = False) -> None:
        """``dst = (a + b) >> 1`` -- slice add, then the carry mask
        supplies the shifted-out ninth bit."""
        a_bits, b_bits = self._read_bits(a), self._read_bits(b)
        self._charge(OpKind.AVG, (a, b), dst)
        result = self.acc.add(a_bits, b_bits, self._precision)
        vals = bits_to_lanes(result.sum_bits, self._precision).astype(
            np.int64)
        vals |= result.carry_mask.astype(np.int64) << self._precision
        if signed:
            sa = self._lanes_of(a_bits, True)
            sb = self._lanes_of(b_bits, True)
            vals = (sa + sb)
        self._write_bits(dst, self._bits_of(vals >> 1))

    def cmp_gt(self, dst: Dst, a: Src, b: Src, signed: bool = True) -> None:
        """``dst = a > b`` from the borrow mask of ``b - a``."""
        a_bits, b_bits = self._read_bits(a), self._read_bits(b)
        self._charge(OpKind.CMP_GT, (a, b), dst)
        if signed:
            mask = (self._lanes_of(a_bits, True) >
                    self._lanes_of(b_bits, True)).astype(np.int64)
        else:
            # not-borrow of (b - a) is 1 when b >= a; invert for a > b.
            result = self.acc.subtract(b_bits, a_bits, self._precision)
            mask = 1 - result.carry_mask.astype(np.int64)
        self._write_bits(dst, self._bits_of(mask))

    def logic_and(self, dst: Dst, a: Src, b: Src) -> None:
        """In-array AND when both operands are rows, else gate logic."""
        self._charge(OpKind.AND, (a, b), dst)
        if isinstance(a, int) and isinstance(b, int):
            self._write_bits(dst, self.sram.bitline_and(a, b))
        else:
            self._write_bits(dst, self._read_bits(a) & self._read_bits(b))

    def logic_or(self, dst: Dst, a: Src, b: Src) -> None:
        """In-array OR (NOT NOR) when both operands are rows."""
        self._charge(OpKind.OR, (a, b), dst)
        if isinstance(a, int) and isinstance(b, int):
            self._write_bits(dst, self.sram.bitline_or(a, b))
        else:
            self._write_bits(dst, self._read_bits(a) | self._read_bits(b))

    def logic_xor(self, dst: Dst, a: Src, b: Src) -> None:
        """In-array XOR (NOR of the two SA outputs) for row operands."""
        self._charge(OpKind.XOR, (a, b), dst)
        if isinstance(a, int) and isinstance(b, int):
            self._write_bits(dst, self.sram.bitline_xor(a, b))
        else:
            self._write_bits(dst, self._read_bits(a) ^ self._read_bits(b))

    def shift_lanes(self, dst: Dst, a: Src, pixels: int,
                    signed: bool = False) -> None:
        """Shift the word line by whole lanes through the shifter."""
        bits = self._read_bits(a)
        self._charge(OpKind.SHIFT_LANES, (a,), dst, f"{pixels}pix")
        self._write_bits(
            dst, self.acc.shift_lanes(bits, pixels, self._precision))

    def shift_bits(self, dst: Dst, a: Src, amount: int,
                   signed: bool = True) -> None:
        """Shift each lane by ``amount`` bits (left positive)."""
        bits = self._read_bits(a)
        self._charge(OpKind.SHIFT_BITS, (a,), dst, f"{amount}b")
        if amount >= 0:
            vals = self._lanes_of(bits, signed)
            out = ops.shift_left(vals, amount, self._precision, signed)
            self._write_bits(dst, self._bits_of(out))
        else:
            self._write_bits(dst, self.acc.shift_bits_right(
                bits, -amount, self._precision, arithmetic=signed))

    def copy(self, dst: Dst, src: Src, signed: bool = True) -> None:
        """Move a value through the accumulator unchanged."""
        bits = self._read_bits(src)
        self._charge(OpKind.COPY, (src,), dst)
        self._write_bits(dst, bits)

    def abs_diff(self, dst: Dst, a: Src, b: Src,
                 signed: bool = False) -> None:
        """Fig. 7-a executed literally on the bit datapath."""
        a_bits, b_bits = self._read_bits(a), self._read_bits(b)
        self._charge(OpKind.SUB, (a, b), TMP, "absdiff:diff")
        self._charge(OpKind.XOR, (TMP,), dst, "absdiff:neg")
        diff = self.acc.subtract(a_bits, b_bits, self._precision)
        # N: all-ones in lanes whose difference is negative.  For
        # unsigned lanes that is the borrow (carry-out 0); for signed
        # lanes the saturation unit uses the signed comparison instead.
        if signed:
            negative = (self._lanes_of(a_bits, True) <
                        self._lanes_of(b_bits, True)).astype(np.uint64)
        else:
            negative = 1 - diff.carry_mask.astype(np.uint64)
        n_mask_vals = negative * ((1 << self._precision) - 1)
        n_bits = lanes_to_bits(n_mask_vals, self._precision,
                               self.config.wordline_bits)
        plus_n = self.acc.add(diff.sum_bits, n_bits, self._precision)
        out = plus_n.sum_bits ^ n_bits
        self._write_bits(dst, out)

    def maximum(self, dst: Dst, a: Src, b: Src,
                signed: bool = False) -> None:
        """``max(a, b) = sat0(a - b) + b`` on the bit datapath."""
        a_bits, b_bits = self._read_bits(a), self._read_bits(b)
        self._charge(OpKind.SUB, (a, b), TMP, "max:satsub")
        self._charge(OpKind.ADD, (TMP, b), dst, "max:add")
        diff = self._sat0_diff(a_bits, b_bits, signed)
        out = self.acc.add(diff, b_bits, self._precision)
        self._write_bits(dst, out.sum_bits)

    def minimum(self, dst: Dst, a: Src, b: Src,
                signed: bool = False) -> None:
        """``min(a, b) = a - sat0(a - b)`` on the bit datapath."""
        a_bits, b_bits = self._read_bits(a), self._read_bits(b)
        self._charge(OpKind.SUB, (a, b), TMP, "min:satsub")
        self._charge(OpKind.SUB, (a, TMP), dst, "min:sub")
        diff = self._sat0_diff(a_bits, b_bits, signed)
        out = self.acc.subtract(a_bits, diff, self._precision)
        self._write_bits(dst, out.sum_bits)

    def _sat0_diff(self, a_bits: np.ndarray, b_bits: np.ndarray,
                   signed: bool) -> np.ndarray:
        """``max(a - b, 0)`` as bits, via the borrow/sign masks."""
        diff = self.acc.subtract(a_bits, b_bits, self._precision)
        if signed:
            negative = (self._lanes_of(a_bits, True) <
                        self._lanes_of(b_bits, True))
        else:
            negative = diff.carry_mask == 0  # borrowed
        vals = bits_to_lanes(diff.sum_bits, self._precision)
        vals = np.where(negative, np.uint64(0), vals)
        return lanes_to_bits(vals, self._precision,
                             self.config.wordline_bits)

    def mul(self, dst: Dst, a: Src, b: Src, rshift: int = 0,
            saturate: bool = True, signed: bool = True) -> None:
        """MSB-first shift-add multiplication (Fig. 7-c), bit-level.

        Negative operands are inverted before and the product sign
        restored after, as the paper prescribes.  The double-width
        product is accumulated lane-locally, then ``rshift`` and the
        narrowing to lane width are applied by the shifter/saturation
        unit.
        """
        n = self._precision
        va = self._lanes_of(self._read_bits(a), signed)
        vb = self._lanes_of(self._read_bits(b), signed)
        self._charge(OpKind.MUL, (a, b), dst, f">>{rshift}")
        mag_a = np.abs(va).astype(np.uint64)
        mag_b = np.abs(vb).astype(np.uint64)
        # The genuine MSB-first loop: shift partial product left, add the
        # multiplicand where the current multiplier bit is set.
        partial = np.zeros_like(mag_a)
        for bit in range(n - 1, -1, -1):
            partial = partial << np.uint64(1)
            take = (mag_b >> np.uint64(bit)) & np.uint64(1)
            partial = partial + mag_a * take
        prod = partial.astype(np.int64)
        neg = (va < 0) ^ (vb < 0)
        prod = np.where(neg, -prod, prod) >> rshift
        out = ops.saturate(prod, n, signed) if saturate else \
            ops.wrap(prod, n, signed)
        self._write_bits(dst, self._bits_of(out))

    def div(self, dst: Dst, a: Src, b: Src, lshift: int = 0,
            signed: bool = True) -> None:
        """Restoring division (Fig. 7-d), bit-level.

        ``lshift`` is unsupported here (word-level only); quotient bits
        are developed MSB-first into the LSBs while the partial
        remainder lives in the Tmp register.
        """
        if lshift:
            raise NotImplementedError(
                "BitPIMDevice models plain n-bit division only")
        n = self._precision
        va = self._lanes_of(self._read_bits(a), signed)
        vb = self._lanes_of(self._read_bits(b), signed)
        self._charge(OpKind.DIV, (a, b), dst)
        num = np.abs(va).astype(np.int64)
        den = np.abs(vb).astype(np.int64)
        remainder = np.zeros_like(num)
        quotient = np.zeros_like(num)
        for bit in range(n - 1, -1, -1):
            remainder = (remainder << 1) | ((num >> bit) & 1)
            trial = remainder - den
            ok = (trial >= 0) & (den > 0)
            remainder = np.where(ok, trial, remainder)
            quotient = (quotient << 1) | ok.astype(np.int64)
        neg = (va < 0) ^ (vb < 0)
        quotient = np.where(neg, -quotient, quotient)
        _, hi = (-(1 << (n - 1)), (1 << (n - 1)) - 1) if signed else \
            (0, (1 << n) - 1)
        overflow = np.where(va >= 0, hi, -hi if signed else hi)
        quotient = np.where(vb == 0, overflow, quotient)
        self._write_bits(dst, self._bits_of(
            ops.saturate(quotient, n, signed)))
