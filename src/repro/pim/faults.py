"""Seeded fault injection for the word-level PIM device.

Real SRAM arrays fail in two characteristic ways the paper's design
must tolerate: *stored* faults (a cell flips and stays flipped -- soft
errors, weak cells) and *sense-amp read* faults (a marginal read
returns a flipped bit once, while the stored value stays intact).
This module models both behind a deterministic, seeded plan so
robustness tests can replay the exact same fault sequence:

* :class:`FaultPlan` -- a frozen description: explicit ``(row, bit)``
  stored flips plus a per-bit transient read-error probability.
* :class:`FaultInjector` -- the live state: a seeded RNG, the corrupt
  hook the device calls on every row read, and injected-fault counts
  (mirrored into the obs metrics registry as
  ``pim_faults_injected_total{kind=...}``).

Attach with :meth:`repro.pim.device.PIMDevice.attach_fault_injector`;
:meth:`~repro.pim.device.PIMDevice.reset` detaches the injector and
zeroes the array, so a reset device is always bit-identical to a fresh
one -- the contract the serve pool's faulty-device eviction path and
the conformance tests both rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.obs.metrics import get_registry

__all__ = ["FaultPlan", "FaultInjector"]


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic description of the faults to inject.

    Attributes:
        seed: RNG seed driving the transient read-error draws.
        stored_flips: ``(row, bit)`` pairs flipped in the array once,
            at attach time (persistent until overwritten or reset).
        read_flip_prob: Probability that any given bit of a row read
            is returned flipped (transient; the stored value is
            untouched).  0 disables read faults.
        read_fault_rows: Restrict transient read faults to these rows
            (``None`` = every row is susceptible).
    """

    seed: int = 0
    stored_flips: Tuple[Tuple[int, int], ...] = ()
    read_flip_prob: float = 0.0
    read_fault_rows: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_flip_prob <= 1.0:
            raise ValueError("read_flip_prob must be in [0, 1]")


class FaultInjector:
    """Live fault state: seeded RNG, read-corruption hook, counters."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.rng = np.random.default_rng(plan.seed)
        #: Bits flipped in the stored array (via the plan or
        #: :meth:`PIMDevice.inject_fault` while attached).
        self.stored_faults = 0
        #: Bits flipped transiently on reads so far.
        self.read_faults = 0
        self._counter = get_registry().counter(
            "pim_faults_injected_total",
            "SRAM bits flipped by fault injection, by kind")

    @property
    def transient(self) -> bool:
        """Whether this injector corrupts reads (vs stored-only)."""
        return self.plan.read_flip_prob > 0.0

    def record_stored(self, count: int = 1) -> None:
        """Account for ``count`` persistent bit flips."""
        self.stored_faults += count
        self._counter.inc(count, kind="stored")

    def corrupt_read(self, raw: np.ndarray, row: int) -> np.ndarray:
        """Return ``raw`` with seeded transient bit flips applied.

        ``raw`` is the row's byte vector; the stored array is never
        modified.  Rows outside ``read_fault_rows`` pass through
        untouched (and consume no RNG draws, so fault locality does
        not perturb the sequence seen by other rows).
        """
        if not self.transient:
            return raw
        rows = self.plan.read_fault_rows
        if rows is not None and row not in rows:
            return raw
        flips = self.rng.random(raw.size * 8) < self.plan.read_flip_prob
        if not flips.any():
            return raw
        # Bit ``b`` of byte ``i`` is word-line bit ``i*8 + b`` (the
        # same LSB-first layout inject_fault uses).
        mask = np.packbits(flips.reshape(-1, 8), axis=1,
                           bitorder="little").reshape(-1)
        count = int(flips.sum())
        self.read_faults += count
        self._counter.inc(count, kind="read")
        return raw ^ mask

    def stats(self) -> dict:
        """Point-in-time injected-fault counts."""
        return {
            "seed": self.plan.seed,
            "stored_faults": self.stored_faults,
            "read_faults": self.read_faults,
            "read_flip_prob": self.plan.read_flip_prob,
        }
