"""The physical layer: a bit-parallel SRAM-PIM device simulator.

The package models the architecture of paper section 4:

* :mod:`repro.pim.config` -- array geometry and precision modes.
* :mod:`repro.pim.bitsram` -- bit-true SRAM array with sense-amp
  AND/NOR/XOR/OR bitline logic (Fig. 6-a).
* :mod:`repro.pim.accumulator` -- the peripheral accumulator/shifter in
  8-bit slices with run-time carry control (Fig. 6-c).
* :mod:`repro.pim.alu` -- lane-level functional semantics of every
  multi-stage operation (Fig. 7).
* :mod:`repro.pim.device` -- :class:`PIMDevice`, the word-level
  cycle/energy-accounted device the EBVO kernels program, and
  :class:`BitPIMDevice`, a bit-true reference device pinned to it by
  equivalence tests.
* :mod:`repro.pim.cost` / :mod:`repro.pim.energy` -- the cycle ledger and
  the 90 nm energy/area model.
* :mod:`repro.pim.program` -- program capture (:class:`ProgramRecorder`)
  and row-batched replay (:meth:`PIMDevice.run_program`) with an LRU
  :class:`ProgramCache`, bit-exact and cost-exact against the eager
  per-row path.
* :mod:`repro.pim.lowering` -- the compiled replay backend: programs
  lowered once into fused vectorized plans (``mode="compiled"``).
* :mod:`repro.pim.store` -- :class:`ProgramStore`, content-addressed
  on-disk persistence layered under :class:`ProgramCache` so new
  processes warm-start without re-recording.
"""

from repro.pim.config import PIMConfig
from repro.pim.cost import CostLedger
from repro.pim.device import TMP, BitPIMDevice, Imm, PIMDevice, Rel, Tmp
from repro.pim.energy import AreaModel, EnergyModel, EnergyReport
from repro.pim.faults import FaultInjector, FaultPlan
from repro.pim.isa import ISA_VERSION
from repro.pim.program import (
    PIMProgram,
    ProgramCache,
    ProgramRecorder,
    program_key,
)
from repro.pim.store import ProgramStore

__all__ = [
    "ISA_VERSION",
    "ProgramStore",
    "PIMConfig",
    "CostLedger",
    "PIMDevice",
    "BitPIMDevice",
    "TMP",
    "Tmp",
    "Imm",
    "Rel",
    "PIMProgram",
    "ProgramRecorder",
    "ProgramCache",
    "program_key",
    "EnergyModel",
    "EnergyReport",
    "AreaModel",
    "FaultPlan",
    "FaultInjector",
]
