"""The bit-parallel accumulator/shifter in 8-bit slices (Fig. 6-c).

The peripheral computing logic is organised as one slice per 8 bitlines.
Each slice contains an 8-bit adder; the Carry Control gates carry
propagation between adjacent slices so that the same silicon computes
320x8-bit, 160x16-bit or 80x32-bit additions.  The Carry Extension
captures the carry out of each *lane* as a bitmask used for comparison
and saturation.

This module models the slice datapath explicitly: inputs are bit
vectors, the addition walks slice by slice with gated carries, and the
outputs are the sum bits plus the per-lane carry mask.  It is the
bit-true reference the fast word-level ALU is tested against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SliceAccumulator", "SliceAddResult"]


@dataclass
class SliceAddResult:
    """Output of one accumulator pass."""

    sum_bits: np.ndarray
    #: Per-lane carry out (1 = lane overflowed its unsigned range).
    carry_mask: np.ndarray


class SliceAccumulator:
    """Slice-level adder with run-time carry control.

    Args:
        wordline_bits: Bits per word line.
        slice_bits: Bits per slice (8 in the paper).
    """

    def __init__(self, wordline_bits: int, slice_bits: int = 8):
        if wordline_bits % slice_bits:
            raise ValueError("word line must be a whole number of slices")
        self.wordline_bits = wordline_bits
        self.slice_bits = slice_bits
        self.num_slices = wordline_bits // slice_bits

    def _slices(self, bits: np.ndarray) -> np.ndarray:
        """View a word line as (num_slices, slice_bits) little-endian."""
        bits = np.asarray(bits, dtype=np.uint64)
        if bits.shape != (self.wordline_bits,):
            raise ValueError("bit vector does not match word line width")
        return bits.reshape(self.num_slices, self.slice_bits)

    def _slice_values(self, bits: np.ndarray) -> np.ndarray:
        shifts = np.arange(self.slice_bits, dtype=np.uint64)
        return (self._slices(bits) << shifts[None, :]).sum(
            axis=1, dtype=np.uint64)

    def _values_to_bits(self, values: np.ndarray) -> np.ndarray:
        shifts = np.arange(self.slice_bits, dtype=np.uint64)
        bits = (values[:, None] >> shifts[None, :]) & np.uint64(1)
        return bits.reshape(-1).astype(np.uint8)

    def add(self, a_bits: np.ndarray, b_bits: np.ndarray,
            precision: int, carry_in: int = 0) -> SliceAddResult:
        """Add two word lines as unsigned n-bit lanes.

        Carries ripple between slices only inside a lane; the carry out
        of each lane's top slice is latched into the carry mask instead
        of propagating onward.

        Args:
            a_bits, b_bits: Word lines as 0/1 vectors.
            precision: Lane width; must be a multiple of ``slice_bits``.
            carry_in: Carry injected into the lowest slice of every lane
                (used to build subtraction as ``a + ~b + 1``).
        """
        if precision % self.slice_bits:
            raise ValueError("lane width must be a multiple of slice width")
        slices_per_lane = precision // self.slice_bits
        num_lanes = self.wordline_bits // precision

        a_vals = self._slice_values(a_bits)
        b_vals = self._slice_values(b_bits)
        sum_vals = np.zeros(self.num_slices, dtype=np.uint64)
        carry_mask = np.zeros(num_lanes, dtype=np.uint8)

        slice_max = np.uint64((1 << self.slice_bits) - 1)
        for lane in range(num_lanes):
            carry = np.uint64(carry_in)
            base = lane * slices_per_lane
            for s in range(slices_per_lane):
                total = a_vals[base + s] + b_vals[base + s] + carry
                sum_vals[base + s] = total & slice_max
                carry = total >> np.uint64(self.slice_bits)
            carry_mask[lane] = int(carry)
        return SliceAddResult(self._values_to_bits(sum_vals), carry_mask)

    def subtract(self, a_bits: np.ndarray, b_bits: np.ndarray,
                 precision: int) -> SliceAddResult:
        """``a - b`` via two's complement: ``a + ~b + 1``.

        The carry mask is the *not-borrow*: 1 where ``a >= b`` treating
        lanes as unsigned.
        """
        b_inv = 1 - np.asarray(b_bits, dtype=np.uint8)
        return self.add(a_bits, b_inv, precision, carry_in=1)

    def shift_lanes(self, bits: np.ndarray, pixels: int,
                    precision: int) -> np.ndarray:
        """Shift the word line by whole lanes.

        Positive ``pixels`` moves lane ``i + pixels`` into lane ``i``
        (the "<< 1pix" of Fig. 2: each lane sees its right neighbour);
        vacated lanes fill with zero.
        """
        bits = np.asarray(bits, dtype=np.uint8)
        out = np.zeros_like(bits)
        shift = pixels * precision
        if shift == 0:
            return bits.copy()
        if shift > 0:
            out[:-shift or None] = bits[shift:]
        else:
            out[-shift:] = bits[:shift]
        return out

    def shift_bits_right(self, bits: np.ndarray, n: int, precision: int,
                         arithmetic: bool = False) -> np.ndarray:
        """Shift each lane right by ``n`` bits (within-lane)."""
        vals = bits_view(bits, precision)
        if arithmetic:
            sign = (vals >> np.uint64(precision - 1)) & np.uint64(1)
            vals = vals >> np.uint64(n)
            fill = ((np.uint64(1) << np.uint64(n)) - np.uint64(1)) << np.uint64(
                precision - n)
            vals = np.where(sign.astype(bool), vals | fill, vals)
        else:
            vals = vals >> np.uint64(n)
        return lanes_view(vals, precision, self.wordline_bits)


def bits_view(bits: np.ndarray, precision: int) -> np.ndarray:
    """Unpack bits to unsigned lane values (little-endian)."""
    from repro.pim.bitsram import bits_to_lanes
    return bits_to_lanes(bits, precision)


def lanes_view(values: np.ndarray, precision: int,
               wordline_bits: int) -> np.ndarray:
    """Pack unsigned lane values to bits (little-endian)."""
    from repro.pim.bitsram import lanes_to_bits
    mask = np.uint64((1 << precision) - 1) if precision < 64 \
        else np.uint64(0xFFFFFFFFFFFFFFFF)
    return lanes_to_bits(np.asarray(values, dtype=np.uint64) & mask,
                         precision, wordline_bits)
