"""Program capture and replay for the word-level PIM device.

A kernel's per-row body is usually identical for every row it
processes; driving :class:`~repro.pim.device.PIMDevice` one Python
micro-op at a time therefore re-interprets the same op stream hundreds
of times per frame.  This module captures the body *once* and replays
it for many rows at a cost of one numpy operation per recorded op:

* :class:`ProgramRecorder` exposes the full ``PIMDevice`` micro-op
  surface but records a :class:`PIMProgram` instead of executing.
  Row operands are either absolute ``int`` rows or base-relative
  :class:`~repro.pim.isa.Rel` offsets, resolved at replay time.
* :meth:`PIMDevice.run_program` replays a program for a list of base
  rows -- vectorized across all rows at once when the program's hazard
  analysis proves that equivalent, eagerly otherwise -- and charges the
  :class:`~repro.pim.cost.CostLedger` in O(1) per replay (the recorded
  aggregate times the number of base rows).
* :class:`ProgramCache` is a small LRU keyed by
  ``(kernel, shape, precision, config digest)`` so a frontend compiles
  each kernel once per pyramid level and replays it every frame.

Batched replay is *bit-exact and cost-exact*: memory state, ledger
totals and trace streams match the eager per-row path.  The hazard
rules that make this provable are documented on
:attr:`PIMProgram.batchable`.
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.obs.metrics import get_registry
from repro.pim.config import DEFAULT_CONFIG, PIMConfig
from repro.pim.cost import CostLedger
from repro.pim.device import _DeviceCore
from repro.pim.isa import (
    ChargeStep,
    Dst,
    Imm,
    Rel,
    Src,
    StepCost,
    _TmpSentinel,
    charge_plan,
    step_cost,
)

__all__ = ["PIMProgram", "ProgramOp", "ProgramRecorder", "ProgramCache",
           "Rel", "program_key"]


@dataclass(frozen=True)
class ProgramOp:
    """One recorded micro-op (or the ``set_precision`` pseudo-op).

    Attributes:
        method: Device-surface method name (``"add"``, ``"mul"``, ...).
        dst: Destination operand as recorded (``Rel``, ``int`` or Tmp).
        srcs: Source operands as recorded.
        kwargs: The method's keyword arguments, fully resolved.
        precision: Lane width active when the op was recorded.
        plan: The op's accumulator steps (cost choreography).
        costs: Each step priced at the recorded precision.
    """

    method: str
    dst: object
    srcs: Tuple
    kwargs: dict
    precision: int
    plan: Tuple[ChargeStep, ...]
    costs: Tuple[StepCost, ...]

    def resolve(self, operand, base: int):
        """Materialize one operand for a given base row."""
        if isinstance(operand, Rel):
            return int(base + int(operand))
        return operand


def _first_access_ok(ops: List[ProgramOp], key_of) -> bool:
    """True when every written resource is written before it is read.

    ``key_of`` maps an operand to a hashable resource key (or ``None``
    to ignore it).  Resources that are only ever read are fine -- every
    replay sees the same pre-program state.  Resources that are written
    get a private per-base copy during batched replay, which is only
    equivalent to sequential replay if no base reads another base's
    leftover state: i.e. the first access within the program must be a
    write.
    """
    written = set()
    ever_written = set()
    for op in ops:
        key = key_of(op.dst)
        if key is not None:
            ever_written.add(key)
    for op in ops:
        for src in op.srcs:
            key = key_of(src)
            if key is not None and key in ever_written and \
                    key not in written:
                return False
        key = key_of(op.dst)
        if key is not None:
            written.add(key)
    return True


def _rel_hazards_ok(ops: List[ProgramOp]) -> bool:
    """Check relative-operand aliasing between base rows.

    Eager replay runs bases in ascending order, so for strictly
    increasing bases a write at offset ``w`` and a read at offset ``r``
    of *different* rows alias across neighbouring bases exactly when
    their offsets differ.  Matching visibility between the element-major
    eager order and the op-major batched order requires:

    * ``w > r`` (the writer runs on an *earlier* base): the write is
      visible eagerly, so the batched write must precede the read --
      write op strictly before read op.
    * ``w < r`` (the writer runs on a *later* base): the write is not
      visible eagerly, so the batched write must not precede the read
      (same-op is safe: batched ops gather before they scatter).
    * two writes at offsets ``w1`` (earlier op) and ``w2`` (later op)
      collide across bases when ``w2 > w1``; the batched final value
      would come from the later op while eager leaves the earlier op's
      value from a later base.
    """
    writes = [(p, int(op.dst)) for p, op in enumerate(ops)
              if isinstance(op.dst, Rel)]
    reads = [(q, int(s)) for q, op in enumerate(ops)
             for s in op.srcs if isinstance(s, Rel)]
    for p, w in writes:
        for q, r in reads:
            if w > r and p >= q:
                return False
            if w < r and p < q:
                return False
    for i, (p, w1) in enumerate(writes):
        for q, w2 in writes[i + 1:]:
            if p < q and w2 > w1:
                return False
    return True


@dataclass(frozen=True)
class PIMProgram:
    """An immutable recorded op stream with its aggregate cost.

    Produced by :meth:`ProgramRecorder.finish`; executed by
    :meth:`PIMDevice.run_program`.  The aggregate ledger holds exactly
    what one eager replay charges, so ``aggregate x len(base_rows)`` is
    the O(1) batched charge.
    """

    name: str
    ops: Tuple[ProgramOp, ...]
    initial_precision: int
    aggregate: CostLedger
    config_digest: str
    batchable: bool = field(init=False)
    registers_ok: bool = field(init=False)
    rel_order_safe: bool = field(init=False)
    precision_stable: bool = field(init=False)
    rel_read_offsets: FrozenSet[int] = field(init=False)
    rel_write_offsets: FrozenSet[int] = field(init=False)
    abs_read_rows: FrozenSet[int] = field(init=False)
    abs_write_rows: FrozenSet[int] = field(init=False)

    def __post_init__(self) -> None:
        body = [op for op in self.ops if op.method != "set_precision"]
        object.__setattr__(self, "rel_read_offsets", frozenset(
            int(s) for op in body for s in op.srcs
            if isinstance(s, Rel)))
        object.__setattr__(self, "rel_write_offsets", frozenset(
            int(op.dst) for op in body if isinstance(op.dst, Rel)))
        object.__setattr__(self, "abs_read_rows", frozenset(
            int(s) for op in body for s in op.srcs
            if isinstance(s, int) and not isinstance(s, Rel)))
        object.__setattr__(self, "abs_write_rows", frozenset(
            int(op.dst) for op in body
            if isinstance(op.dst, int) and not isinstance(op.dst, Rel)))
        tmp_ok = _first_access_ok(
            body, lambda o: ("tmp", o.index)
            if isinstance(o, _TmpSentinel) else None)
        abs_ok = _first_access_ok(
            body, lambda o: ("row", int(o))
            if isinstance(o, int) and not isinstance(o, Rel) else None)
        object.__setattr__(self, "registers_ok", tmp_ok and abs_ok)
        object.__setattr__(self, "rel_order_safe", _rel_hazards_ok(body))
        # Eager replay is base-major: a set_precision recorded after a
        # compute op persists into the next base's replay of the ops
        # before it, which op-major (vectorized) execution cannot
        # reproduce.  Leading switches are safe -- replay resets to
        # initial_precision, so every base sees them before computing.
        seen_compute = False
        stable = True
        for op in self.ops:
            if op.method == "set_precision":
                if seen_compute:
                    stable = False
                    break
            else:
                seen_compute = True
        object.__setattr__(self, "precision_stable", stable)
        object.__setattr__(self, "batchable",
                           tmp_ok and abs_ok and self.rel_order_safe)

    @property
    def rel_span(self) -> int:
        """Width of the relative footprint (max offset - min offset).

        When consecutive base rows are further apart than this span the
        footprints of different bases cannot alias, so batched replay is
        equivalent even without :attr:`rel_order_safe` (the per-element
        op order is preserved; only cross-element visibility could
        differ, and disjoint footprints rule it out).
        """
        offsets = self.rel_read_offsets | self.rel_write_offsets
        if not offsets:
            return 0
        return max(offsets) - min(offsets)

    def row_footprint(self, base: int = 0) -> FrozenSet[int]:
        """Absolute SRAM rows one replay at ``base`` touches.

        Relative offsets are resolved against ``base``; absolute rows
        are included as-is.  This is the introspection hook the
        :mod:`repro.sim` timing model uses to derive a replay's bank
        footprint without re-interpreting the op stream.
        """
        rel = self.rel_read_offsets | self.rel_write_offsets
        return (frozenset(int(base) + off for off in rel)
                | self.abs_read_rows | self.abs_write_rows)

    def banks_touched(self, config, bases) -> FrozenSet[int]:
        """Banks of ``config`` touched when replaying over ``bases``."""
        rows = set()
        for base in bases:
            rows.update(self.row_footprint(int(base)))
        return config.banks_of_rows(rows)

    def __len__(self) -> int:
        return sum(1 for op in self.ops
                   if op.method != "set_precision")

    def replay(self, device, base: int) -> None:
        """Eagerly replay once for ``base`` through the device surface.

        Every micro-op goes through the ordinary device methods, so
        execution, cost accounting and tracing are the device's own --
        this path *is* the equivalence reference for batched replay.
        """
        for op in self.ops:
            if op.method == "set_precision":
                device.set_precision(op.kwargs["precision"])
                continue
            dst = op.resolve(op.dst, base)
            srcs = tuple(op.resolve(s, base) for s in op.srcs)
            getattr(device, op.method)(dst, *srcs, **op.kwargs)


class ProgramRecorder(_DeviceCore):
    """Records the device micro-op surface into a :class:`PIMProgram`.

    Drop-in for :class:`~repro.pim.device.PIMDevice` inside a kernel's
    row body: the same calls that would execute ops instead append them
    to the program, while the recorder's own ledger accumulates the
    aggregate cost through the exact same
    :func:`~repro.pim.isa.charge_plan` / ``step_cost`` pipeline the
    device uses.  Row operands may be absolute ``int`` rows or
    base-relative :class:`~repro.pim.isa.Rel` offsets; host DMA
    (``load``/``store``) is deliberately absent -- transfers stay
    outside programs, matching the paper's exclusion of I/O from cycle
    counts.
    """

    def __init__(self, config: PIMConfig = DEFAULT_CONFIG,
                 name: str = "program"):
        super().__init__(config, trace=False)
        # Recording charges are compile-time aggregates, not execution:
        # they must not advance the observability cycle clock.
        self._advances_clock = False
        self.name = name
        self._ops: List[ProgramOp] = []
        self._initial_precision = self._precision
        self._finished = False

    # -- recording plumbing ---------------------------------------------

    def _record(self, method: str, dst: Dst, srcs: Tuple[Src, ...],
                kwargs: dict) -> None:
        if self._finished:
            raise RuntimeError(
                "recorder already finished; start a new one")
        self._validate(dst, srcs)
        plan = charge_plan(method, dst, srcs, **kwargs)
        costs = tuple(step_cost(s, self._precision) for s in plan)
        for step in plan:
            self._charge_step(step)
        self._ops.append(ProgramOp(method, dst, tuple(srcs),
                                   dict(kwargs), self._precision,
                                   plan, costs))

    def _validate(self, dst, srcs) -> None:
        for operand in (dst, *srcs):
            if isinstance(operand, Imm):
                val = int(operand.value)
                lo = -(1 << (self._precision - 1))
                hi = (1 << self._precision) - 1
                if not lo <= val <= hi:
                    raise ValueError(
                        f"immediate {val} exceeds "
                        f"{self._precision}-bit range")
            elif isinstance(operand, _TmpSentinel):
                if not 0 <= operand.index < \
                        self.config.num_tmp_registers:
                    raise IndexError(
                        f"tmp register {operand.index} out of range "
                        f"[0, {self.config.num_tmp_registers})")
            elif isinstance(operand, Rel):
                if abs(int(operand)) >= self.config.num_rows:
                    raise IndexError(
                        f"relative offset {int(operand)} can never be "
                        f"in range [0, {self.config.num_rows})")
            else:
                if not 0 <= int(operand) < self.config.num_rows:
                    raise IndexError(
                        f"row {operand} out of range "
                        f"[0, {self.config.num_rows})")

    def set_precision(self, precision: int) -> None:
        """Record a lane-width switch (free, like on the device)."""
        super().set_precision(precision)
        self._ops.append(ProgramOp("set_precision", None, (),
                                   {"precision": precision}, precision,
                                   (), ()))

    def finish(self) -> PIMProgram:
        """Freeze the recording into an immutable program."""
        self._finished = True
        return PIMProgram(name=self.name, ops=tuple(self._ops),
                          initial_precision=self._initial_precision,
                          aggregate=self.ledger.snapshot(),
                          config_digest=self.config.digest())

    # -- the recorded micro-op surface ----------------------------------

    def add(self, dst: Dst, a: Src, b: Src, saturate: bool = False,
            signed: bool = True) -> None:
        """Record ``dst = a + b``."""
        self._record("add", dst, (a, b),
                     {"saturate": saturate, "signed": signed})

    def sub(self, dst: Dst, a: Src, b: Src, saturate: bool = False,
            signed: bool = True) -> None:
        """Record ``dst = a - b``."""
        self._record("sub", dst, (a, b),
                     {"saturate": saturate, "signed": signed})

    def avg(self, dst: Dst, a: Src, b: Src,
            signed: bool = False) -> None:
        """Record ``dst = (a + b) >> 1``."""
        self._record("avg", dst, (a, b), {"signed": signed})

    def cmp_gt(self, dst: Dst, a: Src, b: Src,
               signed: bool = True) -> None:
        """Record ``dst = (a > b) ? 1 : 0``."""
        self._record("cmp_gt", dst, (a, b), {"signed": signed})

    def logic_and(self, dst: Dst, a: Src, b: Src) -> None:
        """Record a bitwise AND."""
        self._record("logic_and", dst, (a, b), {})

    def logic_or(self, dst: Dst, a: Src, b: Src) -> None:
        """Record a bitwise OR."""
        self._record("logic_or", dst, (a, b), {})

    def logic_xor(self, dst: Dst, a: Src, b: Src) -> None:
        """Record a bitwise XOR."""
        self._record("logic_xor", dst, (a, b), {})

    def logic_nor(self, dst: Dst, a: Src, b: Src) -> None:
        """Record a bitwise NOR."""
        self._record("logic_nor", dst, (a, b), {})

    def shift_lanes(self, dst: Dst, a: Src, pixels: int,
                    signed: bool = False) -> None:
        """Record a whole-lane shift."""
        self._record("shift_lanes", dst, (a,),
                     {"pixels": pixels, "signed": signed})

    def shift_bits(self, dst: Dst, a: Src, amount: int,
                   signed: bool = True) -> None:
        """Record an in-lane bit shift."""
        self._record("shift_bits", dst, (a,),
                     {"amount": amount, "signed": signed})

    def copy(self, dst: Dst, src: Src, signed: bool = True) -> None:
        """Record an accumulator move."""
        self._record("copy", dst, (src,), {"signed": signed})

    def abs_diff(self, dst: Dst, a: Src, b: Src,
                 signed: bool = False) -> None:
        """Record ``dst = |a - b|`` (two accumulator steps)."""
        self._record("abs_diff", dst, (a, b), {"signed": signed})

    def maximum(self, dst: Dst, a: Src, b: Src,
                signed: bool = False) -> None:
        """Record ``dst = max(a, b)`` (two accumulator steps)."""
        self._record("maximum", dst, (a, b), {"signed": signed})

    def minimum(self, dst: Dst, a: Src, b: Src,
                signed: bool = False) -> None:
        """Record ``dst = min(a, b)`` (two accumulator steps)."""
        self._record("minimum", dst, (a, b), {"signed": signed})

    def mul(self, dst: Dst, a: Src, b: Src, rshift: int = 0,
            saturate: bool = True, signed: bool = True,
            multiplier_bits: Optional[int] = None) -> None:
        """Record ``dst = (a * b) >> rshift``."""
        self._record("mul", dst, (a, b),
                     {"rshift": rshift, "saturate": saturate,
                      "signed": signed,
                      "multiplier_bits": multiplier_bits})

    def div(self, dst: Dst, a: Src, b: Src, lshift: int = 0,
            signed: bool = True) -> None:
        """Record ``dst = (a << lshift) / b``."""
        self._record("div", dst, (a, b),
                     {"lshift": lshift, "signed": signed})


def program_key(kernel: str, shape, precision: int,
                config: PIMConfig) -> Tuple:
    """Canonical cache key: kernel, shape, precision, config digest."""
    if isinstance(shape, (list, tuple)):
        shape = tuple(int(s) for s in shape)
    return (kernel, shape, int(precision), config.digest())


class ProgramCache:
    """A small LRU of compiled :class:`PIMProgram` objects.

    Keys are caller-chosen tuples, canonically built by
    :func:`program_key` so a change of kernel, image shape, lane width
    or device geometry can never replay a stale program.

    Hit/miss accounting lives in the process-wide metrics registry
    (``program_cache_hits_total`` / ``program_cache_misses_total``,
    labelled with the cache's ``name``); :attr:`hits` / :attr:`misses`
    are read-only views over those counters and :meth:`stats` bundles
    the full snapshot.

    Thread-safety: every structural operation (lookup recency bump,
    insert, eviction, clear, stats) holds an internal lock, so one
    cache can back many device-pool workers
    (:class:`repro.serve.pool.DevicePool`) concurrently.  A concurrent
    :meth:`get_or_record` miss on the same key may record the program
    more than once; the first insert wins and the duplicates are
    dropped, so callers always replay one canonical program object.
    """

    _instances = itertools.count(1)

    def __init__(self, capacity: int = 64, name: Optional[str] = None):
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        #: Label distinguishing this cache's metric series.  Anonymous
        #: caches get a unique one so instances never share counts.
        self.name = name if name is not None else \
            f"cache-{next(self._instances)}"
        registry = get_registry()
        self._hits = registry.counter(
            "program_cache_hits_total",
            "ProgramCache lookups that found a compiled program")
        self._misses = registry.counter(
            "program_cache_misses_total",
            "ProgramCache lookups that required recording")
        self._evictions = registry.counter(
            "program_cache_evictions_total",
            "ProgramCache entries dropped by LRU capacity pressure")
        self._recordings = registry.counter(
            "program_recorded_total",
            "Programs recorded from scratch (memory and store missed)")
        self._hits_base = float(self._hits.value(cache=self.name))
        self._misses_base = float(self._misses.value(cache=self.name))
        self._evictions_base = float(
            self._evictions.value(cache=self.name))
        self._lock = threading.RLock()
        self._programs: "OrderedDict[Tuple, PIMProgram]" = OrderedDict()
        self._store = None

    @property
    def hits(self) -> int:
        """Hit count since creation/:meth:`clear` (registry-backed)."""
        return int(self._hits.value(cache=self.name) - self._hits_base)

    @property
    def misses(self) -> int:
        """Miss count since creation/:meth:`clear` (registry-backed)."""
        return int(self._misses.value(cache=self.name) -
                   self._misses_base)

    @property
    def evictions(self) -> int:
        """LRU evictions since creation/:meth:`clear`."""
        return int(self._evictions.value(cache=self.name) -
                   self._evictions_base)

    @property
    def store(self):
        """The attached :class:`~repro.pim.store.ProgramStore` or None."""
        return self._store

    def attach_store(self, store) -> None:
        """Layer a persistent :class:`~repro.pim.store.ProgramStore`.

        Once attached, :meth:`get_or_record` consults the store on a
        memory miss before re-recording, and writes fresh recordings
        through, so a later process (or a pool of workers sharing the
        directory) warm-starts without recording anything.
        """
        self._store = store

    def stats(self) -> Dict[str, object]:
        """Point-in-time snapshot: hits, misses, size, capacity, rate."""
        hits, misses = self.hits, self.misses
        lookups = hits + misses
        with self._lock:
            size = len(self._programs)
            store = self._store
        stats = {
            "name": self.name,
            "hits": hits,
            "misses": misses,
            "evictions": self.evictions,
            "recorded": int(self._recordings.value(cache=self.name)),
            "size": size,
            "capacity": self.capacity,
            "hit_rate": hits / lookups if lookups else 0.0,
        }
        if store is not None:
            stats["store"] = store.stats()
        return stats

    def __len__(self) -> int:
        with self._lock:
            return len(self._programs)

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._programs

    def get(self, key) -> Optional[PIMProgram]:
        """Look up a program, refreshing its recency; None on miss."""
        with self._lock:
            program = self._programs.get(key)
            if program is not None:
                self._programs.move_to_end(key)
        if program is None:
            self._misses.inc(cache=self.name)
            return None
        self._hits.inc(cache=self.name)
        return program

    def put(self, key, program: PIMProgram) -> None:
        """Insert (or refresh) a program, evicting the oldest entry."""
        with self._lock:
            self._programs[key] = program
            self._programs.move_to_end(key)
            while len(self._programs) > self.capacity:
                self._programs.popitem(last=False)
                self._evictions.inc(cache=self.name)

    def get_or_record(self, key, config: PIMConfig,
                      build: Callable[[ProgramRecorder], None],
                      name: Optional[str] = None) -> PIMProgram:
        """Return the cached program for ``key``, recording on miss.

        ``build`` receives a fresh :class:`ProgramRecorder` and records
        the kernel body into it; the finished program is cached and
        returned.  Recording happens outside the lock (it can take
        milliseconds), so two threads missing on the same key may both
        record -- the first insert wins and both callers get the
        canonical cached object.

        With a store attached (:meth:`attach_store`), a memory miss
        first tries the persistent layer; only a miss in *both* layers
        records (counted by ``program_recorded_total``), and the fresh
        recording is written through to disk.
        """
        program = self.get(key)
        if program is None:
            store = self._store
            if store is not None:
                program = store.load(key, config)
            recorded = program is None
            if recorded:
                recorder = ProgramRecorder(config,
                                           name=name or str(key[0]))
                build(recorder)
                program = recorder.finish()
                self._recordings.inc(cache=self.name)
            with self._lock:
                existing = self._programs.get(key)
                if existing is not None:
                    self._programs.move_to_end(key)
                    program = existing
                else:
                    self.put(key, program)
            if recorded and store is not None and program is not None:
                store.save(key, program)
        return program

    def clear(self) -> None:
        """Drop every cached program and zero this cache's hit/miss view.

        The registry counters themselves stay monotonic (metrics never
        go down); the cache keeps a baseline so :attr:`hits` /
        :attr:`misses` restart from zero.
        """
        with self._lock:
            self._programs.clear()
            self._hits_base = float(self._hits.value(cache=self.name))
            self._misses_base = float(
                self._misses.value(cache=self.name))
