"""Compiled replay: lower :class:`~repro.pim.program.PIMProgram` IR to
fused NumPy execution plans.

The batched replay path (:meth:`PIMDevice._replay_batched`) interprets
the recorded op stream once per ``run_program`` call: every op unpacks
its source rows from bytes into int64 lane values, dispatches through
:func:`repro.pim.device._compute`, and packs the result back to bytes.
Profiling shows the byte<->int64 conversions dominate (the arithmetic
itself is a fraction of the cost), so this module compiles the same IR
*once* into a :class:`CompiledPlan`:

* the op stream is split into *sections* at ``set_precision``
  boundaries; within a section every slot (Tmp register, relative
  offset, absolute row) is cached as an unsigned lane *pattern* array
  in a narrow compute dtype (int16 for 8-bit lanes, int32 for 16-bit,
  int64 above), so values flow op-to-op without ever round-tripping
  through row bytes;
* each op is specialized at compile time into a closure with its
  kwargs, masks and dtype escalations baked in.  Ops whose exact
  semantics are risky to re-derive (division always; multiplication at
  widths whose exact product exceeds int64; extreme bit shifts)
  fall back to converting their operands to int64 and calling the very
  same :func:`~repro.pim.device._compute` the interpreted paths use,
  so divergence is impossible by construction;
* dirty slots are flushed to SRAM bytes only at section boundaries and
  at the end of the plan, with the same last-base-wins write-back rule
  as batched replay.

Equivalence contract: executing a plan leaves memory, Tmp registers and
the trace stream bit-identical to batched (hence eager) replay whenever
:meth:`PIMDevice.batch_rejection_reason` returns ``None`` -- the same
hazard precondition batched replay uses, plus the bind-time minimum
base gap rule below for relative-operand visibility.  Ledger charging
is not done here at all: :meth:`PIMDevice.run_program` keeps the O(1)
``aggregate x reps`` charge, so cycles/energy stay bit-exact trivially.

Relative-operand visibility.  Within a section a write to offset ``w``
is cached, not scattered.  A later gather of offset ``r`` could then
see stale memory if the row sets ``bases + w`` and ``bases + r``
intersect.  Rows can only collide across *different* bases, and base
differences are at least the minimum adjacent gap of the (sorted)
bases, so ``|w - r| < min_gap`` proves disjointness -- the warp kernel
(stride 10, span 9) never flushes.  Otherwise the plan conservatively
scatters all dirty relative slots before the gather and drops cached
reads that may have been overwritten.

Lowering may refuse a program (``None`` from :func:`compiled_plan`)
when an op cannot be proven exactly lowerable; ``run_program`` then
falls back to the interpreted batched executor and counts the fallback
(``pim_replay_fallback_total{reason="lowering-unsupported"}``).

``numba.njit`` is used opportunistically when the package is
importable (it is not a dependency): the hot unsigned saturating-add
kernel is jitted, everything else is pure NumPy.  Results are
identical either way; :data:`NUMBA_VERSION` records what the build
used so benchmark stamps are attributable.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.obs.metrics import get_registry
from repro.pim.device import (
    _check_multiplier,
    _compute,
    _read_signedness,
)
from repro.pim.isa import Imm, Rel, _TmpSentinel

__all__ = ["CompiledPlan", "compiled_plan", "NUMBA_VERSION"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    NUMBA_VERSION: Optional[str] = numba.__version__

    @numba.njit(cache=True)
    def _njit_sat_add_u(a, b, hi):  # pragma: no cover
        out = np.empty_like(a)
        for i in range(a.size):
            s = a.flat[i] + b.flat[i]
            out.flat[i] = hi if s > hi else s
        return out
except ImportError:  # numba is optional; pure NumPy is the default
    NUMBA_VERSION = None
    _njit_sat_add_u = None

_LANE_DTYPES = {8: "<u1", 16: "<u2", 32: "<u4", 64: "<u8"}

#: Narrowest signed dtype that holds an n-bit pattern plus the headroom
#: the hand-lowered ops need (one add/sub of two lane values).
_COMPUTE_DTYPES = {8: np.int16, 16: np.int32, 32: np.int64, 64: np.int64}

_DTYPE_BITS = {np.int16: 16, np.int32: 32, np.int64: 64}

#: Ops whose packed result depends only on the inputs modulo ``2**n``:
#: for these, pattern-space inputs need no sign conversion.
_MODN_METHODS = frozenset((
    "logic_and", "logic_or", "logic_xor", "logic_nor",
    "shift_lanes", "copy",
))


class _Unsupported(Exception):
    """Raised during lowering when an op cannot be proven exact."""


# -- pattern <-> bytes ------------------------------------------------------

def _unpack_pattern(raw: np.ndarray, n: int, D) -> np.ndarray:
    """Row bytes -> unsigned lane patterns in compute dtype ``D``.

    At 64-bit lane width the "pattern" is the int64 bit
    reinterpretation, which is also the semantic value (the unsigned
    view is host-bound signed, see :func:`repro.fixedpoint.ops.wrap`).
    """
    lanes = raw.view(_LANE_DTYPES[n])
    if n < 64:
        return lanes.astype(D)
    return lanes.view(np.int64).astype(np.int64, copy=True)


def _pack_pattern(pat: np.ndarray, n: int) -> np.ndarray:
    """Lane patterns -> row bytes, mirroring ``PIMDevice._pack``."""
    if n < 64:
        return np.ascontiguousarray(pat).astype(
            _LANE_DTYPES[n]).view(np.uint8)
    return np.ascontiguousarray(pat).view(np.uint64).astype(
        "<u8").view(np.uint8)


def _to_signed(pat: np.ndarray, n: int) -> np.ndarray:
    """Pattern -> two's-complement signed value, in the same dtype."""
    if n >= 64:
        return pat
    sign_bit = pat.dtype.type(1 << (n - 1))
    return pat - ((pat & sign_bit) << 1)


# -- slot keys --------------------------------------------------------------

def _slot_key(operand) -> Optional[Tuple[str, int]]:
    if isinstance(operand, _TmpSentinel):
        return ("t", operand.index)
    if isinstance(operand, Rel):
        return ("r", int(operand))
    if isinstance(operand, int):
        return ("a", int(operand))
    return None  # Imm


# -- execution state --------------------------------------------------------

class _Exec:
    """Per-execution state: slot caches, dirty tracking, carriers."""

    __slots__ = ("device", "bases", "reps", "min_gap", "n", "D",
                 "lanes", "vals", "dirty", "rel_seq", "_seq",
                 "carriers")

    def __init__(self, device, bases: np.ndarray, min_gap: Optional[int]):
        self.device = device
        self.bases = bases
        self.reps = int(bases.size)
        #: Smallest gap between adjacent (sorted) bases; None means a
        #: single base -- no cross-base aliasing is possible at all.
        self.min_gap = min_gap
        self.n = 0
        self.D = np.int64
        self.lanes = 0
        self.vals: Dict[Tuple[str, int], np.ndarray] = {}
        self.dirty: Dict[Tuple[str, int], bool] = {}
        self.rel_seq: Dict[int, int] = {}
        self._seq = 0
        #: Byte images of written Tmp/abs slots, carried across
        #: precision sections (reinterpretation happens on bytes,
        #: exactly as in batched replay's per-base buffers).
        self.carriers: Dict[Tuple[str, int], np.ndarray] = {}

    # -- section lifecycle ------------------------------------------

    def begin_section(self, n: int, lanes: int, D) -> None:
        self.n = n
        self.lanes = lanes
        self.D = D

    def end_section(self) -> None:
        self.flush_rel()
        for key, is_dirty in self.dirty.items():
            if is_dirty and key[0] in ("t", "a"):
                packed = _pack_pattern(self.vals[key], self.n)
                packed = packed.reshape(self.reps, -1)
                carrier = self.carriers.get(key)
                if carrier is None:
                    self.carriers[key] = np.ascontiguousarray(packed)
                else:
                    carrier[:] = packed
        self.vals.clear()
        self.dirty.clear()

    def finalize(self) -> None:
        """Last-base-wins write-back, identical to batched replay."""
        for key, carrier in self.carriers.items():
            kind, index = key
            if kind == "t":
                self.device._tmp[index][:] = carrier[-1]
            else:
                self.device._mem[index][:] = carrier[-1]

    # -- relative-operand visibility --------------------------------

    def _conflicts(self, off: int, other: int) -> bool:
        return self.min_gap is not None and \
            abs(off - other) >= self.min_gap

    def flush_rel(self) -> None:
        """Scatter every dirty relative slot, in op order of last write."""
        if not self.rel_seq:
            return
        for off in sorted(self.rel_seq, key=self.rel_seq.get):
            key = ("r", off)
            self.device._mem[self.bases + off] = _pack_pattern(
                self.vals[key], self.n).reshape(self.reps, -1)
            self.dirty[key] = False
        self.rel_seq.clear()

    # -- slot access ------------------------------------------------

    def load(self, key: Tuple[str, int]) -> np.ndarray:
        kind, index = key
        dev = self.device
        if kind == "r":
            if any(self._conflicts(index, off) for off in self.rel_seq):
                self.flush_rel()
            raw = dev._mem[self.bases + index]
            pat = _unpack_pattern(raw, self.n, self.D)
        else:
            carrier = self.carriers.get(key)
            if carrier is not None:
                pat = _unpack_pattern(carrier, self.n, self.D)
            else:
                base = dev._tmp[index] if kind == "t" else dev._mem[index]
                pat = np.broadcast_to(
                    _unpack_pattern(base, self.n, self.D),
                    (self.reps, self.lanes))
        self.vals[key] = pat
        self.dirty[key] = False
        return pat

    def get(self, key: Tuple[str, int]) -> np.ndarray:
        pat = self.vals.get(key)
        if pat is None:
            pat = self.load(key)
        return pat

    def put(self, key: Tuple[str, int], pat: np.ndarray) -> None:
        self.vals[key] = pat
        self.dirty[key] = True
        if key[0] == "r":
            off = key[1]
            self._seq += 1
            self.rel_seq[off] = self._seq
            # A cached (clean) slot whose rows may have been
            # overwritten by this write must be re-gathered after the
            # eventual flush; dirty slots keep their (correct, proven
            # by the hazard rules) cached value.
            for other_key in list(self.vals):
                if other_key[0] == "r" and other_key[1] != off and \
                        not self.dirty.get(other_key) and \
                        self._conflicts(off, other_key[1]):
                    del self.vals[other_key]
                    self.dirty.pop(other_key, None)


# -- op lowering ------------------------------------------------------------

def _imm_value(src: Imm) -> int:
    return int(src.value)


def _src_reader(src, n: int, D, sign_convert: bool,
                imm_semantic: bool, mask: int):
    """Compile one source operand into ``reader(ex) -> array``.

    ``sign_convert`` turns cached patterns into two's-complement
    signed values (needed by sign-sensitive ops under a signed read;
    unsigned patterns already *are* their semantic values).
    ``imm_semantic`` keeps an immediate's raw value instead of its
    masked pattern -- batched replay broadcasts ``np.full(src.value)``
    for every value-sensitive op, even a negative immediate under an
    unsigned read, and compiled execution must agree.
    """
    if isinstance(src, Imm):
        value = _imm_value(src)
        if not -(1 << 63) <= value < (1 << 63):
            raise _Unsupported("immediate exceeds int64")
        if imm_semantic or n >= 64:
            const = np.array(value, dtype=D)
        else:
            const = np.array(value & mask, dtype=D)
        return lambda ex: const
    key = _slot_key(src)
    if sign_convert and n < 64:
        return lambda ex: _to_signed(ex.get(key), n)
    return lambda ex: ex.get(key)


def _broadcast2d(a: np.ndarray, ex: _Exec) -> np.ndarray:
    if a.ndim < 2:
        return np.broadcast_to(a, (ex.reps, ex.lanes))
    return a


def _lower_op(op, n: int, lanes: int):
    """Compile one recorded op into a ``step(ex)`` closure.

    The returned closure reads its sources from the slot cache,
    computes the op in the section's compute dtype, and stores the
    destination as a masked pattern.  Raises :class:`_Unsupported`
    when exactness cannot be guaranteed by hand-lowering; the caller
    then falls back to a closure around the interpreted
    :func:`~repro.pim.device._compute`.
    """
    method, kw = op.method, op.kwargs
    D = _COMPUTE_DTYPES[n]
    mask = (1 << n) - 1
    mask_d = D(mask) if n < 64 else None
    signed = bool(kw.get("signed", True))
    read_signed = _read_signedness(method, kw)
    semantic = method not in _MODN_METHODS and not (
        method == "shift_bits" and kw["amount"] >= 0)
    readers = tuple(
        _src_reader(s, n, D, semantic and read_signed, semantic, mask)
        for s in op.srcs)
    dst_key = _slot_key(op.dst)

    def emit(ex: _Exec, res: np.ndarray) -> None:
        if mask_d is not None:
            res = res & mask_d
            if res.dtype != D:
                res = res.astype(D)
        if res.ndim < 2:
            res = _broadcast2d(res, ex)
        ex.put(dst_key, res)

    if method in ("add", "sub"):
        sat = bool(kw.get("saturate"))
        sub = method == "sub"
        if sat:
            if n >= 64:
                raise _Unsupported("64-bit saturation wraps host-side")
            lo = -(1 << (n - 1)) if signed else 0
            hi = (1 << (n - 1)) - 1 if signed else mask
            use_njit = _njit_sat_add_u is not None and not signed \
                and not sub

            def step(ex):
                a, b = readers[0](ex), readers[1](ex)
                if use_njit and a.ndim == 2 and b.ndim == 2:
                    emit(ex, _njit_sat_add_u(
                        np.ascontiguousarray(a),
                        np.ascontiguousarray(b), D(hi)))
                    return
                s = a - b if sub else a + b
                emit(ex, np.clip(s, lo, hi))
        else:
            def step(ex):
                a, b = readers[0](ex), readers[1](ex)
                emit(ex, a - b if sub else a + b)
        return step

    if method == "avg":
        def step(ex):
            emit(ex, (readers[0](ex) + readers[1](ex)) >> 1)
        return step

    if method == "cmp_gt":
        def step(ex):
            emit(ex, (readers[0](ex) > readers[1](ex)).astype(D))
        return step

    if method.startswith("logic_"):
        nor = method == "logic_nor"
        fn = {"logic_and": np.bitwise_and, "logic_or": np.bitwise_or,
              "logic_xor": np.bitwise_xor,
              "logic_nor": np.bitwise_or}[method]

        def step(ex):
            res = fn(readers[0](ex), readers[1](ex))
            emit(ex, ~res if nor else res)
        return step

    if method == "shift_lanes":
        pixels = int(kw["pixels"])

        def step(ex):
            a = _broadcast2d(readers[0](ex), ex)
            out = np.zeros((ex.reps, lanes), dtype=D)
            if pixels == 0:
                out[...] = a
            elif pixels > 0:
                out[..., :-pixels or None] = a[..., pixels:]
            else:
                out[..., -pixels:] = a[..., :pixels]
            ex.put(dst_key, out)
        return step

    if method == "shift_bits":
        amount = int(kw["amount"])
        if amount >= 0:
            # Left shift is mod-2**n safe on patterns, but needs
            # n + amount + 1 bits of headroom for exactness.
            if n + amount < _DTYPE_BITS[D]:
                def step(ex):
                    emit(ex, readers[0](ex) << amount)
            elif n + amount <= 62:
                def step(ex):
                    emit(ex, readers[0](ex).astype(np.int64) << amount)
            else:
                raise _Unsupported("left shift exceeds int64 headroom")
        else:
            # Patterns are non-negative below 64 bits, so a plain >>
            # is the logical shift; signed values shift arithmetically;
            # at 64 bits both eager branches reduce to int64 >>.
            def step(ex):
                emit(ex, readers[0](ex) >> -amount)
        return step

    if method == "copy":
        def step(ex):
            a = readers[0](ex)
            ex.put(dst_key, _broadcast2d(a, ex) if a.ndim < 2 else a)
        return step

    if method == "abs_diff":
        if n < 64:
            # The compute dtype has headroom, so the difference never
            # wraps and the borrow formula reduces to plain |a - b|.
            def step(ex):
                emit(ex, np.abs(readers[0](ex) - readers[1](ex)))
        else:
            # int64 differences can wrap; mirror the eager borrow
            # formula bit for bit ((m + neg) ^ neg with neg from the
            # operand comparison, not the wrapped difference's sign).
            def step(ex):
                a, b = readers[0](ex), readers[1](ex)
                m = a - b
                neg = np.where(a < b, D(-1), D(0))
                emit(ex, (m + neg) ^ neg)
        return step

    if method in ("maximum", "minimum"):
        fn = np.maximum if method == "maximum" else np.minimum

        def step(ex):
            emit(ex, fn(readers[0](ex), readers[1](ex)))
        return step

    if method == "mul":
        rshift = int(kw.get("rshift", 0))
        saturate = bool(kw.get("saturate", True))
        multiplier_bits = kw.get("multiplier_bits")
        if n >= 64:
            imm_lo, imm_hi = -(1 << 63), (1 << 63) - 1
        elif signed:
            imm_lo, imm_hi = -(1 << (n - 1)), (1 << (n - 1)) - 1
        else:
            imm_lo, imm_hi = 0, mask
        for src in op.srcs:
            if isinstance(src, Imm) and \
                    not imm_lo <= _imm_value(src) <= imm_hi:
                # Out-of-lane-range immediates make ops.multiply
                # raise; route through _compute for the identical
                # exception.
                raise _Unsupported("immediate outside lane range")
        if n >= 64:
            W = np.int64  # eager's int64 product wraps identically
        elif n == 8 or (n == 16 and signed):
            W = np.int32
        elif n == 32 and not signed:
            raise _Unsupported("exact u32 product exceeds int64")
        else:
            W = np.int64
        lo = -(1 << (n - 1)) if signed or n >= 64 else 0
        hi = ((1 << (n - 1)) - 1) if signed or n >= 64 else mask

        def step(ex):
            a, b = readers[0](ex), readers[1](ex)
            if multiplier_bits is not None:
                _check_multiplier(b, multiplier_bits, signed)
            prod = a.astype(W) * b.astype(W) if W != a.dtype \
                else a * b
            if rshift:
                prod = prod >> rshift
            if n >= 64:
                emit(ex, prod)
            elif saturate:
                emit(ex, np.clip(prod, lo, hi))
            else:
                emit(ex, prod & W(mask))
        return step

    # div (restoring-division corner cases) and anything new fall
    # through to the interpreted single-op semantics.
    raise _Unsupported(method)


def _lower_fallback(op, n: int):
    """Exact-by-construction closure around the interpreted semantics."""
    method, kw = op.method, op.kwargs
    D = _COMPUTE_DTYPES[n]
    mask = (1 << n) - 1
    read_signed = _read_signedness(method, kw)
    readers = tuple(_src_reader(s, n, D, read_signed, True, mask)
                    for s in op.srcs)
    dst_key = _slot_key(op.dst)
    signed = bool(kw.get("signed", True))

    def step(ex: _Exec) -> None:
        vals = tuple(np.asarray(r(ex), dtype=np.int64)
                     for r in readers)
        if method == "mul":
            _check_multiplier(vals[1], kw.get("multiplier_bits"),
                              signed)
        res = _compute(method, n, vals, kw)
        if n < 64:
            res = (np.asarray(res, dtype=np.int64) & mask).astype(D)
        else:
            res = np.asarray(res, dtype=np.int64)
        ex.put(dst_key, _broadcast2d(res, ex)
               if res.ndim < 2 else res)
    return step


# -- the plan ---------------------------------------------------------------

class _Section:
    __slots__ = ("precision", "lanes", "dtype", "steps")

    def __init__(self, precision: int, lanes: int):
        self.precision = precision
        self.lanes = lanes
        self.dtype = _COMPUTE_DTYPES[precision]
        self.steps: List[Callable[[_Exec], None]] = []


class CompiledPlan:
    """A PIMProgram lowered to per-section fused NumPy closures.

    Immutable after construction; one plan serves any number of
    executions on any device with the program's geometry (the plan
    holds no device state -- all per-run state lives in the private
    :class:`_Exec` context).
    """

    def __init__(self, program, config) -> None:
        self.name = program.name
        self.final_precision = program.initial_precision
        self.sections: List[_Section] = []
        self.fallback_ops = 0
        section = _Section(program.initial_precision,
                           config.lanes(program.initial_precision))
        self.sections.append(section)
        precision = program.initial_precision
        for op in program.ops:
            if op.method == "set_precision":
                new = int(op.kwargs["precision"])
                if new != precision:
                    precision = new
                    section = _Section(new, config.lanes(new))
                    self.sections.append(section)
                self.final_precision = new
                continue
            try:
                step = _lower_op(op, precision, section.lanes)
            except _Unsupported:
                step = _lower_fallback(op, precision)
                self.fallback_ops += 1
            section.steps.append(step)

    @property
    def num_ops(self) -> int:
        return sum(len(s.steps) for s in self.sections)

    def execute(self, device, bases: np.ndarray) -> None:
        """Run the plan; bit-identical to batched replay.

        The caller (``run_program``) has already verified the hazard
        precondition and charged the ledger aggregate.
        """
        if bases.size > 1:
            min_gap = int(np.diff(bases).min())
        else:
            min_gap = None
        ex = _Exec(device, bases, min_gap)
        for section in self.sections:
            ex.begin_section(section.precision, section.lanes,
                             section.dtype)
            for step in section.steps:
                step(ex)
            ex.end_section()
        ex.finalize()
        device.set_precision(self.final_precision)


def compiled_plan(program, config) -> Optional[CompiledPlan]:
    """The memoized compiled plan for a program (None: never fails).

    The plan is cached on the program object itself
    (``object.__setattr__`` on the frozen dataclass, the same pattern
    its ``__post_init__`` uses), so a program cached in a
    :class:`~repro.pim.program.ProgramCache` -- or persisted and
    reloaded through a :class:`~repro.pim.store.ProgramStore` -- is
    compiled at most once per process.  Compile time and hit/miss
    counts go to the metrics registry (``pim_plan_compile_seconds``,
    ``pim_plan_cache_{hits,misses}_total``).
    """
    plan = getattr(program, "_compiled_plan", False)
    registry = get_registry()
    if plan is not False:
        registry.counter(
            "pim_plan_cache_hits_total",
            "Compiled-plan lookups served from the per-program memo"
        ).inc()
        return plan
    registry.counter(
        "pim_plan_cache_misses_total",
        "Compiled-plan lookups that required lowering").inc()
    start = time.perf_counter()
    try:
        built: Optional[CompiledPlan] = CompiledPlan(program, config)
    except _Unsupported:
        built = None
    registry.histogram(
        "pim_plan_compile_seconds",
        "Wall-clock seconds spent lowering PIMPrograms",
        bounds=(0.0001, 0.001, 0.01, 0.1, 1.0)).observe(
            time.perf_counter() - start)
    object.__setattr__(program, "_compiled_plan", built)
    return built
