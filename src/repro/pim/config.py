"""Array geometry and precision configuration of the SRAM-PIM macro.

The paper's array is ``(320 * 8) x 256`` bits: a 2560-bit word line and
256 rows, sized to hold one 8-bit QVGA image (320x240 pixels, one image
row per SRAM row) or 20480 32-bit coefficients.  The accumulator's carry
control reconfigures the word line into 320x8-bit, 160x16-bit or
80x32-bit SIMD lanes at run time.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PIMConfig", "SUPPORTED_PRECISIONS", "DEFAULT_CONFIG"]

#: Lane widths the carry-control logic supports (paper section 4.1).
SUPPORTED_PRECISIONS = (8, 16, 32, 64)


@dataclass(frozen=True)
class PIMConfig:
    """Geometry of one SRAM-PIM macro.

    Attributes:
        wordline_bits: Bits per row (default 2560 = 320 pixels x 8 bit).
        num_rows: Number of word lines (default 256).
        slice_bits: Width of one accumulator slice; carry propagation is
            cut at multiples of this (default 8).
        num_tmp_registers: Size of the Tmp register bank.  The paper's
            design uses one ("a modest setup"); section 5.4 suggests
            more registers as an efficiency extension, which the
            kernels exploit automatically when available.
        num_banks: Physical row banks the array is partitioned into
            (contiguous row ranges).  Banks are *timing-only*
            structure: they never change what a program computes, but
            the :mod:`repro.sim` timing model arbitrates concurrent
            DMA/compute access per bank, so two operations touching
            disjoint banks may overlap while same-bank access
            serializes.  ``0`` (the default) means auto:
            ``min(8, num_rows)``, so tiny test geometries stay valid.
    """

    wordline_bits: int = 2560
    num_rows: int = 256
    slice_bits: int = 8
    num_tmp_registers: int = 1
    num_banks: int = 0

    def __post_init__(self) -> None:
        if self.wordline_bits % self.slice_bits:
            raise ValueError("word line must be a whole number of slices")
        if self.num_rows <= 0 or self.wordline_bits <= 0:
            raise ValueError("geometry must be positive")
        if self.num_tmp_registers < 1:
            raise ValueError("need at least one Tmp register")
        if self.num_banks == 0:
            object.__setattr__(self, "num_banks", min(8, self.num_rows))
        if not 1 <= self.num_banks <= self.num_rows:
            raise ValueError(
                f"num_banks {self.num_banks} must be in "
                f"[1, {self.num_rows}]")

    def lanes(self, precision: int) -> int:
        """SIMD lanes available at the given lane width."""
        self.validate_precision(precision)
        return self.wordline_bits // precision

    def validate_precision(self, precision: int) -> None:
        """Raise if ``precision`` is not a supported lane width."""
        if precision not in SUPPORTED_PRECISIONS:
            raise ValueError(
                f"precision {precision} not in {SUPPORTED_PRECISIONS}")
        if self.wordline_bits % precision:
            raise ValueError(
                f"word line of {self.wordline_bits} bits cannot be split "
                f"into {precision}-bit lanes")

    @property
    def row_bytes(self) -> int:
        """Bytes per row (word line is byte-aligned by construction)."""
        return self.wordline_bits // 8

    @property
    def bank_rows(self) -> int:
        """Rows per bank (last bank may be short when not divisible)."""
        return -(-self.num_rows // self.num_banks)

    def bank_of(self, row: int) -> int:
        """Bank index holding ``row``."""
        if not 0 <= row < self.num_rows:
            raise IndexError(
                f"row {row} out of range [0, {self.num_rows})")
        return row // self.bank_rows

    def banks_of_rows(self, rows) -> frozenset:
        """The set of bank indices a row collection touches."""
        return frozenset(self.bank_of(int(r)) for r in rows)

    def digest(self) -> str:
        """Stable short fingerprint of the geometry.

        Programs recorded for one geometry are only replayable on
        devices with the same geometry; caches key on this digest
        (plus kernel, shape and precision) so a config change can
        never resurrect a stale program.  Only execution-visible
        geometry enters the digest -- ``num_banks`` is timing-only
        structure, so two configs differing in banking alone share
        programs (and persistent store entries) by design.
        """
        import hashlib
        blob = (f"{self.wordline_bits}:{self.num_rows}:"
                f"{self.slice_bits}:{self.num_tmp_registers}")
        return hashlib.sha1(blob.encode()).hexdigest()[:12]

    @property
    def capacity_bytes(self) -> int:
        """Total array capacity in bytes."""
        return self.row_bytes * self.num_rows


#: The paper's configuration.
DEFAULT_CONFIG = PIMConfig()
