"""Derived multi-step PIM routines built from the micro-op ISA.

Section 2.2 notes that prior bit-serial work explored "more complicated
functions such as square root"; this module provides a branch-free
integer square root for the bit-parallel device, used by the
traditional Sobel-magnitude HPF that the paper's SAD kernel replaces
(section 3.2's cost argument).

The algorithm is the classic digit-recurrence (restoring) square root:
per result bit, two quotient digits of the radicand enter the partial
remainder, a trial subtrahend ``(root << 2) | 1`` is compared, and the
comparison mask conditionally updates remainder and root - all with
single-cycle shift/logic/add/compare micro-ops, so the cost emerges
from composition (~12 ops per result bit).
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint import ops
from repro.pim.device import Imm, TMP

__all__ = ["isqrt_fast", "isqrt_pim", "IsqrtRows"]


def isqrt_fast(values, bits: int = 16) -> np.ndarray:
    """Vectorized integer square root (floor), PIM-exact semantics.

    Args:
        values: Non-negative integers below ``2**bits``.
        bits: Radicand width; the result has ``bits // 2`` bits.
    """
    v = np.asarray(values, dtype=np.int64)
    if np.any(v < 0) or np.any(v >> bits):
        raise ValueError(f"radicands must be unsigned {bits}-bit")
    root = np.zeros_like(v)
    rem = np.zeros_like(v)
    for i in reversed(range(bits // 2)):
        rem = (rem << 2) | ((v >> (2 * i)) & 3)
        trial = (root << 2) | 1
        ge = ops.greater_than(rem, trial - 1)
        rem = rem - trial * ge
        root = (root << 1) + ge
    return root


class IsqrtRows:
    """Scratch-row allocation for the device square root."""

    def __init__(self, rem: int, root: int, trial: int, mask: int):
        self.rem = rem
        self.root = root
        self.trial = trial
        self.mask = mask


def isqrt_pim(device, dst: int, src: int, rows: IsqrtRows,
              bits: int = 16) -> None:
    """Device program: lane-wise integer square root.

    ``dst`` receives ``floor(sqrt(src))`` treating lanes as unsigned
    ``bits``-wide radicands.  Costs ~12 micro-ops per result bit
    (compare-select realized with the carry-extension mask, like the
    branch-free min/max of Fig. 7).
    """
    device.copy(rows.rem, Imm(0), signed=False)
    device.copy(rows.root, Imm(0), signed=False)
    for i in reversed(range(bits // 2)):
        # rem = (rem << 2) | next two radicand bits.
        device.shift_bits(TMP, src, -2 * i, signed=False)
        device.logic_and(TMP, TMP, Imm(3))
        device.shift_bits(rows.rem, rows.rem, 2, signed=False)
        device.add(rows.rem, rows.rem, TMP, signed=False)
        # trial = (root << 2) | 1.
        device.shift_bits(rows.trial, rows.root, 2, signed=False)
        device.add(rows.trial, rows.trial, Imm(1), signed=False)
        # ge = rem >= trial  (as rem > trial - 1).
        device.sub(TMP, rows.trial, Imm(1), signed=False)
        device.cmp_gt(rows.mask, rows.rem, TMP, signed=False)
        # rem -= trial & extend(ge).
        device.sub(TMP, Imm(0), rows.mask)          # 0/-1 extension
        device.logic_and(TMP, rows.trial, TMP)
        device.sub(rows.rem, rows.rem, TMP, signed=False)
        # root = (root << 1) + ge.
        device.shift_bits(rows.root, rows.root, 1, signed=False)
        device.add(rows.root, rows.root, rows.mask, signed=False)
    device.copy(dst, rows.root, signed=False)
