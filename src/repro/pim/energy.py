"""Energy and area model at the 90 nm node.

All constants come from paper section 5.1 unless noted:

* SRAM read/write access: **944.8 pJ** per row operation.
* Computing logic (shifter + accumulator + register): **44.6 pJ** per
  operation, synthesized at 90 nm, 1.0 V, 216 MHz.
* Areas: 3.48e6 um^2 memory array, 5.60e4 um^2 sense amplifiers,
  1.80e5 um^2 computing logic (5.1 % of the array).

The Tmp-register access energy is not published separately; we model it
as ``TMPREG_ACCESS_PJ`` chosen so that the SRAM share of total energy
lands near the paper's Fig. 10-a (~86 %, about 7x the other components
combined).  The MCU per-cycle energy is derived from PicoVO's published
10.3 mJ/frame divided by its published per-frame cycle count, which
corresponds to ~390 mW at 216 MHz - consistent with an STM32F7-class
part at full load.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "SRAM_ACCESS_PJ",
    "LOGIC_OP_PJ",
    "TMPREG_ACCESS_PJ",
    "MCU_ENERGY_PER_CYCLE_PJ",
    "CLOCK_HZ",
    "EnergyModel",
    "EnergyReport",
    "AreaModel",
]

#: Energy per SRAM row activation (read or write), pJ.
SRAM_ACCESS_PJ = 944.8
#: Energy per accumulator/shifter operation, pJ.
LOGIC_OP_PJ = 44.6
#: Energy per Tmp-register access, pJ (modelling assumption, see module doc).
TMPREG_ACCESS_PJ = 50.0
#: Baseline MCU energy per clock cycle, pJ (10.3 mJ / 5 739 120 cycles).
MCU_ENERGY_PER_CYCLE_PJ = 1794.0
#: Reference clock of both the MCU baseline and the synthesized logic.
CLOCK_HZ = 216e6


@dataclass
class EnergyReport:
    """Energy of one workload broken down by PIM component (Fig. 10-a)."""

    sram_pj: float = 0.0
    logic_pj: float = 0.0
    tmpreg_pj: float = 0.0

    @property
    def total_pj(self) -> float:
        """Total energy in pJ."""
        return self.sram_pj + self.logic_pj + self.tmpreg_pj

    @property
    def total_mj(self) -> float:
        """Total energy in mJ."""
        return self.total_pj * 1e-9

    def shares(self) -> dict:
        """Fractional share of each component (sums to 1 when non-empty)."""
        total = self.total_pj
        if total == 0:
            return {"sram": 0.0, "logic": 0.0, "tmpreg": 0.0}
        return {
            "sram": self.sram_pj / total,
            "logic": self.logic_pj / total,
            "tmpreg": self.tmpreg_pj / total,
        }

    def __add__(self, other: "EnergyReport") -> "EnergyReport":
        return EnergyReport(
            sram_pj=self.sram_pj + other.sram_pj,
            logic_pj=self.logic_pj + other.logic_pj,
            tmpreg_pj=self.tmpreg_pj + other.tmpreg_pj,
        )


@dataclass(frozen=True)
class EnergyModel:
    """Maps access counts to energy.

    The defaults reproduce the paper's 90 nm characterization; tests and
    ablations may instantiate cheaper or costlier memories.
    """

    sram_access_pj: float = SRAM_ACCESS_PJ
    logic_op_pj: float = LOGIC_OP_PJ
    tmpreg_access_pj: float = TMPREG_ACCESS_PJ

    def report(self, sram_accesses: int, logic_ops: int,
               tmp_accesses: int) -> EnergyReport:
        """Energy report for the given access counts."""
        return EnergyReport(
            sram_pj=sram_accesses * self.sram_access_pj,
            logic_pj=logic_ops * self.logic_op_pj,
            tmpreg_pj=tmp_accesses * self.tmpreg_access_pj,
        )


@dataclass(frozen=True)
class AreaModel:
    """Silicon area of the macro at 90 nm (paper section 5.1), um^2."""

    array_um2: float = 3.48e6
    sense_amp_um2: float = 5.60e4
    logic_um2: float = 1.80e5

    @property
    def total_um2(self) -> float:
        """Total macro area."""
        return self.array_um2 + self.sense_amp_um2 + self.logic_um2

    @property
    def logic_overhead(self) -> float:
        """Computing-logic area as a fraction of the SRAM array (~5.1 %)."""
        return self.logic_um2 / self.array_um2
