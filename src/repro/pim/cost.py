"""Cycle and access accounting for the PIM device.

The ledger implements the cost contract of DESIGN.md section 5: basic
ops are one cycle, mul/div are ``n + 2``, SRAM-destined results pay one
extra write-back cycle, and every SRAM row activation / logic op /
Tmp-register access is counted for the energy model.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict

from repro.pim.energy import EnergyModel, EnergyReport
from repro.pim.isa import OpKind

__all__ = ["CostLedger", "AccessBreakdown"]

#: Per-op-class cost fields tracked in :attr:`CostLedger.op_costs`.
_OP_COST_FIELDS = ("cycles", "sram_reads", "sram_writes",
                   "tmp_accesses", "logic_ops")


@dataclass
class AccessBreakdown:
    """Memory-access decomposition (paper Fig. 10-b)."""

    sram_reads: int = 0
    sram_writes: int = 0
    tmp_accesses: int = 0

    @property
    def total(self) -> int:
        return self.sram_reads + self.sram_writes + self.tmp_accesses

    def shares(self) -> Dict[str, float]:
        """Fraction of accesses by category."""
        total = self.total
        if total == 0:
            return {"mem_rd": 0.0, "mem_wr": 0.0, "tmp_reg": 0.0}
        return {
            "mem_rd": self.sram_reads / total,
            "mem_wr": self.sram_writes / total,
            "tmp_reg": self.tmp_accesses / total,
        }


@dataclass
class CostLedger:
    """Accumulates cycles and accesses across device micro-ops.

    Attributes:
        cycles: Total issue cycles, including write-back cycles.
        sram_reads: Row activations performed to fetch operands.
        sram_writes: Row activations performed to write results back.
        tmp_accesses: Tmp-register reads and writes.
        logic_ops: Accumulator/shifter operations issued.
        host_transfers: Host DMA row transfers (excluded from ``cycles``
            per the paper's "without considering the I/O overhead").
        op_counts: Micro-op histogram by :class:`OpKind`.
        op_profile: Histogram by ``(OpKind, precision)`` - the raw
            material for cross-architecture cost comparisons (for
            example the bit-serial model re-prices this profile).
        op_costs: Cost decomposition by op class, keyed
            ``(OpKind, field)`` with ``field`` one of ``cycles`` /
            ``sram_reads`` / ``sram_writes`` / ``tmp_accesses`` /
            ``logic_ops``.  :meth:`breakdown` renders it as the
            structured per-class cycle/energy table consumers used to
            reconstruct by diffing snapshots around each kernel.
    """

    cycles: int = 0
    sram_reads: int = 0
    sram_writes: int = 0
    tmp_accesses: int = 0
    logic_ops: int = 0
    host_transfers: int = 0
    op_counts: Counter = field(default_factory=Counter)
    op_profile: Counter = field(default_factory=Counter)
    op_costs: Counter = field(default_factory=Counter)

    def charge(self, kind: OpKind, cycles: int, sram_reads: int = 0,
               sram_writes: int = 0, tmp_accesses: int = 0,
               logic_ops: int = 1, precision: int = 0) -> None:
        """Record one micro-op."""
        self.cycles += cycles
        self.sram_reads += sram_reads
        self.sram_writes += sram_writes
        self.tmp_accesses += tmp_accesses
        self.logic_ops += logic_ops
        self.op_counts[kind] += 1
        if precision:
            self.op_profile[(kind, precision)] += 1
        self.op_costs[(kind, "cycles")] += cycles
        if sram_reads:
            self.op_costs[(kind, "sram_reads")] += sram_reads
        if sram_writes:
            self.op_costs[(kind, "sram_writes")] += sram_writes
        if tmp_accesses:
            self.op_costs[(kind, "tmp_accesses")] += tmp_accesses
        if logic_ops:
            self.op_costs[(kind, "logic_ops")] += logic_ops

    def charge_host_transfer(self, rows: int = 1) -> None:
        """Record host DMA traffic (not charged to cycles)."""
        self.host_transfers += rows

    def charge_program(self, aggregate: "CostLedger",
                       reps: int = 1) -> None:
        """Charge a recorded program's aggregate cost ``reps`` times.

        This is the O(1) accounting path of batched replay
        (:meth:`PIMDevice.run_program`): one recorded iteration's totals
        are scaled by the repetition count instead of re-charging every
        micro-op.  The result is exactly what ``reps`` eager replays
        would have charged, because the aggregate was itself produced by
        the per-step cost function (:func:`repro.pim.isa.step_cost`).
        """
        if reps < 0:
            raise ValueError(f"negative repetition count {reps}")
        self.cycles += aggregate.cycles * reps
        self.sram_reads += aggregate.sram_reads * reps
        self.sram_writes += aggregate.sram_writes * reps
        self.tmp_accesses += aggregate.tmp_accesses * reps
        self.logic_ops += aggregate.logic_ops * reps
        self.host_transfers += aggregate.host_transfers * reps
        for kind, count in aggregate.op_counts.items():
            self.op_counts[kind] += count * reps
        for key, count in aggregate.op_profile.items():
            self.op_profile[key] += count * reps
        for key, count in aggregate.op_costs.items():
            self.op_costs[key] += count * reps

    def merge(self, other: "CostLedger") -> None:
        """Fold another ledger into this one."""
        self.cycles += other.cycles
        self.sram_reads += other.sram_reads
        self.sram_writes += other.sram_writes
        self.tmp_accesses += other.tmp_accesses
        self.logic_ops += other.logic_ops
        self.host_transfers += other.host_transfers
        self.op_counts.update(other.op_counts)
        self.op_profile.update(other.op_profile)
        self.op_costs.update(other.op_costs)

    def snapshot(self) -> "CostLedger":
        """An independent copy of the current totals."""
        copy = CostLedger(
            cycles=self.cycles,
            sram_reads=self.sram_reads,
            sram_writes=self.sram_writes,
            tmp_accesses=self.tmp_accesses,
            logic_ops=self.logic_ops,
            host_transfers=self.host_transfers,
        )
        copy.op_counts = Counter(self.op_counts)
        copy.op_profile = Counter(self.op_profile)
        copy.op_costs = Counter(self.op_costs)
        return copy

    def delta_since(self, snapshot: "CostLedger") -> "CostLedger":
        """Totals accumulated since ``snapshot`` was taken."""
        delta = CostLedger(
            cycles=self.cycles - snapshot.cycles,
            sram_reads=self.sram_reads - snapshot.sram_reads,
            sram_writes=self.sram_writes - snapshot.sram_writes,
            tmp_accesses=self.tmp_accesses - snapshot.tmp_accesses,
            logic_ops=self.logic_ops - snapshot.logic_ops,
            host_transfers=self.host_transfers - snapshot.host_transfers,
        )
        delta.op_counts = self.op_counts - snapshot.op_counts
        delta.op_profile = self.op_profile - snapshot.op_profile
        delta.op_costs = self.op_costs - snapshot.op_costs
        return delta

    def breakdown(self, model: EnergyModel = EnergyModel()
                  ) -> Dict[str, Dict[str, float]]:
        """Structured per-op-class cycle/energy decomposition.

        Returns ``{op_class: {count, cycles, cycle_share, sram_reads,
        sram_writes, tmp_accesses, logic_ops, energy_pj,
        energy_share}}``, sorted by descending cycles.  Classes are
        :class:`OpKind` names lower-cased.  This is the introspection
        hook :mod:`repro.sim` and the Fig. 10 console summary consume
        instead of diffing snapshots around every kernel.
        """
        rows: Dict[str, Dict[str, float]] = {}
        for kind, count in self.op_counts.items():
            cost = {f: int(self.op_costs.get((kind, f), 0))
                    for f in _OP_COST_FIELDS}
            energy = model.report(
                sram_accesses=cost["sram_reads"] + cost["sram_writes"],
                logic_ops=cost["logic_ops"],
                tmp_accesses=cost["tmp_accesses"])
            rows[kind.name.lower()] = {
                "count": int(count),
                "energy_pj": energy.total_pj,
                **cost,
            }
        total_cycles = sum(r["cycles"] for r in rows.values())
        total_pj = sum(r["energy_pj"] for r in rows.values())
        for row in rows.values():
            row["cycle_share"] = (row["cycles"] / total_cycles
                                  if total_cycles else 0.0)
            row["energy_share"] = (row["energy_pj"] / total_pj
                                   if total_pj else 0.0)
        return dict(sorted(rows.items(),
                           key=lambda kv: -kv[1]["cycles"]))

    @property
    def accesses(self) -> AccessBreakdown:
        """Memory-access decomposition for Fig. 10-b."""
        return AccessBreakdown(
            sram_reads=self.sram_reads,
            sram_writes=self.sram_writes,
            tmp_accesses=self.tmp_accesses,
        )

    def energy(self, model: EnergyModel = EnergyModel()) -> EnergyReport:
        """Energy report under the given model (Fig. 10-a)."""
        return model.report(
            sram_accesses=self.sram_reads + self.sram_writes,
            logic_ops=self.logic_ops,
            tmp_accesses=self.tmp_accesses,
        )

    def reset(self) -> None:
        """Zero every counter."""
        self.cycles = 0
        self.sram_reads = 0
        self.sram_writes = 0
        self.tmp_accesses = 0
        self.logic_ops = 0
        self.host_transfers = 0
        self.op_counts.clear()
        self.op_profile.clear()
        self.op_costs.clear()
