"""Micro-operation definitions, operands, charge plans and traces.

Every kernel in the algorithm layer compiles down to this small
instruction set, which matches what the hardware of paper section 4 can
issue in one (or, for multiply/divide, ``n + 2``) clock cycles.

This module is the single source of truth for *what an op costs*: the
:func:`charge_plan` table lists the accumulator steps each micro-op
expands to (composites like ``abs_diff`` are two steps), and
:func:`step_cost` prices one step exactly as DESIGN.md section 5
specifies.  Both the executing devices and the
:class:`~repro.pim.program.ProgramRecorder` derive their ledger charges
from here, which is what makes recorded-program replay cost-exact by
construction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple, Union

__all__ = [
    "ISA_VERSION",
    "OpKind", "TraceRecord", "op_cycles",
    "TMP", "Tmp", "Imm", "Rel", "Src", "Dst",
    "ChargeStep", "StepCost", "charge_plan", "step_cost",
]

#: Version of the micro-op ISA semantics and cost contract.  Bump this
#: whenever op semantics, the charge plans or the recorded-program
#: format change incompatibly: the on-disk
#: :class:`~repro.pim.store.ProgramStore` keys entries by
#: ``(cache key, device geometry, ISA_VERSION)``, so a bump invalidates
#: every persisted program instead of replaying stale semantics.
ISA_VERSION = 1


class OpKind(enum.Enum):
    """The micro-operations the device can issue.

    Single-cycle operations (paper section 5.1: "all basic operations
    are single-cycle"):

    * ``AND/OR/XOR/NOR`` -- in-array sense-amp logic (Fig. 6-a).
    * ``ADD/SUB`` -- accumulator add/sub, optionally saturating.
    * ``AVG`` -- add then shift-right-one (the LPF primitive).
    * ``CMP_GT`` -- comparison mask from the borrow/carry extension.
    * ``SHIFT_LANES`` -- shift the word line by whole lanes (pixels).
    * ``SHIFT_BITS`` -- arithmetic shift within lanes.
    * ``COPY`` -- move a value through the accumulator unchanged.

    Multi-cycle operations (``n + 2`` cycles for n-bit lanes,
    section 4.2):

    * ``MUL`` -- MSB-first shift-add multiplication (Fig. 7-c).
    * ``DIV`` -- restoring division (Fig. 7-d).
    """

    AND = "and"
    OR = "or"
    XOR = "xor"
    NOR = "nor"
    ADD = "add"
    SUB = "sub"
    AVG = "avg"
    CMP_GT = "cmp_gt"
    SHIFT_LANES = "shift_lanes"
    SHIFT_BITS = "shift_bits"
    COPY = "copy"
    MUL = "mul"
    DIV = "div"


def op_cycles(kind: OpKind, precision: int) -> int:
    """Issue cycles for one micro-op at the given lane width.

    Multiplication and division take ``n + 2`` cycles including their
    SRAM read/write overhead (paper section 4.2); everything else is a
    single cycle.  The extra write-back cycle for SRAM destinations is
    charged separately by the device.
    """
    if kind in (OpKind.MUL, OpKind.DIV):
        return precision + 2
    return 1


# -- operands -------------------------------------------------------------


class _TmpSentinel:
    """Marker for a Tmp register operand.

    The paper's design has one Tmp register; section 5.4 notes that
    "we could use more registers to further improve the efficiency".
    The device supports a configurable bank: :data:`TMP` is register 0,
    ``Tmp(i)`` addresses the others.
    """

    def __init__(self, index: int = 0):
        self.index = index

    def __repr__(self) -> str:
        return "TMP" if self.index == 0 else f"TMP{self.index}"

    def __eq__(self, other) -> bool:
        return isinstance(other, _TmpSentinel) and \
            other.index == self.index

    def __hash__(self) -> int:
        return hash(("tmp", self.index))


#: The (first) Tmp register operand.
TMP = _TmpSentinel(0)


def Tmp(index: int) -> _TmpSentinel:  # noqa: N802 (operand constructor)
    """Operand for Tmp register ``index`` (0 is :data:`TMP`)."""
    return _TmpSentinel(index)


@dataclass(frozen=True)
class Imm:
    """A broadcast immediate routed through the input multiplexer.

    The hardware feeds constants (thresholds, shift counts) to the
    accumulator without an SRAM access; we model that as a free operand.
    """

    value: Union[int, float]


class Rel(int):
    """A base-relative row operand for recorded programs.

    ``Rel(k)`` addresses "row ``base + k``" where ``base`` is supplied
    at replay time (:meth:`PIMDevice.run_program`); a plain ``int``
    addresses an absolute row.  ``Rel`` subclasses ``int`` so the cost
    model prices it exactly like any other SRAM row operand.
    """

    __slots__ = ()

    def __repr__(self) -> str:
        off = int(self)
        return f"R{'+' if off >= 0 else ''}{off}"


Src = Union[int, _TmpSentinel, Imm]
Dst = Union[int, _TmpSentinel]


# -- charge plans ---------------------------------------------------------


@dataclass(frozen=True)
class ChargeStep:
    """One accumulator step of a micro-op, as charged to the ledger."""

    kind: OpKind
    srcs: Tuple
    dst: object
    note: Optional[str] = None
    operand_bits: Optional[int] = None


@dataclass(frozen=True)
class StepCost:
    """Priced form of one :class:`ChargeStep` at a given precision."""

    cycles: int
    sram_reads: int
    sram_writes: int
    tmp_accesses: int
    logic_ops: int
    precision: int


def step_cost(step: ChargeStep, precision: int) -> StepCost:
    """Price one charge step per the DESIGN.md section 5 contract.

    * every basic op is 1 cycle; ``mul``/``div`` are ``n + 2`` cycles
      including their internal SRAM read/write overhead;
    * an SRAM destination adds 1 write-back cycle and 1 SRAM write
      (mul/div fold theirs into the ``n + 2``);
    * each SRAM source costs one row activation; each Tmp source or
      destination costs one Tmp access;
    * mul/div run ``n`` shift-add steps with partials held in Tmp.
    """
    n = step.operand_bits or precision
    cycles = op_cycles(step.kind, n)
    sram_reads = sum(1 for s in step.srcs if isinstance(s, int))
    tmp_accesses = sum(1 for s in step.srcs
                       if isinstance(s, _TmpSentinel))
    sram_writes = 0
    logic = 1
    if step.kind in (OpKind.MUL, OpKind.DIV):
        # n shift-add/subtract steps, partial results held in Tmp.
        logic = n
        tmp_accesses += n
    if isinstance(step.dst, int):
        sram_writes += 1
        if step.kind not in (OpKind.MUL, OpKind.DIV):
            cycles += 1  # write-back cycle (mul/div include theirs)
    else:
        tmp_accesses += 1
    return StepCost(cycles=cycles, sram_reads=sram_reads,
                    sram_writes=sram_writes, tmp_accesses=tmp_accesses,
                    logic_ops=logic, precision=n)


def charge_plan(method: str, dst, srcs: Tuple, **kw) -> Tuple[ChargeStep,
                                                              ...]:
    """The accumulator steps a device micro-op method expands to.

    ``method`` is the device-surface name (``"add"``, ``"abs_diff"``,
    ...); composites expand to the multi-step sequences of Fig. 7.
    The returned plan is what both the word-level device and the
    program recorder charge, step by step, to their ledgers.
    """
    if method in ("add", "sub"):
        kind = OpKind.ADD if method == "add" else OpKind.SUB
        return (ChargeStep(kind, srcs, dst,
                           "sat" if kw.get("saturate") else None),)
    if method == "avg":
        return (ChargeStep(OpKind.AVG, srcs, dst),)
    if method == "cmp_gt":
        return (ChargeStep(OpKind.CMP_GT, srcs, dst),)
    if method == "logic_and":
        return (ChargeStep(OpKind.AND, srcs, dst),)
    if method == "logic_or":
        return (ChargeStep(OpKind.OR, srcs, dst),)
    if method == "logic_xor":
        return (ChargeStep(OpKind.XOR, srcs, dst),)
    if method == "logic_nor":
        return (ChargeStep(OpKind.NOR, srcs, dst),)
    if method == "shift_lanes":
        return (ChargeStep(OpKind.SHIFT_LANES, srcs, dst,
                           f"{kw['pixels']}pix"),)
    if method == "shift_bits":
        return (ChargeStep(OpKind.SHIFT_BITS, srcs, dst,
                           f"{kw['amount']}b"),)
    if method == "copy":
        return (ChargeStep(OpKind.COPY, srcs, dst),)
    if method == "abs_diff":
        a, b = srcs
        return (ChargeStep(OpKind.SUB, (a, b), TMP, "absdiff:diff"),
                ChargeStep(OpKind.XOR, (TMP,), dst, "absdiff:neg"))
    if method == "maximum":
        a, b = srcs
        return (ChargeStep(OpKind.SUB, (a, b), TMP, "max:satsub"),
                ChargeStep(OpKind.ADD, (TMP, b), dst, "max:add"))
    if method == "minimum":
        a, b = srcs
        return (ChargeStep(OpKind.SUB, (a, b), TMP, "min:satsub"),
                ChargeStep(OpKind.SUB, (a, TMP), dst, "min:sub"))
    if method == "mul":
        return (ChargeStep(OpKind.MUL, srcs, dst,
                           f">>{kw.get('rshift', 0)}",
                           operand_bits=kw.get("multiplier_bits")),)
    if method == "div":
        return (ChargeStep(OpKind.DIV, srcs, dst,
                           f"<<{kw.get('lshift', 0)}"),)
    raise ValueError(f"no charge plan for micro-op {method!r}")


@dataclass(frozen=True)
class TraceRecord:
    """One executed micro-op, for debugging and mapping validation."""

    kind: OpKind
    precision: int
    cycles: int
    dst: str
    srcs: Tuple[str, ...]
    note: Optional[str] = None

    def __str__(self) -> str:
        srcs = ", ".join(self.srcs)
        suffix = f"  ; {self.note}" if self.note else ""
        return (f"{self.kind.value:<12} {self.dst:<8} <- {srcs:<20} "
                f"[{self.precision}b, {self.cycles}cyc]{suffix}")
