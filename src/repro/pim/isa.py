"""Micro-operation definitions and execution traces.

Every kernel in the algorithm layer compiles down to this small
instruction set, which matches what the hardware of paper section 4 can
issue in one (or, for multiply/divide, ``n + 2``) clock cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["OpKind", "TraceRecord", "op_cycles"]


class OpKind(enum.Enum):
    """The micro-operations the device can issue.

    Single-cycle operations (paper section 5.1: "all basic operations
    are single-cycle"):

    * ``AND/OR/XOR/NOR`` -- in-array sense-amp logic (Fig. 6-a).
    * ``ADD/SUB`` -- accumulator add/sub, optionally saturating.
    * ``AVG`` -- add then shift-right-one (the LPF primitive).
    * ``CMP_GT`` -- comparison mask from the borrow/carry extension.
    * ``SHIFT_LANES`` -- shift the word line by whole lanes (pixels).
    * ``SHIFT_BITS`` -- arithmetic shift within lanes.
    * ``COPY`` -- move a value through the accumulator unchanged.

    Multi-cycle operations (``n + 2`` cycles for n-bit lanes,
    section 4.2):

    * ``MUL`` -- MSB-first shift-add multiplication (Fig. 7-c).
    * ``DIV`` -- restoring division (Fig. 7-d).
    """

    AND = "and"
    OR = "or"
    XOR = "xor"
    NOR = "nor"
    ADD = "add"
    SUB = "sub"
    AVG = "avg"
    CMP_GT = "cmp_gt"
    SHIFT_LANES = "shift_lanes"
    SHIFT_BITS = "shift_bits"
    COPY = "copy"
    MUL = "mul"
    DIV = "div"


def op_cycles(kind: OpKind, precision: int) -> int:
    """Issue cycles for one micro-op at the given lane width.

    Multiplication and division take ``n + 2`` cycles including their
    SRAM read/write overhead (paper section 4.2); everything else is a
    single cycle.  The extra write-back cycle for SRAM destinations is
    charged separately by the device.
    """
    if kind in (OpKind.MUL, OpKind.DIV):
        return precision + 2
    return 1


@dataclass(frozen=True)
class TraceRecord:
    """One executed micro-op, for debugging and mapping validation."""

    kind: OpKind
    precision: int
    cycles: int
    dst: str
    srcs: Tuple[str, ...]
    note: Optional[str] = None

    def __str__(self) -> str:
        srcs = ", ".join(self.srcs)
        suffix = f"  ; {self.note}" if self.note else ""
        return (f"{self.kind.value:<12} {self.dst:<8} <- {srcs:<20} "
                f"[{self.precision}b, {self.cycles}cyc]{suffix}")
