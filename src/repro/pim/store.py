"""Content-addressed on-disk persistence for recorded PIM programs.

:class:`~repro.pim.program.ProgramCache` makes a kernel's program
free after the first frame *within one process*; every new process
(each ``serve.DevicePool`` worker restart, every CLI invocation) still
pays the full re-recording cost per kernel x shape x precision.  This
module adds the missing layer: a :class:`ProgramStore` directory that
persists recorded programs so later processes warm-start from disk.

Addressing and invalidation
---------------------------

Entries are content-addressed.  The file name is the SHA-256 of

* the caller's canonical cache key (the same tuple
  :func:`~repro.pim.program.program_key` builds),
* the device geometry digest (``PIMConfig.digest()``), and
* :data:`~repro.pim.isa.ISA_VERSION`.

A geometry change or an ISA semantics bump therefore *unreaches* every
stale entry instead of requiring an explicit flush -- old files are
simply never looked up again.

Integrity
---------

The payload is canonical JSON, and the envelope stores its SHA-256.
On load the digest is recomputed; any mismatch (truncated write,
bit-rot, hand-editing) counts a ``program_store_corrupt_total`` metric
and behaves exactly like a miss, so a damaged store can cost time but
never correctness.  Loaded op streams are not trusted either: they are
re-driven through a fresh :class:`~repro.pim.program.ProgramRecorder`,
so operand validation and the ledger aggregate are re-derived from the
current cost model rather than deserialized from disk.

Writes go through a uniquely-named temp file (pid + thread + counter,
created ``O_EXCL``) and an atomic :func:`os.replace`, so any number of
threads *and* processes can share one store directory: racing writers
never observe each other's half-written files, and the loser of a
race replaces the winner with identical bytes.  An entry that already
holds exactly the bytes about to be written is skipped outright --
the common case when a fleet of shard workers warm-starts from one
shared store.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import threading
from pathlib import Path
from typing import Dict, Optional

from repro.obs.metrics import get_registry
from repro.pim.config import PIMConfig
from repro.pim.isa import ISA_VERSION, Imm, Rel, _TmpSentinel
from repro.pim.program import PIMProgram, ProgramRecorder

__all__ = ["ProgramStore"]

_FORMAT = "repro-pim-program-v1"

#: Monotonic per-process suffix so two threads (or a recycled pid and
#: a stale leftover) can never pick the same temp-file name.
_TEMP_COUNTER = itertools.count()


def _encode_operand(operand):
    """Tagged-list encoding of one operand (JSON has no Rel/Tmp/Imm)."""
    if operand is None:
        return None
    if isinstance(operand, Imm):
        return ["imm", operand.value]
    if isinstance(operand, _TmpSentinel):
        return ["tmp", operand.index]
    if isinstance(operand, Rel):
        return ["rel", int(operand)]
    return ["row", int(operand)]


def _decode_operand(spec):
    if spec is None:
        return None
    tag, value = spec
    if tag == "imm":
        return Imm(value)
    if tag == "tmp":
        return _TmpSentinel(int(value))
    if tag == "rel":
        return Rel(int(value))
    if tag == "row":
        return int(value)
    raise ValueError(f"unknown operand tag {tag!r}")


def _canonical_json(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _encode_key(key) -> list:
    """JSON-stable form of a cache key (tuples become tagged lists)."""
    if isinstance(key, (list, tuple)):
        return ["t", [_encode_key(k) for k in key]]
    if isinstance(key, (str, int, float, bool)) or key is None:
        return ["v", key]
    return ["v", repr(key)]


class ProgramStore:
    """A directory of content-addressed recorded programs.

    Layered *under* :class:`~repro.pim.program.ProgramCache` via
    :meth:`ProgramCache.attach_store`: memory misses consult the store
    before re-recording, and fresh recordings are written through.

    Metrics (labelled with the store's ``name``):

    * ``program_store_hits_total`` -- loads that returned a program;
    * ``program_store_misses_total`` -- loads with no usable entry;
    * ``program_store_corrupt_total`` -- entries rejected by the
      integrity or rebuild checks (counted *in addition to* the miss);
    * ``program_store_writes_total`` -- entries persisted.
    """

    def __init__(self, root, name: Optional[str] = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.name = name if name is not None else self.root.name
        registry = get_registry()
        self._hits = registry.counter(
            "program_store_hits_total",
            "ProgramStore loads that returned a persisted program")
        self._misses = registry.counter(
            "program_store_misses_total",
            "ProgramStore loads with no usable entry")
        self._corrupt = registry.counter(
            "program_store_corrupt_total",
            "ProgramStore entries rejected by integrity checks")
        self._writes = registry.counter(
            "program_store_writes_total",
            "ProgramStore entries persisted to disk")

    # -- addressing -----------------------------------------------------

    def address(self, key, config_digest: str) -> str:
        """Content address for a cache key under one geometry + ISA."""
        material = _canonical_json({
            "format": _FORMAT,
            "isa_version": ISA_VERSION,
            "config_digest": config_digest,
            "key": _encode_key(key),
        })
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def _path(self, key, config_digest: str) -> Path:
        return self.root / f"{self.address(key, config_digest)}.json"

    # -- persistence ----------------------------------------------------

    def save(self, key, program: PIMProgram) -> Path:
        """Persist one program; returns the entry path."""
        payload = {
            "format": _FORMAT,
            "isa_version": ISA_VERSION,
            "config_digest": program.config_digest,
            "key": _encode_key(key),
            "name": program.name,
            "initial_precision": program.initial_precision,
            "ops": [
                {
                    "method": op.method,
                    "dst": _encode_operand(op.dst),
                    "srcs": [_encode_operand(s) for s in op.srcs],
                    "kwargs": op.kwargs,
                }
                for op in program.ops
            ],
        }
        payload_json = _canonical_json(payload)
        envelope = _canonical_json({
            "payload": payload,
            "payload_sha256": hashlib.sha256(
                payload_json.encode("utf-8")).hexdigest(),
        })
        path = self._path(key, program.config_digest)
        data = envelope + "\n"
        # Entries are content-addressed, so a pre-existing file with
        # these exact bytes needs no rewrite (every shard worker saves
        # the same program).  Anything else -- missing, truncated,
        # corrupted -- falls through to the atomic replace below.
        try:
            if path.read_text() == data:
                return path
        except OSError:
            pass
        self._write_atomic(path, data)
        self._writes.inc(store=self.name)
        return path

    @staticmethod
    def _write_atomic(path: Path, data: str) -> None:
        """Crash- and race-safe publish of ``data`` at ``path``.

        The temp name embeds pid, thread id and a process-global
        counter, and is opened ``O_CREAT | O_EXCL``: two writers can
        never interleave into one temp file, and a stale temp left by
        a killed worker that happened to reuse our pid is detected
        (``FileExistsError``) and side-stepped rather than clobbered.
        ``os.replace`` then makes the publish atomic -- readers see
        the old complete entry or the new complete entry, never a
        prefix.
        """
        while True:
            tmp = path.with_name(
                f"{path.name}.tmp.{os.getpid()}."
                f"{threading.get_ident()}.{next(_TEMP_COUNTER)}")
            try:
                fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL,
                             0o644)
            except FileExistsError:
                continue  # stale leftover with our name: pick another
            break
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def load(self, key, config: PIMConfig) -> Optional[PIMProgram]:
        """Rebuild the persisted program for ``key`` (None on miss).

        Any failure mode -- missing file, malformed JSON, digest
        mismatch, unknown operand tag, an op the current recorder
        rejects -- is contained to a miss (plus a corruption count when
        an entry existed but was unusable); a damaged store can never
        produce a wrong program.
        """
        path = self._path(key, config.digest())
        try:
            raw = path.read_text()
        except OSError:
            self._misses.inc(store=self.name)
            return None
        try:
            envelope = json.loads(raw)
            payload = envelope["payload"]
            payload_json = _canonical_json(payload)
            digest = hashlib.sha256(
                payload_json.encode("utf-8")).hexdigest()
            if digest != envelope["payload_sha256"]:
                raise ValueError("payload digest mismatch")
            if payload["format"] != _FORMAT or \
                    payload["isa_version"] != ISA_VERSION or \
                    payload["config_digest"] != config.digest():
                raise ValueError("entry addressed under stale contract")
            program = self._rebuild(payload, config)
        except Exception:
            self._corrupt.inc(store=self.name)
            self._misses.inc(store=self.name)
            return None
        self._hits.inc(store=self.name)
        return program

    @staticmethod
    def _rebuild(payload: Dict, config: PIMConfig) -> PIMProgram:
        """Re-drive the op stream through a fresh recorder.

        The persisted file stores only the *surface calls*; plans,
        per-step costs and the ledger aggregate are re-derived by the
        recorder so they always reflect the current cost model.
        """
        recorder = ProgramRecorder(config, name=str(payload["name"]))
        initial = int(payload["initial_precision"])
        if initial != recorder._precision:
            # Restore the recording-time lane width without emitting a
            # set_precision op the original program did not contain.
            super(ProgramRecorder, recorder).set_precision(initial)
            recorder._initial_precision = initial
        for op in payload["ops"]:
            method = op["method"]
            if method == "set_precision":
                recorder.set_precision(int(op["kwargs"]["precision"]))
                continue
            dst = _decode_operand(op["dst"])
            srcs = [_decode_operand(s) for s in op["srcs"]]
            getattr(recorder, method)(dst, *srcs, **op["kwargs"])
        return recorder.finish()

    # -- introspection --------------------------------------------------

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def stats(self) -> Dict[str, object]:
        """Point-in-time snapshot of entry count and metric totals."""
        return {
            "name": self.name,
            "root": str(self.root),
            "entries": len(self),
            "hits": int(self._hits.value(store=self.name)),
            "misses": int(self._misses.value(store=self.name)),
            "corrupt": int(self._corrupt.value(store=self.name)),
            "writes": int(self._writes.value(store=self.name)),
        }

    def clear(self) -> None:
        """Delete every entry (metrics stay monotonic)."""
        for entry in self.root.glob("*.json"):
            try:
                entry.unlink()
            except OSError:
                pass
