"""Bit-serial PIM cost model, for the section 2.2 architecture study.

The paper chooses a *bit-parallel* datapath over the *bit-serial*
alternative (Neural Cache, Eckert et al. 2018; Duality Cache, Fujiki
et al. 2019), citing Al-Hawaj et al. 2020: both styles cost similar
power and area, but bit-serial computation has much higher latency and
additionally needs operand bit-transposition.

This module prices the *same kernel op streams* under a bit-serial
machine so the comparison is apples-to-apples:

* Data is stored transposed - one element per bitline column, bit
  planes across rows - so one array of ``columns`` bitlines processes
  ``columns`` elements per logical operation (2560 here, vs 320x8-bit
  lanes in the bit-parallel design).
* Each cycle performs one bulk bitwise row operation (dual-row
  activation through the two sense amplifiers, plus a write-back of
  the result row).
* Per-element cycle counts follow the Neural Cache algorithms:
  an n-bit ripple addition/subtraction costs about ``2n`` row
  operations (carry and sum planes per bit), comparison the same,
  multiplication performs an addition per multiplier bit
  (~``n^2 + 3n``), and restoring division adds the conditional-restore
  pass (~``1.5 n^2``).
* Bit *shifts* are free in the transposed layout (row renaming), but
  moving data *across columns* (the pixel shifts the EBVO kernels lean
  on) costs a full copy of all n bit planes.
* Operands arriving in normal (horizontal) layout must be transposed
  first: ``n`` row operations per operand group, charged when
  ``include_transpose`` is set.

The model is deliberately coarse (formula-level, like the analyses in
the cited papers) - good enough to reproduce the architectural
argument, not a gate-level claim.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.pim.config import DEFAULT_CONFIG
from repro.pim.isa import OpKind

__all__ = ["BitSerialCostModel", "price_profile"]


@dataclass(frozen=True)
class BitSerialCostModel:
    """Cycle formulas for a bit-serial in-SRAM machine."""

    columns: int = DEFAULT_CONFIG.wordline_bits

    def op_cycles(self, kind: OpKind, bits: int) -> int:
        """Row-operation count for one n-bit element-wise operation."""
        if kind in (OpKind.AND, OpKind.OR, OpKind.XOR, OpKind.NOR):
            return bits
        if kind in (OpKind.ADD, OpKind.SUB, OpKind.AVG, OpKind.CMP_GT):
            return 2 * bits
        if kind == OpKind.COPY:
            return bits
        if kind == OpKind.SHIFT_BITS:
            return 1  # row renaming in the transposed layout
        if kind == OpKind.SHIFT_LANES:
            return bits  # cross-column move: copy every bit plane
        if kind == OpKind.MUL:
            return bits * bits + 3 * bits
        if kind == OpKind.DIV:
            return (3 * bits * bits) // 2 + 5 * bits
        raise ValueError(f"unknown op kind {kind}")

    def transpose_cycles(self, bits: int) -> int:
        """Transposing one operand group into bit-plane layout."""
        return bits


def price_profile(profile: Counter, lanes_of,
                  model: BitSerialCostModel = BitSerialCostModel(),
                  include_transpose: bool = True,
                  packing: str = "payload") -> Dict:
    """Price a bit-parallel op profile on the bit-serial machine.

    Two packing assumptions bracket the comparison:

    * ``"payload"`` (**latency bound**, the realistic one for EBVO):
      each bit-parallel micro-op becomes one bit-serial group
      operation over the same elements.  The kernels are row-granular
      and dependency-chained (an image row is 320 pixels, a feature
      batch 160/80 elements), so distinct micro-ops cannot be merged
      into one 2560-column operation - exactly the latency weakness
      Al-Hawaj et al. 2020 and the paper call out.
    * ``"perfect"`` (**throughput bound**): elements from repeated ops
      are assumed perfectly batched across the full column width.
      This is the regime where the literature finds bit-serial
      competitive; it requires data-parallel workloads far wider than
      EBVO's.

    Args:
        profile: ``Counter[(OpKind, precision)] -> count`` from a
            :class:`~repro.pim.cost.CostLedger`.
        lanes_of: Callable giving the bit-parallel lane count per
            precision (the per-op payload).
        model: The cost formulas.
        include_transpose: Charge the operand transposition the paper
            criticizes bit-serial designs for.
        packing: ``"payload"`` or ``"perfect"`` (see above).

    Returns:
        Dict with total cycles and a per-(op, precision) breakdown.
    """
    if packing not in ("payload", "perfect"):
        raise ValueError("packing must be 'payload' or 'perfect'")
    total = 0.0
    transpose = 0.0
    breakdown: Dict[Tuple[str, int], float] = {}
    for (kind, bits), count in profile.items():
        if packing == "perfect":
            ops_needed = count * lanes_of(bits) / model.columns
        else:
            ops_needed = float(count)
        cycles = ops_needed * model.op_cycles(kind, bits)
        breakdown[(kind.value, bits)] = cycles
        total += cycles
        if include_transpose:
            transpose += ops_needed * model.transpose_cycles(bits)
    return {
        "cycles": total,
        "transpose_cycles": transpose,
        "cycles_with_transpose": total + transpose,
        "breakdown": breakdown,
    }
