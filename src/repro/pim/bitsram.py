"""Bit-true SRAM array with sense-amp bitline logic.

Models the in-memory compute primitive of Fig. 6-a: activating two word
lines simultaneously lets the two sense amplifiers per bitline read out
``A AND B`` and ``A NOR B`` in one access; a NOR gate combines them into
``A XOR B`` and an inverter gives ``A OR B``.

Bits are stored explicitly (one uint8 per cell) so tests can pin the
word-level device to the physical bit layout.  Lanes are little-endian:
lane ``i`` of width ``w`` occupies bits ``[i*w, (i+1)*w)`` with the LSB
first.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BitSRAM", "lanes_to_bits", "bits_to_lanes"]


def lanes_to_bits(lanes, precision: int, wordline_bits: int) -> np.ndarray:
    """Pack unsigned lane values into a little-endian bit vector.

    Args:
        lanes: Unsigned integers, one per lane (shorter vectors are
            zero-padded on the right).
        precision: Lane width in bits.
        wordline_bits: Total bits in the word line.

    Returns:
        A uint8 vector of 0/1 of length ``wordline_bits``.
    """
    num_lanes = wordline_bits // precision
    lanes = np.asarray(lanes, dtype=np.uint64)
    if lanes.size > num_lanes:
        raise ValueError("more lane values than lanes")
    full = np.zeros(num_lanes, dtype=np.uint64)
    full[:lanes.size] = lanes
    if np.any(full >> np.uint64(precision)):
        raise ValueError(f"lane value exceeds {precision} bits")
    shifts = np.arange(precision, dtype=np.uint64)
    bits = (full[:, None] >> shifts[None, :]) & np.uint64(1)
    return bits.reshape(-1).astype(np.uint8)


def bits_to_lanes(bits: np.ndarray, precision: int) -> np.ndarray:
    """Unpack a little-endian bit vector into unsigned lane values."""
    bits = np.asarray(bits, dtype=np.uint64)
    if bits.size % precision:
        raise ValueError("bit vector is not a whole number of lanes")
    grouped = bits.reshape(-1, precision)
    shifts = np.arange(precision, dtype=np.uint64)
    return (grouped << shifts[None, :]).sum(axis=1, dtype=np.uint64)


class BitSRAM:
    """A rows x cols array of explicit bits with dual-row bitline logic."""

    def __init__(self, num_rows: int, wordline_bits: int):
        if num_rows <= 0 or wordline_bits <= 0:
            raise ValueError("geometry must be positive")
        self.num_rows = num_rows
        self.wordline_bits = wordline_bits
        self._cells = np.zeros((num_rows, wordline_bits), dtype=np.uint8)

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.num_rows:
            raise IndexError(f"row {row} out of range [0, {self.num_rows})")

    def write_row(self, row: int, bits: np.ndarray) -> None:
        """Write a full word line of bits."""
        self._check_row(row)
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.shape != (self.wordline_bits,):
            raise ValueError("bit vector does not match word line width")
        if np.any(bits > 1):
            raise ValueError("bits must be 0 or 1")
        self._cells[row] = bits

    def read_row(self, row: int) -> np.ndarray:
        """Read a full word line of bits (copy)."""
        self._check_row(row)
        return self._cells[row].copy()

    def bitline_and(self, row_a: int, row_b: int) -> np.ndarray:
        """Dual-row activation, AND sense amplifier output."""
        self._check_row(row_a)
        self._check_row(row_b)
        return self._cells[row_a] & self._cells[row_b]

    def bitline_nor(self, row_a: int, row_b: int) -> np.ndarray:
        """Dual-row activation, NOR sense amplifier output."""
        self._check_row(row_a)
        self._check_row(row_b)
        return 1 - (self._cells[row_a] | self._cells[row_b])

    def bitline_xor(self, row_a: int, row_b: int) -> np.ndarray:
        """XOR derived as ``NOR(AND, NOR)`` of the two SA outputs."""
        a = self.bitline_and(row_a, row_b)
        n = self.bitline_nor(row_a, row_b)
        return 1 - (a | n)

    def bitline_or(self, row_a: int, row_b: int) -> np.ndarray:
        """OR derived as ``NOT NOR``."""
        return 1 - self.bitline_nor(row_a, row_b)
