"""The Hessian kernel: Q29.3 reduction of J^T J and J^T r (paper 3.4).

Per LM iteration the 6x6 Gauss-Newton Hessian ``H = sum_t J_t^T J_t``
and the steepest-descent vector ``b = sum_t J_t^T r_t`` are accumulated
over every feature.  On the PIM this runs in 32-bit lanes (80 features
per word line): each of the 21 unique symmetric products plus the 6
``b`` entries is one lane-multiply (``(Q14.2 x Q14.2) >> 1 ->
Q29.3``) followed by a saturating add into a per-product accumulator
row; a final logarithmic shift-add tree folds the 80 lanes into lane 0.

The paper observes that 16-bit accumulation makes the LM solver fail
while 32-bit Q29.3 suffices - behaviour the ablation bench reproduces.

The naive mapping computes all 36 products of the full (non-symmetric)
matrix, the extra cost Fig. 9-b's LM bar reflects.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.fixedpoint import Q29_3, ops
from repro.kernels.common import shift_pixels
from repro.pim.device import TMP

__all__ = ["HESSIAN_FORMAT", "SYM_PAIRS", "reduction_shifts",
           "hessian_float", "hessian_fast", "hessian_pim",
           "hessian_pim_naive", "hessian_reduce_pim", "unpack_symmetric"]

#: Hessian / steepest-descent accumulator format.
HESSIAN_FORMAT = Q29_3

#: The 21 unique entries of the symmetric 6x6 Hessian, row-major upper.
SYM_PAIRS: List[Tuple[int, int]] = [(i, j) for i in range(6)
                                    for j in range(i, 6)]

_ACC_BITS = 32
#: ``(Q14.2)^2 = scale 2^4`` -> Q29.3 needs one right shift.
_PROD_SHIFT = 1


def reduction_shifts(lanes: int) -> List[int]:
    """Shift schedule of the lane-reduction tree.

    Each step adds the word line shifted by ``s`` lanes onto itself,
    halving (at least) the live prefix; ``s >= m/2`` guarantees lanes
    below ``s`` are never polluted by consumed lanes.
    """
    shifts = []
    m = lanes
    while m > 1:
        s = 1 << ((m - 1).bit_length() - 1)
        shifts.append(s)
        m = s
    return shifts


def hessian_float(jacobians: np.ndarray, residuals: np.ndarray) -> tuple:
    """Float reference: ``(H, b) = (J^T J, J^T r)``."""
    j = np.asarray(jacobians, dtype=np.float64)
    r = np.asarray(residuals, dtype=np.float64)
    return j.T @ j, j.T @ r


def _sat_prod(a, b) -> np.ndarray:
    return ops.saturate(
        (np.asarray(a, dtype=np.int64) * np.asarray(b, dtype=np.int64))
        >> _PROD_SHIFT, _ACC_BITS)


def hessian_fast(j_raw: np.ndarray, r_raw: np.ndarray,
                 lanes: int = 80, acc_bits: int = _ACC_BITS) -> tuple:
    """Quantized reduction with exact PIM arithmetic and batch structure.

    Args:
        j_raw: (N x 6) Jacobian raws (Q14.2).
        r_raw: (N,) residual raws (Q14.2).
        lanes: SIMD lanes of the accumulation precision (80 at 32-bit).
        acc_bits: Accumulator lane width (32 in the paper; 16 fails).

    Returns:
        ``(h_raw, b_raw)``: 21 upper-triangular raws and 6 vector raws
        in Q29.3.
    """
    j = np.asarray(j_raw, dtype=np.int64)
    r = np.asarray(r_raw, dtype=np.int64).reshape(-1)
    n = r.size
    batches = max(1, -(-n // lanes))
    padded = batches * lanes
    jp = np.zeros((padded, 6), dtype=np.int64)
    rp = np.zeros(padded, dtype=np.int64)
    jp[:n] = j
    rp[:n] = r

    acc = np.zeros((27, lanes), dtype=np.int64)
    for start in range(0, padded, lanes):
        jb = jp[start:start + lanes]
        rb = rp[start:start + lanes]
        for idx, (p, q) in enumerate(SYM_PAIRS):
            prod = ops.saturate(
                (jb[:, p] * jb[:, q]) >> _PROD_SHIFT, acc_bits)
            acc[idx] = ops.sat_add(acc[idx], prod, acc_bits)
        for i in range(6):
            prod = ops.saturate((jb[:, i] * rb) >> _PROD_SHIFT, acc_bits)
            acc[21 + i] = ops.sat_add(acc[21 + i], prod, acc_bits)

    for s in reduction_shifts(lanes):
        acc = ops.sat_add(acc, shift_pixels(acc, s), acc_bits)
    return acc[:21, 0].copy(), acc[21:, 0].copy()


def hessian_pim(device, j_rows, r_row: int, acc_rows,
                first_batch: bool) -> None:
    """Optimized device program: accumulate one 32-bit batch.

    Args:
        device: PIM device already holding the batch in 32-bit lanes.
        j_rows: Six rows with the Jacobian columns of this batch.
        r_row: Row with the residuals of this batch.
        acc_rows: 27 accumulator rows (21 Hessian + 6 b).
        first_batch: Initialize instead of accumulate.
    """
    device.set_precision(_ACC_BITS)
    for idx, (p, q) in enumerate(SYM_PAIRS):
        device.mul(TMP, j_rows[p], j_rows[q], rshift=_PROD_SHIFT,
                   multiplier_bits=16)
        if first_batch:
            device.copy(acc_rows[idx], TMP)
        else:
            device.add(acc_rows[idx], acc_rows[idx], TMP, saturate=True)
    for i in range(6):
        device.mul(TMP, j_rows[i], r_row, rshift=_PROD_SHIFT,
                   multiplier_bits=16)
        if first_batch:
            device.copy(acc_rows[21 + i], TMP)
        else:
            device.add(acc_rows[21 + i], acc_rows[21 + i], TMP,
                       saturate=True)


def hessian_pim_naive(device, j_rows, r_row: int, acc_rows,
                      first_batch: bool) -> None:
    """Naive device program: all 36 products of the full matrix.

    The symmetric half is recomputed rather than reused, which is the
    extra LM cost the naive bar of Fig. 9-b carries.  ``acc_rows`` must
    provide 42 rows (36 + 6).
    """
    device.set_precision(_ACC_BITS)
    idx = 0
    for p in range(6):
        for q in range(6):
            device.mul(TMP, j_rows[p], j_rows[q], rshift=_PROD_SHIFT,
                       multiplier_bits=16)
            if first_batch:
                device.copy(acc_rows[idx], TMP)
            else:
                device.add(acc_rows[idx], acc_rows[idx], TMP,
                           saturate=True)
            idx += 1
    for i in range(6):
        device.mul(TMP, j_rows[i], r_row, rshift=_PROD_SHIFT,
                   multiplier_bits=16)
        if first_batch:
            device.copy(acc_rows[idx], TMP)
        else:
            device.add(acc_rows[idx], acc_rows[idx], TMP, saturate=True)
        idx += 1


def hessian_reduce_pim(device, acc_rows) -> np.ndarray:
    """Fold each accumulator row's lanes into lane 0 (shift-add tree).

    Returns:
        Array of lane-0 values, one per accumulator row (Q29.3 raws).
    """
    device.set_precision(_ACC_BITS)
    lanes = device.lanes
    for row in acc_rows:
        for s in reduction_shifts(lanes):
            device.shift_lanes(TMP, row, s, signed=True)
            device.add(row, row, TMP, saturate=True)
    return np.array([int(device.store(row)[0]) for row in acc_rows])


def unpack_symmetric(h21: np.ndarray) -> np.ndarray:
    """Expand 21 upper-triangular values into the symmetric 6x6."""
    h21 = np.asarray(h21, dtype=np.float64).reshape(-1)
    if h21.size != 21:
        raise ValueError("expected 21 upper-triangular entries")
    h = np.zeros((6, 6))
    for idx, (p, q) in enumerate(SYM_PAIRS):
        h[p, q] = h21[idx]
        h[q, p] = h21[idx]
    return h
