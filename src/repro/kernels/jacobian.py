"""The Jacobian kernel (paper Fig. 5-c/d), quantized to Q14.2.

For a feature warped to keyframe coordinates ``(X, Y, Z)`` with DT
gradient lookups ``(I_u, I_v)`` (pre-multiplied by the focal length, as
in the paper's formulation), the 6-DOF Jacobian row is::

    J = [ Iu/Z,  Iv/Z,  -(X Iu + Y Iv)/Z^2,
          -(Y (X Iu + Y Iv)/Z^2 + Iv),
            X (X Iu + Y Iv)/Z^2 + Iu,
          (X Iv - Y Iu)/Z ]

The optimized pipeline (Fig. 5-d) shares the three subexpressions
``w = 1/Z``, ``rx = X/Z``, ``ry = Y/Z`` (the latter two fall out of the
warp for free) and ``K = rx Iu + ry Iv = (X Iu + Y Iv)/Z``:

    J1 = Iu w         J2 = Iv w         J3 = -(K w)
    J4 = -(ry K + Iv) J5 = rx K + Iu    J6 = rx Iv - ry Iu

which costs 9 multiplies and 1 divide per feature batch.  The naive
mapping evaluates each entry from the raw formula, recomputing
``(X Iu + Y Iv)`` and the divisions (12 multiplies, 8 divides).

Note the scaled coordinates: the warp works with ``(X~, Y~, Z~) =
(X, Y, Z)/d``; since ``rx, ry`` are ratios they are scale-free, and
``w = 1/Z = c/Z~`` is recovered with one extra divide by the stored
inverse depth ``c``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fixedpoint import Q14_2, ops
from repro.kernels.warp import FEATURE_FORMAT, WarpResult, qdiv_lanes
from repro.pim.device import TMP, Imm

__all__ = ["JACOBIAN_FORMAT", "jacobian_float", "jacobian_fast",
           "jacobian_pim", "jacobian_pim_naive", "JacobianRows"]

#: Jacobian entry format (paper section 3.4).
JACOBIAN_FORMAT = Q14_2

_LANE_BITS = 16


def jacobian_float(x, y, z, grad_u, grad_v) -> np.ndarray:
    """Float reference Jacobian (N x 6) from *real-scale* coordinates.

    Args:
        x, y, z: Warped point in keyframe coordinates (real scale).
        grad_u, grad_v: DT gradient at the warped pixel, pre-multiplied
            by the focal length (``Iu = fx dDT/du``).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    z = np.asarray(z, dtype=np.float64)
    iu = np.asarray(grad_u, dtype=np.float64)
    iv = np.asarray(grad_v, dtype=np.float64)
    safe_z = np.where(np.abs(z) < 1e-12, 1e-12, z)
    k = (x * iu + y * iv) / safe_z
    w = 1.0 / safe_z
    rx, ry = x / safe_z, y / safe_z
    return np.stack([
        iu * w,
        iv * w,
        -(k * w),
        -(ry * k + iv),
        rx * k + iu,
        rx * iv - ry * iu,
    ], axis=-1)


def _qmul(a, b, f: int) -> np.ndarray:
    """Saturating ``(a * b) >> f`` on 16-bit lanes (PIM mul semantics)."""
    return ops.saturate(
        np.asarray(a, dtype=np.int64) * np.asarray(b, dtype=np.int64) >> f,
        _LANE_BITS)


def jacobian_fast(warp: WarpResult, c_raw, iu_raw, iv_raw,
                  feature_frac: int = FEATURE_FORMAT.fraction_bits
                  ) -> np.ndarray:
    """Quantized Jacobian with exact PIM arithmetic.

    Args:
        warp: Output of the quantized warp (``rx``, ``ry``, ``z`` raws).
        c_raw: Inverse-depth raws of the features (feature format).
        iu_raw, iv_raw: Gradient lookups as Q14.2 raws.

    Returns:
        (N x 6) array of Q14.2 raws.
    """
    f = feature_frac
    c_raw = np.asarray(c_raw, dtype=np.int64)
    iu = np.asarray(iu_raw, dtype=np.int64)
    iv = np.asarray(iv_raw, dtype=np.int64)
    w = qdiv_lanes(c_raw, warp.z, lshift=f)
    j1 = _qmul(iu, w, f)
    j2 = _qmul(iv, w, f)
    k = ops.sat_add(_qmul(warp.rx, iu, f), _qmul(warp.ry, iv, f),
                    _LANE_BITS)
    j3 = ops.sat_sub(np.int64(0), _qmul(k, w, f), _LANE_BITS)
    j4 = ops.sat_sub(np.int64(0),
                     ops.sat_add(_qmul(warp.ry, k, f), iv, _LANE_BITS),
                     _LANE_BITS)
    j5 = ops.sat_add(_qmul(warp.rx, k, f), iu, _LANE_BITS)
    j6 = ops.sat_sub(_qmul(warp.rx, iv, f), _qmul(warp.ry, iu, f),
                     _LANE_BITS)
    return np.stack([j1, j2, j3, j4, j5, j6], axis=-1)


@dataclass
class JacobianRows:
    """Row allocation of one Jacobian batch inside the PIM array."""

    rx: int
    ry: int
    z: int
    c: int
    iu: int
    iv: int
    w: int
    k: int
    j: tuple  # six destination rows


def jacobian_pim(device, rows: JacobianRows, count: int,
                 feature_frac: int = FEATURE_FORMAT.fraction_bits
                 ) -> np.ndarray:
    """Optimized device program (Fig. 5-d) for one feature batch.

    Expects ``rows.rx/ry/z`` already produced by :func:`warp_pim` and
    ``rows.c/iu/iv`` DMA-loaded.  9 multiplies + 1 divide.
    """
    device.set_precision(_LANE_BITS)
    f = feature_frac
    j1, j2, j3, j4, j5, j6 = rows.j
    device.div(rows.w, rows.c, rows.z, lshift=f)       # w = c / Z~
    device.mul(j1, rows.iu, rows.w, rshift=f)          # J1 = Iu w
    device.mul(j2, rows.iv, rows.w, rshift=f)          # J2 = Iv w
    device.mul(rows.k, rows.rx, rows.iu, rshift=f)     # rx Iu
    device.mul(TMP, rows.ry, rows.iv, rshift=f)        # ry Iv
    device.add(rows.k, rows.k, TMP, saturate=True)     # K
    device.mul(TMP, rows.k, rows.w, rshift=f)          # K w
    device.sub(j3, Imm(0), TMP, saturate=True)         # J3 = -K w
    device.mul(TMP, rows.ry, rows.k, rshift=f)         # ry K
    device.add(TMP, TMP, rows.iv, saturate=True)
    device.sub(j4, Imm(0), TMP, saturate=True)         # J4
    device.mul(TMP, rows.rx, rows.k, rshift=f)         # rx K
    device.add(j5, TMP, rows.iu, saturate=True)        # J5
    device.mul(j6, rows.rx, rows.iv, rshift=f)         # rx Iv
    device.mul(TMP, rows.ry, rows.iu, rshift=f)        # ry Iu
    device.sub(j6, j6, TMP, saturate=True)             # J6
    return np.stack([device.store(r)[:count] for r in rows.j], axis=-1)


def jacobian_pim_naive(device, rows: JacobianRows, count: int,
                       x_row: int, y_row: int,
                       feature_frac: int = FEATURE_FORMAT.fraction_bits
                       ) -> np.ndarray:
    """Naive device program: every entry from the raw Fig. 5-c formula.

    No subexpression sharing: ``(X Iu + Y Iv)`` is recomputed for J3,
    J4 and J5, and each entry performs its own division(s) by Z (12
    multiplies, 8 divides per batch).  Numerically the entries may
    differ from the optimized pipeline in the last bits (different
    rounding points); the optimized/naive agreement is validated at the
    tracking level, the cycle counts at the Fig. 9-b level.
    """
    device.set_precision(_LANE_BITS)
    f = feature_frac
    j1, j2, j3, j4, j5, j6 = rows.j
    scratch = rows.k

    def xiu_yiv(dst):
        device.mul(dst, x_row, rows.iu, rshift=f)
        device.mul(TMP, y_row, rows.iv, rshift=f)
        device.add(dst, dst, TMP, saturate=True)

    # J1 = Iu/Z * c, J2 = Iv/Z * c  (two divides, two muls).
    device.div(rows.w, rows.c, rows.z, lshift=f)
    device.mul(j1, rows.iu, rows.w, rshift=f)
    device.div(rows.w, rows.c, rows.z, lshift=f)       # recomputed!
    device.mul(j2, rows.iv, rows.w, rshift=f)
    # J3 = -(X Iu + Y Iv)/Z^2 * c^2 -> compute, divide twice.
    xiu_yiv(scratch)
    device.div(scratch, scratch, rows.z, lshift=f)
    device.mul(scratch, scratch, rows.c, rshift=f)
    device.div(scratch, scratch, rows.z, lshift=f)
    device.mul(scratch, scratch, rows.c, rshift=f)
    device.sub(j3, Imm(0), scratch, saturate=True)
    # J4 = -(Y/Z * (X Iu + Y Iv)/Z * c + Iv).
    xiu_yiv(scratch)
    device.div(scratch, scratch, rows.z, lshift=f)
    device.mul(scratch, scratch, rows.c, rshift=f)
    device.div(TMP, y_row, rows.z, lshift=f)
    device.mul(scratch, scratch, TMP, rshift=f)
    device.add(scratch, scratch, rows.iv, saturate=True)
    device.sub(j4, Imm(0), scratch, saturate=True)
    # J5 = X/Z * (X Iu + Y Iv)/Z * c + Iu.
    xiu_yiv(scratch)
    device.div(scratch, scratch, rows.z, lshift=f)
    device.mul(scratch, scratch, rows.c, rshift=f)
    device.div(TMP, x_row, rows.z, lshift=f)
    device.mul(scratch, scratch, TMP, rshift=f)
    device.add(j5, scratch, rows.iu, saturate=True)
    # J6 = (X Iv - Y Iu)/Z.
    device.mul(scratch, x_row, rows.iv, rshift=f)
    device.mul(TMP, y_row, rows.iu, rshift=f)
    device.sub(scratch, scratch, TMP, saturate=True)
    device.div(j6, scratch, rows.z, lshift=f)
    return np.stack([device.store(r)[:count] for r in rows.j], axis=-1)
