"""Full in-PIM edge detection: LPF -> HPF -> NMS (paper Fig. 1-a).

The three kernels chain *in place* inside the SRAM array: the LPF
overwrites the image, the HPF overwrites the smoothed image (one row of
lag), the NMS overwrites the response (another row of lag).  The host
reads back a 0/1 mask whose indices are offset from the original image
by the accumulated kernel alignments; :func:`mask_to_image_coords`
undoes the offset.

Coordinate bookkeeping (``img`` = original image):

* LPF output row ``r`` is centred at ``img[r + 1, c + 1]``.
* HPF output row ``i`` is centred at LPF row ``i + 1`` (columns
  centre-aligned) -> ``img[i + 2, c + 1]``.
* NMS output row ``j`` decides HPF row ``j + 1`` -> ``img[j + 3, c + 1]``.

The valid interior is ``3 <= v <= H - 4`` and ``3 <= u <= W - 5``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.kernels.common import load_image, read_image
from repro.kernels.hpf import hpf_fast, hpf_pim, hpf_pim_replay
from repro.kernels.lpf import lpf_fast, lpf_pim
from repro.kernels.nms import nms_fast, nms_pim, nms_pim_replay
from repro.obs.tracer import span as obs_span
from repro.vision.edges import DEFAULT_TH1, DEFAULT_TH2

__all__ = ["EdgeDetectionResult", "detect_edges_fast", "detect_edges_pim",
           "detect_edges_replay", "mask_to_image_coords",
           "EDGE_ROW_OFFSET", "EDGE_COL_OFFSET", "VALID_MARGIN"]

#: Mask row ``j`` corresponds to image row ``j + EDGE_ROW_OFFSET``.
EDGE_ROW_OFFSET = 3
#: Mask col ``c`` corresponds to image col ``c + EDGE_COL_OFFSET``.
EDGE_COL_OFFSET = 1
#: Border width (in image pixels) outside which decisions are invalid.
VALID_MARGIN = 4


@dataclass
class EdgeDetectionResult:
    """Output of the edge-detection pipeline.

    Attributes:
        edge_map: Boolean map in original image coordinates.
        cycles: Per-stage device cycles (empty for the fast path).
    """

    edge_map: np.ndarray
    cycles: Dict[str, int] = field(default_factory=dict)

    @property
    def total_cycles(self) -> int:
        """Total device cycles across stages."""
        return sum(self.cycles.values())


def mask_to_image_coords(mask: np.ndarray, height: int,
                         width: int) -> np.ndarray:
    """Re-index the kernel-aligned mask into original image coordinates."""
    edge = np.zeros((height, width), dtype=bool)
    src = mask[:height - EDGE_ROW_OFFSET, :width - EDGE_COL_OFFSET] > 0
    edge[EDGE_ROW_OFFSET:, EDGE_COL_OFFSET:] = src
    m = VALID_MARGIN
    interior = np.zeros_like(edge)
    interior[m:-m, m:-m] = edge[m:-m, m:-m]
    return interior


def detect_edges_fast(image: np.ndarray, th1: int = DEFAULT_TH1,
                      th2: int = DEFAULT_TH2) -> EdgeDetectionResult:
    """Edge detection with exact PIM arithmetic, vectorized."""
    img = np.asarray(image)
    smooth = lpf_fast(img)
    response = hpf_fast(smooth)
    mask = nms_fast(response, th1, th2)
    return EdgeDetectionResult(
        edge_map=mask_to_image_coords(mask, *img.shape))


def detect_edges_pim(device, image: np.ndarray, th1: int = DEFAULT_TH1,
                     th2: int = DEFAULT_TH2,
                     base_row: int = 0) -> EdgeDetectionResult:
    """Edge detection executed on the PIM device, with per-stage cycles.

    Produces a mask bit-identical to :func:`detect_edges_fast` and
    leaves the cycle/access counts in the device ledger.
    """
    img = np.asarray(image)
    height, width = img.shape
    load_image(device, img, base_row)
    cycles = {}
    with obs_span("detect_edges", device=device, category="pipeline",
                  height=height, width=width, variant="eager"):
        snap = device.ledger.snapshot()
        lpf_pim(device, height, base_row)
        cycles["lpf"] = device.ledger.cycles - snap.cycles

        snap = device.ledger.snapshot()
        hpf_pim(device, height, base_row)
        cycles["hpf"] = device.ledger.cycles - snap.cycles

        snap = device.ledger.snapshot()
        nms_pim(device, height, th1, th2, base_row)
        cycles["nms"] = device.ledger.cycles - snap.cycles

    mask = read_image(device, height, width, base_row)
    return EdgeDetectionResult(
        edge_map=mask_to_image_coords(mask, height, width),
        cycles=cycles)


def detect_edges_replay(device, image: np.ndarray, th1: int = DEFAULT_TH1,
                        th2: int = DEFAULT_TH2, base_row: int = 0,
                        mode: str = "auto") -> EdgeDetectionResult:
    """Edge detection via compiled-program replay (row-batched).

    Each stage's per-row body is compiled once (cached in
    :data:`~repro.kernels.common.KERNEL_PROGRAM_CACHE`) and replayed
    across all rows as vectorized numpy ops, with the ledger charged
    analytically per stage.  The mask is bit-identical to
    :func:`detect_edges_fast`; the HPF/NMS cycle counts are slightly
    higher than :func:`detect_edges_pim` because the batchable bodies
    recompute the row shifts the eager ring kernels carry across
    iterations.  ``mode`` is forwarded to
    :meth:`~repro.pim.device.PIMDevice.run_program` (``"eager"``
    executes the same programs row by row -- the equivalence and
    benchmark reference).
    """
    img = np.asarray(image)
    height, width = img.shape
    load_image(device, img, base_row)
    cycles = {}
    with obs_span("detect_edges", device=device, category="pipeline",
                  height=height, width=width, variant="replay",
                  mode=mode):
        snap = device.ledger.snapshot()
        lpf_pim(device, height, base_row, mode=mode)
        cycles["lpf"] = device.ledger.cycles - snap.cycles

        snap = device.ledger.snapshot()
        hpf_pim_replay(device, height, base_row, mode=mode)
        cycles["hpf"] = device.ledger.cycles - snap.cycles

        snap = device.ledger.snapshot()
        nms_pim_replay(device, height, th1, th2, base_row, mode=mode)
        cycles["nms"] = device.ledger.cycles - snap.cycles

    mask = read_image(device, height, width, base_row)
    return EdgeDetectionResult(
        edge_map=mask_to_image_coords(mask, height, width),
        cycles=cycles)
