"""One full LM iteration as a PIM device program (paper Fig. 1-b/c).

Chains the warp, lookup, Jacobian and Hessian kernels over the whole
feature set, batched by the SIMD width (160 features per 16-bit batch,
80 per 32-bit accumulation batch), and returns the reduced ``H``/``b``
raws together with a per-phase cycle breakdown - the numbers behind the
LM bars of Fig. 9.

Residual and gradient lookups are host-assisted gathers: the DT and
gradient maps live in memory, and each feature costs one access plus
one cycle per map (three per feature).  Invalid features (behind the
camera or out of frame) are masked *on the device*: the warp's
comparison masks are combined, sign-extended with one subtraction, and
ANDed over the Jacobian columns and residuals.

The naive variant swaps in the unfactored Jacobian (Fig. 5-c evaluated
literally) and the full 36-product Hessian; Fig. 9-b's 1.4x LM gap is
the measured difference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.camera import CameraIntrinsics
from repro.kernels.hessian import (
    hessian_fast,
    hessian_pim,
    hessian_pim_naive,
    hessian_reduce_pim,
)
from repro.kernels.jacobian import (
    JacobianRows,
    jacobian_fast,
    jacobian_pim,
    jacobian_pim_naive,
)
from repro.kernels.warp import (
    QuantizedFeatures,
    QuantizedPose,
    UV_FORMAT,
    WarpRows,
    warp_fast,
    warp_pim,
)
from repro.obs.tracer import span as obs_span
from repro.pim.device import TMP, Imm
from repro.pim.isa import OpKind

__all__ = ["LMCycleBreakdown", "lm_iteration_pim", "lm_iteration_fast",
           "nearest_lookup"]

_LANE16 = 16
_LANE32 = 32


@dataclass
class LMCycleBreakdown:
    """Device cycles of one LM iteration, by phase."""

    warp: int = 0
    lookup: int = 0
    jacobian: int = 0
    mask: int = 0
    hessian: int = 0
    reduce: int = 0

    @property
    def total(self) -> int:
        return (self.warp + self.lookup + self.jacobian + self.mask +
                self.hessian + self.reduce)


def nearest_lookup(grid_raw: np.ndarray, u_raw: np.ndarray,
                   v_raw: np.ndarray) -> np.ndarray:
    """Nearest-pixel gather from Q14.2 coordinates (clipped)."""
    h, w = grid_raw.shape
    half = UV_FORMAT.scale // 2
    ui = np.clip((np.asarray(u_raw) + half) >> 2, 0, w - 1).astype(
        np.int64)
    vi = np.clip((np.asarray(v_raw) + half) >> 2, 0, h - 1).astype(
        np.int64)
    return grid_raw[vi, ui]


def _batched(feats: QuantizedFeatures, lanes: int):
    """Split the feature set into lane-sized batches (zero padded)."""
    n = len(feats)
    for start in range(0, max(n, 1), lanes):
        end = min(start + lanes, n)
        count = end - start
        yield QuantizedFeatures(a=feats.a[start:end], b=feats.b[start:end],
                                c=feats.c[start:end], fmt=feats.fmt), count


def _mask_batch(device, warp_rows: WarpRows, j_rows, r_row: int,
                mask_row: int, camera: CameraIntrinsics) -> None:
    """Zero Jacobians/residuals of invalid features, on the device.

    valid = (Z > 0) AND (0 <= u <= umax) AND (0 <= v <= vmax); the 0/1
    mask is sign-extended to all-ones by ``0 - mask`` and ANDed across
    the seven data rows.
    """
    scale = UV_FORMAT.scale
    umax = (camera.width - 1) * scale
    vmax = (camera.height - 1) * scale
    device.cmp_gt(mask_row, warp_rows.z, Imm(0))             # Z > 0
    device.cmp_gt(TMP, Imm(umax + 1), warp_rows.u)           # u <= umax
    device.logic_and(mask_row, mask_row, TMP)
    device.cmp_gt(TMP, warp_rows.u, Imm(-1))                 # u >= 0
    device.logic_and(mask_row, mask_row, TMP)
    device.cmp_gt(TMP, Imm(vmax + 1), warp_rows.v)           # v <= vmax
    device.logic_and(mask_row, mask_row, TMP)
    device.cmp_gt(TMP, warp_rows.v, Imm(-1))                 # v >= 0
    device.logic_and(mask_row, mask_row, TMP)
    device.sub(mask_row, Imm(0), mask_row)                   # 0/-1 extend
    for row in list(j_rows) + [r_row]:
        device.logic_and(row, row, mask_row)


def lm_iteration_pim(device, qpose: QuantizedPose,
                     feats: QuantizedFeatures, camera: CameraIntrinsics,
                     dt_raw: np.ndarray, gu_raw: np.ndarray,
                     gv_raw: np.ndarray, residual_clamp_raw: int,
                     naive: bool = False) -> tuple:
    """Run one LM linearization on the device.

    Returns:
        ``(h_raw, b_raw, breakdown)``: 21 (+6) Q29.3 raws and the
        per-phase cycles.  With ``naive=True`` the unfactored Jacobian
        and full-matrix Hessian mappings are used instead.
    """
    breakdown = LMCycleBreakdown()

    warp_rows = WarpRows(a=0, b=1, c=2, x=3, y=4, z=5, rx=6, ry=7,
                         u=8, v=9)
    jac_rows = JacobianRows(rx=6, ry=7, z=5, c=2, iu=10, iv=11, w=12,
                            k=13, j=(14, 15, 16, 17, 18, 19))
    r_row, mask_row = 20, 21
    acc_base = 22
    n_acc = 42 if naive else 27
    if device.config.num_rows < acc_base + n_acc:
        raise ValueError("device too small for the LM row plan")
    acc_rows = list(range(acc_base, acc_base + n_acc))

    lm_span = obs_span("lm_iteration", device=device, category="pipeline",
                       features=len(feats), naive=naive)
    lm_span.__enter__()
    try:
        raws = _lm_phases(device, qpose, feats, camera, dt_raw, gu_raw,
                          gv_raw, residual_clamp_raw, naive, breakdown,
                          warp_rows, jac_rows, r_row, mask_row, acc_rows)
    finally:
        lm_span.__exit__(None, None, None)

    if naive:
        # Collapse the 36 full-matrix values to the upper triangle for
        # a comparable return shape.
        full = raws[:36].reshape(6, 6)
        h_raw = np.array([full[p, q] for p in range(6)
                          for q in range(p, 6)])
        b_raw = raws[36:]
    else:
        h_raw, b_raw = raws[:21], raws[21:]
    return h_raw, b_raw, breakdown


def _lm_phases(device, qpose, feats, camera, dt_raw, gu_raw, gv_raw,
               residual_clamp_raw, naive, breakdown, warp_rows, jac_rows,
               r_row, mask_row, acc_rows) -> np.ndarray:
    """The traced phase chain of :func:`lm_iteration_pim`.

    Mutates ``breakdown`` in place and returns the reduced raws.
    """
    f = feats.fmt.fraction_bits
    all_j = []
    all_r = []
    for batch, count in _batched(feats, device.config.lanes(_LANE16)):
        before = device.ledger.cycles
        with obs_span("warp", device=device, category="kernel",
                      features=count):
            warp = warp_pim(device, qpose, batch, camera, warp_rows)
        breakdown.warp += device.ledger.cycles - before

        # Host-assisted gathers: one access + one cycle per feature per
        # map (residual DT, gradient u, gradient v).
        before = device.ledger.cycles
        with obs_span("lookup", device=device, category="kernel",
                      features=count):
            iu = nearest_lookup(gu_raw, warp.u, warp.v)
            iv = nearest_lookup(gv_raw, warp.u, warp.v)
            res = np.minimum(nearest_lookup(dt_raw, warp.u, warp.v),
                             residual_clamp_raw)
            device.ledger.charge(OpKind.COPY, cycles=3 * count,
                                 sram_reads=3 * count, logic_ops=0)
            device.set_precision(_LANE16)
            device.load(jac_rows.iu, iu)
            device.load(jac_rows.iv, iv)
            device.load(r_row, res)
        breakdown.lookup += device.ledger.cycles - before

        before = device.ledger.cycles
        with obs_span("jacobian", device=device, category="kernel",
                      features=count, naive=naive):
            if naive:
                jacobian_pim_naive(device, jac_rows, count,
                                   x_row=warp_rows.x, y_row=warp_rows.y,
                                   feature_frac=f)
            else:
                jacobian_pim(device, jac_rows, count, feature_frac=f)
        breakdown.jacobian += device.ledger.cycles - before

        before = device.ledger.cycles
        with obs_span("mask", device=device, category="kernel",
                      features=count):
            _mask_batch(device, warp_rows, jac_rows.j, r_row, mask_row,
                        camera)
        breakdown.mask += device.ledger.cycles - before

        all_j.append(np.stack(
            [device.store(row)[:count] for row in jac_rows.j], axis=-1))
        all_r.append(device.store(r_row)[:count])

    j_full = np.concatenate(all_j) if all_j else np.zeros((0, 6),
                                                          dtype=np.int64)
    r_full = np.concatenate(all_r) if all_r else np.zeros(0,
                                                          dtype=np.int64)

    # 32-bit accumulation phase.
    lanes32 = device.config.lanes(_LANE32)
    n = r_full.size
    batches = max(1, -(-n // lanes32))
    padded = batches * lanes32
    jp = np.zeros((padded, 6), dtype=np.int64)
    rp = np.zeros(padded, dtype=np.int64)
    jp[:n] = j_full
    rp[:n] = r_full
    before = device.ledger.cycles
    with obs_span("hessian", device=device, category="kernel",
                  batches=batches, naive=naive):
        device.set_precision(_LANE32)
        for bi in range(batches):
            sl = slice(bi * lanes32, (bi + 1) * lanes32)
            for col in range(6):
                device.load(col, jp[sl, col])
            device.load(6, rp[sl])
            if naive:
                hessian_pim_naive(device, list(range(6)), 6, acc_rows,
                                  first_batch=(bi == 0))
            else:
                hessian_pim(device, list(range(6)), 6, acc_rows,
                            first_batch=(bi == 0))
    breakdown.hessian += device.ledger.cycles - before

    before = device.ledger.cycles
    with obs_span("reduce", device=device, category="kernel"):
        raws = hessian_reduce_pim(device, acc_rows)
    breakdown.reduce += device.ledger.cycles - before
    return raws


def lm_iteration_fast(qpose: QuantizedPose, feats: QuantizedFeatures,
                      camera: CameraIntrinsics, dt_raw: np.ndarray,
                      gu_raw: np.ndarray, gv_raw: np.ndarray,
                      residual_clamp_raw: int) -> tuple:
    """Vectorized mirror of :func:`lm_iteration_pim` (optimized path).

    Returns:
        ``(h_raw, b_raw)`` equal to the device program's output.
    """
    warp = warp_fast(qpose, feats, camera)
    iu = nearest_lookup(gu_raw, warp.u, warp.v)
    iv = nearest_lookup(gv_raw, warp.u, warp.v)
    res = np.minimum(nearest_lookup(dt_raw, warp.u, warp.v),
                     residual_clamp_raw)
    jac = jacobian_fast(warp, feats.c, iu, iv,
                        feature_frac=feats.fmt.fraction_bits)
    jac = np.where(warp.valid[:, None], jac, 0)
    res = np.where(warp.valid, res, 0)
    return hessian_fast(jac, res)
