"""The LPF kernel: 3x3 binomial filter as two 2x2 averaging passes.

Paper Fig. 2.  The 3x3 kernel ``[1 2 1; 2 4 2; 1 2 1]/16`` factors into
two cascaded 2x2 box filters whose coefficients are all ``1/4`` -- each
realized per image row with exactly three PIM micro-ops:

1. ``C = avg(row_r, row_{r+1})`` written in place over ``row_r``,
2. ``D = C << 1pix`` into the Tmp register,
3. ``E = avg(C, D)`` written back over ``row_r``.

Everything stays in 8 bits because each stage is an average, never a
raw sum.  After both passes, position ``(r, c)`` of the output holds
the binomial response centred at ``(r + 1, c + 1)`` of the input; the
valid region is ``rows [0, H-3], cols [0, W-3]``.

The naive mapping implements the textbook 3x3 convolution directly:
for every tap, shift, pre-scale (losing low bits to stay in 8 bits) and
accumulate, with no decomposition and no inter-row reuse.
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint import ops
from repro.kernels.common import (
    KERNEL_PROGRAM_CACHE,
    load_image,
    read_image,
    shift_pixels,
)
from repro.obs.tracer import span as obs_span
from repro.pim.device import TMP, Imm, Rel, Tmp
from repro.pim.program import PIMProgram, program_key

__all__ = ["lpf_fast", "lpf_naive_fast", "lpf_pim", "lpf_pim_naive",
           "lpf_program", "LPF_OFFSET"]

#: Output (row, col) offset: ``out[r, c]`` is centred at input
#: ``(r + LPF_OFFSET, c + LPF_OFFSET)``.
LPF_OFFSET = 1

#: The 3x3 binomial taps as (dy, dx, right-shift) with shift = 4 - log2(w).
_NAIVE_TAPS = [(-1, -1, 4), (-1, 0, 3), (-1, 1, 4),
               (0, -1, 3), (0, 0, 2), (0, 1, 3),
               (1, -1, 4), (1, 0, 3), (1, 1, 4)]


def _box_pass(a: np.ndarray) -> np.ndarray:
    """One in-place 2x2 averaging pass (numpy mirror of the device)."""
    c = a.copy()
    c[:-1] = ops.average(a[:-1], a[1:])
    e = c.copy()
    e[:-1] = ops.average(c[:-1], shift_pixels(c[:-1], 1))
    return e


def lpf_fast(image: np.ndarray) -> np.ndarray:
    """Optimized LPF with exact PIM arithmetic (vectorized).

    Args:
        image: 8-bit grayscale image.

    Returns:
        Smoothed image, same shape; entry ``(r, c)`` is the binomial
        response at input ``(r + 1, c + 1)``; the last two rows/cols
        are invalid.
    """
    a = np.asarray(image, dtype=np.int64)
    return _box_pass(_box_pass(a))


def lpf_naive_fast(image: np.ndarray) -> np.ndarray:
    """Naive LPF with exact PIM arithmetic (vectorized mirror).

    Direct 3x3 convolution with per-tap pre-scaling: each tap
    contributes ``pixel >> (4 - log2 w)`` (low bits lost before the
    sum, unlike the optimized cascade).  Output is centre-aligned;
    the one-pixel border is invalid.
    """
    img = np.asarray(image, dtype=np.int64)
    acc = np.zeros_like(img)
    for dy, dx, shift in _NAIVE_TAPS:
        rows = np.roll(img, -dy, axis=0)
        if dy > 0:
            rows[-dy:] = 0
        elif dy < 0:
            rows[:-dy] = 0
        tap = shift_pixels(rows, dx) >> shift
        acc = ops.sat_add(acc, tap, 8, signed=False)
    return acc


def _lpf_row_body(rec) -> None:
    """Record one row of the 2x2 averaging pass (Fig. 2)."""
    multi_reg = rec.config.num_tmp_registers > 1
    if multi_reg:
        rec.avg(Tmp(1), Rel(0), Rel(1))      # C = (A + B) / 2
        rec.shift_lanes(TMP, Tmp(1), 1)      # D = C << 1pix
        rec.avg(Rel(0), Tmp(1), TMP)         # E = (C + D) / 2
    else:
        rec.avg(Rel(0), Rel(0), Rel(1))      # C = (A + B) / 2
        rec.shift_lanes(TMP, Rel(0), 1)      # D = C << 1pix
        rec.avg(Rel(0), Rel(0), TMP)         # E = (C + D) / 2


def lpf_program(config) -> PIMProgram:
    """Compiled per-row LPF pass body, cached per device geometry."""
    return KERNEL_PROGRAM_CACHE.get_or_record(
        program_key("lpf", (), 8, config), config, _lpf_row_body,
        name="lpf")


def lpf_pim(device, height: int, base_row: int = 0,
            mode: str = "auto") -> None:
    """Optimized device program: two in-place 2x2 passes (Fig. 2).

    The image must already reside in rows ``base_row ..
    base_row + height - 1``; the result replaces it.  Costs 5 cycles
    per row per pass with the paper's single Tmp register; with a
    second register (the section 5.4 extension) the intermediate row
    ``C`` never touches SRAM, saving one cycle and one write-back per
    row.

    The per-row body is compiled once (through
    :data:`~repro.kernels.common.KERNEL_PROGRAM_CACHE`) and replayed
    row-batched when the device supports it; cost accounting and
    memory state are identical to the eager loop either way.  ``mode``
    is forwarded to :meth:`~repro.pim.device.PIMDevice.run_program`.
    """
    program = lpf_program(device.config)
    bases = range(base_row, base_row + height - 1)
    with obs_span("lpf", device=device, category="kernel",
                  rows=height - 1, passes=2):
        if hasattr(device, "run_program"):
            for _ in range(2):
                device.run_program(program, bases, mode=mode)
            return
        for _ in range(2):
            for r in bases:
                program.replay(device, r)


def lpf_pim_naive(device, image: np.ndarray, base_row: int = 0,
                  scratch_row: int = None) -> np.ndarray:
    """Naive device program: direct 3x3 convolution, no reuse.

    Processes one output row at a time: the three needed input rows are
    streamed in (host DMA, excluded from cycles per the paper), each of
    the nine taps is shifted, pre-scaled and accumulated, and the row
    is streamed back out.

    Returns:
        The filtered image (centre-aligned, border invalid).
    """
    img = np.asarray(image, dtype=np.int64)
    height, width = img.shape
    if scratch_row is None:
        scratch_row = device.config.num_rows - 1
    in_rows = [base_row, base_row + 1, base_row + 2]
    acc_row = scratch_row
    out = np.zeros_like(img)
    for r in range(1, height - 1):
        for i, dy in enumerate((-1, 0, 1)):
            device.load(in_rows[i], img[r + dy], signed=False)
        device.copy(acc_row, Imm(0), signed=False)
        for dy, dx, shift in _NAIVE_TAPS:
            src = in_rows[dy + 1]
            if dx != 0:
                device.shift_lanes(TMP, src, dx)
                device.shift_bits(TMP, TMP, -shift, signed=False)
            else:
                device.shift_bits(TMP, src, -shift, signed=False)
            device.add(acc_row, acc_row, TMP, saturate=True, signed=False)
        out[r] = device.store(acc_row, signed=False)[:width]
    return out


def run_lpf_pim(device, image: np.ndarray, base_row: int = 0) -> np.ndarray:
    """Convenience: load, run the optimized program, read back."""
    image = np.asarray(image)
    load_image(device, image, base_row)
    lpf_pim(device, image.shape[0], base_row)
    return read_image(device, image.shape[0], image.shape[1], base_row)
