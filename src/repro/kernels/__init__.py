"""The algorithm layer: PIM-friendly mappings of the EBVO hot kernels.

Every kernel comes in (up to) three forms that are tested to agree:

* ``*_fast`` -- a vectorized numpy implementation with *exactly* the
  arithmetic the PIM executes (same op order, same rounding, same
  saturation).  The EBVO tracker runs on these.
* ``*_pim`` -- the optimized device program of the paper (data reuse,
  Tmp-register chaining, pipelined shifts).  Used to measure cycles.
* ``*_pim_naive`` -- the naive device mapping Fig. 9-b compares
  against (no reuse, per-step SRAM write-back).
"""

from repro.kernels.common import KERNEL_PROGRAM_CACHE
from repro.kernels.lpf import lpf_fast, lpf_pim, lpf_pim_naive, lpf_program
from repro.kernels.hpf import (
    hpf_fast,
    hpf_pim,
    hpf_pim_naive,
    hpf_pim_replay,
    hpf_program,
)
from repro.kernels.nms import (
    nms_fast,
    nms_pim,
    nms_pim_naive,
    nms_pim_replay,
    nms_program,
)
from repro.kernels.edge_detect import (
    EdgeDetectionResult,
    detect_edges_fast,
    detect_edges_pim,
    detect_edges_replay,
)
from repro.kernels.warp import (
    WarpResult,
    quantize_features,
    quantize_pose,
    warp_fast,
    warp_float,
    warp_pim,
    warp_pim_batched,
    warp_program,
)
from repro.kernels.jacobian import jacobian_fast, jacobian_float, jacobian_pim
from repro.kernels.hessian import (
    hessian_fast,
    hessian_float,
    hessian_pim,
    unpack_symmetric,
)
from repro.kernels.lm_pipeline import (
    LMCycleBreakdown,
    lm_iteration_fast,
    lm_iteration_pim,
)
from repro.kernels.conv2d import Conv2dLayer, conv2d_fast, conv2d_pim
from repro.kernels.sobel import sobel_hpf_fast, sobel_hpf_pim

__all__ = [
    "KERNEL_PROGRAM_CACHE",
    "lpf_fast", "lpf_pim", "lpf_pim_naive", "lpf_program",
    "hpf_fast", "hpf_pim", "hpf_pim_naive", "hpf_pim_replay", "hpf_program",
    "nms_fast", "nms_pim", "nms_pim_naive", "nms_pim_replay", "nms_program",
    "EdgeDetectionResult", "detect_edges_fast", "detect_edges_pim",
    "detect_edges_replay",
    "WarpResult", "quantize_features", "quantize_pose",
    "warp_fast", "warp_float", "warp_pim", "warp_pim_batched",
    "warp_program",
    "jacobian_fast", "jacobian_float", "jacobian_pim",
    "hessian_fast", "hessian_float", "hessian_pim", "unpack_symmetric",
    "LMCycleBreakdown", "lm_iteration_fast", "lm_iteration_pim",
    "Conv2dLayer", "conv2d_fast", "conv2d_pim",
    "sobel_hpf_fast", "sobel_hpf_pim",
]
