"""The HPF kernel: saturated 4-direction SAD (paper Fig. 3).

The response at centre pixel ``(r, c)`` is

``sat8( |A(c-1)-C(c+1)| + |A(c+1)-C(c-1)| + |B(c-1)-B(c+1)|
+ |A(c)-C(c)| )``

with ``A, B, C`` the rows above/at/below the centre.  The optimized
mapping aligns every operand pair by *shifting whole rows by two
pixels* and reuses the shifted copies across output rows (when row
``r+1`` is processed, the shifts of what was row ``C`` are already in
scratch).  Partial sums chain through the Tmp register; the final
result lands in row ``r - 1``, which is dead by then, so the transform
runs in place.

The naive mapping shifts each pair to centre alignment separately,
materializes every absolute difference in SRAM, and reuses nothing.
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint import ops
from repro.kernels.common import shift_pixels
from repro.pim.device import TMP, Tmp

__all__ = ["hpf_fast", "hpf_naive_fast", "hpf_pim", "hpf_pim_naive",
           "HPF_ROW_OFFSET"]

#: Row alignment: output row ``i`` holds the response centred at input
#: row ``i + HPF_ROW_OFFSET`` (columns are centre-aligned).
HPF_ROW_OFFSET = 1


def hpf_fast(image: np.ndarray) -> np.ndarray:
    """Optimized SAD HPF with exact PIM arithmetic (vectorized).

    Args:
        image: Smoothed 8-bit image (rows x cols).

    Returns:
        Response array of the same shape; row ``i`` is centred at input
        row ``i + 1``; columns are centre-aligned; column 0 and the two
        rightmost columns are invalid, as are the two bottom rows.
    """
    img = np.asarray(image, dtype=np.int64)
    a = img[:-2]
    b = img[1:-1]
    c = img[2:]
    d1 = ops.abs_diff(a, shift_pixels(c, 2))
    d2 = ops.abs_diff(shift_pixels(a, 2), c)
    d3 = ops.abs_diff(b, shift_pixels(b, 2))
    d4 = ops.abs_diff(shift_pixels(a, 1), shift_pixels(c, 1))
    acc = ops.sat_add(d1, d2, 8, signed=False)
    acc = ops.sat_add(acc, d3, 8, signed=False)
    acc = ops.sat_add(acc, d4, 8, signed=False)
    out = np.zeros_like(img)
    out[:-2] = shift_pixels(acc, -1)
    return out


def hpf_naive_fast(image: np.ndarray) -> np.ndarray:
    """Naive SAD HPF (centre-aligned per pair), vectorized mirror.

    Numerically identical to :func:`hpf_fast` in the interior; the
    border behaviour differs (each pair is shifted to centre alignment
    independently, so zeros leak one column less on the left and one
    more on the right).
    """
    img = np.asarray(image, dtype=np.int64)
    a = img[:-2]
    b = img[1:-1]
    c = img[2:]
    pairs = [
        (shift_pixels(a, -1), shift_pixels(c, 1)),
        (shift_pixels(a, 1), shift_pixels(c, -1)),
        (shift_pixels(b, -1), shift_pixels(b, 1)),
        (a, c),
    ]
    acc = np.zeros_like(a)
    for left, right in pairs:
        acc = ops.sat_add(acc, ops.abs_diff(left, right), 8, signed=False)
    out = np.zeros_like(img)
    out[1:-1] = acc  # centre-aligned rows, unlike the optimized mapping
    return out


def hpf_pim(device, height: int, base_row: int = 0,
            scratch_base: int = None) -> None:
    """Optimized device program (Fig. 3) with pipelined row shifts.

    The smoothed image in rows ``base_row .. base_row + height - 1`` is
    replaced in place by the response: output row ``i`` (centred at
    input row ``i + 1``) overwrites input row ``i`` once it is dead.
    Uses 7 scratch rows: a ring of 3 x (row << 2pix, row << 1pix) plus
    one accumulator.
    """
    if scratch_base is None:
        scratch_base = base_row + height
    s2 = [scratch_base + i for i in range(3)]       # row << 2pix ring
    s1 = [scratch_base + 3 + i for i in range(3)]   # row << 1pix ring
    # With a second Tmp register (section 5.4 extension) the partial
    # sum never round-trips through SRAM.
    acc = Tmp(1) if device.config.num_tmp_registers > 1 \
        else scratch_base + 6

    # Prologue: shifts of the first two rows enter the ring.
    for i, r in enumerate((base_row, base_row + 1)):
        device.shift_lanes(s2[i], r, 2)
        device.shift_lanes(s1[i], r, 1)

    for r in range(base_row + 1, base_row + height - 1):
        ia = (r - 1 - base_row) % 3   # ring slot of row A = r - 1
        ib = (r - base_row) % 3       # slot of row B = r
        ic = (r + 1 - base_row) % 3   # slot of row C = r + 1
        row_a, row_b, row_c = r - 1, r, r + 1
        device.shift_lanes(s2[ic], row_c, 2)
        device.shift_lanes(s1[ic], row_c, 1)
        device.abs_diff(acc, row_a, s2[ic])          # |A - C<<2|
        device.abs_diff(TMP, s2[ia], row_c)          # |A<<2 - C|
        device.add(acc, acc, TMP, saturate=True, signed=False)
        device.abs_diff(TMP, row_b, s2[ib])          # |B - B<<2|
        device.add(acc, acc, TMP, saturate=True, signed=False)
        device.abs_diff(TMP, s1[ia], s1[ic])         # |A<<1 - C<<1|
        device.add(TMP, acc, TMP, saturate=True, signed=False)
        device.shift_lanes(row_a, TMP, -1)           # centre-align, in place


def hpf_pim_naive(device, image: np.ndarray, base_row: int = 0,
                  scratch_base: int = None) -> np.ndarray:
    """Naive device program: per-pair alignment, everything in SRAM.

    Streams three input rows per output row (host DMA, excluded from
    cycles), shifts both operands of every pair to centre alignment,
    materializes each absolute difference in a scratch row and
    accumulates in another.

    Returns:
        The centre-aligned response image.
    """
    img = np.asarray(image, dtype=np.int64)
    height, width = img.shape
    if scratch_base is None:
        scratch_base = device.config.num_rows - 8
    in_rows = [scratch_base, scratch_base + 1, scratch_base + 2]
    t1, t2, td, acc = (scratch_base + 3, scratch_base + 4,
                       scratch_base + 5, scratch_base + 6)
    pair_shifts = [((-1, 0), (1, 2)),   # (row index, dx) per operand
                   ((1, 0), (-1, 2)),
                   ((-1, 1), (1, 1)),
                   ((0, 0), (0, 2))]
    out = np.zeros_like(img)
    for r in range(1, height - 1):
        for i, dy in enumerate((-1, 0, 1)):
            device.load(in_rows[i], img[r + dy], signed=False)
        first = True
        for (dx_l, ri_l), (dx_r, ri_r) in pair_shifts:
            left, right = in_rows[ri_l], in_rows[ri_r]
            if dx_l != 0:
                device.shift_lanes(t1, left, dx_l)
                left = t1
            if dx_r != 0:
                device.shift_lanes(t2, right, dx_r)
                right = t2
            device.abs_diff(td, left, right)
            if first:
                device.copy(acc, td)
                first = False
            else:
                device.add(acc, acc, td, saturate=True, signed=False)
        out[r] = device.store(acc, signed=False)[:width]
    return out
