"""The HPF kernel: saturated 4-direction SAD (paper Fig. 3).

The response at centre pixel ``(r, c)`` is

``sat8( |A(c-1)-C(c+1)| + |A(c+1)-C(c-1)| + |B(c-1)-B(c+1)|
+ |A(c)-C(c)| )``

with ``A, B, C`` the rows above/at/below the centre.  The optimized
mapping aligns every operand pair by *shifting whole rows by two
pixels* and reuses the shifted copies across output rows (when row
``r+1`` is processed, the shifts of what was row ``C`` are already in
scratch).  Partial sums chain through the Tmp register; the final
result lands in row ``r - 1``, which is dead by then, so the transform
runs in place.

The naive mapping shifts each pair to centre alignment separately,
materializes every absolute difference in SRAM, and reuses nothing.
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint import ops
from repro.kernels.common import KERNEL_PROGRAM_CACHE, shift_pixels
from repro.obs.tracer import span as obs_span
from repro.pim.device import TMP, Rel, Tmp
from repro.pim.program import PIMProgram, program_key

__all__ = ["hpf_fast", "hpf_naive_fast", "hpf_pim", "hpf_pim_naive",
           "hpf_program", "hpf_pim_replay", "HPF_ROW_OFFSET"]

#: Row alignment: output row ``i`` holds the response centred at input
#: row ``i + HPF_ROW_OFFSET`` (columns are centre-aligned).
HPF_ROW_OFFSET = 1


def hpf_fast(image: np.ndarray) -> np.ndarray:
    """Optimized SAD HPF with exact PIM arithmetic (vectorized).

    Args:
        image: Smoothed 8-bit image (rows x cols).

    Returns:
        Response array of the same shape; row ``i`` is centred at input
        row ``i + 1``; columns are centre-aligned; column 0 and the two
        rightmost columns are invalid, as are the two bottom rows.
    """
    img = np.asarray(image, dtype=np.int64)
    a = img[:-2]
    b = img[1:-1]
    c = img[2:]
    d1 = ops.abs_diff(a, shift_pixels(c, 2))
    d2 = ops.abs_diff(shift_pixels(a, 2), c)
    d3 = ops.abs_diff(b, shift_pixels(b, 2))
    d4 = ops.abs_diff(shift_pixels(a, 1), shift_pixels(c, 1))
    acc = ops.sat_add(d1, d2, 8, signed=False)
    acc = ops.sat_add(acc, d3, 8, signed=False)
    acc = ops.sat_add(acc, d4, 8, signed=False)
    out = np.zeros_like(img)
    out[:-2] = shift_pixels(acc, -1)
    return out


def hpf_naive_fast(image: np.ndarray) -> np.ndarray:
    """Naive SAD HPF (centre-aligned per pair), vectorized mirror.

    Numerically identical to :func:`hpf_fast` in the interior; the
    border behaviour differs (each pair is shifted to centre alignment
    independently, so zeros leak one column less on the left and one
    more on the right).
    """
    img = np.asarray(image, dtype=np.int64)
    a = img[:-2]
    b = img[1:-1]
    c = img[2:]
    pairs = [
        (shift_pixels(a, -1), shift_pixels(c, 1)),
        (shift_pixels(a, 1), shift_pixels(c, -1)),
        (shift_pixels(b, -1), shift_pixels(b, 1)),
        (a, c),
    ]
    acc = np.zeros_like(a)
    for left, right in pairs:
        acc = ops.sat_add(acc, ops.abs_diff(left, right), 8, signed=False)
    out = np.zeros_like(img)
    out[1:-1] = acc  # centre-aligned rows, unlike the optimized mapping
    return out


def hpf_pim(device, height: int, base_row: int = 0,
            scratch_base: int = None) -> None:
    """Optimized device program (Fig. 3) with pipelined row shifts.

    The smoothed image in rows ``base_row .. base_row + height - 1`` is
    replaced in place by the response: output row ``i`` (centred at
    input row ``i + 1``) overwrites input row ``i`` once it is dead.
    Uses 7 scratch rows: a ring of 3 x (row << 2pix, row << 1pix) plus
    one accumulator.
    """
    if scratch_base is None:
        scratch_base = base_row + height
    s2 = [scratch_base + i for i in range(3)]       # row << 2pix ring
    s1 = [scratch_base + 3 + i for i in range(3)]   # row << 1pix ring
    # With a second Tmp register (section 5.4 extension) the partial
    # sum never round-trips through SRAM.
    acc = Tmp(1) if device.config.num_tmp_registers > 1 \
        else scratch_base + 6

    with obs_span("hpf", device=device, category="kernel",
                  rows=height - 2):
        # Prologue: shifts of the first two rows enter the ring.
        for i, r in enumerate((base_row, base_row + 1)):
            device.shift_lanes(s2[i], r, 2)
            device.shift_lanes(s1[i], r, 1)

        for r in range(base_row + 1, base_row + height - 1):
            ia = (r - 1 - base_row) % 3   # ring slot of row A = r - 1
            ib = (r - base_row) % 3       # slot of row B = r
            ic = (r + 1 - base_row) % 3   # slot of row C = r + 1
            row_a, row_b, row_c = r - 1, r, r + 1
            device.shift_lanes(s2[ic], row_c, 2)
            device.shift_lanes(s1[ic], row_c, 1)
            device.abs_diff(acc, row_a, s2[ic])          # |A - C<<2|
            device.abs_diff(TMP, s2[ia], row_c)          # |A<<2 - C|
            device.add(acc, acc, TMP, saturate=True, signed=False)
            device.abs_diff(TMP, row_b, s2[ib])          # |B - B<<2|
            device.add(acc, acc, TMP, saturate=True, signed=False)
            device.abs_diff(TMP, s1[ia], s1[ic])         # |A<<1 - C<<1|
            device.add(TMP, acc, TMP, saturate=True, signed=False)
            device.shift_lanes(row_a, TMP, -1)           # centre-align, in place


def _hpf_row_body(rec, scratch_base: int) -> None:
    """Record one output row of the SAD HPF with recomputed shifts.

    Unlike :func:`hpf_pim`, whose scratch ring carries shifted rows
    *across* iterations (a cross-row dependence that forbids
    batching), this body recomputes the five shifted operands of the
    current window into absolute scratch rows, writing each before it
    is read.  The only relative write -- the final in-place store to
    ``Rel(-1)`` -- is the last op, so batched replay is provably
    equivalent to the eager loop.  The price is 2 extra shift cycles
    per row over the pipelined ring.
    """
    sc2c, sc2a, sc2b, sc1a, sc1c = (scratch_base + i for i in range(5))
    acc = Tmp(1) if rec.config.num_tmp_registers > 1 \
        else scratch_base + 5
    rec.shift_lanes(sc2c, Rel(1), 2)             # C << 2pix
    rec.shift_lanes(sc2a, Rel(-1), 2)            # A << 2pix
    rec.shift_lanes(sc2b, Rel(0), 2)             # B << 2pix
    rec.shift_lanes(sc1a, Rel(-1), 1)            # A << 1pix
    rec.shift_lanes(sc1c, Rel(1), 1)             # C << 1pix
    rec.abs_diff(acc, Rel(-1), sc2c)             # |A - C<<2|
    rec.abs_diff(TMP, sc2a, Rel(1))              # |A<<2 - C|
    rec.add(acc, acc, TMP, saturate=True, signed=False)
    rec.abs_diff(TMP, Rel(0), sc2b)              # |B - B<<2|
    rec.add(acc, acc, TMP, saturate=True, signed=False)
    rec.abs_diff(TMP, sc1a, sc1c)                # |A<<1 - C<<1|
    rec.add(TMP, acc, TMP, saturate=True, signed=False)
    rec.shift_lanes(Rel(-1), TMP, -1)            # centre-align, in place


def hpf_program(config, scratch_base: int) -> PIMProgram:
    """Compiled batchable HPF row body, cached per geometry/scratch."""
    return KERNEL_PROGRAM_CACHE.get_or_record(
        program_key("hpf", (scratch_base,), 8, config), config,
        lambda rec: _hpf_row_body(rec, scratch_base), name="hpf")


def hpf_pim_replay(device, height: int, base_row: int = 0,
                   scratch_base: int = None, mode: str = "auto") -> None:
    """HPF via compiled program replay; output matches :func:`hpf_pim`.

    Uses 6 scratch rows from ``scratch_base`` (default: directly below
    the image).  Row-batched on devices that support it; ``mode`` is
    forwarded to :meth:`~repro.pim.device.PIMDevice.run_program`.
    """
    if scratch_base is None:
        scratch_base = base_row + height
    program = hpf_program(device.config, scratch_base)
    with obs_span("hpf", device=device, category="kernel",
                  rows=height - 2):
        device.run_program(program,
                           range(base_row + 1, base_row + height - 1),
                           mode=mode)


def hpf_pim_naive(device, image: np.ndarray, base_row: int = 0,
                  scratch_base: int = None) -> np.ndarray:
    """Naive device program: per-pair alignment, everything in SRAM.

    Streams three input rows per output row (host DMA, excluded from
    cycles), shifts both operands of every pair to centre alignment,
    materializes each absolute difference in a scratch row and
    accumulates in another.

    Returns:
        The centre-aligned response image.
    """
    img = np.asarray(image, dtype=np.int64)
    height, width = img.shape
    if scratch_base is None:
        scratch_base = device.config.num_rows - 8
    in_rows = [scratch_base, scratch_base + 1, scratch_base + 2]
    t1, t2, td, acc = (scratch_base + 3, scratch_base + 4,
                       scratch_base + 5, scratch_base + 6)
    pair_shifts = [((-1, 0), (1, 2)),   # (row index, dx) per operand
                   ((1, 0), (-1, 2)),
                   ((-1, 1), (1, 1)),
                   ((0, 0), (0, 2))]
    out = np.zeros_like(img)
    for r in range(1, height - 1):
        for i, dy in enumerate((-1, 0, 1)):
            device.load(in_rows[i], img[r + dy], signed=False)
        first = True
        for (dx_l, ri_l), (dx_r, ri_r) in pair_shifts:
            left, right = in_rows[ri_l], in_rows[ri_r]
            if dx_l != 0:
                device.shift_lanes(t1, left, dx_l)
                left = t1
            if dx_r != 0:
                device.shift_lanes(t2, right, dx_r)
                right = t2
            device.abs_diff(td, left, right)
            if first:
                device.copy(acc, td)
                first = False
            else:
                device.add(acc, acc, td, saturate=True, signed=False)
        out[r] = device.store(acc, signed=False)[:width]
    return out
