"""Shared helpers for mapping images onto the PIM array.

Layout convention: one image row per SRAM word line, one 8-bit pixel
per lane, row ``r`` of the image in SRAM row ``r``.  Kernels that need
16-bit arithmetic split the image into two vertical tiles (the word
line holds half as many 16-bit lanes), which is exactly the throughput
penalty the paper describes for wider precision.
"""

from __future__ import annotations

import numpy as np

from repro.pim.program import ProgramCache

__all__ = ["KERNEL_PROGRAM_CACHE", "load_image", "read_image",
           "shift_pixels"]

#: Process-wide LRU of compiled kernel programs.  Keys include the
#: device geometry digest (see :func:`repro.pim.program.program_key`),
#: so devices of different shapes never share entries.  Hits/misses
#: surface in the metrics registry under ``cache="kernels"``.
KERNEL_PROGRAM_CACHE = ProgramCache(capacity=64, name="kernels")


def load_image(device, image: np.ndarray, base_row: int = 0) -> None:
    """Host-DMA an 8-bit image into the array, one row per word line."""
    image = np.asarray(image)
    height, width = image.shape
    if width > device.lanes:
        raise ValueError(f"image width {width} exceeds {device.lanes} lanes")
    if base_row + height > device.config.num_rows:
        raise ValueError("image does not fit the array")
    if hasattr(device, "load_rows"):
        device.load_rows(range(base_row, base_row + height), image,
                         signed=False)
        return
    for r in range(height):
        device.load(base_row + r, image[r], signed=False)


def read_image(device, height: int, width: int,
               base_row: int = 0, signed: bool = False) -> np.ndarray:
    """Host-DMA an image back out of the array."""
    if hasattr(device, "store_rows"):
        block = device.store_rows(range(base_row, base_row + height),
                                  signed=signed)
        return np.asarray(block[:, :width], dtype=np.int64)
    rows = [device.store(base_row + r, signed=signed)[:width]
            for r in range(height)]
    return np.stack(rows).astype(np.int64)


def shift_pixels(array: np.ndarray, pixels: int) -> np.ndarray:
    """Numpy mirror of ``device.shift_lanes`` along the last axis.

    Positive ``pixels`` moves each lane's right neighbour in:
    ``out[..., i] = in[..., i + pixels]``, zero-filled.
    """
    out = np.zeros_like(array)
    if pixels == 0:
        out[...] = array
    elif pixels > 0:
        out[..., :-pixels or None] = array[..., pixels:]
    else:
        out[..., -pixels:] = array[..., :pixels]
    return out
