"""The warp kernel: quantized feature warping (paper Fig. 5-a/b).

A feature anchored in the current frame at pixel ``(u, v)`` with depth
``d`` is stored as the inverse-depth triple ``(a, b, c)`` quantized to
Q4.12.  Warping into the keyframe applies the relative pose (rotation
``R`` and translation ``T``, entries quantized to Q1.15):

``(X, Y, Z) = R (a, b, 1)^T + T c``  (all Q4.12)

followed by the projective division ``rx = X / Z``, ``ry = Y / Z``
(restoring division, Q4.12) and the intrinsic mapping
``u' = fx rx + cx`` (fx in Q10.6, u' in Q14.2 -> quarter-pixel
resolution).  The scaled coordinates are exact up to quantization
because projection cancels the missing depth factor.

All fast functions use precisely the PIM op sequence (same saturation
points, same shift amounts) so the tracker's numerics equal the device.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fixedpoint import Q1_15, Q4_12, Q14_2, QFormat, ops
from repro.geometry.camera import CameraIntrinsics
from repro.geometry.se3 import SE3
from repro.obs.tracer import span as obs_span
from repro.pim.device import TMP, Imm, Rel
from repro.pim.program import PIMProgram, ProgramRecorder

__all__ = [
    "FEATURE_FORMAT", "POSE_FORMAT", "UV_FORMAT", "INTRINSIC_FORMAT",
    "QuantizedFeatures", "QuantizedPose", "WarpResult", "WarpRows",
    "quantize_features", "quantize_pose", "qdiv_lanes",
    "warp_float", "warp_fast", "warp_pim", "warp_program",
    "warp_pim_batched", "WARP_BLOCK_ROWS",
]


def qdiv_lanes(a_raw, b_raw, lshift: int = 0,
               bits: int = 16) -> np.ndarray:
    """``(a << lshift) / b`` with exact PIM divide semantics.

    Mirrors :meth:`repro.pim.device.PIMDevice.div`: restoring-division
    truncation toward zero, division by zero saturating toward the
    signed lane bound (``+-(2**(bits-1) - 1)``), result saturated to
    the lane.
    """
    va = np.asarray(a_raw, dtype=np.int64) << lshift
    vb = np.asarray(b_raw, dtype=np.int64)
    q = ops.divide(va, vb, 63)
    lane_hi = (1 << (bits - 1)) - 1
    q = np.where(vb == 0, np.where(va >= 0, lane_hi, -lane_hi), q)
    return ops.saturate(q, bits)

#: Inverse-depth feature coordinates (paper section 3.3).
FEATURE_FORMAT = Q4_12
#: Rotation/translation entries (paper section 3.3).
POSE_FORMAT = Q1_15
#: Warped pixel coordinates (quarter-pixel resolution).
UV_FORMAT = Q14_2
#: Camera focal lengths.
INTRINSIC_FORMAT = QFormat(10, 6)

_LANE_BITS = 16


@dataclass
class QuantizedFeatures:
    """A batch of features in quantized inverse-depth coordinates."""

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray
    fmt: QFormat = FEATURE_FORMAT

    def __len__(self) -> int:
        return int(np.asarray(self.a).size)


@dataclass
class QuantizedPose:
    """Rotation and translation raws in Q1.15."""

    r: np.ndarray  # 3x3 int raws
    t: np.ndarray  # 3 int raws

    @property
    def r_float(self) -> np.ndarray:
        return POSE_FORMAT.to_float(self.r)

    @property
    def t_float(self) -> np.ndarray:
        return POSE_FORMAT.to_float(self.t)


@dataclass
class WarpResult:
    """Output of the warp kernel (raw integers unless noted)."""

    u: np.ndarray        # warped column, UV_FORMAT
    v: np.ndarray        # warped row, UV_FORMAT
    rx: np.ndarray       # X/Z, feature format
    ry: np.ndarray       # Y/Z, feature format
    z: np.ndarray        # scaled depth Z~, feature format
    valid: np.ndarray    # bool

    def uv_float(self) -> tuple:
        """Warped coordinates in pixels (float)."""
        return UV_FORMAT.to_float(self.u), UV_FORMAT.to_float(self.v)


def quantize_features(a, b, c, fmt: QFormat = FEATURE_FORMAT
                      ) -> QuantizedFeatures:
    """Quantize float inverse-depth coordinates to raw integers."""
    return QuantizedFeatures(
        a=np.asarray(fmt.quantize(a), dtype=np.int64).reshape(-1),
        b=np.asarray(fmt.quantize(b), dtype=np.int64).reshape(-1),
        c=np.asarray(fmt.quantize(c), dtype=np.int64).reshape(-1),
        fmt=fmt)


def quantize_pose(pose: SE3) -> QuantizedPose:
    """Quantize a relative pose to Q1.15 raws.

    Entries are saturated to the (-1, 1) range; the paper relies on the
    inter-frame pose being small, which the keyframe policy enforces.
    """
    return QuantizedPose(
        r=np.asarray(POSE_FORMAT.quantize(pose.R), dtype=np.int64),
        t=np.asarray(POSE_FORMAT.quantize(pose.t), dtype=np.int64))


def warp_float(pose: SE3, a, b, c, camera: CameraIntrinsics) -> WarpResult:
    """Float reference of the warp (same output fields, float values)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    c = np.asarray(c, dtype=np.float64)
    r, t = pose.R, pose.t
    x = r[0, 0] * a + r[0, 1] * b + r[0, 2] + t[0] * c
    y = r[1, 0] * a + r[1, 1] * b + r[1, 2] + t[1] * c
    z = r[2, 0] * a + r[2, 1] * b + r[2, 2] + t[2] * c
    safe_z = np.where(np.abs(z) < 1e-12, 1e-12, z)
    rx, ry = x / safe_z, y / safe_z
    u = camera.fx * rx + camera.cx
    v = camera.fy * ry + camera.cy
    valid = (z > 1e-6) & (u >= 0) & (u <= camera.width - 1) & \
        (v >= 0) & (v <= camera.height - 1)
    return WarpResult(u=u, v=v, rx=rx, ry=ry, z=z, valid=valid)


def _mac_row(qpose_row, t_raw, feats: QuantizedFeatures) -> np.ndarray:
    """One row of ``R (a, b, 1) + T c`` with PIM op order and saturation.

    ``X = sat(sat(sat(r0 a + r1 b) + r2') + t c)`` where every product
    is ``(Q1.15 x Q4.f) >> 15`` and ``r2' = r2 >> (15 - f)``.
    """
    f = feats.fmt.fraction_bits
    r0, r1, r2 = (int(qpose_row[0]), int(qpose_row[1]), int(qpose_row[2]))
    m0 = ops.saturate(ops.multiply(np.full_like(feats.a, r0), feats.a,
                                   _LANE_BITS) >> 15, _LANE_BITS)
    m1 = ops.saturate(ops.multiply(np.full_like(feats.b, r1), feats.b,
                                   _LANE_BITS) >> 15, _LANE_BITS)
    m2 = ops.saturate(ops.multiply(np.full_like(feats.c, int(t_raw)),
                                   feats.c, _LANE_BITS) >> 15, _LANE_BITS)
    r2_conv = r2 >> (15 - f)
    acc = ops.sat_add(m0, m1, _LANE_BITS)
    acc = ops.sat_add(acc, np.int64(r2_conv), _LANE_BITS)
    return ops.sat_add(acc, m2, _LANE_BITS)


def warp_fast(qpose: QuantizedPose, feats: QuantizedFeatures,
              camera: CameraIntrinsics) -> WarpResult:
    """Quantized warp with exact PIM arithmetic (vectorized)."""
    f = feats.fmt.fraction_bits
    x = _mac_row(qpose.r[0], qpose.t[0], feats)
    y = _mac_row(qpose.r[1], qpose.t[1], feats)
    z = _mac_row(qpose.r[2], qpose.t[2], feats)
    rx = qdiv_lanes(x, z, lshift=f)
    ry = qdiv_lanes(y, z, lshift=f)
    fx_q = int(INTRINSIC_FORMAT.quantize(camera.fx))
    fy_q = int(INTRINSIC_FORMAT.quantize(camera.fy))
    cx_q = int(UV_FORMAT.quantize(camera.cx))
    cy_q = int(UV_FORMAT.quantize(camera.cy))
    shift = INTRINSIC_FORMAT.fraction_bits + f - UV_FORMAT.fraction_bits
    u = ops.sat_add(
        ops.saturate(ops.multiply(np.full_like(rx, fx_q), rx, 32) >> shift,
                     _LANE_BITS), np.int64(cx_q), _LANE_BITS)
    v = ops.sat_add(
        ops.saturate(ops.multiply(np.full_like(ry, fy_q), ry, 32) >> shift,
                     _LANE_BITS), np.int64(cy_q), _LANE_BITS)
    scale = UV_FORMAT.scale
    valid = (z > 0) & (u >= 0) & (u <= (camera.width - 1) * scale) & \
        (v >= 0) & (v <= (camera.height - 1) * scale)
    return WarpResult(u=u, v=v, rx=rx, ry=ry, z=z, valid=valid)


@dataclass
class WarpRows:
    """Row allocation of one warp batch inside the PIM array."""

    a: int
    b: int
    c: int
    x: int
    y: int
    z: int
    rx: int
    ry: int
    u: int
    v: int


def warp_pim(device, qpose: QuantizedPose, feats: QuantizedFeatures,
             camera: CameraIntrinsics, rows: WarpRows) -> WarpResult:
    """Device program for one batch of (up to) 160 features.

    The features are DMA-loaded into ``rows.a/b/c``; the warped
    quantities are produced with the same arithmetic as
    :func:`warp_fast` and read back.  Counts 11 multiplies, 2 divides
    and the accumulating adds on the ledger.
    """
    if len(feats) > device.config.lanes(_LANE_BITS):
        raise ValueError("batch exceeds 16-bit lane count")
    device.set_precision(_LANE_BITS)
    f = feats.fmt.fraction_bits
    device.load(rows.a, feats.a)
    device.load(rows.b, feats.b)
    device.load(rows.c, feats.c)

    for axis, dst in ((0, rows.x), (1, rows.y), (2, rows.z)):
        r0, r1, r2 = (int(v) for v in qpose.r[axis])
        t_raw = int(qpose.t[axis])
        device.mul(TMP, rows.a, Imm(r0), rshift=15)
        device.copy(dst, TMP)
        device.mul(TMP, rows.b, Imm(r1), rshift=15)
        device.add(dst, dst, TMP, saturate=True)
        device.add(dst, dst, Imm(r2 >> (15 - f)), saturate=True)
        device.mul(TMP, rows.c, Imm(t_raw), rshift=15)
        device.add(dst, dst, TMP, saturate=True)

    device.div(rows.rx, rows.x, rows.z, lshift=f)
    device.div(rows.ry, rows.y, rows.z, lshift=f)

    fx_q = int(INTRINSIC_FORMAT.quantize(camera.fx))
    fy_q = int(INTRINSIC_FORMAT.quantize(camera.fy))
    cx_q = int(UV_FORMAT.quantize(camera.cx))
    cy_q = int(UV_FORMAT.quantize(camera.cy))
    shift = INTRINSIC_FORMAT.fraction_bits + f - UV_FORMAT.fraction_bits
    device.mul(TMP, rows.rx, Imm(fx_q), rshift=shift)
    device.add(rows.u, TMP, Imm(cx_q), saturate=True)
    device.mul(TMP, rows.ry, Imm(fy_q), rshift=shift)
    device.add(rows.v, TMP, Imm(cy_q), saturate=True)

    n = len(feats)
    u = device.store(rows.u)[:n]
    v = device.store(rows.v)[:n]
    rx = device.store(rows.rx)[:n]
    ry = device.store(rows.ry)[:n]
    z = device.store(rows.z)[:n]
    scale = UV_FORMAT.scale
    valid = (z > 0) & (u >= 0) & (u <= (camera.width - 1) * scale) & \
        (v >= 0) & (v <= (camera.height - 1) * scale)
    return WarpResult(u=u, v=v, rx=rx, ry=ry, z=z, valid=valid)


#: Rows occupied by one feature block in the batched warp layout
#: (a, b, c, x, y, z, rx, ry, u, v at offsets 0..9).
WARP_BLOCK_ROWS = 10

#: Relative row offsets within one block, mirroring :class:`WarpRows`.
_W = WarpRows(a=0, b=1, c=2, x=3, y=4, z=5, rx=6, ry=7, u=8, v=9)


def warp_program(qpose: QuantizedPose, fraction_bits: int,
                 camera: CameraIntrinsics, config) -> PIMProgram:
    """Record the warp compute body for one feature block.

    The body is the exact op sequence of :func:`warp_pim` between the
    feature DMA-in and the result DMA-out, with every block row
    expressed relative to the block base (offsets per :data:`_W`).
    The pose and camera constants are baked in as immediates, so the
    program is recorded per pose; its win is replaying one recording
    across all blocks of a feature set.

    Block footprints are :data:`WARP_BLOCK_ROWS` rows wide, so bases
    strided that far apart batch vectorized (disjoint footprints)
    even though the body's relative op order alone is not batchable.
    """
    rec = ProgramRecorder(config, name="warp")
    rec.set_precision(_LANE_BITS)
    f = fraction_bits
    for axis, dst in ((0, _W.x), (1, _W.y), (2, _W.z)):
        r0, r1, r2 = (int(v) for v in qpose.r[axis])
        t_raw = int(qpose.t[axis])
        rec.mul(TMP, Rel(_W.a), Imm(r0), rshift=15)
        rec.copy(Rel(dst), TMP)
        rec.mul(TMP, Rel(_W.b), Imm(r1), rshift=15)
        rec.add(Rel(dst), Rel(dst), TMP, saturate=True)
        rec.add(Rel(dst), Rel(dst), Imm(r2 >> (15 - f)), saturate=True)
        rec.mul(TMP, Rel(_W.c), Imm(t_raw), rshift=15)
        rec.add(Rel(dst), Rel(dst), TMP, saturate=True)

    rec.div(Rel(_W.rx), Rel(_W.x), Rel(_W.z), lshift=f)
    rec.div(Rel(_W.ry), Rel(_W.y), Rel(_W.z), lshift=f)

    fx_q = int(INTRINSIC_FORMAT.quantize(camera.fx))
    fy_q = int(INTRINSIC_FORMAT.quantize(camera.fy))
    cx_q = int(UV_FORMAT.quantize(camera.cx))
    cy_q = int(UV_FORMAT.quantize(camera.cy))
    shift = INTRINSIC_FORMAT.fraction_bits + f - UV_FORMAT.fraction_bits
    rec.mul(TMP, Rel(_W.rx), Imm(fx_q), rshift=shift)
    rec.add(Rel(_W.u), TMP, Imm(cx_q), saturate=True)
    rec.mul(TMP, Rel(_W.ry), Imm(fy_q), rshift=shift)
    rec.add(Rel(_W.v), TMP, Imm(cy_q), saturate=True)
    return rec.finish()


def warp_pim_batched(device, qpose: QuantizedPose,
                     feats: QuantizedFeatures, camera: CameraIntrinsics,
                     base_row: int = 0,
                     mode: str = "auto") -> WarpResult:
    """Warp an arbitrary-size feature set through one program replay.

    Features are split into blocks of up to 160 (the 16-bit lane
    count); each block occupies :data:`WARP_BLOCK_ROWS` consecutive
    rows starting at ``base_row + block * WARP_BLOCK_ROWS``.  The
    compute body is recorded once and replayed across all block bases,
    vectorized; outputs and ledger totals are identical to looping
    :func:`warp_pim` over the blocks.  ``mode`` selects the
    :meth:`~repro.pim.device.PIMDevice.run_program` replay backend.
    """
    lanes = device.config.lanes(_LANE_BITS)
    n = len(feats)
    num_blocks = max(1, -(-n // lanes))
    if base_row + num_blocks * WARP_BLOCK_ROWS > device.config.num_rows:
        raise ValueError(
            f"{num_blocks} warp blocks do not fit the array")
    device.set_precision(_LANE_BITS)
    bases = [base_row + k * WARP_BLOCK_ROWS for k in range(num_blocks)]

    def blocks_of(vals: np.ndarray) -> np.ndarray:
        full = np.zeros((num_blocks, lanes), dtype=np.int64)
        full.reshape(-1)[:n] = np.asarray(vals, dtype=np.int64).reshape(-1)
        return full

    for offset, vals in ((_W.a, feats.a), (_W.b, feats.b),
                         (_W.c, feats.c)):
        device.load_rows([b + offset for b in bases], blocks_of(vals))

    program = warp_program(qpose, feats.fmt.fraction_bits, camera,
                           device.config)
    with obs_span("warp", device=device, category="kernel",
                  features=n, blocks=num_blocks):
        device.run_program(program, bases, mode=mode)

    def collect(offset: int) -> np.ndarray:
        block = device.store_rows([b + offset for b in bases])
        return block.reshape(-1)[:n]

    u, v = collect(_W.u), collect(_W.v)
    rx, ry, z = collect(_W.rx), collect(_W.ry), collect(_W.z)
    scale = UV_FORMAT.scale
    valid = (z > 0) & (u >= 0) & (u <= (camera.width - 1) * scale) & \
        (v >= 0) & (v <= (camera.height - 1) * scale)
    return WarpResult(u=u, v=v, rx=rx, ry=ry, z=z, valid=valid)
