"""The NMS kernel: branch-free non-maximum suppression (paper Fig. 4).

Original (branchy) form, for centre response ``b2`` with the four
opposite-neighbour pairs ``{a1,c3}, {a3,c1}, {b1,b3}, {a2,c2}``:

``b2 > th1 AND any_pair( b2 - first > th2 AND b2 - second > th2 )``

The paper's simplification uses ``(x>y AND x>z) <=> x > max(y,z)`` and
``(x>y OR x>z) <=> x > min(y,z)``:

``b2 > th1 AND sat(b2 - th2) > min over pairs of max(pair)``

which is four branch-free ``max`` ops, three ``min`` ops, one saturated
subtraction and two comparisons - all single-cycle PIM primitives.
The mapping reuses the 2-pixel/1-pixel shifted row copies exactly like
the HPF kernel and writes the edge mask in place into the dead row
above the centre.

The naive mapping executes the branchy form literally: per pair, two
centre-alignment shifts, two subtractions, two threshold compares and
an AND, then the OR chain - every intermediate written to SRAM.
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint import ops
from repro.kernels.common import KERNEL_PROGRAM_CACHE, shift_pixels
from repro.obs.tracer import span as obs_span
from repro.pim.device import TMP, Imm, Rel, Tmp
from repro.pim.program import PIMProgram, program_key

__all__ = ["nms_fast", "nms_naive_fast", "nms_pim", "nms_pim_naive",
           "nms_program", "nms_pim_replay", "NMS_ROW_OFFSET"]

#: Row alignment: output row ``i`` holds the decision for input row
#: ``i + NMS_ROW_OFFSET`` (columns are centre-aligned).
NMS_ROW_OFFSET = 1


def nms_fast(response: np.ndarray, th1: int, th2: int) -> np.ndarray:
    """Branch-free NMS with exact PIM arithmetic (vectorized).

    Args:
        response: 8-bit HPF response image.
        th1: Absolute strength threshold.
        th2: Local-maximum margin.

    Returns:
        0/1 mask, same shape; row ``i`` is the decision for input row
        ``i + 1``, columns centre-aligned; two bottom rows and the
        outermost columns are invalid.
    """
    img = np.asarray(response, dtype=np.int64)
    a = img[:-2]
    b = img[1:-1]
    c = img[2:]
    # Pair maxima, aligned at (centre - 1) like the HPF pipeline.
    m1 = ops.branchfree_max(a, shift_pixels(c, 2), 8, signed=False)
    m2 = ops.branchfree_max(shift_pixels(a, 2), c, 8, signed=False)
    m3 = ops.branchfree_max(b, shift_pixels(b, 2), 8, signed=False)
    m4 = ops.branchfree_max(shift_pixels(a, 1), shift_pixels(c, 1), 8,
                            signed=False)
    k = ops.branchfree_min(m1, m2, 8, signed=False)
    k = ops.branchfree_min(k, m3, 8, signed=False)
    k = ops.branchfree_min(k, m4, 8, signed=False)
    k = shift_pixels(k, -1)  # centre-align
    low = ops.sat_sub(b, np.int64(th2), 8, signed=False)
    strong = ops.greater_than(b, np.int64(th1))
    local_max = ops.greater_than(low, k)
    out = np.zeros_like(img)
    out[:-2] = local_max & strong
    return out


def nms_naive_fast(response: np.ndarray, th1: int, th2: int) -> np.ndarray:
    """Naive branchy NMS, vectorized mirror (centre-aligned rows offset).

    Exactly the original compound of comparisons; produces the same
    mask as :func:`nms_fast` in the interior.
    """
    img = np.asarray(response, dtype=np.int64)
    a = img[:-2]
    b = img[1:-1]
    c = img[2:]
    pairs = [
        (shift_pixels(a, -1), shift_pixels(c, 1)),
        (shift_pixels(a, 1), shift_pixels(c, -1)),
        (shift_pixels(b, -1), shift_pixels(b, 1)),
        (a, c),
    ]
    any_dir = np.zeros_like(a)
    for first, second in pairs:
        win = (ops.greater_than(b - first, np.int64(th2)) &
               ops.greater_than(b - second, np.int64(th2)))
        any_dir |= win
    strong = ops.greater_than(b, np.int64(th1))
    out = np.zeros_like(img)
    out[:-2] = any_dir & strong
    return out


def nms_pim(device, height: int, th1: int, th2: int, base_row: int = 0,
            scratch_base: int = None) -> None:
    """Optimized device program (Fig. 4) with pipelined row shifts.

    The response image in rows ``base_row ..`` is replaced in place by
    the 0/1 edge mask (output row ``i`` = decision for input row
    ``i + 1``).  Uses 8 scratch rows.
    """
    if scratch_base is None:
        scratch_base = base_row + height
    s2 = [scratch_base + i for i in range(3)]
    s1 = [scratch_base + 3 + i for i in range(3)]
    # The running min/max chain stays in a second Tmp register when the
    # bank has one (section 5.4 extension).
    t1 = Tmp(1) if device.config.num_tmp_registers > 1 \
        else scratch_base + 6
    t2 = scratch_base + 7

    with obs_span("nms", device=device, category="kernel",
                  rows=height - 2):
        for i, r in enumerate((base_row, base_row + 1)):
            device.shift_lanes(s2[i], r, 2)
            device.shift_lanes(s1[i], r, 1)

        for r in range(base_row + 1, base_row + height - 1):
            ia = (r - 1 - base_row) % 3
            ib = (r - base_row) % 3
            ic = (r + 1 - base_row) % 3
            row_a, row_b, row_c = r - 1, r, r + 1
            device.shift_lanes(s2[ic], row_c, 2)
            device.shift_lanes(s1[ic], row_c, 1)
            device.maximum(t1, row_a, s2[ic])      # max(a1, c3)
            device.maximum(t2, s2[ia], row_c)      # max(a3, c1)
            device.minimum(t1, t1, t2)
            device.maximum(t2, row_b, s2[ib])      # max(b1, b3)
            device.minimum(t1, t1, t2)
            device.maximum(t2, s1[ia], s1[ic])     # max(a2, c2)
            device.minimum(t1, t1, t2)             # K
            device.shift_lanes(t1, t1, -1)         # centre-align K
            device.sub(TMP, row_b, Imm(th2), saturate=True,
                       signed=False)               # L = sat(b2 - th2)
            device.cmp_gt(t2, TMP, t1, signed=False)        # M = L > K
            device.cmp_gt(TMP, row_b, Imm(th1), signed=False)  # N = b2 > th1
            device.logic_and(row_a, t2, TMP)       # edge mask, in place


def _nms_row_body(rec, th1: int, th2: int, scratch_base: int) -> None:
    """Record one output row of branch-free NMS with recomputed shifts.

    Batchable sibling of :func:`nms_pim`: the shift ring is replaced by
    five write-before-read scratch rows and the only relative write
    (the in-place mask store to ``Rel(-1)``) is the final op -- the
    same structure as the HPF replay body.
    """
    sc2c, sc2a, sc2b, sc1a, sc1c = (scratch_base + i for i in range(5))
    t1 = Tmp(1) if rec.config.num_tmp_registers > 1 \
        else scratch_base + 5
    t2 = scratch_base + 6
    rec.shift_lanes(sc2c, Rel(1), 2)             # C << 2pix
    rec.shift_lanes(sc2a, Rel(-1), 2)            # A << 2pix
    rec.shift_lanes(sc2b, Rel(0), 2)             # B << 2pix
    rec.shift_lanes(sc1a, Rel(-1), 1)            # A << 1pix
    rec.shift_lanes(sc1c, Rel(1), 1)             # C << 1pix
    rec.maximum(t1, Rel(-1), sc2c)               # max(a1, c3)
    rec.maximum(t2, sc2a, Rel(1))                # max(a3, c1)
    rec.minimum(t1, t1, t2)
    rec.maximum(t2, Rel(0), sc2b)                # max(b1, b3)
    rec.minimum(t1, t1, t2)
    rec.maximum(t2, sc1a, sc1c)                  # max(a2, c2)
    rec.minimum(t1, t1, t2)                      # K
    rec.shift_lanes(t1, t1, -1)                  # centre-align K
    rec.sub(TMP, Rel(0), Imm(th2), saturate=True,
            signed=False)                        # L = sat(b2 - th2)
    rec.cmp_gt(t2, TMP, t1, signed=False)        # M = L > K
    rec.cmp_gt(TMP, Rel(0), Imm(th1), signed=False)  # N = b2 > th1
    rec.logic_and(Rel(-1), t2, TMP)              # edge mask, in place


def nms_program(config, th1: int, th2: int,
                scratch_base: int) -> PIMProgram:
    """Compiled batchable NMS row body, cached per geometry/thresholds."""
    return KERNEL_PROGRAM_CACHE.get_or_record(
        program_key("nms", (scratch_base, th1, th2), 8, config), config,
        lambda rec: _nms_row_body(rec, th1, th2, scratch_base),
        name="nms")


def nms_pim_replay(device, height: int, th1: int, th2: int,
                   base_row: int = 0, scratch_base: int = None,
                   mode: str = "auto") -> None:
    """NMS via compiled program replay; output matches :func:`nms_pim`.

    Uses 7 scratch rows from ``scratch_base`` (default: directly below
    the image).  Row-batched on devices that support it; ``mode`` is
    forwarded to :meth:`~repro.pim.device.PIMDevice.run_program`.
    """
    if scratch_base is None:
        scratch_base = base_row + height
    program = nms_program(device.config, th1, th2, scratch_base)
    with obs_span("nms", device=device, category="kernel",
                  rows=height - 2):
        device.run_program(program,
                           range(base_row + 1, base_row + height - 1),
                           mode=mode)


def nms_pim_naive(device, response: np.ndarray, th1: int, th2: int,
                  scratch_base: int = None) -> np.ndarray:
    """Naive device program: the branchy kernel mapped literally.

    Nine threshold comparisons and the 8-way AND/OR compound, every
    intermediate materialized in SRAM, operands shifted to centre
    alignment per pair, rows streamed in per output row.

    Returns:
        The 0/1 edge mask (centre-aligned rows).
    """
    img = np.asarray(response, dtype=np.int64)
    height, width = img.shape
    if scratch_base is None:
        scratch_base = device.config.num_rows - 9
    in_rows = [scratch_base, scratch_base + 1, scratch_base + 2]
    t1, t2 = scratch_base + 3, scratch_base + 4
    c1, c2 = scratch_base + 5, scratch_base + 6
    acc = scratch_base + 7
    pair_shifts = [((-1, 0), (1, 2)),
                   ((1, 0), (-1, 2)),
                   ((-1, 1), (1, 1)),
                   ((0, 0), (0, 2))]
    out = np.zeros_like(img)
    row_b = in_rows[1]
    for r in range(1, height - 1):
        for i, dy in enumerate((-1, 0, 1)):
            device.load(in_rows[i], img[r + dy], signed=False)
        first = True
        for (dx_l, ri_l), (dx_r, ri_r) in pair_shifts:
            left, right = in_rows[ri_l], in_rows[ri_r]
            if dx_l != 0:
                device.shift_lanes(t1, left, dx_l)
                left = t1
            if dx_r != 0:
                device.shift_lanes(t2, right, dx_r)
                right = t2
            # sat0(b2 - neighbour) > th2 for both neighbours, then AND.
            # (The unsigned saturation clamps losses to 0, which can
            # never exceed the non-negative threshold - equivalent to
            # the signed comparison of the branchy original.)
            device.sub(c1, row_b, left, saturate=True, signed=False)
            device.cmp_gt(c1, c1, Imm(th2), signed=False)
            device.sub(c2, row_b, right, saturate=True, signed=False)
            device.cmp_gt(c2, c2, Imm(th2), signed=False)
            device.logic_and(c1, c1, c2)
            if first:
                device.copy(acc, c1)
                first = False
            else:
                device.logic_or(acc, acc, c1)
        device.cmp_gt(c1, row_b, Imm(th1), signed=False)
        device.logic_and(acc, acc, c1)
        out[r] = device.store(acc, signed=False)[:width]
    return out
