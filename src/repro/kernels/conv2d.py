"""General 2D convolution on the PIM array (conclusion's CNN extension).

The paper closes with: "The proposed SRAM-PIM architecture has
developed a general-purpose SIMD computing scheme ... and it may also
benefit the integration of a broader range of applications such as
CNN."  This module realizes that extension: int8-weight convolution
layers with 32-bit accumulation, ReLU and 2x2 max-pooling, mapped with
the same shift/multiply/accumulate vocabulary as the EBVO kernels.

Mapping: one feature-map row per SRAM row, one pixel per 32-bit lane
(80 lanes, enough for CIFAR-scale maps).  For every tap, the input row
is lane-shifted to alignment, multiplied by the broadcast weight (the
multiplier loop runs only the weight's 8 bits), and accumulated -
in the second Tmp register when the bank has one.  The requantization
(arithmetic shift + saturation) and ReLU (branch-free max against 0)
reuse the existing primitives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.fixedpoint import ops
from repro.kernels.common import shift_pixels
from repro.pim.device import TMP, Imm, Tmp

__all__ = ["conv2d_fast", "conv2d_pim", "relu_fast", "maxpool2x2_fast",
           "maxpool2x2_pim", "Conv2dLayer", "quantize_weights"]

_ACC_BITS = 32
_WEIGHT_BITS = 8


def quantize_weights(weights: np.ndarray, scale: Optional[float] = None
                     ) -> tuple:
    """Symmetric int8 quantization of a float weight tensor.

    Returns:
        ``(w_q, scale)`` with ``w_q ~ weights / scale`` in [-127, 127].
    """
    weights = np.asarray(weights, dtype=np.float64)
    if scale is None:
        peak = np.abs(weights).max()
        scale = max(peak, 1e-12) / 127.0
    w_q = np.clip(np.rint(weights / scale), -127, 127).astype(np.int64)
    return w_q, float(scale)


def conv2d_fast(plane: np.ndarray, kernel_q: np.ndarray,
                rshift: int = 0, relu: bool = False) -> np.ndarray:
    """Valid-mode integer convolution with exact PIM arithmetic.

    Args:
        plane: 2D integer activation map.
        kernel_q: KxK int8 weights (correlation orientation, like
            every CNN framework).
        rshift: Requantization shift applied to the 32-bit accumulator.
        relu: Clamp negatives to zero after requantization.

    Returns:
        (H-K+1, W-K+1) integer map.
    """
    plane = np.asarray(plane, dtype=np.int64)
    kernel_q = np.asarray(kernel_q, dtype=np.int64)
    kh, kw = kernel_q.shape
    height, width = plane.shape
    out_h, out_w = height - kh + 1, width - kw + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError("plane smaller than kernel")
    acc = np.zeros((out_h, width), dtype=np.int64)
    for dy in range(kh):
        rows = plane[dy:dy + out_h]
        for dx in range(kw):
            w = int(kernel_q[dy, dx])
            if w == 0:
                continue
            tap = ops.saturate(shift_pixels(rows, dx) * w, _ACC_BITS)
            acc = ops.sat_add(acc, tap, _ACC_BITS)
    out = ops.saturate(acc >> rshift, _ACC_BITS)
    if relu:
        out = np.maximum(out, 0)
    return out[:, :out_w]


def conv2d_pim(device, in_rows: Sequence[int], out_rows: Sequence[int],
               kernel_q: np.ndarray, width: int, rshift: int = 0,
               relu: bool = False, accumulate: bool = False) -> None:
    """Device program: one KxK filter over one input plane.

    Args:
        device: PIM device in any precision (switched to 32-bit).
        in_rows: SRAM rows holding the input plane (one map row each).
        out_rows: Destination rows, ``len(in_rows) - K + 1`` of them.
        kernel_q: KxK int8 weights.
        width: Valid pixels per row.
        rshift: Requantization shift.
        relu: Apply branch-free ReLU.
        accumulate: Add onto the existing output rows (multi-channel
            accumulation) instead of overwriting.
    """
    kernel_q = np.asarray(kernel_q, dtype=np.int64)
    kh, kw = kernel_q.shape
    if len(out_rows) != len(in_rows) - kh + 1:
        raise ValueError("output row count must be in_rows - K + 1")
    if np.abs(kernel_q).max() > 127:
        raise ValueError("weights exceed int8")
    device.set_precision(_ACC_BITS)
    multi_reg = device.config.num_tmp_registers > 1
    for oi, out_row in enumerate(out_rows):
        acc = Tmp(1) if multi_reg else out_row
        first = not accumulate
        if accumulate and multi_reg:
            device.copy(acc, out_row)  # resume the channel partial sum
        for dy in range(kh):
            src = in_rows[oi + dy]
            for dx in range(kw):
                w = int(kernel_q[dy, dx])
                if w == 0:
                    continue
                if dx:
                    device.shift_lanes(TMP, src, dx, signed=True)
                    device.mul(TMP, TMP, Imm(w),
                               multiplier_bits=_WEIGHT_BITS)
                else:
                    device.mul(TMP, src, Imm(w),
                               multiplier_bits=_WEIGHT_BITS)
                if first and acc is not out_row:
                    device.copy(acc, TMP)
                elif first:
                    device.copy(out_row, TMP)
                else:
                    device.add(acc, acc, TMP, saturate=True)
                first = False
        if rshift:
            device.shift_bits(acc, acc, -rshift, signed=True)
        if relu:
            device.maximum(out_row, acc, Imm(0), signed=True)
        elif acc is not out_row:
            device.copy(out_row, acc)


def relu_fast(plane: np.ndarray) -> np.ndarray:
    """Branch-free ReLU (max against zero)."""
    return np.maximum(np.asarray(plane, dtype=np.int64), 0)


def maxpool2x2_fast(plane: np.ndarray) -> np.ndarray:
    """2x2 max pooling with stride 2 (exact PIM arithmetic)."""
    plane = np.asarray(plane, dtype=np.int64)
    h2, w2 = plane.shape[0] // 2, plane.shape[1] // 2
    p = plane[:h2 * 2, :w2 * 2]
    return np.maximum.reduce([p[0::2, 0::2], p[0::2, 1::2],
                              p[1::2, 0::2], p[1::2, 1::2]])


def maxpool2x2_pim(device, in_rows: Sequence[int],
                   out_rows: Sequence[int], width: int) -> np.ndarray:
    """Device program: 2x2/stride-2 max pooling.

    Horizontal pairs fold with one lane shift + branch-free max;
    vertical pairs with a row-row max.  The stride-2 compaction
    (gathering even lanes) is a host read-back, like the feature
    extraction scan of the EBVO pipeline.

    Returns:
        The pooled plane (rows x width//2), also left in ``out_rows``
        in compacted form via host DMA.
    """
    device.set_precision(_ACC_BITS)
    h2, w2 = len(in_rows) // 2, width // 2
    if len(out_rows) < h2:
        raise ValueError("not enough output rows")
    pooled = np.zeros((h2, w2), dtype=np.int64)
    for oi in range(h2):
        top, bot = in_rows[2 * oi], in_rows[2 * oi + 1]
        device.shift_lanes(TMP, top, 1, signed=True)
        device.maximum(top, top, TMP, signed=True)      # horizontal max
        device.shift_lanes(TMP, bot, 1, signed=True)
        device.maximum(bot, bot, TMP, signed=True)
        device.maximum(out_rows[oi], top, bot, signed=True)  # vertical
        row = device.store(out_rows[oi])[:width]
        pooled[oi] = row[0:w2 * 2:2]
        device.load(out_rows[oi], pooled[oi])
    return pooled


@dataclass
class Conv2dLayer:
    """An int8 convolution layer executable on the PIM device.

    Attributes:
        weights_q: (Cout, Cin, K, K) int8 weights.
        rshift: Requantization shift after accumulation.
        relu: Apply ReLU.
        scale: Float scale of the quantized weights (bookkeeping).
    """

    weights_q: np.ndarray
    rshift: int = 0
    relu: bool = True
    scale: float = 1.0

    @classmethod
    def from_float(cls, weights: np.ndarray, rshift: int = 0,
                   relu: bool = True) -> "Conv2dLayer":
        """Quantize float weights (Cout, Cin, K, K) to int8."""
        w_q, scale = quantize_weights(weights)
        return cls(weights_q=w_q, rshift=rshift, relu=relu, scale=scale)

    def forward_fast(self, planes: Sequence[np.ndarray]
                     ) -> List[np.ndarray]:
        """Vectorized forward pass (exact PIM arithmetic)."""
        cout, cin = self.weights_q.shape[:2]
        if len(planes) != cin:
            raise ValueError(f"expected {cin} input planes")
        outputs = []
        for co in range(cout):
            acc = None
            for ci in range(cin):
                part = conv2d_fast(planes[ci], self.weights_q[co, ci])
                acc = part if acc is None else \
                    ops.sat_add(acc, part, _ACC_BITS)
            out = ops.saturate(acc >> self.rshift, _ACC_BITS)
            if self.relu:
                out = np.maximum(out, 0)
            outputs.append(out)
        return outputs

    def forward_pim(self, device, planes: Sequence[np.ndarray]
                    ) -> List[np.ndarray]:
        """Device forward pass; returns the output planes.

        Planes are DMA-staged channel by channel (the array holds one
        working set at a time, as in the EBVO pipeline).
        """
        cout, cin, kh, kw = self.weights_q.shape
        height, width = planes[0].shape
        out_h = height - kh + 1
        in_rows = list(range(height))
        out_rows = list(range(height, height + out_h))
        if height + out_h > device.config.num_rows:
            raise ValueError("plane too tall for the array")
        device.set_precision(_ACC_BITS)
        outputs = []
        for co in range(cout):
            for ci in range(cin):
                for r in in_rows:
                    device.load(r, planes[ci][r])
                conv2d_pim(device, in_rows, out_rows,
                           self.weights_q[co, ci], width,
                           rshift=self.rshift if ci == cin - 1 else 0,
                           relu=self.relu and ci == cin - 1,
                           accumulate=ci > 0)
            out = np.stack([device.store(r)[:width - kw + 1]
                            for r in out_rows])
            outputs.append(out)
        return outputs
