"""The traditional Sobel-magnitude HPF, mapped to the PIM array.

Paper section 3.2: "Traditionally, HPF requires two orthogonal 3x3
Sobel convolutions for the gradients gx and gy, and then calculates
sqrt(gx^2 + gy^2).  Obviously this is costly, so we propose an
alternative kernel [the 4-direction sat-SAD]."

This module implements the costly original so the claim is measurable:

* gradients need *signed 16-bit* arithmetic (range +-1020 for 8-bit
  pixels), halving the lane count - the image is processed in two
  vertical tiles;
* the exact magnitude squares both gradients (16-bit multiplies) and
  takes the in-PIM integer square root (~12 ops per result bit);
* the cheaper ``|gx| + |gy|`` approximation skips squares and root but
  still pays the 16-bit penalty.

The ablation bench compares all three against the paper's SAD kernel.
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint import ops
from repro.kernels.common import shift_pixels
from repro.pim.device import TMP, Imm
from repro.pim.routines import IsqrtRows, isqrt_fast, isqrt_pim

__all__ = ["sobel_hpf_fast", "sobel_hpf_pim", "sobel_abs_hpf_fast"]


def _gradients_fast(img: np.ndarray) -> tuple:
    """Signed Sobel gradients with PIM-exact integer arithmetic."""
    a = img[:-2]
    b = img[1:-1]
    c = img[2:]
    # gx = (a(+1) + 2 b(+1) + c(+1)) - (a(-1) + 2 b(-1) + c(-1)).
    right = (shift_pixels(a, 1) + (shift_pixels(b, 1) << 1) +
             shift_pixels(c, 1))
    left = (shift_pixels(a, -1) + (shift_pixels(b, -1) << 1) +
            shift_pixels(c, -1))
    gx = ops.saturate(right - left, 16)
    # gy = (c(-1) + 2 c + c(+1)) - (a(-1) + 2 a + a(+1)).
    bottom = shift_pixels(c, -1) + (c << 1) + shift_pixels(c, 1)
    top = shift_pixels(a, -1) + (a << 1) + shift_pixels(a, 1)
    gy = ops.saturate(bottom - top, 16)
    return gx, gy


def sobel_hpf_fast(image: np.ndarray,
                   saturate_bits: int = 8) -> np.ndarray:
    """Exact Sobel magnitude ``sqrt(gx^2 + gy^2)`` (integer, centred).

    Returns a response of the input shape; first/last rows and columns
    are invalid.
    """
    img = np.asarray(image, dtype=np.int64)
    gx, gy = _gradients_fast(img)
    # Square into 21 bits, scale down to fit the 16-bit radicand of
    # the in-PIM square root (the magnitude scales accordingly, which a
    # threshold rescale absorbs; exactness is vs this same definition).
    # Each square is shifted *before* the add, exactly like the device.
    sq = ops.sat_add(ops.saturate((gx * gx) >> 6, 16),
                     ops.saturate((gy * gy) >> 6, 16), 16)
    mag = isqrt_fast(np.maximum(sq, 0), bits=16) << 3
    mag = np.minimum(mag, (1 << saturate_bits) - 1)
    out = np.zeros_like(img)
    out[1:-1] = mag
    return out


def sobel_abs_hpf_fast(image: np.ndarray,
                       saturate_bits: int = 8) -> np.ndarray:
    """Approximate Sobel magnitude ``(|gx| + |gy|) >> 2`` (centred)."""
    img = np.asarray(image, dtype=np.int64)
    gx, gy = _gradients_fast(img)
    mag = (ops.abs_diff(gx, 0) + ops.abs_diff(gy, 0)) >> 2
    out = np.zeros_like(img)
    out[1:-1] = np.minimum(mag, (1 << saturate_bits) - 1)
    return out


def sobel_hpf_pim(device, image: np.ndarray, exact: bool = True,
                  scratch_base: int = None) -> np.ndarray:
    """Device program for the traditional Sobel HPF (streamed rows).

    Processes the image in two vertical tiles of 16-bit lanes (the
    precision penalty of signed gradients).  With ``exact=True`` the
    magnitude uses squares + the in-PIM integer square root; otherwise
    the ``|gx| + |gy|`` approximation.

    Returns:
        The response image (interior valid), matching
        :func:`sobel_hpf_fast` / :func:`sobel_abs_hpf_fast` exactly.
    """
    img = np.asarray(image, dtype=np.int64)
    height, width = img.shape
    device.set_precision(16)
    lanes = device.lanes
    if scratch_base is None:
        scratch_base = device.config.num_rows - 12
    in_rows = [scratch_base + i for i in range(3)]
    gx_row, gy_row, acc = (scratch_base + 3, scratch_base + 4,
                           scratch_base + 5)
    sq_rows = IsqrtRows(rem=scratch_base + 6, root=scratch_base + 7,
                        trial=scratch_base + 8, mask=scratch_base + 9)
    out = np.zeros_like(img)

    # Tiles overlap by one pixel on each side so lane shifts at tile
    # boundaries see their true neighbours.
    step = lanes - 2
    tiles = [(t, min(step, width - t)) for t in range(0, width, step)]
    for r in range(1, height - 1):
        row_out = np.zeros(width, dtype=np.int64)
        for tile_start, tile_w in tiles:
            lo = max(tile_start - 1, 0)
            hi = min(tile_start + tile_w + 1, width)
            pad = tile_start - lo
            for i, dy in enumerate((-1, 0, 1)):
                seg = np.zeros(lanes, dtype=np.int64)
                seg[:hi - lo] = img[r + dy, lo:hi]
                device.load(in_rows[i], seg)
            a_row, b_row, c_row = in_rows

            def tap_sum(dst, rows_shifts):
                first = True
                for src, dx, double in rows_shifts:
                    device.shift_lanes(TMP, src, dx, signed=True)
                    if double:
                        device.shift_bits(TMP, TMP, 1, signed=True)
                    if first:
                        device.copy(dst, TMP)
                        first = False
                    else:
                        device.add(dst, dst, TMP, saturate=True)

            # gx: (right column sum) - (left column sum).
            tap_sum(gx_row, [(a_row, 1, False), (b_row, 1, True),
                             (c_row, 1, False)])
            tap_sum(acc, [(a_row, -1, False), (b_row, -1, True),
                          (c_row, -1, False)])
            device.sub(gx_row, gx_row, acc, saturate=True)
            # gy: (bottom row sum) - (top row sum).
            tap_sum(gy_row, [(c_row, -1, False), (c_row, 0, True),
                             (c_row, 1, False)])
            tap_sum(acc, [(a_row, -1, False), (a_row, 0, True),
                          (a_row, 1, False)])
            device.sub(gy_row, gy_row, acc, saturate=True)

            if exact:
                device.mul(acc, gx_row, gx_row, rshift=6)
                device.mul(TMP, gy_row, gy_row, rshift=6)
                device.add(acc, acc, TMP, saturate=True)
                device.maximum(acc, acc, Imm(0), signed=True)
                isqrt_pim(device, acc, acc, sq_rows, bits=16)
                device.shift_bits(acc, acc, 3, signed=False)
            else:
                device.abs_diff(acc, gx_row, Imm(0), signed=True)
                device.abs_diff(TMP, gy_row, Imm(0), signed=True)
                device.add(acc, acc, TMP, saturate=True)
                device.shift_bits(acc, acc, -2, signed=False)
            device.minimum(acc, acc, Imm(255), signed=False)
            vals = device.store(acc, signed=False)
            row_out[tile_start:tile_start + tile_w] = \
                vals[pad:pad + tile_w]
        out[r] = row_out
    return out
