"""PicoVO inner-loop cost estimators, calibrated to the published totals.

PicoVO's published numbers (paper section 5.3/5.4, QVGA):

* PicoEdge detector: **1 419 120 cycles** per frame,
* LM solver: **~540 000 cycles** per iteration (~4500 features),
* energy: **10.3 mJ** per frame (8.1 LM iterations average).

The instruction mixes below are the modelled inner-loop bodies of
PicoVO's fixed-point implementation (PicoEdge streams a simplified
detector with row buffers in registers; the LM loop uses the same
kernel structure as the PIM mapping, executed scalar).  They land
within a few percent of the published totals at the published operating
points; tests pin that calibration.
"""

from __future__ import annotations

from typing import Dict

from repro.baseline.mcu import MCUCostModel, OpCounts

__all__ = [
    "PICOVO_PAPER",
    "PICOEDGE_PIXEL_OPS",
    "LM_FEATURE_OPS",
    "picoedge_cycles",
    "lm_iteration_cycles",
    "solve_6x6_cycles",
    "picovo_frame_cycles",
    "picovo_frame_energy_mj",
    "data_movement_share",
]

#: Published PicoVO reference points (for calibration checks and the
#: EXPERIMENTS.md paper-vs-measured tables).
PICOVO_PAPER: Dict[str, float] = {
    "picoedge_cycles": 1419120.0,
    "lm_iteration_cycles": 540000.0,
    "lm_iterations_mean": 8.1,
    "frame_energy_mj": 10.3,
    "nominal_features": 4500,
}

#: PicoEdge per-pixel work: streaming LPF (incremental 2x2 cascade with
#: the previous row buffered in registers), simplified 2-direction SAD
#: HPF, and an early-exit NMS (most pixels fail the strength threshold
#: after one compare).
PICOEDGE_PIXEL_OPS = {
    "lpf": OpCounts(load=1, alu=3, store=1),
    "hpf": OpCounts(load=1, alu=6, store=1),
    "nms": OpCounts(cmp=1, branch_taken=1, branch_not=1),
}

#: LM per-feature work (fixed-point scalar): the warp's 9 multiplies,
#: 2 divides and projection; three table lookups with address
#: arithmetic; the factored Jacobian pipeline (9 multiplies, 1 divide);
#: and the 27 multiply-accumulates of the symmetric Hessian update.
LM_FEATURE_OPS = {
    "warp": OpCounts(load=3, store=2, alu=11, mul=11, div=2),
    "lookup": OpCounts(load=3, alu=3),
    "jacobian": OpCounts(alu=7, mul=9, div=1),
    "hessian": OpCounts(mac=27),
}


def picoedge_cycles(width: int = 320, height: int = 240,
                    model: MCUCostModel = MCUCostModel()) -> int:
    """PicoEdge detector cycles for one frame."""
    per_pixel = sum(PICOEDGE_PIXEL_OPS.values(), OpCounts())
    return model.cycles(per_pixel, repetitions=width * height)


def lm_iteration_cycles(n_features: int = 4500,
                        model: MCUCostModel = MCUCostModel(),
                        include_solve: bool = True) -> int:
    """One LM iteration on the MCU (per-feature work + 6x6 solve)."""
    per_feature = sum(LM_FEATURE_OPS.values(), OpCounts())
    total = model.cycles(per_feature, repetitions=n_features)
    if include_solve:
        total += solve_6x6_cycles(model)
    return total


def solve_6x6_cycles(model: MCUCostModel = MCUCostModel()) -> int:
    """Cholesky solve of the 6x6 system (runs on the CPU for both the
    baseline and the PIM accelerator, per paper section 3.4)."""
    ops = OpCounts(mac=56, div=21, alu=36, load=27, store=27)
    return model.cycles(ops)


def picovo_frame_cycles(n_features: int = 4500,
                        lm_iterations: float = 8.0,
                        width: int = 320, height: int = 240,
                        model: MCUCostModel = MCUCostModel()) -> int:
    """Whole-frame PicoVO cycles: edge detection + LM iterations."""
    return int(picoedge_cycles(width, height, model) +
               lm_iterations * lm_iteration_cycles(n_features, model))


def data_movement_share(n_features: int = 4500,
                        lm_iterations: float = 8.0,
                        model: MCUCostModel = MCUCostModel()) -> Dict:
    """Fraction of baseline *cycles* spent moving data (paper section 1).

    The paper's Valgrind profiling of REVO attributes 43 % of the
    instructions to data movement on x86 and 51 % on ARM - the
    memory-wall motivation for PIM.  This computes the equivalent share
    for the modelled PicoVO op streams: loads and stores versus
    everything else, cycle-weighted.

    Note the expected gap: REVO is a full desktop C++ implementation
    (floats, copies, framework overhead), whereas these streams model
    PicoVO's register-blocked fixed-point inner loops - the most
    movement-lean implementation possible.  Even so, roughly a sixth
    of the baseline's cycles are pure data movement that the PIM
    executes *in place*; on the real software stack the share is the
    paper's 43-51 %.
    """
    per_pixel = sum(PICOEDGE_PIXEL_OPS.values(), OpCounts())
    per_feature = sum(LM_FEATURE_OPS.values(), OpCounts())
    pixels = 320 * 240

    def movement_cycles(ops: OpCounts) -> int:
        return (ops.load * model.table.load +
                ops.store * model.table.store)

    move = (movement_cycles(per_pixel) * pixels +
            movement_cycles(per_feature) * n_features * lm_iterations)
    total = (per_pixel.cycles(model.table) * pixels +
             per_feature.cycles(model.table) * n_features *
             lm_iterations)
    return {
        "movement_cycles": float(move),
        "total_cycles": float(total),
        "share": move / total,
        "paper_x86": 0.43,
        "paper_arm": 0.51,
    }


def picovo_frame_energy_mj(n_features: int = 4500,
                           lm_iterations: float = 8.0,
                           width: int = 320, height: int = 240,
                           model: MCUCostModel = MCUCostModel()) -> float:
    """Whole-frame PicoVO energy in mJ."""
    return model.energy_mj(picovo_frame_cycles(
        n_features, lm_iterations, width, height, model))
