"""Cortex-M7-style scalar cost model.

Cycle costs follow the public ARM Cortex-M7 instruction timing
(single-issue counting - the M7's dual-issue is *not* credited, which
errs in the baseline's favour being an embedded part running from
flash/TCM with real stalls):

* loads 2 cycles (TCM hit), stores 1 (write buffer),
* ALU / shift / compare / conditional ops 1,
* 32-bit multiply and multiply-accumulate 1 (DSP datapath),
* hardware integer divide ~12 (2-12 data dependent; worst-ish case),
* taken branches 2, not-taken 1.

Energy uses the per-cycle figure derived from PicoVO's published
10.3 mJ/frame over its published per-frame cycles (~1.79 nJ/cycle,
i.e. ~390 mW at 216 MHz - consistent with an STM32F7 at full load).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pim.energy import CLOCK_HZ, MCU_ENERGY_PER_CYCLE_PJ

__all__ = ["MCUCycleTable", "OpCounts", "MCUCostModel"]


@dataclass(frozen=True)
class MCUCycleTable:
    """Cycles per instruction class."""

    load: int = 2
    store: int = 1
    alu: int = 1
    mul: int = 1
    mac: int = 1
    div: int = 12
    cmp: int = 1
    branch_taken: int = 2
    branch_not: int = 1


@dataclass(frozen=True)
class OpCounts:
    """Instruction mix of one inner-loop body."""

    load: int = 0
    store: int = 0
    alu: int = 0
    mul: int = 0
    mac: int = 0
    div: int = 0
    cmp: int = 0
    branch_taken: int = 0
    branch_not: int = 0

    def cycles(self, table: MCUCycleTable) -> int:
        """Total cycles of one execution of this mix."""
        return (self.load * table.load + self.store * table.store +
                self.alu * table.alu + self.mul * table.mul +
                self.mac * table.mac + self.div * table.div +
                self.cmp * table.cmp +
                self.branch_taken * table.branch_taken +
                self.branch_not * table.branch_not)

    def __add__(self, other: "OpCounts") -> "OpCounts":
        return OpCounts(*(getattr(self, f) + getattr(other, f)
                          for f in self.__dataclass_fields__))


@dataclass(frozen=True)
class MCUCostModel:
    """Scalar execution cost model for the baseline MCU."""

    table: MCUCycleTable = MCUCycleTable()
    clock_hz: float = CLOCK_HZ
    energy_per_cycle_pj: float = MCU_ENERGY_PER_CYCLE_PJ

    def cycles(self, ops: OpCounts, repetitions: int = 1) -> int:
        """Cycles of ``repetitions`` executions of an op mix."""
        return ops.cycles(self.table) * repetitions

    def seconds(self, cycles: int) -> float:
        """Wall-clock seconds of a cycle count at the MCU clock."""
        return cycles / self.clock_hz

    def energy_mj(self, cycles: int) -> float:
        """Energy in millijoules of a cycle count."""
        return cycles * self.energy_per_cycle_pj * 1e-9
