"""The PicoVO-on-MCU baseline (paper section 5.1).

The paper compares against PicoVO [He et al., ICRA 2021] running on a
216 MHz STM32F7-class microcontroller in the same 90 nm node.  Without
board access we model the baseline analytically: a Cortex-M7-style
per-operation cycle table applied to the published inner loops of
PicoEdge and the LM pipeline, calibrated against PicoVO's published
per-frame cycle and energy figures.
"""

from repro.baseline.mcu import MCUCostModel, MCUCycleTable, OpCounts
from repro.baseline.picovo import (
    PICOVO_PAPER,
    lm_iteration_cycles,
    picoedge_cycles,
    picovo_frame_cycles,
    picovo_frame_energy_mj,
    solve_6x6_cycles,
)

__all__ = [
    "MCUCostModel",
    "MCUCycleTable",
    "OpCounts",
    "PICOVO_PAPER",
    "picoedge_cycles",
    "lm_iteration_cycles",
    "solve_6x6_cycles",
    "picovo_frame_cycles",
    "picovo_frame_energy_mj",
]
