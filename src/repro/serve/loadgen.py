"""Concurrent load generator for :class:`~repro.serve.service.VOService`.

Replays K synthetic TUM-profile sequences as K concurrent client
threads.  Each client submits its frames strictly in order, blocking
on every result (the closed-loop model of a camera pipeline: frame
N+1 cannot be captured before frame N is consumed), and retries on
:class:`~repro.serve.scheduler.Backpressure` after the server's
``retry_after_s`` hint.

:func:`run_load` returns a JSON-ready report: throughput, queue-latency
percentiles, per-worker utilization, simulated cycles/frame, and the
admission-rejection count.  :func:`solo_trajectories` re-runs the same
workload through isolated single-stream trackers, giving the reference
for the zero-cross-session-corruption check
(:func:`trajectories_match`).
"""

from __future__ import annotations

import json
import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.dataset.sequences import (
    SEQUENCE_NAMES,
    SyntheticSequence,
    make_sequence,
)
from repro.geometry.camera import TUM_QVGA
from repro.obs.metrics import get_registry
from repro.obs.slo import percentile
from repro.obs.stamp import run_stamp
from repro.serve.pool import TrackResult
from repro.serve.scheduler import Backpressure, DeadlineExceeded
from repro.vo.config import TrackerConfig
from repro.vo.tracker import EBVOTracker

__all__ = ["ClientStats", "build_workload", "run_load",
           "run_open_loop_load", "write_bench_report",
           "service_trajectories", "solo_trajectories",
           "trajectories_match"]

log = logging.getLogger(__name__)


@dataclass
class ClientStats:
    """One client thread's outcome."""

    sid: str
    sequence: str
    results: List[TrackResult] = field(default_factory=list)
    retries: int = 0
    errors: int = 0
    deadline_misses: int = 0


def build_workload(sessions: int = 3, frames: int = 20,
                   scale: float = 1.0, seed: int = 0
                   ) -> Dict[str, SyntheticSequence]:
    """K named synthetic sequences, cycling through the paper's set.

    ``scale`` shrinks the QVGA render (0.5 = 160x120) for faster
    smoke runs; every session uses the same intrinsics, matching one
    deployed camera model.
    """
    camera = TUM_QVGA if scale == 1.0 else TUM_QVGA.scaled(scale)
    workload: Dict[str, SyntheticSequence] = {}
    for i in range(sessions):
        name = SEQUENCE_NAMES[i % len(SEQUENCE_NAMES)]
        workload[f"client-{i}"] = make_sequence(
            name, n_frames=frames, camera=camera, seed=seed + i)
    return workload


def _client(service, sid: str, sequence: SyntheticSequence,
            stats: ClientStats, max_retries: int,
            deadline_s=None) -> None:
    for frame in sequence.frames:
        attempts = 0
        while True:
            try:
                result = service.submit(sid, frame.gray, frame.depth,
                                        frame.timestamp,
                                        deadline_s=deadline_s)
                stats.results.append(result)
                break
            except DeadlineExceeded:
                # The frame went stale in the queue; the camera model
                # drops it and moves on to the next capture.
                stats.deadline_misses += 1
                break
            except Backpressure as bp:
                attempts += 1
                stats.retries += 1
                if attempts > max_retries:
                    stats.errors += 1
                    log.warning("%s: frame dropped after %d retries",
                                sid, max_retries)
                    break
                time.sleep(max(bp.retry_after_s, 0.001))


def run_load(service, workload: Dict[str, SyntheticSequence],
             max_retries: int = 1000, deadline_s=None):
    """Drive the workload to completion; ``(report, clients)``.

    ``report`` is JSON-ready serving metrics; ``clients`` carries the
    raw per-frame :class:`TrackResult` lists for correctness checks
    (:func:`service_trajectories`).  The service must already be
    started; the caller owns its lifecycle (so one service can be
    measured under several workloads).  With ``deadline_s`` set,
    every submission carries that per-request deadline and expired
    frames are dropped (counted per client and in the report).
    """
    rejected_before = get_registry().counter(
        "serve_admission_rejected_total").total()
    clients = [ClientStats(sid=sid, sequence=seq.name)
               for sid, seq in workload.items()]
    threads = [
        threading.Thread(target=_client, name=f"loadgen-{c.sid}",
                         args=(service, c.sid, workload[c.sid], c,
                               max_retries, deadline_s))
        for c in clients]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall_s = time.perf_counter() - t0

    results = [r for c in clients for r in c.results]
    queue_s = [r.queue_s for r in results]
    pool = service.stats()["pool"]
    report = {
        "sessions": len(clients),
        "frames_submitted": sum(len(workload[c.sid].frames)
                                for c in clients),
        "frames_tracked": len(results),
        "frames_dropped": sum(c.errors for c in clients),
        "wall_s": wall_s,
        "throughput_fps": len(results) / wall_s if wall_s else 0.0,
        "queue_latency_s": {
            "p50": percentile(queue_s, 50),
            "p95": percentile(queue_s, 95),
            "p99": percentile(queue_s, 99),
            "max": max(queue_s) if queue_s else None,
        },
        "service_s_mean": (sum(r.service_s for r in results) /
                           len(results)) if results else None,
        "device_cycles_per_frame": (
            sum(r.device_cycles for r in results) / len(results)
        ) if results else None,
        "retries": sum(c.retries for c in clients),
        "deadline_misses": sum(c.deadline_misses for c in clients),
        "rejections": int(get_registry().counter(
            "serve_admission_rejected_total").total() -
            rejected_before),
        "keyframes": sum(1 for r in results if r.is_keyframe),
        "pool_utilization": [w["utilization"]
                             for w in pool["per_worker"]],
        "per_session": {c.sid: {
            "sequence": c.sequence,
            "frames": len(c.results),
            "retries": c.retries,
            "errors": c.errors,
            "deadline_misses": c.deadline_misses,
            "workers_used": sorted({r.worker for r in c.results}),
        } for c in clients},
    }
    slo = getattr(service, "slo", None)
    if slo is not None:
        report["slo"] = slo.snapshot()
    log.info("load complete: %d frames in %.2fs (%.1f fps), "
             "queue p95 %s, %d rejections",
             report["frames_tracked"], wall_s,
             report["throughput_fps"],
             report["queue_latency_s"]["p95"], report["rejections"])
    return report, clients


def run_open_loop_load(service, workload: Dict[str, SyntheticSequence],
                       rate_hz: float = 30.0, seed: int = 0,
                       deadline_s=None, timeout_s: float = 300.0):
    """Open-loop arrivals: frames arrive on a seeded Poisson clock.

    Unlike :func:`run_load` (closed-loop: frame N+1 waits for frame
    N's result), each session here submits on its own seeded
    exponential arrival process at ``rate_hz`` frames/s *regardless of
    completion* -- the production-traffic model, where offered load
    does not slow down just because the service is struggling.
    Submission uses ``submit_nowait`` (the service or shard router
    must provide it); an admission rejection drops that frame and is
    counted, deliberately without retry, so goodput-under-overload is
    measurable.

    Returns ``(report, clients)`` like :func:`run_load`; the report
    adds end-to-end ``latency_s`` percentiles (submit to completion,
    wall clock) plus ``offered_fps`` / ``goodput_fps``.
    """
    if rate_hz <= 0:
        raise ValueError("rate_hz must be positive")
    clients = [ClientStats(sid=sid, sequence=seq.name)
               for sid, seq in workload.items()]
    lock = threading.Lock()
    latencies: List[float] = []
    futures = []

    def _dispatcher(stats: ClientStats,
                    sequence: SyntheticSequence,
                    rng: np.random.Generator) -> None:
        for frame in sequence.frames:
            time.sleep(float(rng.exponential(1.0 / rate_hz)))
            t0 = time.perf_counter()
            try:
                future = service.submit_nowait(
                    stats.sid, frame.gray, frame.depth,
                    frame.timestamp, deadline_s=deadline_s)
            except Backpressure:
                with lock:
                    stats.retries += 1
                continue

            def _done(fut, t0=t0, stats=stats):
                latency = time.perf_counter() - t0
                exc = fut.exception()
                with lock:
                    if exc is None:
                        latencies.append(latency)
                        stats.results.append(fut.result())
                    elif isinstance(exc, DeadlineExceeded):
                        stats.deadline_misses += 1
                    else:
                        stats.errors += 1

            future.add_done_callback(_done)
            with lock:
                futures.append(future)

    threads = [
        threading.Thread(
            target=_dispatcher, name=f"loadgen-ol-{c.sid}",
            args=(c, workload[c.sid],
                  np.random.default_rng(seed + i)))
        for i, c in enumerate(clients)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    deadline = time.monotonic() + timeout_s
    with lock:
        outstanding = list(futures)
    for future in outstanding:
        remaining = max(0.01, deadline - time.monotonic())
        try:
            future.exception(timeout=remaining)
        except Exception:  # noqa: BLE001 -- counted in _done
            pass
    wall_s = time.perf_counter() - t0

    with lock:
        observed = list(latencies)
    results = [r for c in clients for r in c.results]
    offered = sum(len(workload[c.sid].frames) for c in clients)
    report = {
        "mode": "open-loop",
        "sessions": len(clients),
        "rate_hz": rate_hz,
        "frames_offered": offered,
        "frames_tracked": len(results),
        "frames_rejected": sum(c.retries for c in clients),
        "frames_errored": sum(c.errors for c in clients),
        "deadline_misses": sum(c.deadline_misses
                               for c in clients),
        "wall_s": wall_s,
        "offered_fps": offered / wall_s if wall_s else 0.0,
        "goodput_fps": len(results) / wall_s if wall_s else 0.0,
        "latency_s": {
            "p50": percentile(observed, 50),
            "p95": percentile(observed, 95),
            "p99": percentile(observed, 99),
            "max": max(observed) if observed else None,
        },
        "per_session": {c.sid: {
            "sequence": c.sequence,
            "frames": len(c.results),
            "rejected": c.retries,
            "errors": c.errors,
            "deadline_misses": c.deadline_misses,
        } for c in clients},
    }
    shards_status = getattr(service, "shards_status", None)
    if shards_status is not None:
        report["shards"] = shards_status()
    log.info("open-loop load complete: %d/%d frames in %.2fs "
             "(goodput %.1f fps), latency p95 %s",
             len(results), offered, wall_s, report["goodput_fps"],
             report["latency_s"]["p95"])
    return report, clients


def write_bench_report(report: dict, path) -> "Path":
    """Write ``BENCH_serve.json``: the loadgen report plus provenance.

    The stamp (git SHA, timestamp, toolchain versions) follows the
    ``BENCH_pim.json`` format so serving benchmarks stay attributable
    across the PR sequence exactly like the kernel benchmarks.
    """
    from pathlib import Path
    payload = {
        "benchmark": "vo-serve-loadgen",
        **run_stamp(),
        **report,
    }
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2,
                               default=float) + "\n")
    return path


def service_trajectories(clients_or_results) -> Dict[str, List]:
    """Per-session pose list from loadgen results (submission order)."""
    out: Dict[str, List] = {}
    for result in clients_or_results:
        out.setdefault(result.session, []).append(
            (result.frame_index, result.pose))
    return {sid: [p for _, p in sorted(items, key=lambda x: x[0])]
            for sid, items in out.items()}


def solo_trajectories(workload: Dict[str, SyntheticSequence],
                      frontend_cls, config: TrackerConfig
                      ) -> Dict[str, List]:
    """Reference: each sequence through its own isolated tracker."""
    out: Dict[str, List] = {}
    for sid, sequence in workload.items():
        tracker = EBVOTracker(frontend_cls(config), config)
        for frame in sequence.frames:
            tracker.process(frame.gray, frame.depth, frame.timestamp)
        out[sid] = list(tracker.trajectory)
    return out


def trajectories_match(served: Dict[str, List],
                       solo: Dict[str, List]) -> List[str]:
    """Bit-exact comparison; returns mismatch descriptions ([] = ok)."""
    problems = []
    for sid, reference in solo.items():
        got = served.get(sid, [])
        if len(got) != len(reference):
            problems.append(
                f"{sid}: {len(got)} served vs {len(reference)} solo")
            continue
        for i, (a, b) in enumerate(zip(got, reference)):
            if not (np.array_equal(a.R, b.R) and
                    np.array_equal(a.t, b.t)):
                problems.append(f"{sid}: pose {i} differs")
                break
    return problems
