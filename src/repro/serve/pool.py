"""The device pool: N workers, each owning one tracker + PIM devices.

Each :class:`PoolWorker` thread holds a complete
:class:`~repro.vo.tracker.EBVOTracker` (frontends, and -- for the PIM
frontend -- per-shape simulated devices).  Per-frame it checks out the
session, swaps ``tracker.state`` to the session's
:class:`~repro.vo.tracker.TrackerState`, tracks the frame, and checks
the state back in.  Compiled kernel programs live in the process-wide
``KERNEL_PROGRAM_CACHE`` (thread-safe since this PR), so every worker
replays the same canonical programs.

A session's *first* frame on a worker resets that worker's devices
(:meth:`~repro.pim.device.PIMDevice.reset`): a reset device is
bit-identical to a fresh one, so device reuse across tenants can never
leak state between streams.

**Simulated device occupancy.**  The simulator computes a frame's
device cost in *cycles* but executes in host time, so wall-clock would
otherwise measure numpy speed, not device contention.  Each worker
therefore *dwells*: after tracking a frame it sleeps until the frame's
wall time reaches the simulated device service time --
``max(min_service_s, device_cycles / device_clock_hz)``.  Dwell sleeps
release the GIL and overlap across workers, which is exactly the
behaviour of N real accelerators driven from one host: pool throughput
scales with workers until the host CPU, not the device, saturates.
With both knobs at zero workers run flat out (pure host speed).
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.geometry.se3 import SE3
from repro.obs.metrics import get_registry
from repro.serve.scheduler import FifoScheduler, WorkItem
from repro.serve.session import SessionManager

__all__ = ["TrackResult", "DevicePool"]

log = logging.getLogger(__name__)


@dataclass
class TrackResult:
    """The service's per-frame response."""

    session: str
    generation: int
    frame_index: int          # index within this session's stream
    pose: SE3                 # camera-to-world
    is_keyframe: bool
    num_features: int
    lm_iterations: int
    worker: int
    queue_s: float            # admission-queue wait
    service_s: float          # worker wall time incl. device dwell
    device_cycles: int        # simulated device cycles of this frame


class PoolWorker:
    """One worker thread: a tracker, its devices, and the dwell loop."""

    def __init__(self, index: int, scheduler: FifoScheduler,
                 sessions: SessionManager,
                 tracker_factory: Callable[[], object],
                 min_service_s: float = 0.0,
                 device_clock_hz: Optional[float] = None):
        self.index = index
        self.scheduler = scheduler
        self.sessions = sessions
        self.tracker = tracker_factory()
        self.min_service_s = min_service_s
        self.device_clock_hz = device_clock_hz
        self.busy_s = 0.0
        self.frames = 0
        self._stop = threading.Event()
        self._started_at: Optional[float] = None
        self._thread = threading.Thread(
            target=self._run, name=f"pim-pool-{index}", daemon=True)
        registry = get_registry()
        self._frames_ctr = registry.counter(
            "serve_worker_frames_total", "Frames tracked per worker")
        self._cycles_ctr = registry.counter(
            "serve_worker_device_cycles_total",
            "Simulated device cycles charged per worker")
        self._util_gauge = registry.gauge(
            "serve_worker_utilization",
            "Busy fraction of each worker since pool start")
        self._queue_hist = registry.histogram(
            "serve_queue_latency_s",
            "Seconds a frame waited in the admission queue",
            bounds=(0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
                    30.0))
        self._evictions_ctr = registry.counter(
            "serve_device_evictions_total",
            "Devices reset between frames because faults were detected")

    # -- device plumbing -------------------------------------------------

    def _devices(self):
        """Every simulated device owned by this worker's frontends."""
        for frontend in getattr(self.tracker, "_frontends",
                                [self.tracker.frontend]):
            yield from getattr(frontend, "_detect_devices",
                               {}).values()

    def _device_cycles(self) -> int:
        return sum(dev.ledger.cycles for dev in self._devices())

    def _reset_devices(self) -> None:
        for dev in self._devices():
            dev.reset()

    def _evict_faulty_devices(self) -> int:
        """Reset any device reporting injected/suspected faults.

        Runs between frames: a device whose :meth:`fault_state` says
        the array may be corrupted (stored bit flips, or an armed
        fault injector) is returned to power-on state before it can
        serve the next frame, and the eviction is counted per worker
        and reason.  The session's tracker state lives host-side, so
        a between-frame reset is invisible to the stream except that
        the corruption is gone.
        """
        evicted = 0
        for dev in self._devices():
            state_fn = getattr(dev, "fault_state", None)
            if state_fn is None:
                continue
            state = state_fn()
            if not state.get("suspect"):
                continue
            reason = "stored-fault" if state.get("stored_faults") \
                else "fault-injector"
            log.warning(
                "worker %d evicting faulty device (%s: %d stored, "
                "%d read faults)", self.index, reason,
                state.get("stored_faults", 0),
                state.get("read_faults", 0))
            dev.reset()
            evicted += 1
            self._evictions_ctr.inc(worker=self.index, reason=reason)
        return evicted

    # -- the frame loop --------------------------------------------------

    def _process(self, item: WorkItem) -> None:
        t0 = time.perf_counter()
        session = self.sessions.checkout(item.session)
        try:
            if session.frames == 0:
                # Fresh stream on a reused device: back to power-on
                # state so nothing carries over from the last tenant.
                self._reset_devices()
            else:
                # Mid-stream health check: a device flagged faulty
                # since the last frame is reset before reuse.
                self._evict_faulty_devices()
            self.tracker.state = session.state
            gray, depth, timestamp = item.payload
            cycles_before = self._device_cycles()
            frame = self.tracker.process(gray, depth, timestamp)
            cycles = self._device_cycles() - cycles_before
            result = TrackResult(
                session=session.sid, generation=session.generation,
                frame_index=len(session.state.results) - 1,
                pose=frame.pose, is_keyframe=frame.is_keyframe,
                num_features=frame.num_features,
                lm_iterations=frame.lm.iterations if frame.lm else 0,
                worker=self.index,
                queue_s=max(0.0, item.dequeued_at - item.enqueued_at),
                service_s=0.0, device_cycles=cycles)
        except BaseException as exc:  # noqa: BLE001 -- fault isolation
            self.sessions.checkin(session)
            self.scheduler.done(item)
            log.exception("worker %d failed on session %s frame %d",
                          self.index, item.session, item.seq)
            item.future.set_exception(exc)
            return
        self.sessions.checkin(session)
        host_s = time.perf_counter() - t0
        dwell = self.min_service_s
        if self.device_clock_hz:
            dwell = max(dwell, cycles / self.device_clock_hz)
        if dwell > host_s:
            # Simulated device occupancy: hold the slot (GIL released)
            # until the device would actually be free again.
            time.sleep(dwell - host_s)
        service_s = time.perf_counter() - t0
        result.service_s = service_s
        self.busy_s += service_s
        self.frames += 1
        self.scheduler.done(item, service_s=service_s)
        self._frames_ctr.inc(worker=self.index)
        self._cycles_ctr.inc(cycles, worker=self.index)
        self._queue_hist.observe(result.queue_s)
        if self._started_at is not None:
            wall = time.perf_counter() - self._started_at
            if wall > 0:
                self._util_gauge.set(min(1.0, self.busy_s / wall),
                                     worker=self.index)
        item.future.set_result(result)

    def _run(self) -> None:
        self._started_at = time.perf_counter()
        while not self._stop.is_set():
            batch = self.scheduler.next_batch(timeout=0.05)
            for item in batch:
                self._process(item)

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout)

    def utilization(self) -> float:
        """Busy fraction since start (0.0 before any frame)."""
        if self._started_at is None:
            return 0.0
        wall = time.perf_counter() - self._started_at
        return min(1.0, self.busy_s / wall) if wall > 0 else 0.0


class DevicePool:
    """A fixed-size pool of :class:`PoolWorker` threads."""

    def __init__(self, workers: int, scheduler: FifoScheduler,
                 sessions: SessionManager,
                 tracker_factory: Callable[[], object],
                 min_service_s: float = 0.0,
                 device_clock_hz: Optional[float] = None):
        if workers < 1:
            raise ValueError("pool needs at least one worker")
        self.workers: List[PoolWorker] = [
            PoolWorker(i, scheduler, sessions, tracker_factory,
                       min_service_s=min_service_s,
                       device_clock_hz=device_clock_hz)
            for i in range(workers)]
        self._started = False

    def start(self) -> None:
        """Start every worker thread (idempotent)."""
        if self._started:
            return
        for worker in self.workers:
            worker.start()
        self._started = True
        log.info("device pool started with %d workers",
                 len(self.workers))

    def stop(self) -> None:
        """Signal and join every worker."""
        for worker in self.workers:
            worker.stop()
        self._started = False

    def stats(self) -> dict:
        """Per-worker frames/utilization plus pool totals."""
        per_worker = [{
            "worker": w.index,
            "frames": w.frames,
            "busy_s": w.busy_s,
            "utilization": w.utilization(),
        } for w in self.workers]
        return {
            "workers": len(self.workers),
            "frames": sum(w.frames for w in self.workers),
            "per_worker": per_worker,
        }
