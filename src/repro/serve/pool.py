"""The device pool: N workers, each owning one tracker + PIM devices.

Each :class:`PoolWorker` thread holds a complete
:class:`~repro.vo.tracker.EBVOTracker` (frontends, and -- for the PIM
frontend -- per-shape simulated devices).  Per-frame it checks out the
session, swaps ``tracker.state`` to the session's
:class:`~repro.vo.tracker.TrackerState`, tracks the frame, and checks
the state back in.  Compiled kernel programs live in the process-wide
``KERNEL_PROGRAM_CACHE`` (thread-safe since this PR), so every worker
replays the same canonical programs.

A session's *first* frame on a worker resets that worker's devices
(:meth:`~repro.pim.device.PIMDevice.reset`): a reset device is
bit-identical to a fresh one, so device reuse across tenants can never
leak state between streams.

**Simulated device occupancy.**  The simulator computes a frame's
device cost in *cycles* but executes in host time, so wall-clock would
otherwise measure numpy speed, not device contention.  Each worker
therefore *dwells*: after tracking a frame it sleeps until the frame's
wall time reaches the simulated device service time --
``max(min_service_s, device_cycles / device_clock_hz)``.  Dwell sleeps
release the GIL and overlap across workers, which is exactly the
behaviour of N real accelerators driven from one host: pool throughput
scales with workers until the host CPU, not the device, saturates.
With both knobs at zero workers run flat out (pure host speed).

**Fault containment.**  Each worker wraps the frame in a bounded
retry: a failed attempt rolls the tracker state back to an O(1)
restore point, resets the worker's devices, and tries again up to
``max_retries`` times.  A frame that still fails restores the session
from its last checkpointed keyframe before the error reaches the
client.  A per-worker :class:`CircuitBreaker` watches the fault
signals (failed frames, retries, faulty-device evictions): after
``breaker_threshold`` consecutive signals the worker stops pulling
work for ``breaker_cooldown_s``, then half-opens for a probe frame.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.geometry.se3 import SE3
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import get_registry
from repro.obs.slo import SloEngine
from repro.obs.tracer import get_tracer
from repro.serve.scheduler import FifoScheduler, WorkItem
from repro.serve.session import SessionManager
from repro.vo.health import OK

__all__ = ["TrackResult", "CircuitBreaker", "DevicePool"]

log = logging.getLogger(__name__)


@dataclass
class TrackResult:
    """The service's per-frame response."""

    session: str
    generation: int
    frame_index: int          # index within this session's stream
    pose: SE3                 # camera-to-world
    is_keyframe: bool
    num_features: int
    lm_iterations: int
    worker: int
    queue_s: float            # admission-queue wait
    service_s: float          # worker wall time incl. device dwell
    device_cycles: int        # simulated device cycles of this frame
    #: Tracking health after this frame (``OK/DEGRADED/LOST``).
    health: str = OK
    #: Recovery events of this frame (see
    #: :attr:`repro.vo.tracker.FrameResult.events`).
    events: Tuple[str, ...] = ()
    #: In-place worker retries this frame needed before succeeding.
    retries: int = 0


class CircuitBreaker:
    """Per-worker breaker over consecutive device-fault signals.

    States follow the classic pattern: ``closed`` (normal service)
    trips to ``open`` after ``threshold`` consecutive fault signals;
    after ``cooldown_s`` the breaker ``half-open``s and admits one
    probe frame -- a clean probe closes it, a faulty one re-opens it.
    A fault signal is either a frame that failed outright or a frame
    that began by evicting a faulty device.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"
    #: Gauge encoding of each state.
    STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}

    def __init__(self, threshold: int = 3, cooldown_s: float = 0.5,
                 clock: Callable[[], float] = time.monotonic,
                 on_transition: Optional[Callable[[str, str], None]]
                 = None):
        if threshold < 1:
            raise ValueError("threshold must be positive")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._on_transition = on_transition
        self.state = self.CLOSED
        self.consecutive_faults = 0
        self.faults_total = 0
        self.trips_total = 0
        self._opened_at = 0.0

    def _transition(self, state: str) -> None:
        if state == self.state:
            return
        old, self.state = self.state, state
        if state == self.OPEN:
            self.trips_total += 1
            self._opened_at = self._clock()
        if self._on_transition is not None:
            self._on_transition(old, state)

    def allow(self) -> bool:
        """May the worker take work right now?"""
        if self.state == self.OPEN and \
                self._clock() - self._opened_at >= self.cooldown_s:
            self._transition(self.HALF_OPEN)
        return self.state != self.OPEN

    def record_fault(self) -> None:
        """One fault signal (failed frame or faulty-device eviction)."""
        self.faults_total += 1
        self.consecutive_faults += 1
        if self.state == self.HALF_OPEN or \
                self.consecutive_faults >= self.threshold:
            self._transition(self.OPEN)

    def record_clean(self) -> None:
        """One clean frame: closes the streak (and a half-open probe)."""
        self.consecutive_faults = 0
        if self.state == self.HALF_OPEN:
            self._transition(self.CLOSED)

    def stats(self) -> dict:
        return {
            "state": self.state,
            "consecutive_faults": self.consecutive_faults,
            "faults_total": self.faults_total,
            "trips_total": self.trips_total,
        }


class PoolWorker:
    """One worker thread: a tracker, its devices, and the dwell loop."""

    def __init__(self, index: int, scheduler: FifoScheduler,
                 sessions: SessionManager,
                 tracker_factory: Callable[[], object],
                 min_service_s: float = 0.0,
                 device_clock_hz: Optional[float] = None,
                 max_retries: int = 1,
                 retry_backoff_s: float = 0.01,
                 breaker_threshold: int = 3,
                 breaker_cooldown_s: float = 0.25,
                 slo: Optional[SloEngine] = None,
                 flight: Optional[FlightRecorder] = None,
                 incident_dir=None):
        self.index = index
        self.scheduler = scheduler
        self.sessions = sessions
        self.tracker = tracker_factory()
        self.min_service_s = min_service_s
        self.device_clock_hz = device_clock_hz
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.slo = slo
        self.flight = flight
        self.incident_dir = incident_dir
        self.busy_s = 0.0
        self.frames = 0
        self._stop = threading.Event()
        self._started_at: Optional[float] = None
        self._thread = threading.Thread(
            target=self._run, name=f"pim-pool-{index}", daemon=True)
        self.breaker = CircuitBreaker(
            threshold=breaker_threshold,
            cooldown_s=breaker_cooldown_s,
            on_transition=self._on_breaker_transition)
        registry = get_registry()
        self._frames_ctr = registry.counter(
            "serve_worker_frames_total", "Frames tracked per worker")
        self._cycles_ctr = registry.counter(
            "serve_worker_device_cycles_total",
            "Simulated device cycles charged per worker")
        self._util_gauge = registry.gauge(
            "serve_worker_utilization",
            "Busy fraction of each worker since pool start")
        self._queue_hist = registry.histogram(
            "serve_queue_latency_s",
            "Seconds a frame waited in the admission queue",
            bounds=(0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
                    30.0))
        self._evictions_ctr = registry.counter(
            "serve_device_evictions_total",
            "Devices reset between frames because faults were detected")
        self._retries_ctr = registry.counter(
            "serve_retries_total",
            "In-place frame retries after a worker-side exception")
        self._circuit_gauge = registry.gauge(
            "serve_circuit_state",
            "Per-worker circuit breaker state "
            "(0=closed, 1=half-open, 2=open)")
        self._circuit_transitions = registry.counter(
            "serve_circuit_transitions_total",
            "Circuit breaker state transitions per worker")
        self._circuit_gauge.set(
            CircuitBreaker.STATE_CODES[self.breaker.state],
            worker=self.index)

    def _on_breaker_transition(self, old: str, new: str) -> None:
        log.warning("worker %d circuit breaker %s -> %s",
                    self.index, old, new)
        self._circuit_gauge.set(CircuitBreaker.STATE_CODES[new],
                                worker=self.index)
        self._circuit_transitions.inc(worker=self.index, to=new)
        if self.flight is not None:
            self.flight.event("breaker_transition", worker=self.index,
                              old=old, new=new)
            if new == CircuitBreaker.OPEN:
                # An opening breaker is the canonical incident: dump
                # the flight recorder so the lead-up survives the run.
                self.flight.incident("breaker_open",
                                     worker=self.index)
                if self.incident_dir is not None:
                    from pathlib import Path
                    path = Path(self.incident_dir) / (
                        f"incident_breaker_worker{self.index}_"
                        f"{self.breaker.trips_total}.json")
                    try:
                        self.flight.dump(path, reason="breaker_open",
                                         worker=self.index)
                    except OSError:
                        log.exception(
                            "failed to dump incident bundle to %s",
                            path)

    # -- device plumbing -------------------------------------------------

    def _devices(self):
        """Every simulated device owned by this worker's frontends."""
        for frontend in getattr(self.tracker, "_frontends",
                                [self.tracker.frontend]):
            yield from getattr(frontend, "_detect_devices",
                               {}).values()

    def _device_cycles(self) -> int:
        return sum(dev.ledger.cycles for dev in self._devices())

    def _reset_devices(self) -> None:
        for dev in self._devices():
            dev.reset()

    def _evict_faulty_devices(self) -> int:
        """Reset any device reporting injected/suspected faults.

        Runs between frames: a device whose :meth:`fault_state` says
        the array may be corrupted (stored bit flips, or an armed
        fault injector) is returned to power-on state before it can
        serve the next frame, and the eviction is counted per worker
        and reason.  The session's tracker state lives host-side, so
        a between-frame reset is invisible to the stream except that
        the corruption is gone.
        """
        evicted = 0
        for dev in self._devices():
            state_fn = getattr(dev, "fault_state", None)
            if state_fn is None:
                continue
            state = state_fn()
            if not state.get("suspect"):
                continue
            reason = "stored-fault" if state.get("stored_faults") \
                else "fault-injector"
            log.warning(
                "worker %d evicting faulty device (%s: %d stored, "
                "%d read faults)", self.index, reason,
                state.get("stored_faults", 0),
                state.get("read_faults", 0))
            dev.reset()
            evicted += 1
            self._evictions_ctr.inc(worker=self.index, reason=reason)
            if self.flight is not None:
                self.flight.event("device_eviction",
                                  worker=self.index, reason=reason)
        return evicted

    # -- the frame loop --------------------------------------------------

    def _track_with_retry(self, item: WorkItem):
        """Track one frame with bounded in-place retries.

        Before each attempt a :meth:`TrackerState.restore_point` is
        taken; a failed attempt rolls the state back, resets this
        worker's devices (clearing any mid-frame corruption), backs
        off briefly, and tries again -- up to ``max_retries`` extra
        attempts.  Returns ``(frame, retries)``; re-raises the last
        exception once the budget is spent.
        """
        state = self.tracker.state
        gray, depth, timestamp = item.payload
        attempt = 0
        while True:
            point = state.restore_point()
            try:
                return self.tracker.process(gray, depth,
                                            timestamp), attempt
            except Exception as exc:
                if attempt >= self.max_retries:
                    state.rollback(point)
                    raise
                attempt += 1
                self._retries_ctr.inc(worker=self.index)
                log.warning(
                    "worker %d retrying session %s frame %d "
                    "(attempt %d/%d)", self.index, item.session,
                    item.seq, attempt, self.max_retries,
                    exc_info=True)
                if self.flight is not None:
                    self.flight.event(
                        "retry", worker=self.index,
                        session=item.session, seq=item.seq,
                        attempt=attempt, error=type(exc).__name__)
                # The rollback is part of the request's span tree: it
                # runs on the worker thread inside the "track" span,
                # so implicit stacking parents it correctly.
                with get_tracer().span(
                        "rollback", category="serve",
                        attempt=attempt, error=type(exc).__name__):
                    state.rollback(point)
                    # Device state is the usual culprit: return to
                    # power-on before the retry touches it again.
                    self._reset_devices()
                if self.retry_backoff_s > 0:
                    time.sleep(self.retry_backoff_s * attempt)

    def _process(self, item: WorkItem) -> None:
        # The track span joins the request's trace via the carried
        # context; kernel/frame spans opened by the tracker on this
        # thread nest under it through the thread-local stack.  The
        # future completes only after the span is recorded, so a
        # client waking on the result can capture the full tree.
        with get_tracer().span("track", category="serve",
                               parent=item.ctx, session=item.session,
                               seq=item.seq,
                               worker=self.index) as tspan:
            kind, value = self._process_traced(item, tspan)
        if kind == "ok":
            item.future.set_result(value)
        else:
            item.future.set_exception(value)

    def _process_traced(self, item: WorkItem, tspan) -> tuple:
        t0 = time.perf_counter()
        queue_s = max(0.0, item.dequeued_at - item.enqueued_at)
        session = self.sessions.checkout(item.session)
        fault_signal = False
        try:
            if session.frames == 0 or session.force_device_reset:
                # Fresh stream on a reused device -- or a session just
                # imported from another pool: back to power-on state so
                # nothing carries over from the last tenant (or from
                # the source pool's devices).
                session.force_device_reset = False
                self._reset_devices()
            else:
                # Mid-stream health check: a device flagged faulty
                # since the last frame is reset before reuse.
                fault_signal = self._evict_faulty_devices() > 0
            self.tracker.state = session.state
            cycles_before = self._device_cycles()
            frame, retries = self._track_with_retry(item)
            cycles = self._device_cycles() - cycles_before
            fault_signal = fault_signal or retries > 0
            result = TrackResult(
                session=session.sid, generation=session.generation,
                frame_index=len(session.state.results) - 1,
                pose=frame.pose, is_keyframe=frame.is_keyframe,
                num_features=frame.num_features,
                lm_iterations=frame.lm.iterations if frame.lm else 0,
                worker=self.index,
                queue_s=queue_s,
                service_s=0.0, device_cycles=cycles,
                health=frame.health, events=frame.events,
                retries=retries)
        except BaseException as exc:  # noqa: BLE001 -- fault isolation
            # Terminal failure: roll the session back to its last
            # checkpointed keyframe so the *next* frame resumes from
            # known-good state instead of whatever the failed attempt
            # left behind.
            restored = self.sessions.restore_checkpoint(session)
            self.sessions.checkin(session)
            self.scheduler.done(item)
            self.breaker.record_fault()
            host_s = time.perf_counter() - t0
            tspan.set_attr("outcome", "error")
            tspan.set_attr("error", type(exc).__name__)
            if self.slo is not None:
                self.slo.record("error", latency_s=queue_s + host_s,
                                queue_s=queue_s)
            if self.flight is not None:
                self.flight.event(
                    "frame_failed", worker=self.index,
                    session=item.session, seq=item.seq,
                    error=type(exc).__name__,
                    checkpoint_restored=restored)
            log.exception(
                "worker %d failed on session %s frame %d "
                "(checkpoint restored: %s)", self.index,
                item.session, item.seq, restored)
            return "error", exc
        if frame.is_keyframe and frame.health == OK:
            # A healthy keyframe is the resume point of choice: deep
            # snapshot it before anything downstream can corrupt it.
            self.sessions.save_checkpoint(session)
        self.sessions.checkin(session, applied_seq=item.seq)
        host_s = time.perf_counter() - t0
        dwell = self.min_service_s
        if self.device_clock_hz:
            dwell = max(dwell, cycles / self.device_clock_hz)
        if dwell > host_s:
            # Simulated device occupancy: hold the slot (GIL released)
            # until the device would actually be free again.
            time.sleep(dwell - host_s)
        service_s = time.perf_counter() - t0
        result.service_s = service_s
        self.busy_s += service_s
        self.frames += 1
        tspan.set_attr("outcome", "ok")
        tspan.set_attr("retries", result.retries)
        tspan.set_attr("device_cycles", cycles)
        if self.slo is not None:
            self.slo.record("ok", latency_s=queue_s + service_s,
                            queue_s=queue_s)
        if fault_signal:
            # The frame succeeded but needed an eviction or retry:
            # that is still a device-fault signal for the breaker.
            self.breaker.record_fault()
        else:
            self.breaker.record_clean()
        self.scheduler.done(item, service_s=service_s)
        self._frames_ctr.inc(worker=self.index)
        self._cycles_ctr.inc(cycles, worker=self.index)
        self._queue_hist.observe(result.queue_s)
        if self._started_at is not None:
            wall = time.perf_counter() - self._started_at
            if wall > 0:
                self._util_gauge.set(min(1.0, self.busy_s / wall),
                                     worker=self.index)
        return "ok", result

    def _run(self) -> None:
        self._started_at = time.perf_counter()
        while not self._stop.is_set():
            if not self.breaker.allow():
                # Tripped: stop pulling work so the other workers (or
                # the deadline expiry path) absorb the traffic until
                # the cooldown elapses and the breaker half-opens.
                self._stop.wait(min(0.05, self.breaker.cooldown_s))
                continue
            batch = self.scheduler.next_batch(timeout=0.05)
            for item in batch:
                self._process(item)

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Signal and join the worker thread (idempotent, never
        raises: a worker that was never started just records the
        stop flag)."""
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout)

    def utilization(self) -> float:
        """Busy fraction since start (0.0 before any frame)."""
        if self._started_at is None:
            return 0.0
        wall = time.perf_counter() - self._started_at
        return min(1.0, self.busy_s / wall) if wall > 0 else 0.0


class DevicePool:
    """A fixed-size pool of :class:`PoolWorker` threads."""

    def __init__(self, workers: int, scheduler: FifoScheduler,
                 sessions: SessionManager,
                 tracker_factory: Callable[[], object],
                 min_service_s: float = 0.0,
                 device_clock_hz: Optional[float] = None,
                 max_retries: int = 1,
                 retry_backoff_s: float = 0.01,
                 breaker_threshold: int = 3,
                 breaker_cooldown_s: float = 0.25,
                 slo: Optional[SloEngine] = None,
                 flight: Optional[FlightRecorder] = None,
                 incident_dir=None):
        if workers < 1:
            raise ValueError("pool needs at least one worker")
        self.workers: List[PoolWorker] = [
            PoolWorker(i, scheduler, sessions, tracker_factory,
                       min_service_s=min_service_s,
                       device_clock_hz=device_clock_hz,
                       max_retries=max_retries,
                       retry_backoff_s=retry_backoff_s,
                       breaker_threshold=breaker_threshold,
                       breaker_cooldown_s=breaker_cooldown_s,
                       slo=slo, flight=flight,
                       incident_dir=incident_dir)
            for i in range(workers)]
        self._started = False

    def start(self) -> None:
        """Start every worker thread (idempotent, exception-safe).

        If any worker fails to start, the ones already running are
        stopped before the error propagates, so a failed start never
        leaks threads.
        """
        if self._started:
            return
        started: List[PoolWorker] = []
        try:
            for worker in self.workers:
                worker.start()
                started.append(worker)
        except BaseException:
            for worker in started:
                worker.stop()
            raise
        self._started = True
        log.info("device pool started with %d workers",
                 len(self.workers))

    def stop(self) -> None:
        """Signal and join every worker (idempotent, never raises)."""
        for worker in self.workers:
            worker.stop()
        self._started = False

    def stats(self) -> dict:
        """Per-worker frames/utilization/breaker plus pool totals."""
        per_worker = [{
            "worker": w.index,
            "frames": w.frames,
            "busy_s": w.busy_s,
            "utilization": w.utilization(),
            "breaker": w.breaker.stats(),
        } for w in self.workers]
        return {
            "workers": len(self.workers),
            "frames": sum(w.frames for w in self.workers),
            "retries_total": int(
                self.workers[0]._retries_ctr.total()),
            "breakers_open": sum(
                1 for w in self.workers
                if w.breaker.state != CircuitBreaker.CLOSED),
            "per_worker": per_worker,
        }
