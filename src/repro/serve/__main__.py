"""``python -m repro.serve``: load-generate against a local service.

Spins up a :class:`~repro.serve.service.VOService`, replays K
synthetic TUM-profile client streams against it, and writes the
throughput/latency report to ``<out>/serve_report.json``.  With
``--smoke`` it additionally asserts that every frame was tracked and
that every session's trajectory is bit-identical to a solo tracker
run, exiting non-zero on any violation -- the CI serving smoke test.
"""

from __future__ import annotations

import argparse
import json
import logging
from pathlib import Path

from repro.obs import setup_logging
from repro.serve.loadgen import (
    build_workload,
    run_load,
    service_trajectories,
    solo_trajectories,
    trajectories_match,
    write_bench_report,
)
from repro.serve.service import _FRONTENDS, VOService
from repro.vo.config import TrackerConfig

# Run as ``python -m repro.serve`` this module is ``__main__``, which
# would fall outside the ``repro`` logging namespace; name explicitly.
log = logging.getLogger("repro.serve.cli")


def main(argv=None) -> int:
    """Entry point of the serving load generator."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve", description=__doc__)
    parser.add_argument("--frames", type=int, default=20,
                        help="frames per client session")
    parser.add_argument("--sessions", type=int, default=3,
                        help="concurrent client sessions")
    parser.add_argument("--workers", type=int, default=2,
                        help="device-pool workers")
    parser.add_argument("--queue", type=int, default=64,
                        help="admission queue capacity")
    parser.add_argument("--batch", type=int, default=4,
                        help="max frames per micro-batch")
    parser.add_argument("--frontend", choices=sorted(_FRONTENDS),
                        default="pim", help="tracker arithmetic")
    parser.add_argument("--device-detect", action="store_true",
                        help="run edge detection on the simulated "
                             "device (program replay + cycle ledger)")
    parser.add_argument("--min-service-s", type=float, default=0.0,
                        help="simulated device service-time floor per "
                             "frame (seconds)")
    parser.add_argument("--clock-hz", type=float, default=None,
                        help="simulated device clock; dwell = "
                             "cycles / clock-hz")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="image scale relative to QVGA")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--program-store", default=None, metavar="DIR",
                        help="persist recorded PIM programs in DIR; a "
                             "second serve process pointed at the same "
                             "directory warm-starts without recording")
    parser.add_argument("--deadline-s", type=float, default=None,
                        help="per-request queue deadline; expired "
                             "frames are dropped and counted")
    parser.add_argument("--status-port", type=int, default=None,
                        metavar="PORT",
                        help="serve /metrics, /healthz, /slo and "
                             "/flightrecorder on PORT while the load "
                             "runs (0 = ephemeral); the final scrape "
                             "is saved to <out>/metrics.prom")
    parser.add_argument("--out", default="serve_output",
                        help="output directory for the report")
    parser.add_argument("--smoke", action="store_true",
                        help="assert completeness + solo bit-identity")
    parser.add_argument("--verbose", action="store_true",
                        help="debug-level console logging")
    args = parser.parse_args(argv)
    for flag, value in (("--frames", args.frames),
                        ("--sessions", args.sessions),
                        ("--workers", args.workers)):
        if value < 1:
            parser.error(f"{flag} must be >= 1")
    setup_logging(verbose=args.verbose)
    out = Path(args.out)
    out.mkdir(exist_ok=True)

    config = TrackerConfig(pim_device_detect=args.device_detect)
    if args.scale != 1.0:
        import dataclasses
        config = dataclasses.replace(
            config, camera=config.camera.scaled(args.scale))
    log.info("serving %d sessions x %d frames on %d workers "
             "(%s frontend%s)", args.sessions, args.frames,
             args.workers, args.frontend,
             ", device detect" if args.device_detect else "")
    workload = build_workload(sessions=args.sessions,
                              frames=args.frames, scale=args.scale,
                              seed=args.seed)
    with VOService(workers=args.workers, frontend=args.frontend,
                   config=config, max_queue=args.queue,
                   max_batch=args.batch,
                   min_service_s=args.min_service_s,
                   device_clock_hz=args.clock_hz,
                   program_store=args.program_store,
                   incident_dir=out) as service:
        status = None
        if args.status_port is not None:
            from repro.serve.status import StatusServer
            status = StatusServer(service,
                                  port=args.status_port).start()
        try:
            report, clients = run_load(service, workload,
                                       deadline_s=args.deadline_s)
            if service.program_store is not None:
                report["programs"] = service.stats()["programs"]
            if status is not None:
                # Scrape our own /metrics endpoint -- the same bytes a
                # collector would pull -- so the artifact proves the
                # exposition is live and parseable.
                from urllib.request import urlopen
                with urlopen(f"{status.url}/metrics",
                             timeout=10) as resp:
                    prom_path = out / "metrics.prom"
                    prom_path.write_bytes(resp.read())
                    log.info("scraped %s/metrics -> %s", status.url,
                             prom_path)
        finally:
            if status is not None:
                status.stop()

    failures = []
    if args.smoke:
        if report["frames_tracked"] != report["frames_submitted"]:
            failures.append(
                f"tracked {report['frames_tracked']} of "
                f"{report['frames_submitted']} frames")
        served = service_trajectories(
            [r for c in clients for r in c.results])
        solo = solo_trajectories(workload,
                                 _FRONTENDS[args.frontend], config)
        failures.extend(trajectories_match(served, solo))
        report["smoke"] = {"passed": not failures,
                           "failures": failures}
        if failures:
            for failure in failures:
                log.error("smoke failure: %s", failure)
        else:
            log.info("smoke ok: all %d frames tracked, every "
                     "trajectory bit-identical to its solo run",
                     report["frames_tracked"])

    report_path = out / "serve_report.json"
    report_path.write_text(json.dumps(report, indent=2,
                                      default=float) + "\n")
    bench_path = write_bench_report(report, out / "BENCH_serve.json")
    log.info("throughput %.1f frames/s, queue p95 %s s; wrote %s "
             "and %s", report["throughput_fps"],
             report["queue_latency_s"]["p95"], report_path,
             bench_path)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
