"""Stdlib HTTP status endpoint for a running :class:`VOService`.

``python -m repro.serve --status-port 8080`` starts a
:class:`StatusServer` next to the service.  Four read-only endpoints,
no dependencies beyond ``http.server``:

========================  ==============================================
``/metrics``              Prometheus text exposition of the process-wide
                          metrics registry (scrapeable by any collector;
                          see :mod:`repro.obs.promtext`).
``/healthz``              ``200 ok`` / ``503 unhealthy`` from
                          :meth:`VOService.healthy` -- load-balancer
                          probe semantics, body is the JSON health
                          section.  Behind a shard router the body
                          aggregates per-shard liveness and reports
                          ``status: degraded`` (still 200) while any
                          shard is down or respawning in backoff.
``/shards``               Per-shard process status (state, pid,
                          uptime, heartbeat age, restarts, breaker)
                          when the fronted service has a shard plane;
                          404 for a plain ``VOService``.
``/slo``                  The rolling-window SLO snapshot
                          (:meth:`repro.obs.slo.SloEngine.snapshot`).
``/flightrecorder``       The full flight-recorder bundle: recent
                          events plus captured incident span trees.
========================  ==============================================

The server runs on a daemon thread (``ThreadingHTTPServer``), binds
loopback by default, and serves GETs only; anything else is 404/405.
It never mutates the service, so it is safe to leave on in benchmarks
-- a scrape costs one registry snapshot.
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.obs.metrics import get_registry
from repro.obs.promtext import render_prometheus_text

__all__ = ["StatusServer"]

log = logging.getLogger(__name__)


class _Handler(BaseHTTPRequestHandler):
    """Routes GETs to the owning :class:`StatusServer`'s service."""

    #: Set by StatusServer when the handler class is specialised.
    status: "StatusServer"

    # Quiet: route access logs through our logger at DEBUG, not stderr.
    def log_message(self, fmt, *args):  # noqa: D102
        log.debug("%s - %s", self.address_string(), fmt % args)

    def _reply(self, code: int, body: str,
               content_type: str = "application/json") -> None:
        payload = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type",
                         f"{content_type}; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self):  # noqa: N802 -- http.server API
        service = self.status.service
        try:
            if self.path == "/metrics":
                self._reply(200,
                            render_prometheus_text(get_registry()),
                            content_type="text/plain; version=0.0.4")
            elif self.path == "/healthz":
                stats = service.stats()
                health = dict(stats["health"])
                healthy = bool(health["healthy"])
                # A shard-aware service (the ShardRouter front door)
                # aggregates per-shard liveness: still-200 "degraded"
                # while any shard is down or respawning in backoff,
                # because surviving shards are serving.
                shards_status = getattr(service, "shards_status",
                                        None)
                degraded = False
                if shards_status is not None:
                    shards = shards_status()
                    degraded = bool(shards.get("degraded"))
                    health["shards"] = {
                        row["shard"]: row["state"]
                        for row in shards.get("shards", [])}
                health["status"] = (
                    "ok" if healthy and not degraded
                    else "degraded" if healthy else "unhealthy")
                self._reply(200 if healthy else 503,
                            json.dumps(health, default=str) + "\n")
            elif self.path == "/shards":
                shards_status = getattr(service, "shards_status",
                                        None)
                if shards_status is None:
                    self._reply(404, json.dumps(
                        {"error": "service has no shard plane"})
                        + "\n")
                else:
                    self._reply(200, json.dumps(shards_status(),
                                                default=str) + "\n")
            elif self.path == "/slo":
                slo = getattr(service, "slo", None)
                if slo is None:
                    self._reply(404, json.dumps(
                        {"error": "service has no SLO engine"})
                        + "\n")
                else:
                    self._reply(200, json.dumps(slo.snapshot(),
                                                default=str) + "\n")
            elif self.path == "/flightrecorder":
                self._reply(200, json.dumps(service.flight.bundle(),
                                            default=str) + "\n")
            else:
                self._reply(404, json.dumps(
                    {"error": "not found", "endpoints": [
                        "/metrics", "/healthz", "/shards", "/slo",
                        "/flightrecorder"]}) + "\n")
        except Exception as exc:  # noqa: BLE001 -- keep serving
            log.exception("status endpoint %s failed", self.path)
            try:
                self._reply(500, json.dumps(
                    {"error": type(exc).__name__}) + "\n")
            except OSError:
                pass


class StatusServer:
    """A daemon-thread HTTP server exposing one service's status.

    Usage::

        status = StatusServer(service, port=8080).start()
        ...
        status.stop()

    ``port=0`` binds an ephemeral port; read it back from
    :attr:`port` after :meth:`start` (tests and the CI smoke job use
    this to avoid port collisions).
    """

    def __init__(self, service, port: int = 0,
                 host: str = "127.0.0.1"):
        self.service = service
        self.host = host
        self._requested_port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> Optional[int]:
        """The bound port (None before :meth:`start`)."""
        if self._httpd is None:
            return None
        return self._httpd.server_address[1]

    @property
    def url(self) -> Optional[str]:
        """Base URL of the running server (None before start)."""
        if self._httpd is None:
            return None
        return f"http://{self.host}:{self.port}"

    def start(self) -> "StatusServer":
        """Bind and start serving on a daemon thread (idempotent)."""
        if self._httpd is not None:
            return self
        handler = type("_BoundHandler", (_Handler,),
                       {"status": self})
        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="serve-status", daemon=True)
        self._thread.start()
        log.info("status server listening on %s", self.url)
        return self

    def stop(self) -> None:
        """Shut down and join the server thread (idempotent)."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "StatusServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
