"""Admission queue and dispatch policy of the serving layer.

One bounded FIFO feeds every pool worker.  Two invariants shape the
dispatch loop:

* **Per-session ordering** -- frames of one session execute strictly in
  submission order and never concurrently, so tracker state evolves
  exactly as it would in a solo run.  The queue scan keeps a
  ``blocked`` set: once a session is skipped (in flight, or an earlier
  frame of it was skipped), every later frame of that session is
  skipped too.
* **Explicit backpressure** -- a full queue rejects at admission with
  :class:`Backpressure` carrying a ``retry_after_s`` hint derived from
  the *observed queue drain rate* (an EMA over the intervals between
  completions across the whole pool), instead of blocking the client
  or growing without bound.  Until the first completion is observed
  the hint falls back to a service-time estimate.

Two failure-containment features ride on the queue:

* **Per-request deadlines** -- an item whose ``deadline`` (scheduler
  clock) passes while queued is expired instead of dispatched: its
  future fails with :class:`DeadlineExceeded` and the expiry is
  counted, so a stalled pool sheds load instead of serving arbitrarily
  stale frames.
* **Fail-pending** -- :meth:`FifoScheduler.fail_pending` drains every
  queued item into a caller-supplied exception; the service uses it on
  close so no client blocks forever on a future that will never run.

Workers pull with :meth:`FifoScheduler.next_batch`, which may
*micro-batch*: after fixing the head-of-line item, later eligible items
from other sessions that share the same ``batch_key`` (the edge-detect
program key -- same shape, precision, device geometry) join the batch
up to ``max_batch``, so one worker replays the same compiled program
back-to-back without re-dispatching.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.obs.context import NULL_HANDLE, TraceContext
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import get_registry
from repro.obs.slo import SloEngine

__all__ = ["Backpressure", "DeadlineExceeded", "WorkItem",
           "FifoScheduler"]


class Backpressure(RuntimeError):
    """Admission rejected: the queue is full.

    Attributes:
        depth: Queue depth at rejection time.
        retry_after_s: Suggested client wait before resubmitting
            (expected time for the pool to drain one slot, from the
            observed drain rate).
    """

    def __init__(self, depth: int, retry_after_s: float):
        super().__init__(
            f"admission queue full ({depth} items); "
            f"retry after {retry_after_s:.3f}s")
        self.depth = depth
        self.retry_after_s = retry_after_s


class DeadlineExceeded(RuntimeError):
    """The frame's deadline passed before a worker could take it."""

    def __init__(self, session: str, seq: int, overdue_s: float):
        super().__init__(
            f"frame {seq} of session {session!r} expired in queue "
            f"({overdue_s:.3f}s past its deadline)")
        self.session = session
        self.seq = seq
        self.overdue_s = overdue_s


@dataclass
class WorkItem:
    """One queued frame with its result future.

    ``payload`` is opaque to the scheduler (the service puts the frame
    arrays and timestamp there); ``batch_key`` is ``None`` when the
    frame must not be micro-batched.
    """

    session: str
    seq: int
    batch_key: Optional[Tuple]
    payload: object
    future: Future = field(default_factory=Future)
    enqueued_at: float = 0.0
    dequeued_at: float = 0.0
    #: Scheduler-clock time after which the item must not be
    #: dispatched (``None`` = no deadline).
    deadline: Optional[float] = None
    #: Trace context of the request's root span, carried to whichever
    #: worker thread tracks the frame (``None`` = untraced).
    ctx: Optional[TraceContext] = None
    #: Detached queue span: begun at admission on the client thread,
    #: finished by the scheduler at dispatch / expiry / fail-pending.
    queue_handle: object = NULL_HANDLE


class FifoScheduler:
    """Bounded FIFO with per-session ordering and micro-batching."""

    def __init__(self, max_queue: int = 64, max_batch: int = 1,
                 workers: int = 1,
                 clock: Callable[[], float] = time.monotonic,
                 slo: Optional[SloEngine] = None,
                 flight: Optional[FlightRecorder] = None):
        if max_queue < 1:
            raise ValueError("max_queue must be positive")
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        self.max_queue = max_queue
        self.max_batch = max_batch
        self.workers = max(1, workers)
        self._clock = clock
        # Optional serve-plane observability: the scheduler owns the
        # queue-side outcomes (rejections, deadline misses) while the
        # pool workers record completions.
        self.slo = slo
        self.flight = flight
        self._queue: Deque[WorkItem] = deque()
        self._inflight: Dict[str, int] = {}
        self._cond = threading.Condition()
        self._closed = False
        #: EMA of per-frame service time (kept as the cold-start
        #: fallback for the retry hint and for stats).
        self._service_ema_s = 0.05
        #: EMA of the interval between successive completions across
        #: the whole pool -- the observed time for the queue to drain
        #: one slot.  ``None`` until two completions are seen.
        self._drain_ema_s: Optional[float] = None
        self._last_done_at: Optional[float] = None
        registry = get_registry()
        self._rejected = registry.counter(
            "serve_admission_rejected_total",
            "Frames rejected at admission because the queue was full")
        self._depth_gauge = registry.gauge(
            "serve_queue_depth", "Frames waiting in the admission queue")
        self._batch_hist = registry.histogram(
            "serve_batch_size", "Frames dispatched per worker pull")
        self._batched = registry.counter(
            "serve_microbatched_frames_total",
            "Frames that rode in a batch behind another session's frame")
        self._expired = registry.counter(
            "serve_deadline_expired_total",
            "Frames expired in queue past their deadline")

    # -- client side ----------------------------------------------------

    def _retry_after_s(self, depth: int) -> float:
        """Expected wait for one queue slot to free (caller holds lock).

        Derived from the observed drain rate (EMA of the interval
        between completions across the pool); before any completion
        has been observed, falls back to the service-time estimate
        divided across the workers.
        """
        if self._drain_ema_s is not None:
            return max(self._drain_ema_s, 1e-4)
        return self._service_ema_s * max(1.0, depth / self.workers)

    def submit(self, item: WorkItem) -> None:
        """Enqueue one frame or raise :class:`Backpressure`."""
        with self._cond:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            depth = len(self._queue)
            if depth >= self.max_queue:
                self._rejected.inc()
                if self.slo is not None:
                    self.slo.record("rejected")
                if self.flight is not None:
                    self.flight.event("rejected", session=item.session,
                                      seq=item.seq, depth=depth)
                raise Backpressure(depth, self._retry_after_s(depth))
            item.enqueued_at = self._clock()
            self._queue.append(item)
            self._depth_gauge.set(len(self._queue))
            self._cond.notify()
        if self.flight is not None:
            self.flight.event("admitted", session=item.session,
                              seq=item.seq, depth=depth + 1)

    # -- worker side ----------------------------------------------------

    def _expire_overdue(self, now: float) -> None:
        """Fail queued items past their deadline (caller holds lock).

        An expired item never executes, so removing it cannot break
        per-session ordering: later frames of the session simply see
        a gap, exactly as if the client had dropped the frame.
        """
        overdue = [item for item in self._queue
                   if item.deadline is not None and now > item.deadline]
        for item in overdue:
            self._queue.remove(item)
            self._expired.inc()
            waited = max(0.0, now - item.enqueued_at)
            item.queue_handle.finish(outcome="deadline_miss",
                                     queue_s=waited)
            if self.slo is not None:
                self.slo.record("deadline_miss", latency_s=waited,
                                queue_s=waited)
            if self.flight is not None:
                self.flight.event("deadline_miss",
                                  session=item.session, seq=item.seq,
                                  overdue_s=now - item.deadline)
            item.future.set_exception(DeadlineExceeded(
                item.session, item.seq, now - item.deadline))
        if overdue:
            self._depth_gauge.set(len(self._queue))

    def _scan(self) -> List[WorkItem]:
        """Pick the next batch (caller holds the lock); [] if none."""
        batch: List[WorkItem] = []
        blocked = set(self._inflight)
        key: Optional[Tuple] = None
        for item in self._queue:
            if item.session in blocked:
                continue
            if not batch:
                batch.append(item)
                key = item.batch_key
                if key is None or self.max_batch == 1:
                    break
                blocked.add(item.session)
                continue
            if item.batch_key == key:
                batch.append(item)
                if len(batch) >= self.max_batch:
                    break
            # Whether it joined or not, later frames of this session
            # must wait for it, so the session is blocked either way.
            blocked.add(item.session)
        return batch

    def next_batch(self, timeout: Optional[float] = None
                   ) -> List[WorkItem]:
        """Dequeue the next batch, blocking up to ``timeout`` seconds.

        Returns ``[]`` when the timeout elapses or the scheduler is
        closed with an empty queue -- worker loops treat both as "poll
        again / shut down".  Every returned item's session is marked
        in flight until :meth:`done` is called for it.
        """
        deadline = None if timeout is None else self._clock() + timeout
        with self._cond:
            while True:
                self._expire_overdue(self._clock())
                batch = self._scan()
                if batch:
                    break
                if self._closed and not self._queue:
                    return []
                remaining = None if deadline is None else \
                    deadline - self._clock()
                if remaining is not None and remaining <= 0:
                    return []
                self._cond.wait(remaining)
            now = self._clock()
            for item in batch:
                self._queue.remove(item)
                item.dequeued_at = now
                item.queue_handle.finish(
                    outcome="dispatched",
                    queue_s=max(0.0, now - item.enqueued_at))
                self._inflight[item.session] = \
                    self._inflight.get(item.session, 0) + 1
            self._depth_gauge.set(len(self._queue))
            self._batch_hist.observe(len(batch))
            if len(batch) > 1:
                self._batched.inc(len(batch) - 1)
            return batch

    def done(self, item: WorkItem,
             service_s: Optional[float] = None) -> None:
        """Release the item's session and fold in its service time."""
        with self._cond:
            count = self._inflight.get(item.session, 0) - 1
            if count > 0:
                self._inflight[item.session] = count
            else:
                self._inflight.pop(item.session, None)
            if service_s is not None and service_s >= 0:
                self._service_ema_s += 0.2 * (service_s -
                                              self._service_ema_s)
            now = self._clock()
            if self._last_done_at is not None:
                interval = max(0.0, now - self._last_done_at)
                if self._drain_ema_s is None:
                    self._drain_ema_s = interval
                else:
                    self._drain_ema_s += 0.2 * (interval -
                                                self._drain_ema_s)
            self._last_done_at = now
            self._cond.notify_all()

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Refuse new work; queued items still drain."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def fail_pending(self, exc: BaseException) -> int:
        """Fail every still-queued item with ``exc``; returns the count.

        The service calls this after stopping the pool so a client
        blocked on a future whose frame will never run gets an error
        instead of hanging forever.
        """
        with self._cond:
            pending = list(self._queue)
            self._queue.clear()
            for item in pending:
                item.queue_handle.finish(outcome="failed",
                                         error=type(exc).__name__)
                item.future.set_exception(exc)
            self._depth_gauge.set(0)
            self._cond.notify_all()
            return len(pending)

    # -- migration / snapshot support ------------------------------------

    def extract_session(self, sid: str) -> List[WorkItem]:
        """Remove and return every queued item of one session, in order.

        The migration path: the extracted items (futures and all) are
        re-submitted to the target service's scheduler, so the original
        clients' futures complete with results computed on the target
        pool.  Items already dispatched are *not* touched -- callers
        wait for :meth:`session_inflight` to reach zero and extract
        again, because a frame completing mid-extraction may already
        have unblocked a later frame of the same session.
        """
        with self._cond:
            items = [item for item in self._queue
                     if item.session == sid]
            for item in items:
                self._queue.remove(item)
            if items:
                self._depth_gauge.set(len(self._queue))
            return items

    def session_inflight(self, sid: str) -> int:
        """Frames of ``sid`` currently dispatched to workers."""
        with self._cond:
            return self._inflight.get(sid, 0)

    def queued_items(self) -> List[WorkItem]:
        """Point-in-time copy of the queue contents (for snapshots)."""
        with self._cond:
            return list(self._queue)

    def depth(self) -> int:
        """Current queue depth."""
        with self._cond:
            return len(self._queue)

    def stats(self) -> dict:
        """Point-in-time queue statistics."""
        with self._cond:
            drain = self._drain_ema_s
            return {
                "depth": len(self._queue),
                "max_queue": self.max_queue,
                "max_batch": self.max_batch,
                "inflight_sessions": len(self._inflight),
                "service_ema_s": self._service_ema_s,
                "drain_ema_s": drain,
                "drain_rate_per_s": (1.0 / drain) if drain else None,
                "retry_after_s": self._retry_after_s(
                    len(self._queue)),
                "expired_total": int(self._expired.total()),
                "rejected_total": int(self._rejected.total()),
                "closed": self._closed,
            }
