"""Multi-session VO serving on a shared pool of simulated PIM devices.

The ROADMAP's north star is a service, not a script: many independent
clients streaming RGB-D frames at a bounded fleet of accelerators.
This package is that serving layer for the simulated stack:

* :mod:`repro.serve.session` -- per-client
  :class:`~repro.vo.tracker.TrackerState` keyed by session id, with
  idle/capacity eviction and generation numbers
  (:class:`SessionManager`).
* :mod:`repro.serve.scheduler` -- a bounded FIFO admission queue with
  per-session ordering, explicit :class:`Backpressure` rejection, and
  cross-session micro-batching of frames that share an edge-detect
  program key (:class:`FifoScheduler`).
* :mod:`repro.serve.pool` -- N worker threads, each owning one
  tracker + PIM devices, dwelling for the simulated device service
  time so wall-clock reflects device occupancy, not host speed
  (:class:`DevicePool`).
* :mod:`repro.serve.service` -- the synchronous facade
  (:class:`VOService`): ``submit(session_id, gray, depth)`` returns a
  :class:`TrackResult`.
* :mod:`repro.serve.loadgen` -- a K-client closed-loop load generator
  with retry-on-backpressure and a JSON throughput/latency report
  (:func:`run_load`), also behind ``python -m repro.serve``; the
  stamped serving benchmark lands in ``BENCH_serve.json``
  (:func:`write_bench_report`).
* :mod:`repro.serve.status` -- a stdlib HTTP status endpoint
  (:class:`StatusServer`): ``/metrics`` (Prometheus text),
  ``/healthz``, ``/slo``, ``/flightrecorder``.

Per-session results are bit-identical to solo tracker runs; see
``docs/serving.md`` for the architecture and the backpressure
contract.

Fault containment rides on the same pieces: per-request deadlines and
:class:`DeadlineExceeded`, bounded worker retries with checkpoint
restore, and a per-worker :class:`CircuitBreaker`; see
``docs/resilience.md``.
"""

from repro.serve.loadgen import (
    ClientStats,
    build_workload,
    run_load,
    run_open_loop_load,
    service_trajectories,
    solo_trajectories,
    trajectories_match,
    write_bench_report,
)
from repro.serve.status import StatusServer
from repro.serve.pool import CircuitBreaker, DevicePool, TrackResult
from repro.serve.scheduler import (
    Backpressure,
    DeadlineExceeded,
    FifoScheduler,
    WorkItem,
)
from repro.serve.service import VOService
from repro.serve.session import Session, SessionManager

__all__ = [
    "Backpressure",
    "CircuitBreaker",
    "ClientStats",
    "DeadlineExceeded",
    "DevicePool",
    "FifoScheduler",
    "Session",
    "SessionManager",
    "StatusServer",
    "TrackResult",
    "VOService",
    "WorkItem",
    "build_workload",
    "run_load",
    "run_open_loop_load",
    "service_trajectories",
    "solo_trajectories",
    "trajectories_match",
    "write_bench_report",
]
