"""Per-client tracker state with idle eviction.

A *session* is one client's tracking stream: its
:class:`~repro.vo.tracker.TrackerState` (keyframe, last relative pose,
per-frame results) plus bookkeeping.  The :class:`SessionManager` keys
sessions by a caller-chosen string id and enforces two bounds:

* **Idle eviction** -- a session untouched for ``idle_timeout_s`` is
  dropped on the next sweep.  A client that resubmits after eviction
  gets a *fresh* :class:`~repro.vo.tracker.TrackerState` under a new
  generation number, so a stale keyframe or pose can never leak into
  the new stream (the first frame re-anchors as a keyframe at
  identity, exactly like a cold start).
* **Capacity eviction** -- at ``max_sessions`` the least recently
  active idle session makes room; if every session is busy the create
  fails rather than silently dropping someone's in-flight state.

Sessions marked busy (checked out by a pool worker) are never evicted.
Generation counters are persistent per id: they only ever grow, so a
``(sid, generation)`` pair uniquely names one incarnation of a stream
across evictions.

Sessions also carry a **checkpoint**: a deep snapshot of the tracker
state taken at the last good keyframe (:meth:`SessionManager.save_checkpoint`).
When a worker fails a frame terminally -- device fault storm, tracker
exception past the retry budget -- it restores the session from that
checkpoint (:meth:`SessionManager.restore_checkpoint`), so the stream
resumes from the last good keyframe instead of resetting to a cold
start.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.obs.metrics import get_registry
from repro.vo.health import sync_health_gauge
from repro.vo.tracker import TrackerState

__all__ = ["Session", "SessionManager"]


@dataclass
class Session:
    """One client stream's state and bookkeeping."""

    sid: str
    generation: int
    state: TrackerState = field(default_factory=TrackerState)
    created_at: float = 0.0
    last_active: float = 0.0
    frames: int = 0
    #: Highest caller-assigned sequence number of a frame that was
    #: *successfully applied* to this session's state.  ``frames``
    #: counts every processed frame (including terminal failures whose
    #: state was rolled back), so it cannot serve as a replay
    #: watermark; this can -- the shard plane exports it as the
    #: checkpoint watermark so failover replays exactly the frames the
    #: checkpoint does not cover.
    applied_seq: int = 0
    busy: bool = False
    #: Deep snapshot of ``state`` at the last good keyframe (``None``
    #: until the first checkpoint).  A worker that fails a frame
    #: terminally restores from here, so the stream resumes from the
    #: last good keyframe instead of resetting to a cold start.
    checkpointed: Optional[TrackerState] = None
    #: Stream index of the frame the checkpoint was taken after.
    checkpoint_frame: int = -1
    #: Set on imported (migrated/restored) sessions: the next worker
    #: to serve this session resets its devices first, exactly like a
    #: fresh stream, so nothing carries over from the source pool.
    force_device_reset: bool = False


class SessionManager:
    """Thread-safe registry of per-client tracker states."""

    def __init__(self, idle_timeout_s: float = 60.0,
                 max_sessions: int = 64,
                 clock: Callable[[], float] = time.monotonic):
        if max_sessions < 1:
            raise ValueError("max_sessions must be positive")
        self.idle_timeout_s = idle_timeout_s
        self.max_sessions = max_sessions
        self._clock = clock
        self._lock = threading.RLock()
        self._sessions: Dict[str, Session] = {}
        #: Next generation to assign per sid; persists across eviction.
        self._generations: Dict[str, int] = {}
        registry = get_registry()
        self._evicted = registry.counter(
            "serve_sessions_evicted_total",
            "Sessions evicted, by reason (idle or capacity)")
        self._active_gauge = registry.gauge(
            "serve_sessions_active", "Sessions currently resident")
        self._checkpoints = registry.counter(
            "serve_session_checkpoints_total",
            "Session tracker-state checkpoints taken")
        self._restores = registry.counter(
            "serve_session_restores_total",
            "Sessions restored from their last checkpoint")

    # -- internal helpers (lock held) -----------------------------------

    def _evict(self, sid: str, reason: str) -> None:
        del self._sessions[sid]
        self._evicted.inc(reason=reason)
        self._active_gauge.set(len(self._sessions))

    def _sweep_idle(self, now: float) -> None:
        if self.idle_timeout_s is None:
            return
        stale = [s.sid for s in self._sessions.values()
                 if not s.busy and
                 now - s.last_active > self.idle_timeout_s]
        for sid in stale:
            self._evict(sid, "idle")

    def _make_room(self) -> None:
        if len(self._sessions) < self.max_sessions:
            return
        idle = [s for s in self._sessions.values() if not s.busy]
        if not idle:
            raise RuntimeError(
                f"all {self.max_sessions} sessions are busy; "
                f"cannot admit a new one")
        victim = min(idle, key=lambda s: s.last_active)
        self._evict(victim.sid, "capacity")

    def _get_or_create(self, sid: str, now: float) -> Session:
        session = self._sessions.get(sid)
        if session is None:
            self._sweep_idle(now)
            self._make_room()
            generation = self._generations.get(sid, 0)
            self._generations[sid] = generation + 1
            session = Session(sid=sid, generation=generation,
                              created_at=now, last_active=now)
            self._sessions[sid] = session
            self._active_gauge.set(len(self._sessions))
        return session

    # -- public surface --------------------------------------------------

    def touch(self, sid: str) -> Session:
        """Get or (re)create the session, refreshing its activity time.

        Also sweeps idle sessions, so eviction needs no background
        thread -- any admission traffic drives it.
        """
        with self._lock:
            now = self._clock()
            self._sweep_idle(now)
            session = self._get_or_create(sid, now)
            session.last_active = now
            return session

    def checkout(self, sid: str) -> Session:
        """Claim the session for processing (workers call this).

        Marks it busy so eviction cannot race the worker; creates a
        fresh session if it was evicted while the frame sat in the
        queue.
        """
        with self._lock:
            session = self._get_or_create(sid, self._clock())
            session.busy = True
            return session

    def checkin(self, session: Session,
                applied_seq: Optional[int] = None) -> None:
        """Return a checked-out session after processing one frame.

        ``applied_seq`` is the frame's sequence number when it was
        applied successfully; failed frames (state rolled back) pass
        ``None`` so the applied watermark never covers them.
        """
        with self._lock:
            session.busy = False
            session.frames += 1
            if applied_seq is not None:
                session.applied_seq = max(session.applied_seq,
                                          int(applied_seq))
            session.last_active = self._clock()

    def save_checkpoint(self, session: Session) -> None:
        """Snapshot the session's tracker state (workers call this
        after a frame that anchored a keyframe while healthy)."""
        with self._lock:
            session.checkpointed = session.state.checkpoint()
            session.checkpoint_frame = \
                len(session.state.results) - 1
            self._checkpoints.inc()

    def restore_checkpoint(self, session: Session) -> bool:
        """Roll the session back to its last checkpoint.

        Returns False (and leaves the state untouched) when no
        checkpoint was ever taken.  The checkpoint itself survives,
        so repeated failures keep restoring the same good state.
        """
        with self._lock:
            if session.checkpointed is None:
                return False
            session.state.restore(session.checkpointed)
            # The restore rewinds the *observable* health state too:
            # without this, the vo_tracking_state gauge keeps showing
            # the pre-restore health (e.g. DEGRADED) even though the
            # restored state is healthy again.
            sync_health_gauge(session.state.health)
            self._restores.inc()
            return True

    # -- export / import (migration and whole-service snapshots) --------

    def export_session(self, sid: str) -> dict:
        """Detached record of one resident session.

        Everything another :class:`SessionManager` needs to resume the
        stream bit-identically: the tracker state and checkpoint (deep
        copies -- the record never aliases live state), the stream
        counters, and the generation watermark (so the importing
        manager can never reuse a generation this id already had).
        Wall-clock bookkeeping (``created_at``/``last_active``) is
        deliberately excluded: it is meaningless across processes and
        would make equal states hash unequal.

        Raises ``KeyError`` for an unknown sid and ``RuntimeError``
        while the session is checked out by a worker -- quiesce first.
        """
        with self._lock:
            session = self._sessions.get(sid)
            if session is None:
                raise KeyError(f"unknown session {sid!r}")
            if session.busy:
                raise RuntimeError(
                    f"session {sid!r} is checked out by a worker; "
                    f"quiesce before exporting")
            return {
                "sid": session.sid,
                "generation": session.generation,
                "frames": session.frames,
                "applied_seq": session.applied_seq,
                "state": session.state.checkpoint(),
                "checkpointed": (None if session.checkpointed is None
                                 else session.checkpointed.checkpoint()),
                "checkpoint_frame": session.checkpoint_frame,
                "next_generation": self._generations.get(
                    sid, session.generation + 1),
            }

    def import_session(self, record: dict,
                       force_device_reset: bool = True) -> Session:
        """Admit an exported session record under its original identity.

        The session resumes with its exported generation (a migrated
        stream is the *same* incarnation, not a new one) while the
        generation watermark is raised to the record's, so a later
        evict/recreate cycle still gets a fresh generation.  The
        record's states are deep-copied in, so importing the same
        record twice (e.g. into a control and a target pool) yields
        independent sessions.
        """
        with self._lock:
            sid = record["sid"]
            if sid in self._sessions:
                raise ValueError(f"session {sid!r} is already resident")
            now = self._clock()
            self._sweep_idle(now)
            self._make_room()
            state = TrackerState().restore(record["state"])
            checkpointed = record["checkpointed"]
            if checkpointed is not None:
                checkpointed = TrackerState().restore(checkpointed)
            session = Session(
                sid=sid, generation=record["generation"], state=state,
                created_at=now, last_active=now,
                frames=record["frames"],
                # Older records predate the applied watermark; frames
                # is the best available stand-in for them.
                applied_seq=int(record.get("applied_seq",
                                           record["frames"])),
                checkpointed=checkpointed,
                checkpoint_frame=record["checkpoint_frame"],
                force_device_reset=force_device_reset)
            self._sessions[sid] = session
            self._generations[sid] = max(
                self._generations.get(sid, 0),
                record["next_generation"])
            self._active_gauge.set(len(self._sessions))
            sync_health_gauge(state.health)
            return session

    def remove(self, sid: str, reason: str = "migrated") -> bool:
        """Drop a resident idle session (the source side of a
        migration); returns False when it is absent or busy."""
        with self._lock:
            session = self._sessions.get(sid)
            if session is None or session.busy:
                return False
            self._evict(sid, reason)
            return True

    def sids(self) -> list:
        """Resident session ids (stable snapshot, sorted)."""
        with self._lock:
            return sorted(self._sessions)

    def generation_watermarks(self) -> Dict[str, int]:
        """Copy of the per-id generation watermark table."""
        with self._lock:
            return dict(self._generations)

    def restore_generation_watermarks(
            self, watermarks: Dict[str, int]) -> None:
        """Raise the watermark table to a snapshot's (never lowers)."""
        with self._lock:
            for sid, gen in watermarks.items():
                self._generations[sid] = max(
                    self._generations.get(sid, 0), int(gen))

    def get(self, sid: str) -> Optional[Session]:
        """Look up a resident session without touching it."""
        with self._lock:
            return self._sessions.get(sid)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def stats(self) -> dict:
        """Point-in-time session statistics."""
        with self._lock:
            return {
                "active": len(self._sessions),
                "max_sessions": self.max_sessions,
                "idle_timeout_s": self.idle_timeout_s,
                "busy": sum(1 for s in self._sessions.values()
                            if s.busy),
                "evicted_total": int(self._evicted.total()),
                "checkpoints_total": int(self._checkpoints.total()),
                "restores_total": int(self._restores.total()),
            }
