"""The synchronous serving facade: ``VOService.submit(...)``.

``VOService`` wires the three serving components together -- a
:class:`~repro.serve.session.SessionManager` for per-client state, a
:class:`~repro.serve.scheduler.FifoScheduler` for admission and
dispatch, and a :class:`~repro.serve.pool.DevicePool` of tracker
workers -- behind one blocking call::

    with VOService(workers=4, frontend="pim") as svc:
        result = svc.submit("client-7", gray, depth)

``submit`` raises :class:`~repro.serve.scheduler.Backpressure` when
the admission queue is full; the exception carries a ``retry_after_s``
hint and the client owns the retry (see
:mod:`repro.serve.loadgen` for a retrying client).  A per-request
deadline (``deadline_s``) bounds how long a frame may sit in the queue
before it fails with
:class:`~repro.serve.scheduler.DeadlineExceeded`.

Frames submitted under one session id execute strictly in submission
order against that session's own tracker state, so a session's
trajectory is bit-identical to running its frames through a solo
:class:`~repro.vo.tracker.EBVOTracker` -- regardless of how many other
sessions interleave, which worker serves each frame, or how frames are
micro-batched.

``close`` is idempotent and exception-safe: it always joins the
workers and then fails any still-queued futures, so no client blocks
forever on a frame that will never run.  :meth:`VOService.stats`
doubles as the health check -- its ``health`` section summarises
circuit-breaker states, queue saturation, and checkpoint restores,
and :meth:`VOService.healthy` reduces it to one bool.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import List, Optional, Tuple

import numpy as np

from repro.obs.flight import FlightRecorder
from repro.obs.metrics import get_registry
from repro.obs.slo import SloEngine, SloTargets
from repro.obs.tracer import get_tracer
from repro.serve.pool import DevicePool, TrackResult
from repro.serve.scheduler import (
    Backpressure,
    DeadlineExceeded,
    FifoScheduler,
    WorkItem,
)
from repro.serve.session import SessionManager
from repro.vo.config import TrackerConfig
from repro.vo.frontend import FloatFrontend, PIMFrontend
from repro.vo.tracker import EBVOTracker

__all__ = ["VOService"]

_FRONTENDS = {"float": FloatFrontend, "pim": PIMFrontend}


class VOService:
    """Multi-session VO serving: sessions + scheduler + device pool."""

    def __init__(self, workers: int = 2, frontend: str = "pim",
                 config: Optional[TrackerConfig] = None,
                 device_detect: bool = False,
                 max_queue: int = 64, max_batch: int = 4,
                 idle_timeout_s: float = 60.0, max_sessions: int = 64,
                 min_service_s: float = 0.0,
                 device_clock_hz: Optional[float] = None,
                 max_retries: int = 1,
                 breaker_threshold: int = 3,
                 breaker_cooldown_s: float = 0.25,
                 program_store=None,
                 slo_window_s: float = 60.0,
                 slo_targets: Optional[SloTargets] = None,
                 flight: Optional[FlightRecorder] = None,
                 incident_dir=None,
                 capture=None):
        if frontend not in _FRONTENDS:
            raise ValueError(
                f"unknown frontend {frontend!r}; choose from "
                f"{sorted(_FRONTENDS)}")
        # A persistent program store (a ProgramStore instance or a
        # directory path) layers under the process-wide kernel program
        # cache: every worker warm-starts from programs recorded by
        # any earlier process sharing the directory.
        self.program_store = None
        if program_store is not None:
            from repro.kernels.common import KERNEL_PROGRAM_CACHE
            from repro.pim.store import ProgramStore
            if not isinstance(program_store, ProgramStore):
                program_store = ProgramStore(program_store)
            self.program_store = program_store
            KERNEL_PROGRAM_CACHE.attach_store(program_store)
        if config is None:
            config = TrackerConfig(pim_device_detect=device_detect)
        self.config = config
        self.frontend = frontend
        frontend_cls = _FRONTENDS[frontend]
        self.sessions = SessionManager(idle_timeout_s=idle_timeout_s,
                                       max_sessions=max_sessions)
        # One SLO window and one flight recorder per service: the
        # scheduler feeds in queue-side outcomes, the workers feed in
        # completions, and stats()/the status server read them out.
        self.slo = SloEngine(window_s=slo_window_s,
                             targets=slo_targets)
        self.flight = flight if flight is not None \
            else FlightRecorder()
        self.incident_dir = incident_dir
        self.scheduler = FifoScheduler(max_queue=max_queue,
                                       max_batch=max_batch,
                                       workers=workers,
                                       slo=self.slo,
                                       flight=self.flight)
        self.pool = DevicePool(
            workers, self.scheduler, self.sessions,
            tracker_factory=lambda: EBVOTracker(frontend_cls(config),
                                                config),
            min_service_s=min_service_s,
            device_clock_hz=device_clock_hz,
            max_retries=max_retries,
            breaker_threshold=breaker_threshold,
            breaker_cooldown_s=breaker_cooldown_s,
            slo=self.slo, flight=self.flight,
            incident_dir=incident_dir)
        # Record/replay: with ``capture`` truthy every completed frame
        # (inputs + live outcome) lands in a per-session capture ring,
        # and every flight-recorder incident dump gains a replayable
        # ``*_replay.json`` sibling bundle.
        self.capture = None
        if capture:
            from repro.snap.capture import CaptureRing
            self.capture = capture if isinstance(capture, CaptureRing) \
                else CaptureRing()
            self.capture.bind(self.frontend, self.config)
            self.flight.attach_dump_hook(self.capture.dump_hook)
        #: RNG seeds of whatever workload drives this service; stored
        #: here so whole-service snapshots can carry them.
        self.rng_seeds = None
        self._seq_lock = threading.Lock()
        self._last_seq = 0
        self._closed = False

    # -- request sequencing ----------------------------------------------

    def _next_seq(self) -> int:
        with self._seq_lock:
            self._last_seq += 1
            return self._last_seq

    def seq_watermark(self) -> int:
        """Highest request sequence number issued so far."""
        with self._seq_lock:
            return self._last_seq

    def restore_seq(self, watermark: int) -> None:
        """Resume sequence numbering after ``watermark`` (snapshots)."""
        with self._seq_lock:
            self._last_seq = max(self._last_seq, int(watermark))

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "VOService":
        """Start the worker pool (idempotent)."""
        try:
            self.pool.start()
        except BaseException:
            # A failed start must leave nothing running: the pool has
            # already stopped its own threads, so just mark us closed.
            self.close()
            raise
        return self

    def close(self) -> None:
        """Stop admitting, join the workers, fail pending futures.

        Idempotent and exception-safe: every stage runs even if an
        earlier one raises, so a double close (or a close after a
        failed start) can never leak worker threads or leave a client
        blocked on a future that will never complete.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self.scheduler.close()
        finally:
            try:
                self.pool.stop()
            finally:
                self.scheduler.fail_pending(
                    RuntimeError("service closed"))
                if self.capture is not None:
                    self.flight.detach_dump_hook(
                        self.capture.dump_hook)

    def __enter__(self) -> "VOService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the request path ------------------------------------------------

    def _batch_key(self, shape: Tuple[int, int]) -> Optional[Tuple]:
        """Micro-batch key of one frame: its edge-detect program key.

        Frames are batchable only when the workers actually replay
        compiled programs (PIM frontend with device detect on); then
        frames of the same shape share the detect program and device
        geometry, so a worker can run them back-to-back.
        """
        if self.frontend != "pim" or not self.config.pim_device_detect:
            return None
        from repro.pim import PIMConfig
        from repro.pim.program import program_key
        height, width = shape
        return program_key("edge_detect", shape, 8,
                           PIMConfig(wordline_bits=width * 8,
                                     num_rows=height + 8))

    def submit(self, session_id: str, gray: np.ndarray,
               depth: np.ndarray, timestamp: float = 0.0,
               timeout: Optional[float] = None,
               deadline_s: Optional[float] = None) -> TrackResult:
        """Track one frame for ``session_id``; blocks for the result.

        Raises :class:`~repro.serve.scheduler.Backpressure` when the
        admission queue is full (nothing was enqueued; resubmit after
        ``retry_after_s``).  With ``deadline_s`` set, a frame still
        queued that long after submission fails with
        :class:`~repro.serve.scheduler.DeadlineExceeded` instead of
        being served stale.  Any tracking error surfaces here as the
        original exception.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        gray = np.asarray(gray)
        self.sessions.touch(session_id)
        seq = self._next_seq()
        # The request root span: begun here on the client thread,
        # finished here once the result (or failure) comes back, with
        # the queue and worker-side track spans as its children.  With
        # tracing disabled both handles are the shared no-op.
        tracer = get_tracer()
        request = tracer.begin("request", category="serve",
                               session=session_id, seq=seq)
        item = WorkItem(session=session_id, seq=seq,
                        batch_key=self._batch_key(gray.shape),
                        payload=(gray, np.asarray(depth),
                                 float(timestamp)),
                        ctx=request.context,
                        queue_handle=tracer.begin(
                            "queue", category="serve",
                            parent=request.context,
                            session=session_id, seq=seq))
        if deadline_s is not None:
            item.deadline = self.scheduler._clock() + deadline_s
        try:
            self.scheduler.submit(item)   # may raise Backpressure
        except BaseException as exc:
            item.queue_handle.finish(outcome="rejected")
            request.finish(outcome="rejected",
                           error=type(exc).__name__)
            raise
        try:
            result = item.future.result(timeout)
        except BaseException as exc:
            request.finish(outcome="error",
                           error=type(exc).__name__)
            self._capture_incident(type(exc).__name__, item, request)
            self._capture_frame(item, error=exc)
            raise
        if result.retries:
            # The request succeeded but needed worker retries: keep
            # its span tree for post-mortems all the same.
            request.finish(outcome="ok", retries=result.retries)
            self._capture_incident("retried", item, request)
        else:
            request.finish(outcome="ok")
        self._capture_frame(item, result=result, request=request)
        return result

    def submit_nowait(self, session_id: str, gray: np.ndarray,
                      depth: np.ndarray, timestamp: float = 0.0,
                      deadline_s: Optional[float] = None) -> Future:
        """Admit one frame without blocking; returns its future.

        The open-loop counterpart of :meth:`submit`: admission
        (:class:`~repro.serve.scheduler.Backpressure`) still raises
        here on the caller's thread, but the result -- or the failure,
        including :class:`~repro.serve.scheduler.DeadlineExceeded` --
        is delivered through the returned future.  Capture-ring
        recording and flight-recorder incidents fire from the
        future's completion, exactly as the blocking path does.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        gray = np.asarray(gray)
        self.sessions.touch(session_id)
        seq = self._next_seq()
        tracer = get_tracer()
        request = tracer.begin("request", category="serve",
                               session=session_id, seq=seq)
        item = WorkItem(session=session_id, seq=seq,
                        batch_key=self._batch_key(gray.shape),
                        payload=(gray, np.asarray(depth),
                                 float(timestamp)),
                        ctx=request.context,
                        queue_handle=tracer.begin(
                            "queue", category="serve",
                            parent=request.context,
                            session=session_id, seq=seq))
        if deadline_s is not None:
            item.deadline = self.scheduler._clock() + deadline_s
        try:
            self.scheduler.submit(item)   # may raise Backpressure
        except BaseException as exc:
            item.queue_handle.finish(outcome="rejected")
            request.finish(outcome="rejected",
                           error=type(exc).__name__)
            raise

        def _finish(future: Future) -> None:
            exc = future.exception()
            if exc is not None:
                request.finish(outcome="error",
                               error=type(exc).__name__)
                self._capture_incident(type(exc).__name__, item,
                                       request)
                self._capture_frame(item, error=exc)
                return
            result = future.result()
            if result.retries:
                request.finish(outcome="ok", retries=result.retries)
                self._capture_incident("retried", item, request)
            else:
                request.finish(outcome="ok")
            self._capture_frame(item, result=result, request=request)

        item.future.add_done_callback(_finish)
        return item.future

    def _capture_frame(self, item: WorkItem, result=None, error=None,
                       request=None) -> None:
        """Record one completed frame in the capture ring (if on).

        Only frames that actually reached a worker are recorded:
        admission rejections and queue expiries never touched the
        tracker state, so they are not part of the replayable stream.
        """
        if self.capture is None:
            return
        if isinstance(error, (Backpressure, DeadlineExceeded)):
            return
        gray, depth, timestamp = item.payload
        if error is not None:
            outcome = self.capture.error_outcome(error)
        else:
            span_count = None
            ctx = request.context if request is not None else None
            if ctx is not None and ctx.trace_id:
                from repro.snap.capture import _compute_span_count
                span_count = _compute_span_count(get_tracer(),
                                                 ctx.trace_id)
            outcome = self.capture.ok_outcome(result,
                                              span_count=span_count)
        self.capture.record(item.session, item.seq, gray, depth,
                            timestamp, outcome)

    def _capture_incident(self, reason: str, item: WorkItem,
                          request) -> None:
        """Record a bad request's span tree in the flight recorder."""
        ctx = request.context
        trace_id = ctx.trace_id if ctx is not None else 0
        spans = []
        if trace_id:
            spans = [s.to_dict() for s in
                     get_tracer().spans_for_trace(trace_id)]
        self.flight.incident(reason, trace_id=trace_id,
                             session=item.session, seq=item.seq,
                             spans=spans)

    # -- snapshots, migration, drain -------------------------------------

    def requeue_frame(self, session_id: str, seq: int,
                      gray: np.ndarray, depth: np.ndarray,
                      timestamp: float = 0.0,
                      deadline_s: Optional[float] = None) -> Future:
        """Re-enqueue a frame restored from a snapshot, fire-and-forget.

        Unlike :meth:`submit` this neither blocks nor allocates a new
        sequence number: the frame keeps its recorded ``seq`` and the
        returned future completes once a worker serves it (after the
        pool starts).  Used by the snapshot restore path to put the
        admission queue back exactly as captured, and by shard workers
        to admit router-sequenced frames -- the latter pass the
        client's ``deadline_s`` through so queue expiry still applies
        across the process boundary.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        gray = np.asarray(gray)
        item = WorkItem(session=session_id, seq=seq,
                        batch_key=self._batch_key(gray.shape),
                        payload=(gray, np.asarray(depth),
                                 float(timestamp)))
        if deadline_s is not None:
            item.deadline = self.scheduler._clock() + deadline_s
        # The recorded seq is now taken: later submits must never
        # reissue it.
        self.restore_seq(seq)
        self.scheduler.submit(item)
        return item.future

    def _require_migration_compatible(self,
                                      target: "VOService") -> None:
        if target is self:
            raise ValueError("cannot migrate a session onto itself")
        if target.frontend != self.frontend:
            raise ValueError(
                f"migration target runs the {target.frontend!r} "
                f"frontend; source runs {self.frontend!r}")
        if target.config != self.config:
            raise ValueError(
                "migration target's TrackerConfig differs; migrated "
                "trajectories would not be bit-identical")

    def quiesce_session(self, session_id: str,
                        timeout_s: float = 10.0) -> List[WorkItem]:
        """Pull the session's queued frames and wait out in-flight ones.

        Returns the extracted, still-pending work items in submission
        order once no frame of the session is queued, dispatched, or
        holding the session checked out.  On timeout the extracted
        items are put back and ``TimeoutError`` is raised, so a failed
        quiesce never strands a client's future.
        """
        deadline = time.monotonic() + timeout_s
        extracted: List[WorkItem] = []
        while True:
            extracted.extend(
                self.scheduler.extract_session(session_id))
            session = self.sessions.get(session_id)
            busy = bool(session is not None and session.busy)
            if not busy and \
                    self.scheduler.session_inflight(session_id) == 0:
                # One final sweep: a frame completing during the scan
                # may have re-exposed a later queued frame.
                tail = self.scheduler.extract_session(session_id)
                if not tail:
                    return extracted
                extracted.extend(tail)
                continue
            if time.monotonic() > deadline:
                for item in extracted:
                    self.scheduler.submit(item)
                raise TimeoutError(
                    f"session {session_id!r} did not quiesce within "
                    f"{timeout_s}s")
            time.sleep(0.002)

    def migrate_session(self, session_id: str, target: "VOService",
                        timeout_s: float = 10.0):
        """Live-migrate one session onto another service, losslessly.

        Quiesces the session (in-flight frames finish here, queued
        ones are pulled), exports its full state (tracker state,
        checkpoint, generation), imports it on ``target`` with a
        forced device reset, and replays the pulled frames through the
        target's scheduler -- **the original clients' futures complete
        with results computed on the target pool**.  Because tracker
        state is host-side and complete, the migrated trajectory is
        bit-identical to one that never moved (the chaos harness
        gates exactly this).

        The caller owns redirecting *new* traffic to the target;
        a submit racing the migration on this service would recreate
        the sid as a fresh stream.
        """
        self._require_migration_compatible(target)
        extracted = self.quiesce_session(session_id,
                                         timeout_s=timeout_s)
        try:
            record = self.sessions.export_session(session_id)
        except KeyError:
            # Evicted while quiescing (idle sweep): nothing to move.
            for item in extracted:
                self.scheduler.submit(item)
            raise
        imported = target.sessions.import_session(
            record, force_device_reset=True)
        self.sessions.remove(session_id, reason="migrated")
        target.restore_seq(max((item.seq for item in extracted),
                               default=0))
        for item in extracted:
            # Re-key for the target's geometry and hand the item --
            # future and all -- to the target's queue.
            item.batch_key = target._batch_key(
                np.asarray(item.payload[0]).shape)
            target.scheduler.submit(item)
        get_registry().counter(
            "serve_sessions_migrated_total",
            "Sessions live-migrated to another service").inc()
        self.flight.event("session_migrated", session=session_id,
                          queued_frames=len(extracted),
                          generation=record["generation"])
        return imported

    def drain_to(self, target: "VOService",
                 timeout_s: float = 30.0) -> List[str]:
        """Whole-service drain: migrate every resident session.

        The shutdown-for-maintenance path: after this returns, every
        session (state, checkpoints, queued frames) lives on
        ``target`` and this service is empty but still running.
        Returns the migrated session ids.
        """
        migrated = []
        deadline = time.monotonic() + timeout_s
        for sid in self.sessions.sids():
            remaining = max(0.1, deadline - time.monotonic())
            self.migrate_session(sid, target, timeout_s=remaining)
            migrated.append(sid)
        self.flight.event("drained", sessions=len(migrated))
        return migrated

    def snapshot(self, seeds: Optional[dict] = None) -> dict:
        """Whole-service snapshot document (see :mod:`repro.snap`)."""
        from repro.snap.state import snapshot_service
        return snapshot_service(self, seeds=seeds)

    def restore(self, snap: dict, verify: bool = True) -> dict:
        """Restore a whole-service snapshot into this (fresh) service."""
        from repro.snap.state import restore_service
        return restore_service(snap, self, verify=verify)

    # -- health ----------------------------------------------------------

    def stats(self) -> dict:
        """Scheduler, session, pool, and health stats in one dict."""
        scheduler = self.scheduler.stats()
        sessions = self.sessions.stats()
        pool = self.pool.stats()
        breakers = {w["worker"]: w["breaker"]["state"]
                    for w in pool["per_worker"]}
        saturation = scheduler["depth"] / scheduler["max_queue"]
        health = {
            "closed": self._closed,
            "breakers": breakers,
            "breakers_open": pool["breakers_open"],
            "queue_saturation": saturation,
            "retries_total": pool["retries_total"],
            "deadline_expired_total": scheduler["expired_total"],
            "checkpoint_restores_total": sessions["restores_total"],
            "healthy": (not self._closed
                        and pool["breakers_open"] < len(
                            self.pool.workers)
                        and saturation < 1.0),
        }
        stats = {
            "scheduler": scheduler,
            "sessions": sessions,
            "pool": pool,
            "health": health,
            "slo": self.slo.snapshot(),
            "flight": self.flight.stats(),
        }
        if self.program_store is not None:
            from repro.kernels.common import KERNEL_PROGRAM_CACHE
            stats["programs"] = KERNEL_PROGRAM_CACHE.stats()
        if self.capture is not None:
            stats["capture"] = self.capture.stats()
        return stats

    def healthy(self) -> bool:
        """One-bool health check: serving capacity exists right now.

        True while the service is open, at least one worker's breaker
        admits work, and the admission queue is not saturated.
        """
        return bool(self.stats()["health"]["healthy"])
