"""Absolute trajectory error (ATE) with Horn alignment."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.geometry.se3 import SE3

__all__ = ["ATEResult", "absolute_trajectory_error", "horn_align"]


@dataclass
class ATEResult:
    """RMSE of aligned position errors plus the raw errors."""

    rmse: float
    errors: np.ndarray
    alignment: SE3

    def __str__(self) -> str:
        return f"ATE rmse={self.rmse:.3f} m"


def horn_align(source: np.ndarray, target: np.ndarray) -> SE3:
    """Least-squares rigid alignment ``target ~ R source + t`` (Horn).

    Args:
        source, target: (N, 3) point sets.
    """
    src = np.asarray(source, dtype=np.float64)
    dst = np.asarray(target, dtype=np.float64)
    if src.shape != dst.shape or src.ndim != 2 or src.shape[1] != 3:
        raise ValueError("point sets must both be (N, 3)")
    mu_s = src.mean(axis=0)
    mu_d = dst.mean(axis=0)
    cov = (dst - mu_d).T @ (src - mu_s)
    u, _, vt = np.linalg.svd(cov)
    s = np.eye(3)
    if np.linalg.det(u @ vt) < 0:
        s[2, 2] = -1.0
    rot = u @ s @ vt
    t = mu_d - rot @ mu_s
    return SE3(rot, t)


def absolute_trajectory_error(estimated: Sequence[SE3],
                              groundtruth: Sequence[SE3]) -> ATEResult:
    """ATE RMSE after optimal rigid alignment of the position tracks."""
    if len(estimated) != len(groundtruth):
        raise ValueError("trajectories differ in length")
    est = np.stack([p.t for p in estimated])
    gt = np.stack([p.t for p in groundtruth])
    align = horn_align(est, gt)
    aligned = est @ align.R.T + align.t
    errors = np.linalg.norm(aligned - gt, axis=1)
    return ATEResult(rmse=float(np.sqrt(np.mean(errors ** 2))),
                     errors=errors, alignment=align)
