"""Trajectory evaluation metrics (Sturm et al. 2012 semantics)."""

from repro.evaluation.rpe import RPEResult, relative_pose_error
from repro.evaluation.ate import ATEResult, absolute_trajectory_error

__all__ = ["RPEResult", "relative_pose_error",
           "ATEResult", "absolute_trajectory_error"]
