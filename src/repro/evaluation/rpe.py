"""Relative pose error (RPE), the drift metric of Table 1.

For estimated poses ``P_i`` and ground truth ``Q_i`` (camera-to-world)
the relative error over a window ``delta`` is

``E_i = (Q_i^-1 Q_{i+delta})^-1 (P_i^-1 P_{i+delta})``

The paper reports the RMSE of the translational component in m/s and
of the rotational component in deg/s, i.e. errors over one-second
windows (``delta = fps`` frames) normalized by the window duration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.geometry.se3 import SE3, so3_log

__all__ = ["RPEResult", "relative_pose_error"]


@dataclass
class RPEResult:
    """RMSE drift rates plus the raw per-window errors."""

    translation_rmse: float     # m/s
    rotation_rmse: float        # deg/s
    translation_errors: np.ndarray
    rotation_errors: np.ndarray

    def __str__(self) -> str:
        return (f"RPE t={self.translation_rmse:.3f} m/s, "
                f"rot={self.rotation_rmse:.2f} deg/s")


def relative_pose_error(estimated: Sequence[SE3],
                        groundtruth: Sequence[SE3],
                        delta: int = 30,
                        fps: float = 30.0) -> RPEResult:
    """RPE RMSE over fixed-size frame windows.

    Args:
        estimated: Estimated camera-to-world poses.
        groundtruth: Ground-truth poses (same length and order).
        delta: Window size in frames (``fps`` frames = one second,
            giving the paper's per-second units).
        fps: Frame rate used to normalize to rates.

    Returns:
        :class:`RPEResult` with RMSE in m/s and deg/s.
    """
    if len(estimated) != len(groundtruth):
        raise ValueError("trajectories differ in length")
    n = len(estimated)
    if n <= delta:
        raise ValueError(f"need more than {delta} poses, got {n}")
    window_seconds = delta / fps
    t_errs: List[float] = []
    r_errs: List[float] = []
    for i in range(n - delta):
        gt_rel = groundtruth[i].inverse() @ groundtruth[i + delta]
        est_rel = estimated[i].inverse() @ estimated[i + delta]
        err = gt_rel.inverse() @ est_rel
        t_errs.append(float(np.linalg.norm(err.t)) / window_seconds)
        r_errs.append(np.degrees(float(np.linalg.norm(so3_log(err.R))))
                      / window_seconds)
    t = np.asarray(t_errs)
    r = np.asarray(r_errs)
    return RPEResult(
        translation_rmse=float(np.sqrt(np.mean(t ** 2))),
        rotation_rmse=float(np.sqrt(np.mean(r ** 2))),
        translation_errors=t,
        rotation_errors=r)
