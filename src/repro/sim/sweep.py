"""Design-space sweep: array count x slice width x buffer capacity.

The sweep runs the measured edge-pipeline workload
(:func:`repro.sim.workload.measure_edge_stage_costs`) through the
timing engine across a grid of machine shapes and reports, per point,
the makespan, measured speedup over the serial ledger, contention
stalls, DMA/compute overlap and total (dynamic + idle) energy.  The
cross-product answers the questions a silicon budget forces:

* **arrays** -- throughput scales with N until the shared host DMA bus
  saturates (the contention knee: stalls shift from ``compute`` to
  ``dma`` and speedup flattens while idle energy keeps growing);
* **slice width** -- wider accumulator slices spend less carry-gate
  energy per op but lengthen the ripple critical path (slower clock);
* **buffer capacity** (rows per array) -- one frame slot serializes
  load-after-store, two enable double buffering that hides DMA.

Every sweep first re-derives the **conformance anchor**: one array
with I/O-free DMA accounting must reproduce the serial
:class:`~repro.pim.cost.CostLedger` total *exactly*, or the whole
result set is untrustworthy (the CLI exits non-zero on a mismatch and
CI gates on it).

Points whose array cannot hold even one frame are skipped and listed
in the payload's ``skipped`` section -- the sweep never silently
narrows its own grid.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.obs.stamp import run_stamp
from repro.pim.config import PIMConfig
from repro.sim.engine import SimResult, serial_cycles, simulate
from repro.sim.machine import MachineSpec
from repro.sim.workload import (EdgeWorkload, build_tasks,
                                measure_edge_stage_costs)

__all__ = ["run_sweep", "pareto_front", "write_bench",
           "DEFAULT_ARRAYS", "DEFAULT_SLICES", "DEFAULT_CACHE_ROWS"]

DEFAULT_ARRAYS = (1, 2, 4, 8)
DEFAULT_SLICES = (8, 16, 32)
DEFAULT_CACHE_ROWS = (256, 512)


def pareto_front(points: Sequence[dict],
                 time_key: str = "time_us",
                 energy_key: str = "total_energy_uj") -> List[int]:
    """Indices of the non-dominated points (minimize time and energy).

    A point is dominated when another point is no worse on both axes
    and strictly better on at least one.
    """
    front: List[int] = []
    for i, p in enumerate(points):
        dominated = False
        for j, q in enumerate(points):
            if i == j:
                continue
            if (q[time_key] <= p[time_key]
                    and q[energy_key] <= p[energy_key]
                    and (q[time_key] < p[time_key]
                         or q[energy_key] < p[energy_key])):
                dominated = True
                break
        if not dominated:
            front.append(i)
    return front


def _array_config(workload: EdgeWorkload, rows: int,
                  slice_bits: int) -> PIMConfig:
    return PIMConfig(wordline_bits=workload.width * 8,
                     num_rows=rows, slice_bits=slice_bits,
                     num_banks=min(8, rows))


def _point(workload: EdgeWorkload, spec: MachineSpec, frames: int,
           placement: str, result: SimResult, serial: int) -> dict:
    return {
        "arrays": spec.n_arrays,
        "slice_bits": spec.array.slice_bits,
        "cache_rows": spec.array.num_rows,
        "placement": placement,
        "makespan_cycles": result.makespan,
        "time_us": round(result.time_ns() / 1e3, 3),
        "clock_mhz": round(spec.clock_mhz, 2),
        "speedup": round(serial / result.makespan, 4)
        if result.makespan else 0.0,
        "utilization": round(
            result.compute_busy_total /
            (spec.n_arrays * result.makespan), 4)
        if result.makespan else 0.0,
        "stall_cycles": dict(result.stall_cycles),
        "stall_cycles_total": result.stall_cycles_total,
        "dma_overlap_cycles": result.dma_overlap_cycles,
        "idle_cycles": result.idle_cycles_total,
        "dynamic_energy_uj": round(result.energy().total_pj / 1e6, 4),
        "idle_energy_uj": round(result.idle_energy_pj() / 1e6, 4),
        "total_energy_uj": round(result.total_energy_pj() / 1e6, 4),
    }


def run_sweep(workload: Optional[EdgeWorkload] = None,
              frames: int = 8,
              arrays: Sequence[int] = DEFAULT_ARRAYS,
              slices: Sequence[int] = DEFAULT_SLICES,
              cache_rows: Sequence[int] = DEFAULT_CACHE_ROWS,
              placements: Sequence[str] = ("frame",),
              dma_cycles_per_row: int = 8,
              dma_channels: int = 1,
              idle_cycle_pj: float = 40.0,
              seed: int = 0,
              height: int = 240, width: int = 320,
              record_metrics: bool = True) -> dict:
    """Run the full design-space sweep; returns the BENCH payload.

    The payload carries the provenance stamp, the measured workload,
    the conformance-anchor verdict (``anchor["exact"]``), every grid
    point's timing/energy accounting with its Pareto membership, the
    array-scaling series at the default slice/capacity, and the grid
    points that had to be skipped (with reasons).
    """
    if workload is None:
        workload = measure_edge_stage_costs(height=height, width=width,
                                            seed=seed)
    serial = workload.serial_cycles(frames)

    # Conformance anchor: 1 array, I/O-free DMA, paper slice width.
    anchor_rows = max([r for r in cache_rows
                       if r >= workload.frame_rows],
                      default=workload.frame_rows)
    anchor_spec = MachineSpec(
        n_arrays=1, array=_array_config(workload, anchor_rows, 8),
        dma_channels=1, dma_cycles_per_row=0,
        idle_cycle_pj=idle_cycle_pj)
    anchor_tasks = build_tasks(workload, anchor_spec, frames, "frame")
    anchor_result = simulate(anchor_tasks, anchor_spec, seed=seed,
                             record_metrics=False)
    assert serial_cycles(anchor_tasks) == serial
    anchor = {
        "serial_ledger_cycles": serial,
        "simulated_cycles": anchor_result.makespan,
        "exact": anchor_result.makespan == serial,
    }

    points: List[dict] = []
    skipped: List[dict] = []
    for placement in placements:
        for rows in cache_rows:
            if rows < workload.frame_rows:
                skipped.append({
                    "cache_rows": rows, "placement": placement,
                    "reason": f"array of {rows} rows cannot hold one "
                              f"{workload.frame_rows}-row frame"})
                continue
            for slice_bits in slices:
                for n in arrays:
                    spec = MachineSpec(
                        n_arrays=n,
                        array=_array_config(workload, rows,
                                            slice_bits),
                        dma_channels=dma_channels,
                        dma_cycles_per_row=dma_cycles_per_row,
                        idle_cycle_pj=idle_cycle_pj)
                    tasks = build_tasks(workload, spec, frames,
                                        placement)
                    result = simulate(tasks, spec, seed=seed,
                                      record_metrics=record_metrics)
                    points.append(_point(workload, spec, frames,
                                         placement, result, serial))

    front = pareto_front(points)
    for i, point in enumerate(points):
        point["pareto"] = i in front

    # Array-scaling series at the default slice/capacity/placement:
    # where the speedup knee sits and what resource causes it.
    scaling: List[dict] = []
    if points:
        slice0 = slices[0]
        rows0 = max(r for r in cache_rows
                    if r >= workload.frame_rows)
        for point in points:
            if (point["slice_bits"] == slice0
                    and point["cache_rows"] == rows0
                    and point["placement"] == placements[0]):
                scaling.append({
                    "arrays": point["arrays"],
                    "speedup": point["speedup"],
                    "stall_cycles_total":
                        point["stall_cycles_total"],
                    "dma_overlap_cycles":
                        point["dma_overlap_cycles"],
                })
        scaling.sort(key=lambda row: row["arrays"])

    return {
        "benchmark": "sim_sweep",
        "stamp": run_stamp(),
        "workload": workload.describe(),
        "frames": frames,
        "serial_ledger_cycles": serial,
        "machine_defaults": {
            "dma_cycles_per_row": dma_cycles_per_row,
            "dma_channels": dma_channels,
            "idle_cycle_pj": idle_cycle_pj,
            "seed": seed,
        },
        "anchor": anchor,
        "points": points,
        "pareto_front": [points[i] for i in front],
        "scaling": scaling,
        "skipped": skipped,
    }


def write_bench(path, payload: dict) -> Path:
    """Write a sweep payload as a BENCH artifact; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=False)
                    + "\n")
    return path
