"""The multi-array machine model the timing simulator schedules onto.

One :class:`MachineSpec` describes a *system* of ``n_arrays`` SRAM-PIM
macros (each with the per-array geometry of a
:class:`~repro.pim.config.PIMConfig`, including its timing-only bank
partition), connected to the host by ``dma_channels`` shared DMA
channels.  The resources the event engine arbitrates follow directly:

* one **compute unit** per array (the accumulator/shifter periphery --
  one micro-op stream at a time, exactly like the real device),
* ``num_banks`` **banks** per array (row ranges; concurrent DMA and
  compute may overlap on one array only when their bank footprints are
  disjoint),
* the **DMA channels** (``load_rows``/``store_rows`` traffic; the
  shared host bus is what saturates first as arrays scale, producing
  the contention knee of the design-space sweep).

Timing/energy modelling assumptions (documented, not paper numbers --
see ``docs/timing.md``):

* ``dma_cycles_per_row`` defaults to 8: a 2560-bit word line moved
  over a 320-bit host bus takes 8 bus beats.  Setting it to 0 restores
  the paper's accounting ("without considering the I/O overhead"),
  which is the convention of the :class:`~repro.pim.cost.CostLedger`
  cycle domain and therefore of the single-array conformance anchor.
* The accumulator's critical path grows with the in-slice ripple, so
  the clock period scales with ``slice_bits``:
  ``period = base * (0.75 + 0.25 * slice_bits / 8)``.
* Each slice-boundary carry-control gate costs ~0.1 % of a logic op's
  energy, so wider slices (fewer boundaries) spend *less* logic energy
  per op -- the latency/energy trade the sweep explores.
* An idle-but-clocked array burns ``idle_cycle_pj`` per cycle (clock
  tree + sense-amp bias).  Idle energy is what eventually dominates
  past the contention knee: arrays stall, array-cycles grow, cycles
  stop improving.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pim.config import DEFAULT_CONFIG, PIMConfig
from repro.pim.energy import CLOCK_HZ

__all__ = ["MachineSpec", "DEFAULT_MACHINE"]

#: Reference clock period at 8-bit slices (the paper's 216 MHz).
BASE_PERIOD_NS = 1e9 / CLOCK_HZ

#: Fractional logic-energy cost of one slice-boundary carry gate.
CARRY_GATE_ENERGY_FRACTION = 0.001


@dataclass(frozen=True)
class MachineSpec:
    """A system of N PIM arrays plus its host-interconnect timing.

    Attributes:
        n_arrays: Number of identical PIM macros.
        array: Per-array geometry (rows double as the frame-buffer
            capacity axis of the sweep; ``num_banks`` partitions the
            rows for DMA/compute overlap arbitration).
        dma_channels: Independent host DMA channels (shared by all
            arrays; the contention bottleneck).
        dma_cycles_per_row: Bus beats per transferred row; 0 models
            the paper's I/O-free accounting.
        idle_cycle_pj: Energy an idle-but-clocked array burns per
            cycle.
    """

    n_arrays: int = 1
    array: PIMConfig = field(default_factory=lambda: DEFAULT_CONFIG)
    dma_channels: int = 1
    dma_cycles_per_row: int = 8
    idle_cycle_pj: float = 40.0

    def __post_init__(self) -> None:
        if self.n_arrays < 1:
            raise ValueError("need at least one array")
        if self.dma_channels < 1:
            raise ValueError("need at least one DMA channel")
        if self.dma_cycles_per_row < 0:
            raise ValueError("dma_cycles_per_row must be >= 0")
        if self.idle_cycle_pj < 0:
            raise ValueError("idle_cycle_pj must be >= 0")

    @property
    def period_ns(self) -> float:
        """Clock period under the slice-ripple critical-path model."""
        return BASE_PERIOD_NS * (0.75 +
                                 0.25 * self.array.slice_bits / 8.0)

    @property
    def clock_mhz(self) -> float:
        """Achievable clock under the slice-ripple model."""
        return 1e3 / self.period_ns

    @property
    def logic_energy_factor(self) -> float:
        """Relative logic-op energy vs the 8-bit-slice reference.

        Fewer slice boundaries means fewer carry-control gates
        switching per op; the factor is 1.0 at 8-bit slices.
        """
        def boundaries(slice_bits: int) -> int:
            return self.array.wordline_bits // slice_bits - 1
        ref = 1.0 + CARRY_GATE_ENERGY_FRACTION * boundaries(8)
        now = 1.0 + CARRY_GATE_ENERGY_FRACTION * boundaries(
            self.array.slice_bits)
        return now / ref

    def dma_cycles(self, rows: int) -> int:
        """Bus cycles to move ``rows`` word lines over one channel."""
        return int(rows) * self.dma_cycles_per_row

    def describe(self) -> dict:
        """JSON-ready summary for BENCH artifacts."""
        return {
            "n_arrays": self.n_arrays,
            "array_rows": self.array.num_rows,
            "array_kb": self.array.capacity_bytes / 1024.0,
            "num_banks": self.array.num_banks,
            "slice_bits": self.array.slice_bits,
            "dma_channels": self.dma_channels,
            "dma_cycles_per_row": self.dma_cycles_per_row,
            "clock_mhz": round(self.clock_mhz, 2),
            "logic_energy_factor": round(self.logic_energy_factor, 4),
            "idle_cycle_pj": self.idle_cycle_pj,
        }


#: Single array of the paper's geometry with the default interconnect.
DEFAULT_MACHINE = MachineSpec()
