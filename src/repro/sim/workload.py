"""Edge-pipeline workloads for the timing simulator.

The simulator does not re-execute kernels: cycle costs on the PIM
device are data-independent (a recorded program's aggregate cost
scaled by row count), so each pipeline stage is *measured once* on a
real :class:`~repro.pim.device.PIMDevice` -- per-stage
:class:`~repro.pim.cost.CostLedger` deltas around
``lpf_pim`` / ``hpf_pim_replay`` / ``nms_pim_replay`` -- and those
measured costs are then synthesized into an F-frame task graph for
:func:`repro.sim.engine.simulate`.  Because the stage deltas tile the
device ledger exactly, the single-array schedule reproduces the serial
ledger total bit-exactly (the conformance anchor).

Two placement policies map the task graph onto arrays:

* ``"frame"`` -- frame ``f`` runs entirely on array ``f mod N``;
  arrays pipeline across *frames* (LPF of frame t+1 overlaps NMS of
  frame t on another array), and the per-array row capacity gives
  ``S = num_rows // frame_rows`` buffer slots: with one slot the next
  load must wait for the previous store (serialized DMA), with two the
  schedule double-buffers and DMA hides under compute.
* ``"stage"`` -- pipeline stages are spread across arrays (stage ``s``
  on array ``s mod N``) and frames stream through them, with
  inter-array handoffs priced as DMA transfers.  Stages co-resident on
  one array split its rows into per-stage regions; a region too small
  for even one frame degrades to a whole-array bank claim (maximal
  conflict, single slot) rather than failing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.kernels.common import load_image
from repro.kernels.hpf import hpf_pim_replay
from repro.kernels.lpf import lpf_pim
from repro.kernels.nms import nms_pim_replay
from repro.pim.config import PIMConfig
from repro.pim.device import PIMDevice
from repro.sim.engine import SimTask
from repro.sim.machine import MachineSpec
from repro.vision.edges import DEFAULT_TH1, DEFAULT_TH2

__all__ = ["StageCost", "EdgeWorkload", "measure_edge_stage_costs",
           "build_tasks", "SCRATCH_ROWS", "PLACEMENTS"]

#: Scratch rows a frame needs below its image (HPF uses 6, NMS 7; one
#: spare keeps the footprint byte-aligned to the kernels' worst case).
SCRATCH_ROWS = 8

#: Placement policies :func:`build_tasks` understands.
PLACEMENTS = ("frame", "stage")


@dataclass(frozen=True)
class StageCost:
    """One pipeline stage's measured per-frame cost."""

    name: str
    cycles: int
    ledger: object  # CostLedger delta for energy attribution


@dataclass(frozen=True)
class EdgeWorkload:
    """The edge pipeline's measured shape, ready to synthesize."""

    height: int
    width: int
    stages: Tuple[StageCost, ...]

    @property
    def frame_rows(self) -> int:
        """Array rows one in-flight frame occupies (image + scratch)."""
        return self.height + SCRATCH_ROWS

    @property
    def cycles_per_frame(self) -> int:
        """Serial compute cycles for one frame (the ledger total)."""
        return sum(s.cycles for s in self.stages)

    def serial_cycles(self, frames: int) -> int:
        """The serial ledger total for ``frames`` frames."""
        return frames * self.cycles_per_frame

    def describe(self) -> dict:
        """JSON-ready stage table for BENCH artifacts."""
        return {
            "height": self.height,
            "width": self.width,
            "frame_rows": self.frame_rows,
            "cycles_per_frame": self.cycles_per_frame,
            "stages": {s.name: s.cycles for s in self.stages},
        }


def measure_edge_stage_costs(height: int = 240, width: int = 320,
                             th1: int = DEFAULT_TH1,
                             th2: int = DEFAULT_TH2,
                             seed: int = 0) -> EdgeWorkload:
    """Run the edge pipeline once on a real device, per-stage metered.

    The returned stage cycles are ledger *deltas* around each kernel,
    so their sum equals the device ledger's total for the pipeline --
    the invariant the single-array conformance anchor leans on.
    """
    config = PIMConfig(wordline_bits=width * 8,
                       num_rows=height + SCRATCH_ROWS,
                       num_banks=min(8, height + SCRATCH_ROWS))
    device = PIMDevice(config)
    rng = np.random.default_rng(seed)
    image = rng.integers(0, 256, size=(height, width), dtype=np.uint8)
    load_image(device, image, 0)

    stages: List[StageCost] = []

    def metered(name, fn) -> None:
        snap = device.ledger.snapshot()
        fn()
        delta = device.ledger.delta_since(snap)
        stages.append(StageCost(name=name, cycles=int(delta.cycles),
                                ledger=delta))

    metered("lpf", lambda: lpf_pim(device, height, 0))
    metered("hpf", lambda: hpf_pim_replay(device, height, 0))
    metered("nms", lambda: nms_pim_replay(device, height, th1, th2, 0))
    return EdgeWorkload(height=height, width=width,
                        stages=tuple(stages))


def _slot_banks(config: PIMConfig, base: int,
                rows: int) -> Tuple[int, ...]:
    """Bank indices (relative to one array) of a row region."""
    top = min(base + rows, config.num_rows)
    return tuple(sorted(config.banks_of_rows(range(base, top))))


def _slot_layout(config: PIMConfig, frame_rows: int,
                 region_base: int = 0,
                 region_rows: Optional[int] = None
                 ) -> Tuple[int, int]:
    """``(stride, slots)`` for frame buffers inside a row region.

    Slot strides round up to a bank boundary so that two buffer slots
    never share a bank -- otherwise a load into the second slot would
    falsely conflict with compute on the first and double-buffering
    could never overlap.  When alignment costs a slot the layout falls
    back to tight packing (overlap then honestly pays the shared-bank
    conflict).
    """
    if region_rows is None:
        region_rows = config.num_rows - region_base
    aligned = -(-frame_rows // config.bank_rows) * config.bank_rows
    slots = region_rows // aligned
    if slots >= 1 and slots >= region_rows // frame_rows:
        return aligned, slots
    return frame_rows, region_rows // frame_rows


def _on_array(array: int,
              banks: Sequence[int]) -> Tuple[Tuple[int, int], ...]:
    """Pin relative bank indices to one array."""
    return tuple((array, b) for b in banks)


class _ChannelPicker:
    """Round-robin DMA channel assignment (deterministic)."""

    def __init__(self, channels: int) -> None:
        self._channels = channels
        self._next = 0

    def take(self) -> int:
        channel = self._next % self._channels
        self._next += 1
        return channel


def _build_frame_placement(workload: EdgeWorkload, spec: MachineSpec,
                           frames: int) -> List[SimTask]:
    """Frame ``f`` on array ``f mod N``; slots double-buffer DMA."""
    config = spec.array
    if config.num_rows < workload.frame_rows:
        raise ValueError(
            f"array of {config.num_rows} rows cannot hold one "
            f"{workload.frame_rows}-row frame")
    stride, slots = _slot_layout(config, workload.frame_rows)
    picker = _ChannelPicker(spec.dma_channels)
    tasks: List[SimTask] = []
    store_index: List[Optional[int]] = [None] * frames
    dma_rows = workload.height

    for f in range(frames):
        array = f % spec.n_arrays
        slot = (f // spec.n_arrays) % slots
        base = slot * stride
        banks = _on_array(array, _slot_banks(config, base,
                                             workload.frame_rows))
        # The slot is reusable once its previous occupant was stored.
        predecessor = f - spec.n_arrays * slots
        load_deps = ()
        if predecessor >= 0 and store_index[predecessor] is not None:
            load_deps = (store_index[predecessor],)
        load = len(tasks)
        tasks.append(SimTask(
            name=f"load@f{f}", kind="dma",
            cycles=spec.dma_cycles(dma_rows), banks=banks,
            deps=load_deps, channel=picker.take(), frame=f,
            stage="load"))
        prev = load
        for stage in workload.stages:
            index = len(tasks)
            tasks.append(SimTask(
                name=f"{stage.name}@f{f}", kind="compute",
                cycles=stage.cycles, array=array, banks=banks,
                deps=(prev,), frame=f, stage=stage.name,
                ledger=stage.ledger))
            prev = index
        store_index[f] = len(tasks)
        tasks.append(SimTask(
            name=f"store@f{f}", kind="dma",
            cycles=spec.dma_cycles(dma_rows), banks=banks,
            deps=(prev,), channel=picker.take(), frame=f,
            stage="store"))
    return tasks


def _build_stage_placement(workload: EdgeWorkload, spec: MachineSpec,
                           frames: int) -> List[SimTask]:
    """Stage ``s`` on array ``s mod N``; frames stream through."""
    config = spec.array
    n_stages = len(workload.stages)
    stage_array = [s % spec.n_arrays for s in range(n_stages)]

    # Partition each array's rows among its resident stages.
    residents: List[List[int]] = [[] for _ in range(spec.n_arrays)]
    for s, a in enumerate(stage_array):
        residents[a].append(s)
    stage_base: List[int] = [0] * n_stages
    stage_slots: List[int] = [1] * n_stages
    stage_banks: List[List[Tuple[Tuple[int, int], ...]]] = \
        [[] for _ in range(n_stages)]
    for a, stage_ids in enumerate(residents):
        if not stage_ids:
            continue
        region_rows = config.num_rows // len(stage_ids)
        for r, s in enumerate(stage_ids):
            if region_rows < workload.frame_rows:
                # Region too small: whole-array claim, single slot.
                stage_base[s], stage_slots[s] = 0, 1
                stage_banks[s] = [_on_array(a, _slot_banks(
                    config, 0, config.num_rows))]
                continue
            stride, slots = _slot_layout(
                config, workload.frame_rows,
                region_base=r * region_rows,
                region_rows=region_rows)
            stage_base[s], stage_slots[s] = r * region_rows, slots
            stage_banks[s] = [
                _on_array(a, _slot_banks(
                    config, r * region_rows + k * stride,
                    workload.frame_rows))
                for k in range(slots)]

    def banks_of(s: int, f: int) -> Tuple[Tuple[int, int], ...]:
        return stage_banks[s][f % stage_slots[s]]

    picker = _ChannelPicker(spec.dma_channels)
    tasks: List[SimTask] = []
    # reader_index[s][f]: task that consumes stage s's slot for frame
    # f (the handoff to s+1, or the final store) -- reusing the slot
    # for frame f + slots must wait for it.
    reader_index: List[List[Optional[int]]] = \
        [[None] * frames for _ in range(n_stages)]
    dma_rows = workload.height

    for f in range(frames):
        def slot_free_dep(s: int) -> Tuple[int, ...]:
            prev_frame = f - stage_slots[s]
            if prev_frame >= 0 and \
                    reader_index[s][prev_frame] is not None:
                return (reader_index[s][prev_frame],)
            return ()

        load = len(tasks)
        tasks.append(SimTask(
            name=f"load@f{f}", kind="dma",
            cycles=spec.dma_cycles(dma_rows), banks=banks_of(0, f),
            deps=slot_free_dep(0), channel=picker.take(), frame=f,
            stage="load"))
        prev = load
        for s, stage in enumerate(workload.stages):
            index = len(tasks)
            tasks.append(SimTask(
                name=f"{stage.name}@f{f}", kind="compute",
                cycles=stage.cycles, array=stage_array[s],
                banks=banks_of(s, f), deps=(prev,), frame=f,
                stage=stage.name, ledger=stage.ledger))
            prev = index
            if s + 1 < n_stages:
                # Handoff to the next stage's region: a DMA copy when
                # the arrays differ, a free in-place alias otherwise.
                cross = stage_array[s + 1] != stage_array[s]
                xfer = len(tasks)
                tasks.append(SimTask(
                    name=f"xfer:{stage.name}@f{f}", kind="dma",
                    cycles=spec.dma_cycles(dma_rows) if cross else 0,
                    banks=banks_of(s, f) + banks_of(s + 1, f),
                    deps=(prev,) + slot_free_dep(s + 1),
                    channel=picker.take(), frame=f,
                    stage=f"xfer-{stage.name}"))
                reader_index[s][f] = xfer
                prev = xfer
        store = len(tasks)
        tasks.append(SimTask(
            name=f"store@f{f}", kind="dma",
            cycles=spec.dma_cycles(dma_rows),
            banks=banks_of(n_stages - 1, f), deps=(prev,),
            channel=picker.take(), frame=f, stage="store"))
        reader_index[n_stages - 1][f] = store
    return tasks


def build_tasks(workload: EdgeWorkload, spec: MachineSpec,
                frames: int, placement: str = "frame"
                ) -> List[SimTask]:
    """Synthesize the F-frame task graph for one machine spec.

    The compute cycles in the returned graph always sum to
    ``workload.serial_cycles(frames)`` regardless of placement or
    array count (work conservation -- property-tested).
    """
    if frames < 0:
        raise ValueError("frames must be >= 0")
    if placement == "frame":
        return _build_frame_placement(workload, spec, frames)
    if placement == "stage":
        return _build_stage_placement(workload, spec, frames)
    raise ValueError(
        f"unknown placement {placement!r}, expected one of "
        f"{PLACEMENTS}")
