"""Event-driven multi-array timing engine with resource contention.

The engine schedules a DAG of :class:`SimTask` work items onto the
resources of a :class:`~repro.sim.machine.MachineSpec`:

* a **compute unit** per array (``("cu", a)``),
* the **banks** of every array (``("bank", a, b)``),
* the host **DMA channels** (``("dma", c)``).

A task becomes *ready* when every dependency has completed and
*starts* when all of its resources are simultaneously free,
non-preemptively occupying them for ``cycles`` simulated cycles.
Arbitration between ready contenders is FIFO by ready time with a
seeded-permutation tie-break, so for a fixed seed the event order --
and therefore every span, stall and counter -- is fully deterministic
(property-tested in ``tests/test_sim_engine.py``).

The cycles a ready task spends waiting on a busy resource are
*contention stalls*, tallied by resource class and exported through
the metrics registry as ``sim_contention_stall_cycles_total``
(labelled ``resource="compute"|"bank"|"dma"``).  DMA cycles that
proceed while any compute unit is busy are the overlap the serial
ledger cannot express, exported as ``sim_dma_overlap_cycles_total``.

Two conservation laws anchor the model to the
:class:`~repro.pim.cost.CostLedger`:

* **work conservation** -- the busy cycles summed over all compute
  units equal the serial sum of task cycles, for any array count;
* **single-array conformance** -- with one array and I/O-free DMA
  accounting (``dma_cycles_per_row=0``, the ledger's own convention)
  the makespan equals the serial ledger total *exactly*.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import get_registry
from repro.obs.tracer import Span
from repro.pim.energy import EnergyReport
from repro.sim.machine import MachineSpec

__all__ = ["SimTask", "TimelineSpan", "SimResult", "simulate",
           "serial_cycles"]

#: Resource-kind prefix -> stall class reported in metrics.
_RESOURCE_CLASS = {"cu": "compute", "bank": "bank", "dma": "dma"}


@dataclass(frozen=True)
class SimTask:
    """One schedulable unit of work.

    Attributes:
        name: Display label (``"lpf@f3"``).
        kind: ``"compute"`` (occupies an array's compute unit) or
            ``"dma"`` (occupies a host DMA channel).
        cycles: Occupancy duration in simulated cycles.  DMA tasks
            carry their bus cycles pre-priced by
            :meth:`MachineSpec.dma_cycles`; 0-cycle tasks are legal
            (the paper's I/O-free accounting) and still order their
            dependents.
        array: Owning array for compute tasks (ignored for DMA).
        banks: Bank claims as ``(array, bank)`` pairs -- a DMA
            transfer claims banks on its target (and, for inter-array
            copies, source) arrays without claiming a compute unit.
        deps: Indices of prerequisite tasks in the workload list.
        channel: DMA channel for ``kind="dma"``.
        frame: Originating frame index (display/attribution only).
        stage: Pipeline stage label (display/attribution only).
        ledger: Optional :class:`~repro.pim.cost.CostLedger` delta
            this task accounts for (energy attribution).
    """

    name: str
    kind: str
    cycles: int
    array: int = 0
    banks: Tuple[Tuple[int, int], ...] = ()
    deps: Tuple[int, ...] = ()
    channel: int = 0
    frame: int = -1
    stage: str = ""
    ledger: Optional[object] = None

    def __post_init__(self) -> None:
        if self.kind not in ("compute", "dma"):
            raise ValueError(f"unknown task kind {self.kind!r}")
        if self.cycles < 0:
            raise ValueError("task cycles must be >= 0")

    def resources(self) -> Tuple[Tuple, ...]:
        """The resource keys this task occupies while running."""
        owner = (("cu", self.array),) if self.kind == "compute" \
            else (("dma", self.channel),)
        return owner + tuple(("bank", a, b) for a, b in self.banks)


@dataclass(frozen=True)
class TimelineSpan:
    """One scheduled task occurrence on the simulated timeline."""

    task: SimTask
    index: int
    start: int
    end: int
    stall: int
    blocker: Optional[str]

    @property
    def duration(self) -> int:
        return self.end - self.start


def serial_cycles(tasks: Sequence[SimTask]) -> int:
    """The serial compute total: what one array with I/O-free DMA runs."""
    return sum(t.cycles for t in tasks if t.kind == "compute")


def _merge_intervals(intervals: List[Tuple[int, int]]
                     ) -> List[Tuple[int, int]]:
    merged: List[Tuple[int, int]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _overlap(interval: Tuple[int, int],
             merged: List[Tuple[int, int]]) -> int:
    lo, hi = interval
    total = 0
    for start, end in merged:
        total += max(0, min(hi, end) - max(lo, start))
    return total


@dataclass
class SimResult:
    """The schedule an engine run produced, with its accounting."""

    spec: MachineSpec
    spans: List[TimelineSpan]
    makespan: int
    busy_per_array: Dict[int, int]
    dma_busy_per_channel: Dict[int, int]
    stall_cycles: Dict[str, int]
    dma_overlap_cycles: int
    seed: int = 0

    @property
    def compute_busy_total(self) -> int:
        """Busy compute cycles summed over arrays (work conservation)."""
        return sum(self.busy_per_array.values())

    @property
    def stall_cycles_total(self) -> int:
        return sum(self.stall_cycles.values())

    @property
    def idle_cycles_total(self) -> int:
        """Array-cycles spent idle-but-clocked across the makespan."""
        return (self.spec.n_arrays * self.makespan -
                self.compute_busy_total)

    def speedup_vs(self, serial: int) -> float:
        """Measured speedup against a serial cycle total."""
        return serial / self.makespan if self.makespan else float("inf")

    def energy(self) -> EnergyReport:
        """Dynamic energy of the scheduled work under the spec's model.

        Sums the task ledgers' component energies, scaling the logic
        component by the spec's slice-width factor.  Idle energy is
        reported separately (:meth:`idle_energy_pj`) because it
        depends on the schedule, not the work.
        """
        total = EnergyReport()
        for span in self.spans:
            ledger = span.task.ledger
            if ledger is not None:
                total = total + ledger.energy()
        return EnergyReport(
            sram_pj=total.sram_pj,
            logic_pj=total.logic_pj * self.spec.logic_energy_factor,
            tmpreg_pj=total.tmpreg_pj)

    def idle_energy_pj(self) -> float:
        """Idle-but-clocked energy across all arrays for the makespan."""
        return self.idle_cycles_total * self.spec.idle_cycle_pj

    def total_energy_pj(self) -> float:
        """Dynamic + idle energy of the whole schedule."""
        return self.energy().total_pj + self.idle_energy_pj()

    def time_ns(self) -> float:
        """Makespan in wall nanoseconds at the spec's derived clock."""
        return self.makespan * self.spec.period_ns

    def to_spans(self) -> List[Span]:
        """The schedule as obs :class:`~repro.obs.tracer.Span` records.

        Spans carry ``category="sim"`` and a ``sim_track`` attribute
        (``"array-K"`` / ``"dma-C"``), which the Chrome exporter lays
        out as additional per-array/per-channel processes next to the
        serial device timeline.
        """
        out: List[Span] = []
        for i, tl in enumerate(self.spans, start=1):
            task = tl.task
            track = (f"array-{task.array}" if task.kind == "compute"
                     else f"dma-{task.channel}")
            attrs = {"sim_track": track, "kind": task.kind,
                     "stall": tl.stall}
            if task.frame >= 0:
                attrs["frame"] = task.frame
            if task.stage:
                attrs["stage"] = task.stage
            if tl.blocker:
                attrs["blocker"] = tl.blocker
            span = Span(name=task.name, category="sim", span_id=i,
                        trace_id=i, ts=tl.start,
                        dur=tl.end - tl.start, attrs=attrs)
            if task.kind == "compute":
                span.cycles = task.cycles
            if task.ledger is not None:
                span.ledger = task.ledger
                span.energy_pj = float(task.ledger.energy().total_pj)
            out.append(span)
        return out

    def record_metrics(self) -> None:
        """Publish stall/overlap counters to the metrics registry."""
        registry = get_registry()
        stalls = registry.counter(
            "sim_contention_stall_cycles_total",
            "Simulated cycles ready tasks spent stalled on busy "
            "resources, by resource class")
        for cls in ("compute", "bank", "dma"):
            stalls.inc(self.stall_cycles.get(cls, 0), resource=cls)
        registry.counter(
            "sim_dma_overlap_cycles_total",
            "Simulated DMA cycles that overlapped concurrent compute"
        ).inc(self.dma_overlap_cycles)

    def summary(self) -> dict:
        """JSON-ready accounting summary of this schedule."""
        return {
            "makespan_cycles": self.makespan,
            "time_us": round(self.time_ns() / 1e3, 3),
            "compute_busy_cycles": self.compute_busy_total,
            "utilization": round(
                self.compute_busy_total /
                (self.spec.n_arrays * self.makespan), 4)
            if self.makespan else 0.0,
            "stall_cycles": dict(self.stall_cycles),
            "dma_overlap_cycles": self.dma_overlap_cycles,
            "idle_cycles": self.idle_cycles_total,
            "dynamic_energy_uj": round(self.energy().total_pj / 1e6, 4),
            "idle_energy_uj": round(self.idle_energy_pj() / 1e6, 4),
            "tasks": len(self.spans),
        }


def simulate(tasks: Sequence[SimTask], spec: MachineSpec,
             seed: int = 0, record_metrics: bool = True) -> SimResult:
    """Schedule ``tasks`` onto ``spec`` and return the full timeline.

    Deterministic for a fixed ``seed``: arbitration between tasks that
    became ready at the same cycle follows a seeded permutation of the
    task indices (modelling fixed-but-arbitrary hardware arbitration),
    so re-running with the same inputs reproduces the event order
    bit-exactly.

    Raises:
        ValueError: on dependency indices out of range or a
            dependency cycle (the schedule would deadlock).
    """
    tasks = list(tasks)
    n = len(tasks)
    for i, task in enumerate(tasks):
        for dep in task.deps:
            if not 0 <= dep < n:
                raise ValueError(
                    f"task {i} ({task.name}) depends on {dep}, "
                    f"outside [0, {n})")
            if dep == i:
                raise ValueError(f"task {i} depends on itself")
        if task.kind == "compute" and not \
                0 <= task.array < spec.n_arrays:
            raise ValueError(
                f"task {i} targets array {task.array}, machine has "
                f"{spec.n_arrays}")
        if task.kind == "dma" and not \
                0 <= task.channel < spec.dma_channels:
            raise ValueError(
                f"task {i} targets DMA channel {task.channel}, "
                f"machine has {spec.dma_channels}")

    rng = random.Random(seed)
    rank = list(range(n))
    rng.shuffle(rank)

    indeg = [len(set(t.deps)) for t in tasks]
    dependents: List[List[int]] = [[] for _ in range(n)]
    for i, task in enumerate(tasks):
        for dep in set(task.deps):
            dependents[dep].append(i)

    free_at: Dict[Tuple, int] = {}
    ready_time = [0] * n
    start = [None] * n           # type: List[Optional[int]]
    blocker: List[Optional[str]] = [None] * n
    waiting = {i for i in range(n) if indeg[i] == 0}
    completions: List[Tuple[int, int, int]] = []   # (end, rank, idx)
    done = 0
    clock = 0

    while done < n:
        progressed = True
        while progressed:
            progressed = False
            while completions and completions[0][0] <= clock:
                _, _, i = heapq.heappop(completions)
                done += 1
                end = start[i] + tasks[i].cycles
                for j in dependents[i]:
                    indeg[j] -= 1
                    ready_time[j] = max(ready_time[j], end)
                    if indeg[j] == 0:
                        waiting.add(j)
                progressed = True
            for i in sorted(waiting, key=lambda k: (ready_time[k],
                                                    rank[k], k)):
                if ready_time[i] > clock:
                    continue
                resources = tasks[i].resources()
                busy = [r for r in resources
                        if free_at.get(r, 0) > clock]
                if busy:
                    worst = max(busy, key=lambda r: free_at[r])
                    blocker[i] = _RESOURCE_CLASS[worst[0]]
                    continue
                waiting.discard(i)
                start[i] = clock
                end = clock + tasks[i].cycles
                for r in resources:
                    free_at[r] = end
                heapq.heappush(completions, (end, rank[i], i))
                progressed = True
        if done >= n:
            break
        if not completions:
            stuck = [tasks[i].name for i in range(n)
                     if start[i] is None][:5]
            raise ValueError(
                f"dependency cycle: {n - done} tasks can never "
                f"start (first few: {stuck})")
        clock = completions[0][0]

    spans: List[TimelineSpan] = []
    busy_per_array: Dict[int, int] = {a: 0
                                      for a in range(spec.n_arrays)}
    dma_busy: Dict[int, int] = {c: 0
                                for c in range(spec.dma_channels)}
    stall_cycles: Dict[str, int] = {"compute": 0, "bank": 0, "dma": 0}
    compute_intervals: List[Tuple[int, int]] = []
    for i, task in enumerate(tasks):
        s = start[i]
        e = s + task.cycles
        stall = s - ready_time[i]
        cls = blocker[i] if stall > 0 and blocker[i] else None
        if cls:
            stall_cycles[cls] += stall
        spans.append(TimelineSpan(task=task, index=i, start=s, end=e,
                                  stall=stall, blocker=cls))
        if task.kind == "compute":
            busy_per_array[task.array] += task.cycles
            if task.cycles:
                compute_intervals.append((s, e))
        else:
            dma_busy[task.channel] += task.cycles
    spans.sort(key=lambda tl: (tl.start, tl.index))
    merged = _merge_intervals(compute_intervals)
    dma_overlap = sum(
        _overlap((tl.start, tl.end), merged) for tl in spans
        if tl.task.kind == "dma" and tl.end > tl.start)
    makespan = max((tl.end for tl in spans), default=0)

    result = SimResult(spec=spec, spans=spans, makespan=makespan,
                       busy_per_array=busy_per_array,
                       dma_busy_per_channel=dma_busy,
                       stall_cycles=stall_cycles,
                       dma_overlap_cycles=dma_overlap, seed=seed)
    if record_metrics:
        result.record_metrics()
    return result
