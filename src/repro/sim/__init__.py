"""Event-driven multi-array timing simulation and design-space sweep.

``repro.sim`` answers the question the serial
:class:`~repro.pim.cost.CostLedger` cannot: how does the pipeline
perform on a *system* of N PIM arrays, with banked SRAM, shared host
DMA channels, and stages of different frames in flight at once?

The package splits into:

* :mod:`repro.sim.machine` -- the machine model
  (:class:`~repro.sim.machine.MachineSpec`): array count, per-array
  geometry/banking, DMA channels, and the documented timing/energy
  modelling assumptions.
* :mod:`repro.sim.engine` -- the event-driven engine
  (:func:`~repro.sim.engine.simulate`): schedules a task DAG onto
  compute units, banks and DMA channels with deterministic seeded
  arbitration, attributing contention stalls and DMA/compute overlap.
* :mod:`repro.sim.workload` -- measures the edge pipeline's per-stage
  costs once on a real device and synthesizes F-frame task graphs
  under ``"frame"`` or ``"stage"`` placement.
* :mod:`repro.sim.sweep` -- the arrays x slice-width x buffer-capacity
  design-space sweep behind ``python -m repro.analysis sweep``,
  emitting the stamped ``BENCH_sweep.json`` with its Pareto front.

The load-bearing invariant: a single-array schedule under the paper's
I/O-free DMA accounting reproduces the serial ledger cycle total
**exactly** -- the simulator extends the cost model, it never forks it.
See ``docs/timing.md`` for the event/resource semantics.
"""

from repro.sim.engine import (SimResult, SimTask, TimelineSpan,
                              serial_cycles, simulate)
from repro.sim.machine import DEFAULT_MACHINE, MachineSpec
from repro.sim.sweep import pareto_front, run_sweep, write_bench
from repro.sim.workload import (EdgeWorkload, StageCost, build_tasks,
                                measure_edge_stage_costs)

__all__ = [
    "DEFAULT_MACHINE", "EdgeWorkload", "MachineSpec", "SimResult",
    "SimTask", "StageCost", "TimelineSpan", "build_tasks",
    "measure_edge_stage_costs", "pareto_front", "run_sweep",
    "serial_cycles", "simulate", "write_bench",
]
