"""Table formatting and trajectory plots (dependency-free SVG)."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

__all__ = ["format_table", "bar_chart", "trajectory_svg"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: Optional[str] = None) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([f"{v:.4g}" if isinstance(v, float) else str(v)
                      for v in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(c.ljust(w) for c, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def bar_chart(values: Dict[str, float], width: int = 50,
              title: Optional[str] = None) -> str:
    """ASCII horizontal bar chart (log-friendly figures like Fig. 9)."""
    if not values:
        return title or ""
    peak = max(values.values())
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for key, val in values.items():
        bar = "#" * max(1, int(round(width * val / max(peak, 1e-12))))
        lines.append(f"{key.ljust(label_w)} | {bar} {val:,.0f}")
    return "\n".join(lines)


def trajectory_svg(series: Dict[str, np.ndarray], path,
                   axes: tuple = (0, 2), size: int = 480,
                   colors: Optional[Dict[str, str]] = None) -> None:
    """Write a Fig. 8-style top-view trajectory overlay as SVG.

    Args:
        series: Name -> (N, 3) positions; conventionally
            ``{"groundtruth": ..., "estimated": ...}``.
        path: Output file path.
        axes: Which position axes to plot (default x/z top view).
        size: Canvas size in pixels.
        colors: Name -> SVG color (ground truth red, estimate green by
            default, matching the paper's figure).
    """
    colors = colors or {"groundtruth": "#cc2222", "estimated": "#22aa44"}
    pts = np.concatenate([np.asarray(s)[:, list(axes)]
                          for s in series.values()])
    lo = pts.min(axis=0)
    hi = pts.max(axis=0)
    span = np.maximum(hi - lo, 1e-6)
    margin = 30

    def to_px(xy):
        scale = (size - 2 * margin) / span.max()
        return (margin + (xy[:, 0] - lo[0]) * scale,
                size - margin - (xy[:, 1] - lo[1]) * scale)

    parts = [f'<svg xmlns="http://www.w3.org/2000/svg" width="{size}" '
             f'height="{size}" viewBox="0 0 {size} {size}">',
             f'<rect width="{size}" height="{size}" fill="white"/>']
    legend_y = 20
    for name, arr in series.items():
        xs, ys = to_px(np.asarray(arr)[:, list(axes)])
        points = " ".join(f"{x:.1f},{y:.1f}" for x, y in zip(xs, ys))
        color = colors.get(name, "#333333")
        parts.append(f'<polyline fill="none" stroke="{color}" '
                     f'stroke-width="2" points="{points}"/>')
        parts.append(f'<text x="{margin}" y="{legend_y}" fill="{color}" '
                     f'font-size="14">{name}</text>')
        legend_y += 18
    parts.append("</svg>")
    with open(path, "w") as fh:
        fh.write("\n".join(parts))
