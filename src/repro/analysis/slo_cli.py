"""``python -m repro.analysis slo``: inspect and gate a serve SLO report.

Reads a ``BENCH_serve.json`` (or ``serve_report.json``) written by
``python -m repro.serve``, prints the rolling-window SLO state as the
familiar analysis tables, and optionally *gates* it: with
``--p99-target`` / ``--max-miss-rate`` / ``--min-availability`` the
command exits non-zero when the report violates the objective, which
is how the CI serve-SLO smoke job turns the benchmark artifact into a
pass/fail signal.
"""

from __future__ import annotations

import json
import logging
import sys
from pathlib import Path
from typing import List

from repro.analysis.cli import (emit_json, init_logging,
                                subcommand_parser)
from repro.analysis.reporting import format_table

log = logging.getLogger(__name__)


def _fmt(value, digits: int = 4) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def evaluate_slo(report: dict, p99_target=None, max_miss_rate=None,
                 min_availability=None) -> List[str]:
    """Gate one report against the given objectives; [] = pass."""
    slo = report.get("slo")
    if slo is None:
        return ["report has no 'slo' section (re-run the loadgen "
                "from this revision)"]
    problems = []
    p99 = slo["latency_s"]["p99"]
    if p99_target is not None:
        if p99 is None:
            problems.append("p99 latency missing (no completed "
                            "requests in window)")
        elif p99 > p99_target:
            problems.append(
                f"p99 latency {p99:.4f}s exceeds target "
                f"{p99_target:.4f}s")
    if max_miss_rate is not None and \
            slo["deadline_miss_rate"] > max_miss_rate:
        problems.append(
            f"deadline-miss rate {slo['deadline_miss_rate']:.4f} "
            f"exceeds {max_miss_rate:.4f}")
    if min_availability is not None and \
            slo["availability"] < min_availability:
        problems.append(
            f"availability {slo['availability']:.6f} below "
            f"{min_availability:.6f}")
    return problems


def slo_main(argv=None) -> int:
    """Entry point of the SLO inspection/gating subcommand."""
    parser = subcommand_parser(
        "python -m repro.analysis slo", __doc__)
    parser.add_argument("report", nargs="?",
                        default="serve_output/BENCH_serve.json",
                        help="BENCH_serve.json / serve_report.json "
                             "path")
    parser.add_argument("--p99-target", type=float, default=None,
                        metavar="S",
                        help="fail if p99 latency exceeds S seconds "
                             "(or is missing)")
    parser.add_argument("--max-miss-rate", type=float, default=None,
                        metavar="R",
                        help="fail if the deadline-miss rate exceeds R")
    parser.add_argument("--min-availability", type=float, default=None,
                        metavar="A",
                        help="fail if windowed availability is below A")
    args = parser.parse_args(argv)
    init_logging(args)

    path = Path(args.report)
    if not path.exists():
        log.error("no such report: %s", path)
        return 2
    report = json.loads(path.read_text())
    slo = report.get("slo")
    problems = evaluate_slo(report, p99_target=args.p99_target,
                            max_miss_rate=args.max_miss_rate,
                            min_availability=args.min_availability)
    if args.json:
        emit_json({"report": str(path), "slo": slo,
                   "problems": problems})
        return 1 if problems else 0
    if slo is not None:
        print(format_table(
            ["quantile", "latency (s)", "queue wait (s)"],
            [[q, _fmt(slo["latency_s"][q]), _fmt(slo["queue_s"][q])]
             for q in ("p50", "p95", "p99", "max", "mean")],
            title=f"Serve SLO window ({slo['window_s']:.0f}s, "
                  f"{slo['samples']} samples) -- {path}"))
        budget = slo["error_budget"]
        print()
        print(format_table(
            ["metric", "value"],
            [["goodput (req/s)", _fmt(slo["goodput_rps"], 2)],
             ["availability", _fmt(slo["availability"], 6)],
             ["error rate", _fmt(slo["error_rate"], 6)],
             ["deadline-miss rate",
              _fmt(slo["deadline_miss_rate"], 6)],
             ["budget burn rate", _fmt(budget["burn_rate"], 3)],
             ["budget remaining",
              _fmt(budget["remaining_fraction"], 3)],
             ["outcomes", ", ".join(
                 f"{k}={v}" for k, v in slo["counts"].items())],
             ["git sha", report.get("git_sha") or "-"],
             ["stamped", report.get("timestamp") or "-"]],
            title="Objectives"))
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    if (args.p99_target is not None or
            args.max_miss_rate is not None or
            args.min_availability is not None):
        print("OK: report within every requested objective")
    return 0
