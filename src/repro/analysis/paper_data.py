"""The paper's published evaluation numbers (He et al., DAC 2022).

Every benchmark prints its measured values next to these so the
paper-vs-measured comparison of EXPERIMENTS.md is regenerated, not
hand-maintained.  Values marked *inferred* are read off bar charts
whose exact numbers the text does not state.
"""

from __future__ import annotations

__all__ = ["TABLE1", "FIG9A", "FIG9B", "FIG10", "HEADLINE"]

#: Table 1 - RMSE of relative pose error (translation m/s, rotation
#: deg/s) on the three TUM sequences.
TABLE1 = {
    "fr1_xyz": {"picovo": (0.030, 1.82), "pim": (0.039, 1.92)},
    "fr2_desk": {"picovo": (0.020, 0.69), "pim": (0.019, 0.64)},
    "fr3_st_ntex_far": {"picovo": (0.028, 0.77), "pim": (0.030, 0.86)},
}

#: Fig. 9-a - per-frame cycles, PicoVO on MCU vs PIM EBVO
#: (LM bar = 8 iterations).
FIG9A = {
    "picovo_edge": 1_419_120,
    "picovo_lm8": 4_320_000,
    "pim_edge": 29_104,       # text also quotes 29 117 as the sum
    "pim_lm8": 471_192,       # 8 x 58 899
}

#: Fig. 9-b - naive vs optimized PIM mappings (cycles).  The LPF/HPF/
#: NMS opt values and the LM values are quoted in the text; the naive
#: bars are inferred from the figure.  The text states overall ratios
#: of ~1.7x (edge) and 1.4x (LM).
FIG9B = {
    "lpf": {"naive": 9_282, "opt": 3_107},
    "hpf": {"naive": 16_411, "opt": 9_599},      # naive inferred
    "nms": {"naive": 27_351, "opt": 16_411},
    "lm": {"naive": 83_715, "opt": 58_899},
}

#: Fig. 10 and section 5.4 - energy.
FIG10 = {
    "picovo_frame_mj": 10.3,
    "pim_frame_mj": 0.495,
    "energy_reduction": 20.8,
    "sram_energy_share": 0.86,
}

#: Section 5.3 headline figures.
HEADLINE = {
    "edge_speedup": 48.0,
    "lm_speedup": 9.0,
    "overall_speedup": 11.0,
    "lm_iterations_mean": 8.1,
    "iso_performance_clock_mhz": 19.0,
}
