"""``python -m repro.analysis sweep``: the timing design-space sweep.

Measures the edge pipeline once on a real device, then sweeps the
:mod:`repro.sim` timing model across array count x accumulator slice
width x per-array buffer capacity (rows), writing the stamped
``BENCH_sweep.json`` with every point's cycles/energy, the Pareto
front, and the array-scaling series.  Always re-derives the
single-array conformance anchor first and **exits non-zero when the
simulated single-array schedule does not reproduce the serial ledger
cycle total exactly** -- that equality is what ties the whole sweep
back to the validated cost model, and CI gates on it.

Optionally (``--trace``) exports the best multi-array point's
simulated schedule as a Chrome trace, one process track per array and
per DMA channel, next to any device spans.
"""

from __future__ import annotations

import logging
import sys
from pathlib import Path

from repro.analysis.cli import emit_json, init_logging, \
    subcommand_parser
from repro.analysis.reporting import format_table
from repro.obs import write_chrome_trace
from repro.sim.sweep import (DEFAULT_ARRAYS, DEFAULT_CACHE_ROWS,
                             DEFAULT_SLICES, run_sweep, write_bench)
from repro.sim.workload import PLACEMENTS

log = logging.getLogger(__name__)


def _int_list(text: str):
    try:
        values = tuple(int(v) for v in text.split(",") if v.strip())
    except ValueError:
        raise ValueError(f"expected comma-separated ints, got {text!r}")
    if not values:
        raise ValueError("empty list")
    return values


def sweep_summary(payload: dict) -> str:
    """The sweep result as printable console tables."""
    anchor = payload["anchor"]
    lines = [format_table(
        ["quantity", "value"],
        [["serial ledger cycles", anchor["serial_ledger_cycles"]],
         ["1-array simulated cycles", anchor["simulated_cycles"]],
         ["exact", "yes" if anchor["exact"] else "NO - MISMATCH"]],
        title="Conformance anchor (1 array, I/O-free DMA)")]
    lines.append(format_table(
        ["arrays", "speedup", "stall cycles", "dma overlap"],
        [[row["arrays"], f"{row['speedup']:.2f}x",
          row["stall_cycles_total"], row["dma_overlap_cycles"]]
         for row in payload["scaling"]],
        title="Array scaling (default slice/capacity)"))
    lines.append(format_table(
        ["arrays", "slice", "rows", "place", "time (us)",
         "energy (uJ)", "speedup", "stalls"],
        [[p["arrays"], p["slice_bits"], p["cache_rows"],
          p["placement"], f"{p['time_us']:.1f}",
          f"{p['total_energy_uj']:.1f}", f"{p['speedup']:.2f}x",
          p["stall_cycles_total"]]
         for p in payload["pareto_front"]],
        title="Pareto front (min time, min energy)"))
    if payload["skipped"]:
        lines.append("skipped points:")
        lines.extend(f"  - {s['reason']}" for s in payload["skipped"])
    return "\n\n".join(lines)


def sweep_main(argv=None) -> int:
    """Entry point of the ``sweep`` subcommand."""
    parser = subcommand_parser(
        "python -m repro.analysis sweep", __doc__)
    parser.add_argument("--frames", type=int, default=8,
                        help="frames in the synthesized pipeline")
    parser.add_argument("--arrays", type=_int_list,
                        default=DEFAULT_ARRAYS,
                        help="comma-separated array counts")
    parser.add_argument("--slices", type=_int_list,
                        default=DEFAULT_SLICES,
                        help="comma-separated slice widths (bits)")
    parser.add_argument("--cache-rows", type=_int_list,
                        default=DEFAULT_CACHE_ROWS,
                        help="comma-separated per-array row counts")
    parser.add_argument("--placement", choices=list(PLACEMENTS) +
                        ["both"], default="frame",
                        help="task-to-array placement policy")
    parser.add_argument("--dma-cycles-per-row", type=int, default=8,
                        help="bus cycles per transferred row "
                             "(0 = the paper's I/O-free accounting)")
    parser.add_argument("--dma-channels", type=int, default=1,
                        help="independent host DMA channels")
    parser.add_argument("--height", type=int, default=240,
                        help="frame height (rows)")
    parser.add_argument("--width", type=int, default=320,
                        help="frame width (pixels)")
    parser.add_argument("--seed", type=int, default=0,
                        help="arbitration seed (event order is "
                             "deterministic per seed)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless some multi-array point "
                             "reaches X speedup")
    parser.add_argument("--out", default="analysis_output",
                        help="output directory")
    parser.add_argument("--trace", action="store_true",
                        help="export the fastest point's simulated "
                             "schedule as sweep_trace.json")
    args = parser.parse_args(argv)
    if args.frames < 1:
        parser.error("--frames must be >= 1")
    init_logging(args)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    placements = PLACEMENTS if args.placement == "both" \
        else (args.placement,)
    log.info("sweeping arrays=%s slices=%s cache_rows=%s "
             "placements=%s (%d frames of %dx%d)",
             args.arrays, args.slices, args.cache_rows, placements,
             args.frames, args.height, args.width)
    payload = run_sweep(
        frames=args.frames, arrays=args.arrays, slices=args.slices,
        cache_rows=args.cache_rows, placements=placements,
        dma_cycles_per_row=args.dma_cycles_per_row,
        dma_channels=args.dma_channels, seed=args.seed,
        height=args.height, width=args.width)

    bench_path = write_bench(out / "BENCH_sweep.json", payload)
    log.info("wrote %s (%d points, %d on the Pareto front)",
             bench_path, len(payload["points"]),
             len(payload["pareto_front"]))

    if args.trace and payload["points"]:
        _export_best_trace(payload, args, out)

    if args.json:
        emit_json(payload)
    else:
        print(sweep_summary(payload))

    if not payload["anchor"]["exact"]:
        print("FAIL: single-array simulation does not reproduce the "
              f"serial ledger total ({payload['anchor']})",
              file=sys.stderr)
        return 1
    if args.min_speedup is not None:
        best = max(p["speedup"] for p in payload["points"])
        if best < args.min_speedup:
            print(f"FAIL: best speedup {best:.2f}x below required "
                  f"{args.min_speedup:.2f}x", file=sys.stderr)
            return 1
    return 0


def _export_best_trace(payload: dict, args, out: Path) -> None:
    """Re-simulate the fastest point and export its schedule."""
    from repro.pim.config import PIMConfig
    from repro.sim.engine import simulate
    from repro.sim.machine import MachineSpec
    from repro.sim.workload import build_tasks, \
        measure_edge_stage_costs

    best = min(payload["points"], key=lambda p: p["time_us"])
    workload = measure_edge_stage_costs(height=args.height,
                                        width=args.width,
                                        seed=args.seed)
    spec = MachineSpec(
        n_arrays=best["arrays"],
        array=PIMConfig(wordline_bits=args.width * 8,
                        num_rows=best["cache_rows"],
                        slice_bits=best["slice_bits"],
                        num_banks=min(8, best["cache_rows"])),
        dma_channels=args.dma_channels,
        dma_cycles_per_row=args.dma_cycles_per_row)
    result = simulate(
        build_tasks(workload, spec, args.frames, best["placement"]),
        spec, seed=args.seed, record_metrics=False)
    path = write_chrome_trace(out / "sweep_trace.json",
                              spans=result.to_spans())
    log.info("wrote %s (best point: %d arrays, %d-bit slices, "
             "%d rows)", path, best["arrays"], best["slice_bits"],
             best["cache_rows"])


if __name__ == "__main__":
    raise SystemExit(sweep_main())
