"""``python -m repro.analysis trace``: end-to-end telemetry capture.

Tracks N synthetic frames through the full PIM stack with the span
tracer enabled -- edge detection on the simulated device per frame,
plus one device LM linearization per tracked frame so the warp /
jacobian / hessian kernels appear on the timeline -- then exports:

* ``trace.json``: Chrome trace-event JSON on the simulated-cycle
  timeline (load in Perfetto or ``chrome://tracing``),
* ``metrics.jsonl``: one JSON line per metric instrument,
* a Fig. 10-a/10-b style console summary (per-kernel cycles/energy and
  mem_rd/mem_wr/tmp_reg access shares).
"""

from __future__ import annotations

import logging
from pathlib import Path

import numpy as np

from repro.analysis.cli import (emit_json, init_logging,
                                subcommand_parser)
from repro.dataset import make_sequence
from repro.fixedpoint import Q14_2
from repro.geometry import se3_exp
from repro.kernels.lm_pipeline import lm_iteration_pim
from repro.kernels.warp import quantize_pose
from repro.obs import (
    console_summary,
    disable_tracing,
    enable_tracing,
    get_registry,
    write_chrome_trace,
    write_metrics_jsonl,
)
from repro.pim import PIMDevice
from repro.vo import EBVOTracker, PIMFrontend, TrackerConfig
from repro.vo.features import extract_features

log = logging.getLogger(__name__)


def trace_main(argv=None) -> int:
    """Entry point of the ``trace`` subcommand."""
    parser = subcommand_parser(
        "python -m repro.analysis trace", __doc__)
    parser.add_argument("--frames", type=int, default=8,
                        help="number of synthetic frames to track")
    parser.add_argument("--sequence", default="fr1_xyz",
                        help="synthetic sequence name")
    parser.add_argument("--out", default="analysis_output",
                        help="output directory")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    if args.frames < 1:
        parser.error("--frames must be >= 1")
    init_logging(args)
    out = Path(args.out)
    out.mkdir(exist_ok=True)

    sequence = make_sequence(args.sequence, n_frames=args.frames,
                             seed=args.seed)
    cfg = TrackerConfig(camera=sequence.camera, pim_device_detect=True)
    tracker = EBVOTracker(PIMFrontend(cfg), cfg)
    lm_device = PIMDevice()
    # A fixed feature set and a small perturbation pose for the
    # per-frame device linearization (the tracker's own solver runs on
    # the vectorized numpy mirror, so this is what puts the LM kernels
    # on the device timeline).
    first = sequence.frames[0]
    edge = tracker.frontend.detect(first.gray)
    qfeats = tracker.frontend.make_features(extract_features(
        edge, first.depth, cfg.max_features, cfg.min_depth,
        cfg.max_depth))
    qpose = quantize_pose(se3_exp(np.full(6, 0.01)))
    clamp = int(Q14_2.quantize(cfg.residual_clamp))

    log.info("tracing %d frames of %s (PIM device detect on)",
             args.frames, args.sequence)
    tracer = enable_tracing()
    try:
        for fr in sequence.frames:
            result = tracker.process(fr.gray, fr.depth, fr.timestamp)
            if result.lm is not None:
                maps = tracker.state.keyframe.maps[0]
                lm_iteration_pim(lm_device, qpose, qfeats, cfg.camera,
                                 maps.dt_raw, maps.gu_raw, maps.gv_raw,
                                 clamp)
    finally:
        disable_tracing()

    trace_path = out / "trace.json"
    metrics_path = out / "metrics.jsonl"
    write_chrome_trace(trace_path, tracer=tracer)
    write_metrics_jsonl(metrics_path, registry=get_registry())
    summary = console_summary(tracer=tracer)
    log.info("per-kernel attribution:\n%s", summary)
    (out / "trace_summary.txt").write_text(summary + "\n")
    log.info("wrote %s (%d spans) and %s", trace_path,
             len(tracer.spans), metrics_path)
    if args.json:
        emit_json({"trace": str(trace_path),
                   "metrics": str(metrics_path),
                   "summary": str(out / "trace_summary.txt"),
                   "spans": len(tracer.spans)})
    return 0


if __name__ == "__main__":
    raise SystemExit(trace_main())
