"""Regenerate every paper table/figure from the command line.

Usage::

    python -m repro.analysis [report] [--frames N] [--out DIR] [--verbose]
    python -m repro.analysis trace [--frames N] [--out DIR] [--verbose]
    python -m repro.analysis slo [BENCH_serve.json] [--p99-target S]
    python -m repro.analysis sweep [--arrays 1,2,4,8] [--out DIR]

The default (``report``) subcommand runs all experiment drivers and
writes the text reports (and Fig. 8 SVGs) to the output directory --
equivalent to the benchmark harness without pytest.  The ``trace``
subcommand tracks synthetic frames with telemetry enabled and exports
a Perfetto-loadable Chrome trace, a JSONL metrics stream and the
per-kernel attribution summary (see :mod:`repro.analysis.trace_cli`).
The ``slo`` subcommand pretty-prints (and optionally gates) a serving
SLO report written by ``python -m repro.serve`` (see
:mod:`repro.analysis.slo_cli`).  The ``sweep`` subcommand runs the
:mod:`repro.sim` multi-array design-space sweep and writes the stamped
``BENCH_sweep.json`` (see :mod:`repro.analysis.sweep_cli`).

All subcommands share the ``--verbose`` / ``--json`` flags via the
:mod:`repro.analysis.cli` parent parser.
"""

from __future__ import annotations

import logging
import sys
import time
from pathlib import Path

import numpy as np

from repro.analysis import (
    run_area_efficiency,
    run_bitserial_comparison,
    run_fig8_trajectories,
    run_fig9a_cycles,
    run_fig9b_naive_vs_opt,
    run_fig10_energy,
    run_headline,
    run_multireg_ablation,
    run_precision_ablation,
    run_quantization_ablation,
    run_sobel_vs_sad,
    run_table1_rpe,
    run_tmpreg_ablation,
    trajectory_svg,
)
from repro.analysis.cli import (emit_json, init_logging,
                                subcommand_parser)
from repro.analysis.reporting import format_table

log = logging.getLogger(__name__)


def main(argv=None) -> None:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "trace":
        from repro.analysis.trace_cli import trace_main
        raise SystemExit(trace_main(argv[1:]))
    if argv and argv[0] == "slo":
        from repro.analysis.slo_cli import slo_main
        raise SystemExit(slo_main(argv[1:]))
    if argv and argv[0] == "sweep":
        from repro.analysis.sweep_cli import sweep_main
        raise SystemExit(sweep_main(argv[1:]))
    if argv and argv[0] == "report":
        argv = argv[1:]
    parser = subcommand_parser("python -m repro.analysis", __doc__)
    parser.add_argument("--frames", type=int, default=60,
                        help="sequence length for the tracking runs")
    parser.add_argument("--out", default="analysis_output")
    args = parser.parse_args(argv)
    init_logging(args)
    out = Path(args.out)
    out.mkdir(exist_ok=True)

    written = []

    def emit(name: str, text: str) -> None:
        log.info("== %s %s\n%s", name, "=" * max(0, 60 - len(name)),
                 text)
        (out / f"{name}.txt").write_text(text + "\n")
        written.append(name)

    start = time.time()

    rows = run_table1_rpe(n_frames=args.frames)
    emit("table1", format_table(
        ["sequence", "float t/rot", "PIM t/rot", "paper PIM"],
        [[name,
          f"{d['picovo'][0]:.3f}/{d['picovo'][1]:.2f}",
          f"{d['pim'][0]:.3f}/{d['pim'][1]:.2f}",
          f"{d['paper']['pim'][0]:.3f}/{d['paper']['pim'][1]:.2f}"]
         for name, d in rows.items()],
        title="Table 1 - RPE RMSE"))

    fig8 = run_fig8_trajectories(n_frames=args.frames)
    for name, data in fig8.items():
        trajectory_svg({"groundtruth": data["groundtruth"],
                        "estimated": data["estimated"]},
                       out / f"fig8_{name}.svg")
    emit("fig8", format_table(
        ["sequence", "RPE t", "RPE rot", "max gap (m)"],
        [[name, f"{d['rpe_t']:.3f}", f"{d['rpe_rot']:.2f}",
          f"{np.linalg.norm(d['estimated'] - d['groundtruth'], axis=1).max():.3f}"]
         for name, d in fig8.items()],
        title="Fig. 8 - trajectories (SVGs written alongside)"))

    f9a = run_fig9a_cycles()
    emit("fig9a", format_table(
        ["phase", "PicoVO", "PIM", "speedup"],
        [["edge", f9a["picovo_edge"], f9a["pim_edge"],
          f"{f9a['edge_speedup']:.1f}x"],
         ["LM x8", f9a["picovo_lm8"], f9a["pim_lm8"],
          f"{f9a['lm_speedup']:.1f}x"]],
        title="Fig. 9-a - cycles"))

    f9b = run_fig9b_naive_vs_opt()
    emit("fig9b", format_table(
        ["kernel", "naive", "opt", "ratio"],
        [[k, f9b[k]["naive"], f9b[k]["opt"],
          f"{f9b[k]['naive'] / f9b[k]['opt']:.2f}x"]
         for k in ("lpf", "hpf", "nms", "lm")],
        title="Fig. 9-b - naive vs optimized"))

    f10 = run_fig10_energy()
    emit("fig10", format_table(
        ["quantity", "value"],
        [["PIM mJ/frame", f"{f10['pim_frame_mj']:.3f}"],
         ["PicoVO mJ/frame", f"{f10['picovo_frame_mj']:.2f}"],
         ["reduction", f"{f10['energy_reduction']:.1f}x"],
         ["SRAM share", f"{f10['component_shares']['sram']:.1%}"]],
        title="Fig. 10 - energy"))

    head = run_headline()
    emit("headline", format_table(
        ["metric", "measured", "paper"],
        [["overall speedup", f"{head['overall_speedup']:.1f}x", "11x"],
         ["energy reduction", f"{head['energy_reduction']:.1f}x",
          "20.8x"],
         ["iso clock", f"{head['iso_performance_clock_mhz']:.1f} MHz",
          "~19 MHz"]],
        title="Headline"))

    quant = run_quantization_ablation()
    emit("ablation_quantization", format_table(
        ["bits", "max err (px)"],
        [[b, f"{d['max_error_px']:.2f}"] for b, d in sorted(quant.items())],
        title="Feature quantization"))

    tmp = run_tmpreg_ablation()
    multi = run_multireg_ablation()
    serial = run_bitserial_comparison()
    prec = run_precision_ablation()
    sobel = run_sobel_vs_sad()
    eff = run_area_efficiency()
    emit("ablations", "\n\n".join([
        format_table(["mapping", "cycles", "sram wr"],
                     [[k, tmp[k]["cycles"], tmp[k]["sram_writes"]]
                      for k in ("tmp_chained", "sram_materialized")],
                     title="Tmp chaining (HPF)"),
        format_table(["bank", "cycles", "sram wr"],
                     [[k, multi[k]["cycles"], multi[k]["sram_writes"]]
                      for k in (1, 2)],
                     title="Tmp bank size (edge pipeline)"),
        format_table(["phase", "bit-serial latency slowdown"],
                     [[k, f"{serial[k]['latency_slowdown']:.1f}x"]
                      for k in ("edge", "lm_iteration")],
                     title="Bit-serial comparison"),
        format_table(["mode", "lanes", "mul elems/cycle"],
                     [[f"{p}b", d["lanes"],
                       f"{d['mul_elems_per_cycle']:.2f}"]
                      for p, d in sorted(prec.items())],
                     title="Precision modes"),
        format_table(["HPF variant", "cycles"],
                     [["sat-SAD", sobel["sad"]["cycles"]],
                      ["Sobel |gx|+|gy|", sobel["sobel_abs"]["cycles"]],
                      ["Sobel exact", sobel["sobel_exact"]["cycles"]]],
                     title="Sobel vs SAD (section 3.2)"),
        format_table(["metric", "value"],
                     [["macro area", f"{eff['macro_area_mm2']:.2f} mm^2"],
                      ["peak 8-bit", f"{eff['peak_gops_8b']:.0f} GOPS"],
                      ["EBVO fps @216 MHz",
                       f"{eff['fps_at_216mhz']:.0f}"]],
                     title="Derived accelerator metrics"),
    ]))

    log.info("all reports written to %s/ (%.0f s)", out,
             time.time() - start)
    if args.json:
        emit_json({"out": str(out), "reports": written,
                   "seconds": round(time.time() - start, 1)})


if __name__ == "__main__":
    main()
