"""Shared command-line plumbing for the ``repro.analysis`` subcommands.

Every subcommand (``report`` / ``trace`` / ``slo`` / ``sweep``) takes
the same cross-cutting flags -- ``--verbose`` console logging and
``--json`` machine-readable output -- so they are defined once here as
an argparse *parent* parser instead of each CLI re-declaring its own
copies.  Subcommands build their parser with
:func:`subcommand_parser` and call :func:`init_logging` right after
parsing.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs import setup_logging

__all__ = ["common_parent", "subcommand_parser", "init_logging",
           "emit_json"]


def common_parent() -> argparse.ArgumentParser:
    """The shared flags every analysis subcommand accepts."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("common options")
    group.add_argument("--verbose", action="store_true",
                       help="debug-level console logging")
    group.add_argument("--json", action="store_true",
                       help="machine-readable JSON on stdout instead "
                            "of tables")
    return parent


def subcommand_parser(prog: str, description: str,
                      **kwargs) -> argparse.ArgumentParser:
    """An ArgumentParser pre-wired with the common parent flags."""
    return argparse.ArgumentParser(
        prog=prog, description=description,
        parents=[common_parent()], **kwargs)


def init_logging(args: argparse.Namespace) -> None:
    """Configure console logging from the parsed common flags."""
    setup_logging(verbose=args.verbose)


def emit_json(payload) -> None:
    """Print one JSON document on stdout (the ``--json`` contract)."""
    json.dump(payload, sys.stdout, indent=2, sort_keys=False,
              default=str)
    sys.stdout.write("\n")
