"""Drivers that regenerate the paper's tables and figures.

Each ``run_*`` function returns plain dictionaries/arrays so the
benchmark harness can print paper-vs-measured rows and the tests can
assert the qualitative shape (who wins, by roughly what factor).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Sequence

import numpy as np

from repro.analysis import paper_data
from repro.baseline import (
    lm_iteration_cycles,
    picoedge_cycles,
    picovo_frame_energy_mj,
)
from repro.dataset import make_sequence
from repro.dataset.sequences import SEQUENCE_NAMES, SyntheticSequence
from repro.evaluation import relative_pose_error
from repro.fixedpoint import Q14_2, QFormat
from repro.geometry import SE3, TUM_QVGA, inverse_depth_coords, se3_exp
from repro.kernels.edge_detect import detect_edges_fast, detect_edges_pim
from repro.kernels.hpf import hpf_fast, hpf_pim, hpf_pim_naive
from repro.kernels.lm_pipeline import lm_iteration_pim
from repro.kernels.lpf import lpf_fast, lpf_pim, lpf_pim_naive
from repro.kernels.nms import nms_pim, nms_pim_naive
from repro.kernels.common import load_image
from repro.kernels.warp import (
    quantize_features,
    quantize_pose,
    warp_fast,
    warp_float,
)
from repro.pim import PIMDevice
from repro.pim.energy import CLOCK_HZ, EnergyModel
from repro.vision.distance_transform import distance_transform, dt_gradient
from repro.vo import EBVOTracker, FloatFrontend, PIMFrontend, TrackerConfig
from repro.vo.features import extract_features

__all__ = [
    "representative_frame",
    "prepare_lm_inputs",
    "run_table1_rpe",
    "run_fig8_trajectories",
    "run_fig9a_cycles",
    "run_fig9b_naive_vs_opt",
    "run_fig10_energy",
    "run_headline",
    "run_quantization_ablation",
    "run_tmpreg_ablation",
    "run_multireg_ablation",
    "run_bitserial_comparison",
    "run_sobel_vs_sad",
    "run_fault_robustness",
    "run_area_efficiency",
    "run_threshold_sweep",
    "run_precision_ablation",
]

CAM = TUM_QVGA
#: Nominal tracked-feature count for the cycle experiments (the paper
#: reports 3000~6000 at QVGA; its LM totals are consistent with ~4500
#: on the MCU side).
NOMINAL_FEATURES = 3500


def representative_frame(seed: int = 0):
    """One QVGA frame of the fr1-style room scene."""
    seq = make_sequence("fr1_xyz", n_frames=1, seed=seed)
    return seq.frames[0]


def prepare_lm_inputs(n_features: int = NOMINAL_FEATURES, seed: int = 0):
    """Quantized features, pose and keyframe maps from a real frame.

    Uses the synthetic room frame so feature geometry and DT statistics
    match what the tracker actually sees.
    """
    frame = representative_frame(seed)
    cfg = TrackerConfig()
    edge = detect_edges_fast(frame.gray, cfg.th1, cfg.th2).edge_map
    feats = extract_features(edge, frame.depth, n_features,
                             cfg.min_depth, cfg.max_depth)
    a, b, c = inverse_depth_coords(CAM, feats.u, feats.v, feats.depth)
    qfeats = quantize_features(a, b, c)
    qpose = quantize_pose(se3_exp(np.full(6, 0.01)))
    dt = distance_transform(edge)
    gu, gv = dt_gradient(dt)
    dt_raw = np.asarray(Q14_2.quantize(dt), dtype=np.int64)
    gu_raw = np.asarray(Q14_2.quantize(gu * CAM.fx), dtype=np.int64)
    gv_raw = np.asarray(Q14_2.quantize(gv * CAM.fy), dtype=np.int64)
    clamp = int(Q14_2.quantize(cfg.residual_clamp))
    return qpose, qfeats, (dt_raw, gu_raw, gv_raw), clamp


def _track(sequence: SyntheticSequence, frontend_cls) -> Dict:
    cfg = TrackerConfig(camera=sequence.camera)
    tracker = EBVOTracker(frontend_cls(cfg), cfg)
    for fr in sequence.frames:
        tracker.process(fr.gray, fr.depth, fr.timestamp)
    rpe = relative_pose_error(tracker.trajectory, sequence.groundtruth,
                              delta=int(sequence.fps), fps=sequence.fps)
    lm = [r.lm for r in tracker.results if r.lm]
    return {
        "rpe_t": rpe.translation_rmse,
        "rpe_rot": rpe.rotation_rmse,
        "trajectory": tracker.trajectory,
        "lm_iterations_mean": float(np.mean([s.iterations for s in lm]))
        if lm else 0.0,
        "keyframes": sum(r.is_keyframe for r in tracker.results),
    }


def run_table1_rpe(n_frames: int = 120,
                   sequences: Sequence[str] = SEQUENCE_NAMES,
                   seed: int = 0) -> Dict:
    """Table 1: RPE RMSE of the float (PicoVO-class) and PIM frontends."""
    rows = {}
    for name in sequences:
        seq = make_sequence(name, n_frames=n_frames, seed=seed)
        float_res = _track(seq, FloatFrontend)
        pim_res = _track(seq, PIMFrontend)
        rows[name] = {
            "picovo": (float_res["rpe_t"], float_res["rpe_rot"]),
            "pim": (pim_res["rpe_t"], pim_res["rpe_rot"]),
            "paper": paper_data.TABLE1.get(name),
            "lm_iterations_mean": pim_res["lm_iterations_mean"],
        }
    return rows


def run_fig8_trajectories(sequences: Sequence[str] = ("fr1_xyz",
                                                      "fr3_st_ntex_far"),
                          n_frames: int = 120, seed: int = 0) -> Dict:
    """Fig. 8: estimated vs ground-truth trajectories (PIM frontend).

    The estimate is gauge-aligned by pre-multiplying with the first
    ground-truth pose (the tracker starts at identity).
    """
    out = {}
    for name in sequences:
        seq = make_sequence(name, n_frames=n_frames, seed=seed)
        res = _track(seq, PIMFrontend)
        anchor = seq.groundtruth[0]
        est = [anchor @ p for p in res["trajectory"]]
        out[name] = {
            "groundtruth": np.stack([p.t for p in seq.groundtruth]),
            "estimated": np.stack([p.t for p in est]),
            "rpe_t": res["rpe_t"],
            "rpe_rot": res["rpe_rot"],
        }
    return out


def run_fig9a_cycles(n_features: int = NOMINAL_FEATURES,
                     iterations: int = 8, seed: int = 0) -> Dict:
    """Fig. 9-a: per-frame cycles of PicoVO-on-MCU vs PIM EBVO."""
    frame = representative_frame(seed)
    device = PIMDevice()
    edge_result = detect_edges_pim(device, frame.gray)
    qpose, qfeats, maps, clamp = prepare_lm_inputs(n_features, seed)
    lm_device = PIMDevice()
    _, _, breakdown = lm_iteration_pim(lm_device, qpose, qfeats, CAM,
                                       *maps, clamp)
    pim_edge = edge_result.total_cycles
    pim_lm = breakdown.total
    mcu_edge = picoedge_cycles()
    mcu_lm = lm_iteration_cycles(n_features)
    return {
        "n_features": len(qfeats),
        "pim_edge": pim_edge,
        "pim_edge_stages": dict(edge_result.cycles),
        "pim_lm_iter": pim_lm,
        "pim_lm8": pim_lm * iterations,
        "pim_lm_stages": vars(breakdown),
        "picovo_edge": mcu_edge,
        "picovo_lm_iter": mcu_lm,
        "picovo_lm8": mcu_lm * iterations,
        "edge_speedup": mcu_edge / pim_edge,
        "lm_speedup": mcu_lm / pim_lm,
        "overall_speedup": (mcu_edge + iterations * mcu_lm) /
                           (pim_edge + iterations * pim_lm),
        "paper": dict(paper_data.FIG9A),
    }


def run_fig9b_naive_vs_opt(n_features: int = NOMINAL_FEATURES,
                           seed: int = 0) -> Dict:
    """Fig. 9-b: naive vs optimized PIM mappings of each kernel."""
    frame = representative_frame(seed)
    gray = np.asarray(frame.gray, dtype=np.int64)
    height = gray.shape[0]
    out = {}

    dev = PIMDevice()
    load_image(dev, gray)
    lpf_pim(dev, height)
    lpf_opt = dev.ledger.cycles
    dev = PIMDevice()
    lpf_pim_naive(dev, gray)
    out["lpf"] = {"opt": lpf_opt, "naive": dev.ledger.cycles}

    smooth = lpf_fast(gray)
    dev = PIMDevice()
    load_image(dev, smooth)
    hpf_pim(dev, height)
    hpf_opt = dev.ledger.cycles
    dev = PIMDevice()
    hpf_pim_naive(dev, smooth)
    out["hpf"] = {"opt": hpf_opt, "naive": dev.ledger.cycles}

    response = hpf_fast(smooth)
    cfg = TrackerConfig()
    dev = PIMDevice()
    load_image(dev, response)
    nms_pim(dev, height, cfg.th1, cfg.th2)
    nms_opt = dev.ledger.cycles
    dev = PIMDevice()
    nms_pim_naive(dev, response, cfg.th1, cfg.th2)
    out["nms"] = {"opt": nms_opt, "naive": dev.ledger.cycles}

    qpose, qfeats, maps, clamp = prepare_lm_inputs(n_features, seed)
    dev = PIMDevice()
    _, _, br = lm_iteration_pim(dev, qpose, qfeats, CAM, *maps, clamp)
    dev = PIMDevice()
    _, _, br_naive = lm_iteration_pim(dev, qpose, qfeats, CAM, *maps,
                                      clamp, naive=True)
    out["lm"] = {"opt": br.total, "naive": br_naive.total}

    edge_opt = sum(out[k]["opt"] for k in ("lpf", "hpf", "nms"))
    edge_naive = sum(out[k]["naive"] for k in ("lpf", "hpf", "nms"))
    out["summary"] = {
        "edge_ratio": edge_naive / edge_opt,
        "lm_ratio": out["lm"]["naive"] / out["lm"]["opt"],
    }
    out["paper"] = {k: dict(v) for k, v in paper_data.FIG9B.items()}
    return out


def run_fig10_energy(n_features: int = NOMINAL_FEATURES,
                     iterations: int = 8, seed: int = 0) -> Dict:
    """Fig. 10 / section 5.4: per-frame energy and its decomposition."""
    frame = representative_frame(seed)
    device = PIMDevice()
    detect_edges_pim(device, frame.gray)
    qpose, qfeats, maps, clamp = prepare_lm_inputs(n_features, seed)
    for _ in range(iterations):
        lm_iteration_pim(device, qpose, qfeats, CAM, *maps, clamp)
    report = device.ledger.energy(EnergyModel())
    shares = report.shares()
    accesses = device.ledger.accesses.shares()
    mcu_mj = picovo_frame_energy_mj(n_features, lm_iterations=iterations)
    return {
        "pim_frame_mj": report.total_mj,
        "component_shares": shares,
        "access_shares": accesses,
        "picovo_frame_mj": mcu_mj,
        "energy_reduction": mcu_mj / report.total_mj,
        "cycles": device.ledger.cycles,
        "paper": dict(paper_data.FIG10),
    }


def run_headline(n_features: int = NOMINAL_FEATURES,
                 iterations: int = 8, seed: int = 0) -> Dict:
    """Section 5.3/5.4 headline: overall speedup, energy, iso-clock."""
    fig9a = run_fig9a_cycles(n_features, iterations, seed)
    fig10 = run_fig10_energy(n_features, iterations, seed)
    pim_total = fig9a["pim_edge"] + fig9a["pim_lm8"]
    mcu_total = fig9a["picovo_edge"] + fig9a["picovo_lm8"]
    iso_clock_mhz = CLOCK_HZ / 1e6 * pim_total / mcu_total
    return {
        "overall_speedup": fig9a["overall_speedup"],
        "edge_speedup": fig9a["edge_speedup"],
        "lm_speedup": fig9a["lm_speedup"],
        "energy_reduction": fig10["energy_reduction"],
        "iso_performance_clock_mhz": iso_clock_mhz,
        "pim_frame_cycles": pim_total,
        "picovo_frame_cycles": mcu_total,
        "paper": dict(paper_data.HEADLINE),
    }


def run_quantization_ablation(total_bits: Iterable[int] = (8, 10, 12,
                                                           14, 16),
                              n_features: int = 1000,
                              seed: int = 0) -> Dict:
    """Section 3.3 ablation: warp error vs feature quantization width.

    Features keep 4 integer bits (the inverse-depth dynamic range);
    the fraction field shrinks with the total width.
    """
    rng = np.random.default_rng(seed)
    u = rng.uniform(15, CAM.width - 15, n_features)
    v = rng.uniform(15, CAM.height - 15, n_features)
    d = rng.uniform(0.6, 6.0, n_features)
    a, b, c = inverse_depth_coords(CAM, u, v, d)
    pose = se3_exp(rng.uniform(-0.03, 0.03, 6))
    ref = warp_float(pose, a, b, c, CAM)
    qpose = quantize_pose(pose)
    out = {}
    for bits in total_bits:
        fmt = QFormat(4, bits - 4)
        res = warp_fast(qpose, quantize_features(a, b, c, fmt), CAM)
        uq, vq = res.uv_float()
        mask = ref.valid & res.valid
        err = np.hypot(uq[mask] - ref.u[mask], vq[mask] - ref.v[mask])
        out[bits] = {
            "max_error_px": float(err.max()) if err.size else np.inf,
            "mean_error_px": float(err.mean()) if err.size else np.inf,
            "valid_fraction": float(mask.mean()),
        }
    return out


def run_tmpreg_ablation(seed: int = 0) -> Dict:
    """Section 5.4 ablation: Tmp-register chaining vs SRAM round trips.

    Compares the optimized HPF (partial sums chained through Tmp) with
    the naive mapping (every intermediate written back) on SRAM-write
    traffic and energy.
    """
    frame = representative_frame(seed)
    smooth = lpf_fast(np.asarray(frame.gray, dtype=np.int64))
    dev_opt = PIMDevice()
    load_image(dev_opt, smooth)
    hpf_pim(dev_opt, smooth.shape[0])
    dev_naive = PIMDevice()
    hpf_pim_naive(dev_naive, smooth)
    out = {}
    for name, dev in (("tmp_chained", dev_opt),
                      ("sram_materialized", dev_naive)):
        report = dev.ledger.energy(EnergyModel())
        out[name] = {
            "sram_writes": dev.ledger.sram_writes,
            "sram_reads": dev.ledger.sram_reads,
            "tmp_accesses": dev.ledger.tmp_accesses,
            "cycles": dev.ledger.cycles,
            "energy_mj": report.total_mj,
        }
    out["write_reduction"] = (out["sram_materialized"]["sram_writes"] /
                              max(out["tmp_chained"]["sram_writes"], 1))
    out["energy_ratio"] = (out["sram_materialized"]["energy_mj"] /
                           out["tmp_chained"]["energy_mj"])
    return out


def run_bitserial_comparison(n_features: int = NOMINAL_FEATURES,
                             seed: int = 0) -> Dict:
    """Section 2.2 architecture study: bit-serial vs bit-parallel.

    Runs the edge-detection and LM kernels on the bit-parallel device,
    then re-prices the identical op streams on the bit-serial cost
    model (Neural-Cache-style transposed computing).  Reproduces the
    argument behind the paper's design choice: similar machinery, but
    the bit-serial execution needs several times more cycles for the
    same frame, before even counting operand transposition.
    """
    from repro.pim.bitserial import price_profile

    frame = representative_frame(seed)
    device = PIMDevice()
    detect_edges_pim(device, frame.gray)
    edge_profile = Counter(device.ledger.op_profile)
    edge_parallel = device.ledger.cycles

    qpose, qfeats, maps, clamp = prepare_lm_inputs(n_features, seed)
    lm_device = PIMDevice()
    lm_iteration_pim(lm_device, qpose, qfeats, CAM, *maps, clamp)
    lm_profile = Counter(lm_device.ledger.op_profile)
    lm_parallel = lm_device.ledger.cycles

    lanes_of = device.config.lanes
    out = {}
    for name, profile, parallel in (
            ("edge", edge_profile, edge_parallel),
            ("lm_iteration", lm_profile, lm_parallel)):
        latency = price_profile(profile, lanes_of, packing="payload")
        throughput = price_profile(profile, lanes_of, packing="perfect")
        out[name] = {
            "bit_parallel_cycles": parallel,
            "bit_serial_latency_cycles": latency["cycles"],
            "bit_serial_latency_with_transpose":
                latency["cycles_with_transpose"],
            "latency_slowdown": latency["cycles"] / parallel,
            "latency_slowdown_with_transpose":
                latency["cycles_with_transpose"] / parallel,
            "throughput_bound_cycles": throughput["cycles"],
            "throughput_bound_ratio": throughput["cycles"] / parallel,
        }
    return out


def run_sobel_vs_sad(seed: int = 0) -> Dict:
    """Section 3.2 claim: the traditional Sobel HPF is "obviously
    costly" on PIM compared to the proposed sat-SAD kernel.

    Runs all three high-pass variants over the same smoothed QVGA
    frame on the device: the paper's 4-direction SAD (8-bit, shift
    reuse), the exact Sobel magnitude (16-bit gradients, squares and
    the in-PIM integer square root) and the ``|gx| + |gy|``
    approximation (16-bit, no root).
    """
    from repro.kernels.sobel import sobel_hpf_pim

    frame = representative_frame(seed)
    smooth = lpf_fast(np.asarray(frame.gray, dtype=np.int64))
    out = {}

    device = PIMDevice()
    load_image(device, smooth)
    hpf_pim(device, smooth.shape[0])
    out["sad"] = {"cycles": device.ledger.cycles, "precision": "8-bit"}

    device = PIMDevice()
    sobel_hpf_pim(device, smooth, exact=False)
    out["sobel_abs"] = {"cycles": device.ledger.cycles,
                        "precision": "16-bit"}

    device = PIMDevice()
    sobel_hpf_pim(device, smooth, exact=True)
    out["sobel_exact"] = {"cycles": device.ledger.cycles,
                          "precision": "16-bit + isqrt"}

    out["abs_ratio"] = out["sobel_abs"]["cycles"] / out["sad"]["cycles"]
    out["exact_ratio"] = (out["sobel_exact"]["cycles"] /
                          out["sad"]["cycles"])
    return out


def run_multireg_ablation(seed: int = 0,
                          register_counts: Sequence[int] = (1, 2)) -> Dict:
    """Section 5.4 extension: a larger Tmp register bank.

    "Using one Tmp Reg is a modest setup in this work, and we could
    use more registers to further improve the efficiency of both
    computation and power."  The edge-detection kernels exploit a
    second register automatically; this runs the full in-PIM edge
    pipeline per bank size and reports cycles, SRAM traffic and
    energy.  Results are bit-identical across bank sizes.
    """
    from repro.pim.config import PIMConfig

    frame = representative_frame(seed)
    gray = np.asarray(frame.gray, dtype=np.int64)
    out = {}
    edge_maps = []
    for count in register_counts:
        device = PIMDevice(PIMConfig(num_tmp_registers=count))
        result = detect_edges_pim(device, gray)
        edge_maps.append(result.edge_map)
        report = device.ledger.energy(EnergyModel())
        out[count] = {
            "cycles": result.total_cycles,
            "stage_cycles": dict(result.cycles),
            "sram_writes": device.ledger.sram_writes,
            "sram_reads": device.ledger.sram_reads,
            "energy_uj": report.total_pj * 1e-6,
        }
    base = register_counts[0]
    for count in register_counts[1:]:
        assert np.array_equal(edge_maps[0],
                              edge_maps[register_counts.index(count)])
        out[f"gain_{base}_to_{count}"] = {
            "cycle_reduction": out[base]["cycles"] / out[count]["cycles"],
            "write_reduction": out[base]["sram_writes"] /
                               max(out[count]["sram_writes"], 1),
            "energy_reduction": out[base]["energy_uj"] /
                                out[count]["energy_uj"],
        }
    return out


def run_threshold_sweep(th1_values: Sequence[int] = (20, 40, 60, 80),
                        seed: int = 0) -> Dict:
    """Sensitivity of the edge detector's strength threshold.

    The paper does not publish its th1/th2; this sweep shows the
    operating window: feature count versus single-pair pose accuracy
    of the quantized pipeline across th1 (th2 fixed at 2).  The
    feature count falls with th1; accuracy is flat over a wide window
    and only degrades when features get scarce.
    """
    from repro.dataset.synthetic import make_room_scene, render_frame
    from repro.vo.frontend import PIMFrontend
    from repro.vo.lm import lm_estimate

    scene = make_room_scene(seed=seed)
    true_rel = se3_exp(np.array([0.015, -0.01, 0.012, 0.004, -0.006,
                                 0.003]))
    key = render_frame(scene, SE3.identity(), CAM)
    cur = render_frame(scene, SE3.identity() @ true_rel, CAM)
    out = {}
    for th1 in th1_values:
        cfg = TrackerConfig(th1=th1)
        frontend = PIMFrontend(cfg)
        maps = frontend.prepare_keyframe(frontend.detect(key.gray))
        features = extract_features(frontend.detect(cur.gray),
                                    cur.depth, cfg.max_features,
                                    cfg.min_depth, cfg.max_depth)
        feats = frontend.make_features(features)
        pose, stats = lm_estimate(frontend, feats, maps,
                                  SE3.identity(), cfg)
        t_err, r_err = pose.distance_to(true_rel)
        out[th1] = {
            "features": len(features),
            "pose_error_m": t_err,
            "pose_error_deg": float(np.degrees(r_err)),
            "lost": stats.lost,
        }
    return out


def run_area_efficiency(n_features: int = NOMINAL_FEATURES,
                        iterations: int = 8, seed: int = 0) -> Dict:
    """Accelerator-style efficiency metrics from the area/energy models.

    Computes the numbers an accelerator paper's comparison table would
    carry: macro area (90 nm), peak 8-bit throughput, achieved
    frame-level throughput/efficiency of the EBVO workload at the
    iso-performance clock, and energy efficiency (GOPS/W, frames/mJ).
    """
    from repro.pim.energy import AreaModel

    fig9a = run_fig9a_cycles(n_features, iterations, seed)
    fig10 = run_fig10_energy(n_features, iterations, seed)
    area = AreaModel()
    device = PIMDevice()
    lanes8 = device.config.lanes(8)
    clock_mhz = CLOCK_HZ / 1e6
    peak_gops = lanes8 * CLOCK_HZ / 1e9  # one 8-bit op/lane/cycle
    frame_cycles = fig9a["pim_edge"] + fig9a["pim_lm8"]
    frame_energy_mj = fig10["pim_frame_mj"]
    fps_at_full_clock = CLOCK_HZ / frame_cycles
    total_mm2 = area.total_um2 / 1e6
    return {
        "macro_area_mm2": total_mm2,
        "logic_overhead": area.logic_overhead,
        "peak_gops_8b": peak_gops,
        "peak_gops_per_mm2": peak_gops / total_mm2,
        "frame_cycles": frame_cycles,
        "fps_at_216mhz": fps_at_full_clock,
        "frame_energy_mj": frame_energy_mj,
        "frames_per_mj": 1.0 / frame_energy_mj,
        "gops_per_w": peak_gops / (
            frame_energy_mj * 1e-3 * fps_at_full_clock),
        "clock_mhz": clock_mhz,
    }


def run_fault_robustness(rates: Sequence[float] = (0.0, 1e-6, 1e-5,
                                                   1e-4),
                         n_frames: int = 35, seed: int = 0) -> Dict:
    """Reliability study: tracking drift vs SRAM bit-flip rate.

    Flips random stored image bits at the given per-bit-per-frame
    rates before each frame is processed (the fault model of a
    disturbed 6T array under aggressive voltage scaling) and measures
    the quantized tracker's drift.  Not a paper experiment - a
    reliability extension enabled by the fault-injection hook.
    """
    seq = make_sequence("fr1_xyz", n_frames=n_frames, seed=seed)
    total_bits = CAM.width * CAM.height * 8
    out = {}
    for rate in rates:
        rng = np.random.default_rng(123)
        cfg = TrackerConfig()
        tracker = EBVOTracker(PIMFrontend(cfg), cfg)
        for frame in seq.frames:
            gray = np.asarray(frame.gray, dtype=np.int64).copy()
            n_flips = rng.poisson(rate * total_bits)
            for _ in range(n_flips):
                y = int(rng.integers(0, CAM.height))
                x = int(rng.integers(0, CAM.width))
                bit = int(rng.integers(0, 8))
                gray[y, x] ^= 1 << bit
            tracker.process(gray, frame.depth, frame.timestamp)
        rpe = relative_pose_error(tracker.trajectory, seq.groundtruth,
                                  delta=30)
        out[rate] = {
            "rpe_t": rpe.translation_rmse,
            "rpe_rot": rpe.rotation_rmse,
        }
    return out


def run_precision_ablation() -> Dict:
    """Section 4.1: SIMD throughput across the precision modes.

    One add per cycle regardless of mode, so element throughput is the
    lane count; multiply throughput divides by the ``n + 2`` loop.
    """
    device = PIMDevice()
    out = {}
    for precision in (8, 16, 32):
        lanes = device.config.lanes(precision)
        out[precision] = {
            "lanes": lanes,
            "add_elems_per_cycle": lanes / 1.0,
            "mul_elems_per_cycle": lanes / (precision + 2),
        }
    return out
