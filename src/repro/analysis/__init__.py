"""Experiment drivers that regenerate every table and figure of the
paper's evaluation section, plus the paper's published values for
side-by-side comparison."""

from repro.analysis import paper_data
from repro.analysis.experiments import (
    run_area_efficiency,
    run_bitserial_comparison,
    run_fault_robustness,
    run_fig8_trajectories,
    run_fig9a_cycles,
    run_fig9b_naive_vs_opt,
    run_fig10_energy,
    run_headline,
    run_multireg_ablation,
    run_precision_ablation,
    run_quantization_ablation,
    run_sobel_vs_sad,
    run_table1_rpe,
    run_tmpreg_ablation,
)
from repro.analysis.reporting import format_table, trajectory_svg

__all__ = [
    "paper_data",
    "run_table1_rpe",
    "run_fig8_trajectories",
    "run_fig9a_cycles",
    "run_fig9b_naive_vs_opt",
    "run_fig10_energy",
    "run_headline",
    "run_bitserial_comparison",
    "run_quantization_ablation",
    "run_tmpreg_ablation",
    "run_multireg_ablation",
    "run_sobel_vs_sad",
    "run_fault_robustness",
    "run_area_efficiency",
    "run_precision_ablation",
    "format_table",
    "trajectory_svg",
]
