"""Wall-clock benchmark: replay execution backends vs eager execution.

This measures *simulator* speed, not modelled device cycles: how much
faster the Python simulator runs the QVGA LPF -> HPF -> NMS chain (and
the warp kernel) when each per-row program is executed as row-batched
2-D numpy operations with O(1) ledger accounting -- and faster still
through the compiled lowering backend (:mod:`repro.pim.lowering`) --
compared to replaying the same programs one micro-op at a time.  All
paths are exercised on the *same* recorded programs, so the parity
checks (bit-identical memory, identical ledger totals) are part of the
benchmark contract.

Results are stamped with the git revision and backend versions
(numpy, numba when importable) so BENCH_pim.json stays attributable
across the PR sequence.

The harness is shared by ``benchmarks/test_wallclock.py`` (asserts the
speedups and parity) and ``benchmarks/run_wallclock.py`` (writes
``BENCH_pim.json`` at the repository root).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Dict

import numpy as np

from repro.geometry.camera import TUM_QVGA
from repro.geometry.se3 import SE3
from repro.kernels.edge_detect import detect_edges_fast, detect_edges_replay
from repro.kernels.warp import (
    WarpRows,
    QuantizedFeatures,
    quantize_features,
    quantize_pose,
    warp_pim,
    warp_pim_batched,
)
from repro.obs.stamp import run_stamp
from repro.pim import PIMDevice
from repro.pim.lowering import NUMBA_VERSION

__all__ = ["run_wallclock", "write_results", "BENCH_FILENAME"]

BENCH_FILENAME = "BENCH_pim.json"

_LEDGER_FIELDS = ("cycles", "sram_reads", "sram_writes", "tmp_accesses",
                  "logic_ops", "host_transfers")


def _ledgers_equal(a, b) -> bool:
    return all(getattr(a, f) == getattr(b, f) for f in _LEDGER_FIELDS) \
        and dict(a.op_counts) == dict(b.op_counts) \
        and dict(a.op_profile) == dict(b.op_profile)


def _best_of(fn: Callable[[], None], repeats: int) -> float:
    """Minimum wall-clock seconds over ``repeats`` runs."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_edge_pipeline(image: np.ndarray, repeats: int) -> Dict:
    th1, th2 = 40, 2
    # Warm-up compiles the three stage programs into the kernel cache.
    detect_edges_replay(PIMDevice(), image, th1, th2)

    eager_s = _best_of(
        lambda: detect_edges_replay(PIMDevice(), image, th1, th2,
                                    mode="eager"),
        max(1, repeats // 2))
    replay_s = _best_of(
        lambda: detect_edges_replay(PIMDevice(), image, th1, th2,
                                    mode="batched"),
        repeats)
    compiled_s = _best_of(
        lambda: detect_edges_replay(PIMDevice(), image, th1, th2,
                                    mode="compiled"),
        repeats)

    dev_e, dev_b, dev_c = PIMDevice(), PIMDevice(), PIMDevice()
    res_e = detect_edges_replay(dev_e, image, th1, th2, mode="eager")
    res_b = detect_edges_replay(dev_b, image, th1, th2, mode="batched")
    res_c = detect_edges_replay(dev_c, image, th1, th2, mode="compiled")
    fast = detect_edges_fast(image, th1, th2)
    return {
        "stages": ["lpf", "hpf", "nms"],
        "image_shape": list(image.shape),
        "eager_ms": round(eager_s * 1e3, 3),
        "replay_ms": round(replay_s * 1e3, 3),
        "compiled_ms": round(compiled_s * 1e3, 3),
        "speedup": round(eager_s / replay_s, 2),
        "compiled_speedup_vs_batched": round(replay_s / compiled_s, 2),
        "mask_bit_identical": bool(
            np.array_equal(res_e.edge_map, res_b.edge_map)),
        "compiled_mask_bit_identical": bool(
            np.array_equal(res_e.edge_map, res_c.edge_map)),
        "matches_vectorized_reference": bool(
            np.array_equal(res_b.edge_map, fast.edge_map)),
        "sram_bit_identical": bool(np.array_equal(dev_e._mem, dev_b._mem)),
        "compiled_sram_bit_identical": bool(
            np.array_equal(dev_e._mem, dev_c._mem)),
        "ledger_identical": _ledgers_equal(dev_e.ledger, dev_b.ledger),
        "compiled_ledger_identical": _ledgers_equal(dev_e.ledger,
                                                    dev_c.ledger),
        "replay_cycles": dict(res_b.cycles),
    }


def _bench_warp(num_features: int, repeats: int) -> Dict:
    rng = np.random.default_rng(7)
    feats = quantize_features(rng.uniform(-0.8, 0.8, num_features),
                              rng.uniform(-0.6, 0.6, num_features),
                              rng.uniform(0.2, 2.0, num_features))
    qpose = quantize_pose(SE3.exp(
        np.array([0.01, -0.02, 0.015, 0.002, -0.001, 0.003])))
    camera = TUM_QVGA

    def eager() -> PIMDevice:
        device = PIMDevice()
        lanes = device.config.lanes(16)
        rows = WarpRows(*range(10))
        for start in range(0, num_features, lanes):
            block = QuantizedFeatures(
                a=feats.a[start:start + lanes],
                b=feats.b[start:start + lanes],
                c=feats.c[start:start + lanes], fmt=feats.fmt)
            warp_pim(device, qpose, block, camera, rows)
        return device

    def batched() -> PIMDevice:
        device = PIMDevice()
        warp_pim_batched(device, qpose, feats, camera, mode="batched")
        return device

    def compiled() -> PIMDevice:
        device = PIMDevice()
        warp_pim_batched(device, qpose, feats, camera, mode="compiled")
        return device

    eager_s = _best_of(eager, max(1, repeats // 2))
    batched_s = _best_of(batched, repeats)
    compiled_s = _best_of(compiled, repeats)
    dev_e, dev_b, dev_c = eager(), batched(), compiled()
    return {
        "features": num_features,
        "eager_ms": round(eager_s * 1e3, 3),
        "batched_ms": round(batched_s * 1e3, 3),
        "compiled_ms": round(compiled_s * 1e3, 3),
        "speedup": round(eager_s / batched_s, 2),
        "compiled_speedup_vs_batched": round(batched_s / compiled_s, 2),
        "ledger_identical": _ledgers_equal(dev_e.ledger, dev_b.ledger),
        "compiled_ledger_identical": _ledgers_equal(dev_e.ledger,
                                                    dev_c.ledger),
        "compiled_sram_bit_identical": bool(
            np.array_equal(dev_b._mem, dev_c._mem)),
    }


def run_wallclock(repeats: int = 5, image_shape=(240, 320),
                  num_features: int = 2000, seed: int = 0) -> Dict:
    """Run the replay-vs-eager wall-clock benchmark.

    Returns a JSON-serializable result dict; timings are best-of-N to
    suppress scheduler noise.  The eager reference replays the *same*
    recorded programs through the per-row micro-op path, so the
    speedup isolates the batched executor and the O(1) accounting.
    """
    rng = np.random.default_rng(seed)
    image = rng.integers(0, 256, size=image_shape, dtype=np.uint8)
    return {
        "benchmark": "pim-program-replay-wallclock",
        **run_stamp(),
        "numba": NUMBA_VERSION,
        "repeats": repeats,
        "edge_pipeline": _bench_edge_pipeline(image, repeats),
        "warp": _bench_warp(num_features, repeats),
    }


def write_results(results: Dict, path=None) -> Path:
    """Write benchmark results as JSON (default: repo-root file)."""
    if path is None:
        path = Path(__file__).resolve().parents[3] / BENCH_FILENAME
    path = Path(path)
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path
