"""The ISA conformance coverage ledger.

A *cell* of the conformance matrix is one ``(method, precision,
config)`` triple -- e.g. ``("add", 16, "s-sat")`` is saturating signed
16-bit addition.  The ledger records which cells a run actually
exercised (and through which backends), reports coverage against the
expected matrix, and diffs against a committed baseline so CI can fail
when conformance coverage *regresses* rather than silently shrinking.

Config tags: ``u``/``s`` select the unsigned/signed operand view;
``-sat`` marks the saturating variant; ``s-wrap`` is the wrapping
multiply.  At 64-bit lane width only signed tags are expected (the
int64 host bound makes the unsigned view degenerate -- see
:mod:`repro.verify.golden`).

The OpKind view maps method cells onto the micro-op enum via each
method's charge plan, so composite methods (``abs_diff`` = SUB + XOR)
count toward the opcodes they exercise; a matrix that touches every
method at every width therefore covers every ``OpKind`` at every
width, which is the acceptance bar for the harness.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.pim.config import SUPPORTED_PRECISIONS
from repro.pim.isa import OpKind

__all__ = [
    "Cell", "CoverageLedger", "expected_cells", "METHOD_CONFIGS",
    "METHOD_OPKINDS",
]

Cell = Tuple[str, int, str]

#: Config tags each device-surface method is expected to cover.
METHOD_CONFIGS: Dict[str, Tuple[str, ...]] = {
    "add": ("u", "s", "u-sat", "s-sat"),
    "sub": ("u", "s", "u-sat", "s-sat"),
    "avg": ("u", "s"),
    "cmp_gt": ("u", "s"),
    "logic_and": ("u",),
    "logic_or": ("u",),
    "logic_xor": ("u",),
    "logic_nor": ("u",),
    "shift_lanes": ("u", "s"),
    "shift_bits": ("u", "s"),
    "copy": ("u", "s"),
    "abs_diff": ("u", "s"),
    "maximum": ("u", "s"),
    "minimum": ("u", "s"),
    "mul": ("s-sat", "s-wrap", "u-sat"),
    "div": ("s", "u"),
}

#: OpKinds each method's charge plan exercises (composites span two).
METHOD_OPKINDS: Dict[str, Tuple[OpKind, ...]] = {
    "add": (OpKind.ADD,),
    "sub": (OpKind.SUB,),
    "avg": (OpKind.AVG,),
    "cmp_gt": (OpKind.CMP_GT,),
    "logic_and": (OpKind.AND,),
    "logic_or": (OpKind.OR,),
    "logic_xor": (OpKind.XOR,),
    "logic_nor": (OpKind.NOR,),
    "shift_lanes": (OpKind.SHIFT_LANES,),
    "shift_bits": (OpKind.SHIFT_BITS,),
    "copy": (OpKind.COPY,),
    "abs_diff": (OpKind.SUB, OpKind.XOR),
    "maximum": (OpKind.SUB, OpKind.ADD),
    "minimum": (OpKind.SUB,),
    "mul": (OpKind.MUL,),
    "div": (OpKind.DIV,),
}


def expected_cells(
        precisions: Sequence[int] = SUPPORTED_PRECISIONS,
        methods: Optional[Sequence[str]] = None) -> FrozenSet[Cell]:
    """The full matrix a conformance run is expected to cover.

    64-bit cells are signed-only (host-bound rule); everything else
    enumerates every config tag of :data:`METHOD_CONFIGS`.
    """
    picked = METHOD_CONFIGS if methods is None else {
        m: METHOD_CONFIGS[m] for m in methods}
    cells = set()
    for method, cfgs in picked.items():
        for precision in precisions:
            for cfg in cfgs:
                if precision >= 64 and not cfg.startswith("s") \
                        and method not in ("logic_and", "logic_or",
                                           "logic_xor", "logic_nor"):
                    continue
                cells.add((method, int(precision), cfg))
    return frozenset(cells)


class CoverageLedger:
    """Records which conformance cells a run touched, per backend."""

    def __init__(self):
        self._cells: Dict[Cell, Dict[str, int]] = {}

    def record(self, method: str, precision: int, cfg: str,
               backend: str, vectors: int = 1) -> None:
        """Account ``vectors`` checked vectors for one cell/backend."""
        cell = (method, int(precision), cfg)
        per_backend = self._cells.setdefault(cell, {})
        per_backend[backend] = per_backend.get(backend, 0) + \
            int(vectors)

    def merge(self, other: "CoverageLedger") -> None:
        """Fold another ledger's cells into this one."""
        for cell, backends in other._cells.items():
            for backend, count in backends.items():
                self.record(*cell, backend=backend, vectors=count)

    # -- views -----------------------------------------------------------

    def cells(self) -> Dict[Cell, Dict[str, int]]:
        """Touched cells with per-backend vector counts."""
        return dict(self._cells)

    def coverage(self,
                 expected: Optional[FrozenSet[Cell]] = None) -> float:
        """Fraction of the expected matrix this ledger touched."""
        expected = expected if expected is not None else expected_cells()
        if not expected:
            return 1.0
        return len(expected & set(self._cells)) / len(expected)

    def missing(self,
                expected: Optional[FrozenSet[Cell]] = None
                ) -> List[Cell]:
        """Expected cells this run never touched, sorted."""
        expected = expected if expected is not None else expected_cells()
        return sorted(expected - set(self._cells))

    def opkind_matrix(self) -> Dict[str, Dict[int, bool]]:
        """OpKind x precision coverage derived from the method cells."""
        matrix: Dict[str, Dict[int, bool]] = {
            kind.value: {int(p): False for p in SUPPORTED_PRECISIONS}
            for kind in OpKind}
        for (method, precision, _cfg) in self._cells:
            for kind in METHOD_OPKINDS.get(method, ()):
                matrix[kind.value][precision] = True
        return matrix

    def opkinds_fully_covered(self) -> bool:
        """True when every OpKind is covered at every lane width."""
        return all(all(row.values())
                   for row in self.opkind_matrix().values())

    # -- report / baseline ----------------------------------------------

    def report(self) -> dict:
        """JSON-ready coverage report."""
        expected = expected_cells()
        return {
            "schema": "repro.verify.coverage/1",
            "expected_cells": len(expected),
            "covered_cells": len(expected & set(self._cells)),
            "coverage": round(self.coverage(expected), 6),
            "missing": [list(c) for c in self.missing(expected)],
            "opkind_matrix": self.opkind_matrix(),
            "opkinds_fully_covered": self.opkinds_fully_covered(),
            "cells": [
                {"method": m, "precision": p, "cfg": c,
                 "backends": dict(sorted(backends.items()))}
                for (m, p, c), backends in sorted(self._cells.items())
            ],
        }

    def write(self, path) -> Path:
        """Write the coverage report JSON; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.report(), indent=1,
                                   sort_keys=True) + "\n")
        return path

    @staticmethod
    def load_report(path) -> dict:
        """Read a previously written coverage report."""
        return json.loads(Path(path).read_text())

    def regressions(self, baseline: dict) -> dict:
        """Diff against a baseline report: what coverage was lost.

        Returns ``{"missing_cells": [...], "coverage_drop": float}``;
        both empty/zero when this run covers at least everything the
        baseline covered.  This is the CI gate: new cells are welcome,
        lost cells fail the build.
        """
        now = set(self._cells)
        base_cells = {tuple(c["cell"]) if "cell" in c else
                      (c["method"], c["precision"], c["cfg"])
                      for c in baseline.get("cells", [])}
        lost = sorted(base_cells - now)
        drop = max(0.0, float(baseline.get("coverage", 0.0)) -
                   self.coverage())
        return {
            "missing_cells": [list(c) for c in lost],
            "coverage_drop": round(drop, 6),
        }
