"""Pure-python bit-true golden model of the PIM ISA semantics.

This module is the *specification* the devices are checked against: it
implements every micro-op of :mod:`repro.pim.isa` on plain python
integers, with no numpy and no dependency on the device internals
(:mod:`repro.pim.bitsram`, :mod:`repro.pim.accumulator`,
:mod:`repro.fixedpoint.ops`).  Rows are stored exactly as the hardware
stores them -- one bit pattern per word line, little-endian lanes --
so precision switches reinterpret state the same way the device does.

Two deliberate host-bound rules are part of the specification (the
modelled accumulator is an int64 host word):

* 64-bit lanes are two's-complement int64: arithmetic wraps modulo
  ``2**64`` before any saturation is applied (saturating ops at 64 bit
  therefore degenerate to wrapping ones), and the "unsigned" view of a
  64-bit lane equals the signed view.
* every narrower lane computes exactly, then wraps or saturates to
  lane width -- the accumulator is wide enough that only the final
  narrowing loses precision.

:class:`GoldenMachine` exposes the same micro-op surface as
:class:`~repro.pim.device.PIMDevice` (``load``/``store``/``add``/...),
so the conformance runner and the differential fuzzer can drive the
golden model and the devices through identical call sequences.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.pim.config import DEFAULT_CONFIG, PIMConfig
from repro.pim.isa import Imm, _TmpSentinel

__all__ = ["golden_op", "GoldenMachine", "sign_value", "to_pattern"]

_U64 = 1 << 64
_I64_MIN = -(1 << 63)


def _wrap64(v: int) -> int:
    """Two's-complement int64 wraparound (the host accumulator word)."""
    return ((v - _I64_MIN) % _U64) + _I64_MIN


def to_pattern(v: int, bits: int) -> int:
    """The stored bit pattern of ``v`` in an n-bit lane (unsigned int)."""
    return v & ((1 << bits) - 1)


def sign_value(pattern: int, bits: int, signed: bool) -> int:
    """Interpret a stored lane pattern as a (possibly signed) value.

    At 64 bits the signed interpretation always applies (host-bound
    rule); below that, ``signed`` selects two's complement or plain
    unsigned.
    """
    pattern = to_pattern(pattern, bits)
    if bits >= 64 or signed:
        sign_bit = 1 << (bits - 1)
        return pattern - ((pattern & sign_bit) << 1)
    return pattern


def _narrow(v: int, bits: int, signed: bool, saturate: bool) -> int:
    """Cut a wide exact result back to a lane pattern.

    Mirrors the device's narrowing order: at 64 bits the value has
    already wrapped in the int64 host word, so saturation never sees
    the out-of-range value; below 64 bits saturation clamps the exact
    result and wrapping reduces it modulo ``2**bits``.
    """
    if bits >= 64:
        return to_pattern(_wrap64(v), 64)
    if saturate:
        if signed:
            lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
        else:
            lo, hi = 0, (1 << bits) - 1
        v = min(max(v, lo), hi)
    return to_pattern(v, bits)


def _host(v: int, bits: int) -> int:
    """Apply the int64 host bound to an intermediate result."""
    return _wrap64(v) if bits >= 64 else v


def golden_op(method: str, bits: int,
              patterns: Sequence[Sequence[int]],
              **kwargs) -> List[int]:
    """Reference semantics of one micro-op on stored lane patterns.

    Args:
        method: Device-surface method name (``"add"``, ``"mul"``, ...).
        bits: Lane width.
        patterns: One sequence of lane bit patterns per source operand.
        **kwargs: The micro-op's keyword arguments (``signed``,
            ``saturate``, ``pixels``, ``amount``, ``rshift``, ...).

    Returns:
        The destination lane bit patterns (unsigned ints).
    """
    signed = bool(kwargs.get("signed", True))
    if method.startswith("logic_"):
        signed = False
    lanes = len(patterns[0])
    vals = [[sign_value(p, bits, signed) for p in src]
            for src in patterns]

    out: List[int] = []
    if method in ("add", "sub"):
        sat = bool(kwargs.get("saturate", False))
        sign = 1 if method == "add" else -1
        for a, b in zip(vals[0], vals[1]):
            out.append(_narrow(a + sign * b, bits, signed, sat))
    elif method == "avg":
        for a, b in zip(vals[0], vals[1]):
            out.append(_narrow(_host(a + b, bits) >> 1, bits, signed,
                               False))
    elif method == "cmp_gt":
        for a, b in zip(vals[0], vals[1]):
            out.append(1 if a > b else 0)
    elif method == "logic_and":
        out = [to_pattern(a & b, bits)
               for a, b in zip(patterns[0], patterns[1])]
    elif method == "logic_or":
        out = [to_pattern(a | b, bits)
               for a, b in zip(patterns[0], patterns[1])]
    elif method == "logic_xor":
        out = [to_pattern(a ^ b, bits)
               for a, b in zip(patterns[0], patterns[1])]
    elif method == "logic_nor":
        out = [to_pattern(~(a | b), bits)
               for a, b in zip(patterns[0], patterns[1])]
    elif method == "shift_lanes":
        pixels = int(kwargs["pixels"])
        src = patterns[0]
        for i in range(lanes):
            j = i + pixels
            out.append(to_pattern(src[j], bits)
                       if 0 <= j < lanes else 0)
    elif method == "shift_bits":
        amount = int(kwargs["amount"])
        if amount >= 0:
            out = [to_pattern(p << amount, bits) for p in patterns[0]]
        else:
            # Right shifts are arithmetic on the signed view, logical
            # on the unsigned one (identical below 64 bits, where the
            # unsigned view is non-negative).
            out = [to_pattern(v >> -amount, bits) for v in vals[0]]
    elif method == "copy":
        out = [to_pattern(p, bits) for p in patterns[0]]
    elif method == "abs_diff":
        # Negation is driven by the operand comparison (the hardware
        # borrow), not the wrapped difference's sign -- they differ at
        # 64-bit lane width where the difference can wrap in the host.
        for a, b in zip(vals[0], vals[1]):
            m = _host(a - b, bits)
            r = _host(-m, bits) if a < b else m
            out.append(_narrow(r, bits, signed, False))
    elif method == "maximum":
        for a, b in zip(vals[0], vals[1]):
            out.append(_narrow(max(a, b), bits, signed, False))
    elif method == "minimum":
        for a, b in zip(vals[0], vals[1]):
            out.append(_narrow(min(a, b), bits, signed, False))
    elif method == "mul":
        rshift = int(kwargs.get("rshift", 0))
        sat = bool(kwargs.get("saturate", True))
        for a, b in zip(vals[0], vals[1]):
            prod = _host(a * b, bits) >> rshift
            out.append(_narrow(prod, bits, signed, sat))
    elif method == "div":
        lshift = int(kwargs.get("lshift", 0))
        lane_hi = (1 << (bits - 1)) - 1 if signed or bits >= 64 \
            else (1 << bits) - 1
        for a, b in zip(vals[0], vals[1]):
            num = _host(a << lshift, bits)
            if b == 0:
                q = lane_hi if num >= 0 else \
                    (-lane_hi if signed or bits >= 64 else lane_hi)
            else:
                q = abs(num) // abs(b)
                if (num < 0) != (b < 0):
                    q = -q
            out.append(_narrow(q, bits, signed, True))
    else:
        raise ValueError(f"golden model has no op {method!r}")
    return out


class GoldenMachine:
    """Stateful golden model with the PIMDevice micro-op surface.

    Rows and Tmp registers are stored as word-line bit patterns (one
    python int each, little-endian lanes), so ``set_precision``
    reinterprets state exactly like the device does.  Drop-in for a
    device inside the conformance runner and the fuzzer; it performs
    no cost accounting (costs are pinned by the device-vs-device
    checks, values by this model).
    """

    def __init__(self, config: PIMConfig = DEFAULT_CONFIG):
        self.config = config
        self._precision = 8
        self._rows: List[int] = [0] * config.num_rows
        self._tmp: List[int] = [0] * config.num_tmp_registers

    # -- configuration ---------------------------------------------------

    @property
    def precision(self) -> int:
        """Current lane width in bits."""
        return self._precision

    def set_precision(self, precision: int) -> None:
        """Reconfigure the lane width (free, like on the device)."""
        self.config.validate_precision(precision)
        self._precision = precision

    @property
    def lanes(self) -> int:
        """SIMD lanes at the current precision."""
        return self.config.lanes(self._precision)

    # -- lane packing ----------------------------------------------------

    def _pack(self, values: Sequence[int]) -> int:
        n = self._precision
        word = 0
        for i, v in enumerate(values):
            word |= to_pattern(int(v), n) << (i * n)
        return word

    def _lanes_of(self, word: int, signed: bool) -> List[int]:
        n = self._precision
        mask = (1 << n) - 1
        return [sign_value((word >> (i * n)) & mask, n, signed)
                for i in range(self.lanes)]

    def _patterns_of(self, word: int) -> List[int]:
        n = self._precision
        mask = (1 << n) - 1
        return [(word >> (i * n)) & mask for i in range(self.lanes)]

    # -- host DMA --------------------------------------------------------

    def load(self, row: int, values, signed: bool = True) -> None:
        """Write lane values into a row (short vectors zero-padded)."""
        vals = [int(v) for v in values]
        if len(vals) > self.lanes:
            raise ValueError("more values than lanes")
        self._rows[row] = self._pack(vals + [0] * (self.lanes -
                                                   len(vals)))

    def store(self, row: int, signed: bool = True) -> List[int]:
        """Read a row back as lane values."""
        return self._lanes_of(self._rows[row], signed)

    def store_patterns(self, row: int) -> List[int]:
        """Read a row back as raw lane bit patterns."""
        return self._patterns_of(self._rows[row])

    def read_tmp(self, signed: bool = True, index: int = 0) -> List[int]:
        """Debug view of a Tmp register."""
        return self._lanes_of(self._tmp[index], signed)

    # -- operand plumbing ------------------------------------------------

    def _read_patterns(self, src, signed: bool) -> List[int]:
        if isinstance(src, Imm):
            return [to_pattern(int(src.value), self._precision)] * \
                self.lanes
        if isinstance(src, _TmpSentinel):
            return self._patterns_of(self._tmp[src.index])
        return self._patterns_of(self._rows[int(src)])

    def _write_patterns(self, dst, patterns: Sequence[int]) -> None:
        word = 0
        n = self._precision
        for i, p in enumerate(patterns):
            word |= to_pattern(int(p), n) << (i * n)
        if isinstance(dst, _TmpSentinel):
            self._tmp[dst.index] = word
        else:
            self._rows[int(dst)] = word

    def _execute(self, method: str, dst, srcs: Tuple,
                 kwargs: dict) -> None:
        signed = bool(kwargs.get("signed", True))
        if method.startswith("logic_"):
            signed = False
        patterns = [self._read_patterns(s, signed) for s in srcs]
        self._write_patterns(
            dst, golden_op(method, self._precision, patterns, **kwargs))

    # -- the micro-op surface --------------------------------------------

    def add(self, dst, a, b, saturate: bool = False,
            signed: bool = True) -> None:
        """``dst = a + b``."""
        self._execute("add", dst, (a, b),
                      {"saturate": saturate, "signed": signed})

    def sub(self, dst, a, b, saturate: bool = False,
            signed: bool = True) -> None:
        """``dst = a - b``."""
        self._execute("sub", dst, (a, b),
                      {"saturate": saturate, "signed": signed})

    def avg(self, dst, a, b, signed: bool = False) -> None:
        """``dst = (a + b) >> 1``."""
        self._execute("avg", dst, (a, b), {"signed": signed})

    def cmp_gt(self, dst, a, b, signed: bool = True) -> None:
        """``dst = (a > b) ? 1 : 0``."""
        self._execute("cmp_gt", dst, (a, b), {"signed": signed})

    def logic_and(self, dst, a, b) -> None:
        """Bitwise AND."""
        self._execute("logic_and", dst, (a, b), {})

    def logic_or(self, dst, a, b) -> None:
        """Bitwise OR."""
        self._execute("logic_or", dst, (a, b), {})

    def logic_xor(self, dst, a, b) -> None:
        """Bitwise XOR."""
        self._execute("logic_xor", dst, (a, b), {})

    def logic_nor(self, dst, a, b) -> None:
        """Bitwise NOR."""
        self._execute("logic_nor", dst, (a, b), {})

    def shift_lanes(self, dst, a, pixels: int,
                    signed: bool = False) -> None:
        """Whole-lane shift, zero fill."""
        self._execute("shift_lanes", dst, (a,),
                      {"pixels": pixels, "signed": signed})

    def shift_bits(self, dst, a, amount: int,
                   signed: bool = True) -> None:
        """In-lane bit shift (left positive, wrapping)."""
        self._execute("shift_bits", dst, (a,),
                      {"amount": amount, "signed": signed})

    def copy(self, dst, src, signed: bool = True) -> None:
        """Move a value unchanged."""
        self._execute("copy", dst, (src,), {"signed": signed})

    def abs_diff(self, dst, a, b, signed: bool = False) -> None:
        """``dst = |a - b|``."""
        self._execute("abs_diff", dst, (a, b), {"signed": signed})

    def maximum(self, dst, a, b, signed: bool = False) -> None:
        """``dst = max(a, b)``."""
        self._execute("maximum", dst, (a, b), {"signed": signed})

    def minimum(self, dst, a, b, signed: bool = False) -> None:
        """``dst = min(a, b)``."""
        self._execute("minimum", dst, (a, b), {"signed": signed})

    def mul(self, dst, a, b, rshift: int = 0, saturate: bool = True,
            signed: bool = True,
            multiplier_bits: Optional[int] = None) -> None:
        """``dst = (a * b) >> rshift``."""
        self._execute("mul", dst, (a, b),
                      {"rshift": rshift, "saturate": saturate,
                       "signed": signed})

    def div(self, dst, a, b, lshift: int = 0,
            signed: bool = True) -> None:
        """``dst = (a << lshift) / b`` (truncating)."""
        self._execute("div", dst, (a, b),
                      {"lshift": lshift, "signed": signed})

    # -- snapshots for differential comparison ---------------------------

    def snapshot(self) -> Dict[str, List[List[int]]]:
        """Full machine state as lane patterns (rows and Tmp bank)."""
        return {
            "rows": [self._patterns_of(w) for w in self._rows],
            "tmp": [self._patterns_of(w) for w in self._tmp],
        }
