"""The differential conformance matrix runner.

Enumerates every cell of the ISA conformance matrix -- device-surface
method x lane width x signed/saturation config -- and cross-checks all
execution backends against the pure-python golden model
(:mod:`repro.verify.golden`) on the same operand vectors:

* ``pim`` -- the word-level :class:`~repro.pim.device.PIMDevice`;
* ``bitpim`` -- the bit-true :class:`~repro.pim.device.BitPIMDevice`
  (per-op cycle charges are also pinned against ``pim``);
* ``replay-eager`` / ``replay-batched`` / ``replay-compiled`` -- the
  op recorded as a one-op relative
  :class:`~repro.pim.program.PIMProgram` and replayed through every
  :meth:`~repro.pim.device.PIMDevice.run_program` execution path
  (the compiled column exercises the :mod:`repro.pim.lowering`
  backend, falling back per its documented rules).

Every cell sees *directed* edge vectors (zero, +-1, the lane MIN/MAX,
their neighbours, alternating 01/10 patterns, and the carry patterns
around every 8-bit slice boundary -- the values that historically break
carry-cut arithmetic) plus seeded random vectors; the per-cell RNG
stream is derived from ``(seed, cell)`` so results are independent of
cell enumeration order.  Each checked cell is recorded in a
:class:`~repro.verify.coverage.CoverageLedger`, and every mismatch is
reported with the exact operand patterns that produced it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.metrics import get_registry
from repro.pim.config import SUPPORTED_PRECISIONS, PIMConfig
from repro.pim.device import BitPIMDevice, PIMDevice
from repro.pim.isa import Rel
from repro.pim.program import ProgramRecorder
from repro.verify.coverage import METHOD_CONFIGS, CoverageLedger
from repro.verify.golden import golden_op, sign_value, to_pattern

__all__ = ["Mismatch", "ConformanceReport", "ConformanceRunner",
           "directed_patterns", "DEFAULT_BACKENDS"]

DEFAULT_BACKENDS = ("pim", "bitpim", "replay-eager", "replay-batched",
                    "replay-compiled")

#: run_program mode driven by each replay-* conformance backend.
_REPLAY_MODES = {"replay-eager": "eager", "replay-batched": "batched",
                 "replay-compiled": "compiled"}

#: Row layout inside the runner's device: two independent operand
#: groups (A, B -> DST) at bases 0 and 4, far enough apart that the
#: one-op relative program batches despite its rel-order hazard.
_SRC_A, _SRC_B, _DST = 0, 1, 2
_BASES = (0, 4)


@dataclass(frozen=True)
class Mismatch:
    """One lane where a backend disagreed with the golden model."""

    method: str
    precision: int
    cfg: str
    backend: str
    lane: int
    operands: Tuple[int, ...]     # source lane patterns
    expected: int                 # golden lane pattern
    actual: int                   # backend lane pattern
    kwargs: Tuple[Tuple[str, object], ...] = ()

    def describe(self) -> str:
        kw = ", ".join(f"{k}={v}" for k, v in self.kwargs)
        ops = ", ".join(f"0x{p:x}" for p in self.operands)
        return (f"{self.method}[{self.precision}b,{self.cfg}] "
                f"{self.backend} lane {self.lane}: ({ops}) -> "
                f"0x{self.actual:x}, golden 0x{self.expected:x} ({kw})")


@dataclass
class ConformanceReport:
    """Aggregate result of a conformance run."""

    seed: int
    cells_run: int = 0
    vectors: int = 0
    mismatches: List[Mismatch] = field(default_factory=list)
    cycle_disagreements: List[str] = field(default_factory=list)
    ledger: CoverageLedger = field(default_factory=CoverageLedger)

    @property
    def ok(self) -> bool:
        """True when every backend matched on every vector."""
        return not self.mismatches and not self.cycle_disagreements

    def to_dict(self) -> dict:
        return {
            "schema": "repro.verify.conformance/1",
            "seed": self.seed,
            "cells_run": self.cells_run,
            "vectors": self.vectors,
            "ok": self.ok,
            "mismatches": [m.describe() for m in self.mismatches],
            "cycle_disagreements": list(self.cycle_disagreements),
            "coverage": self.ledger.report(),
        }


def directed_patterns(bits: int) -> List[int]:
    """Edge-case lane bit patterns for one lane width.

    Zero, one, all-ones, the signed extremes and their neighbours,
    alternating 01/10 patterns, and the carry-boundary patterns around
    every 8-bit slice cut (``2**k - 1``, ``2**k``, ``2**k + 1``) --
    the operands that break ripple-carry and saturation logic.
    """
    mask = (1 << bits) - 1
    top = 1 << (bits - 1)
    pats = {0, 1, mask, top, top - 1, top + 1 & mask, mask - 1,
            sum(1 << i for i in range(0, bits, 2)),        # 0101...
            sum(1 << i for i in range(1, bits, 2))}        # 1010...
    for cut in range(8, bits, 8):
        for p in ((1 << cut) - 1, 1 << cut, (1 << cut) + 1):
            pats.add(p & mask)
    return sorted(pats)


def _op_kwargs(method: str, cfg: str) -> dict:
    """Device-call keyword arguments for one config tag."""
    signed = cfg.startswith("s")
    if method in ("add", "sub"):
        return {"signed": signed, "saturate": cfg.endswith("-sat")}
    if method == "mul":
        return {"signed": signed, "saturate": not cfg.endswith("-wrap")}
    if method.startswith("logic_"):
        return {}
    return {"signed": signed}


def _variants(method: str, kwargs: dict) -> List[dict]:
    """Parameter variants per vector round (shift distances etc.)."""
    if method == "shift_lanes":
        return [{**kwargs, "pixels": p} for p in (1, -2)]
    if method == "shift_bits":
        return [{**kwargs, "amount": a} for a in (3, -3)]
    return [kwargs]


def _cell_rng(seed: int, method: str, bits: int, cfg: str) -> np.random.Generator:
    """Per-cell RNG, stable across cell enumeration order."""
    digest = hashlib.sha256(
        f"{seed}:{method}:{bits}:{cfg}".encode()).digest()
    return np.random.default_rng(
        int.from_bytes(digest[:8], "little"))


class ConformanceRunner:
    """Drives the matrix: one differential check per cell and vector.

    Args:
        config: Device geometry (default: 512-bit word line, 8 rows --
            wide enough for 8 lanes at 64-bit, small enough to be
            fast).  The word line must be divisible by 64.
        seed: Root seed for the per-cell random vectors.
        samples: Random vector *rounds* per cell (each round fills all
            lanes of both operand groups).
        backends: Which device backends to check (default all four).
    """

    def __init__(self, config: Optional[PIMConfig] = None,
                 seed: int = 2026, samples: int = 2,
                 backends: Sequence[str] = DEFAULT_BACKENDS):
        self.config = config or PIMConfig(wordline_bits=512, num_rows=8,
                                          num_tmp_registers=2)
        if self.config.wordline_bits % 64:
            raise ValueError("runner geometry needs 64-bit-divisible "
                             "word lines")
        unknown = set(backends) - set(DEFAULT_BACKENDS)
        if unknown:
            raise ValueError(f"unknown backends: {sorted(unknown)}")
        self.seed = int(seed)
        self.samples = int(samples)
        self.backends = tuple(backends)
        registry = get_registry()
        self._vectors_ctr = registry.counter(
            "verify_vectors_total",
            "Operand vectors differentially checked per backend")
        self._mismatch_ctr = registry.counter(
            "verify_mismatches_total",
            "Lanes where a backend disagreed with the golden model")
        self._coverage_gauge = registry.gauge(
            "verify_conformance_coverage",
            "Fraction of the expected conformance matrix covered")

    # -- vector generation ----------------------------------------------

    def _pairs(self, bits: int,
               rng: np.random.Generator) -> List[Tuple[int, int]]:
        """Directed cross-product plus seeded random operand pairs."""
        directed = directed_patterns(bits)
        pairs = [(a, b) for a in directed for b in directed]
        lanes = self.config.lanes(bits)
        nbytes = bits // 8
        for _ in range(self.samples * lanes):
            blob = rng.bytes(2 * nbytes)
            pairs.append((int.from_bytes(blob[:nbytes], "little"),
                          int.from_bytes(blob[nbytes:], "little")))
        return pairs

    # -- one cell --------------------------------------------------------

    def run_cell(self, method: str, bits: int, cfg: str,
                 report: ConformanceReport) -> None:
        """Differentially check one matrix cell on every backend."""
        kwargs = _op_kwargs(method, cfg)
        rng = _cell_rng(self.seed, method, bits, cfg)
        lanes = self.config.lanes(bits)
        pairs = self._pairs(bits, rng)
        nsrc = 1 if method in ("shift_lanes", "shift_bits",
                               "copy") else 2
        for kw in _variants(method, kwargs):
            for start in range(0, len(pairs), lanes):
                chunk = pairs[start:start + lanes]
                chunk += [(0, 0)] * (lanes - len(chunk))
                a_pats = [p[0] for p in chunk]
                b_pats = [p[1] for p in chunk]
                self._check_round(method, bits, cfg, kw, nsrc,
                                  a_pats, b_pats, report)
        report.cells_run += 1

    def _check_round(self, method: str, bits: int, cfg: str, kw: dict,
                     nsrc: int, a_pats: List[int], b_pats: List[int],
                     report: ConformanceReport) -> None:
        signed_view = cfg.startswith("s") or bits >= 64
        call_kw = {k: v for k, v in kw.items()
                   if k not in ("pixels", "amount")}
        extra = tuple(kw[k] for k in ("pixels", "amount") if k in kw)
        # Group 2 swaps the operands, so each replay round checks two
        # independent vector sets (and operand-order sensitivity).
        groups = [(a_pats, b_pats), (b_pats, a_pats)]
        golden = [
            golden_op(method, bits,
                      [g[0]] if nsrc == 1 else [g[0], g[1]], **kw)
            for g in groups]

        def load(dev, base: int, group) -> None:
            dev.set_precision(bits)
            for row, pats in ((base + _SRC_A, group[0]),
                              (base + _SRC_B, group[1])):
                vals = [sign_value(p, bits, signed_view) for p in pats]
                dev.load(row, np.array(vals, dtype=np.int64),
                         signed=signed_view)

        def out_patterns(dev, base: int) -> List[int]:
            vals = dev.store(base + _DST, signed=signed_view)
            return [to_pattern(int(v), bits) for v in vals]

        cycles: Dict[str, int] = {}
        for backend in self.backends:
            if backend in ("pim", "bitpim"):
                dev = PIMDevice(self.config) if backend == "pim" \
                    else BitPIMDevice(self.config)
                for base, group in zip(_BASES, groups):
                    load(dev, base, group)
                before = dev.ledger.cycles
                for base in _BASES:
                    args = (base + _SRC_A,) if nsrc == 1 else \
                        (base + _SRC_A, base + _SRC_B)
                    getattr(dev, method)(base + _DST, *args, *extra,
                                         **call_kw)
                cycles[backend] = dev.ledger.cycles - before
            else:
                recorder = ProgramRecorder(self.config,
                                           name=f"verify:{method}")
                recorder.set_precision(bits)
                args = (Rel(_SRC_A),) if nsrc == 1 else \
                    (Rel(_SRC_A), Rel(_SRC_B))
                getattr(recorder, method)(Rel(_DST), *args, *extra,
                                          **call_kw)
                program = recorder.finish()
                dev = PIMDevice(self.config)
                for base, group in zip(_BASES, groups):
                    load(dev, base, group)
                before = dev.ledger.cycles
                dev.run_program(program, _BASES,
                                mode=_REPLAY_MODES[backend])
                cycles[backend] = dev.ledger.cycles - before
            for base, expect in zip(_BASES, golden):
                got = out_patterns(dev, base)
                for lane, (e, g) in enumerate(zip(expect, got)):
                    if e != g:
                        group = groups[_BASES.index(base)]
                        mism = Mismatch(
                            method, bits, cfg, backend, lane,
                            tuple(src[lane]
                                  for src in group[:nsrc]),
                            e, g, tuple(sorted(kw.items())))
                        report.mismatches.append(mism)
                        self._mismatch_ctr.inc(backend=backend,
                                               method=method)
            report.vectors += len(a_pats) * len(_BASES)
            self._vectors_ctr.inc(len(a_pats) * len(_BASES),
                                  backend=backend)
            report.ledger.record(method, bits, cfg, backend,
                                 vectors=len(a_pats) * len(_BASES))
        # Cost contract: every backend charges identical cycles for
        # the same op stream (batched replay is cost-exact by design).
        if len(set(cycles.values())) > 1:
            report.cycle_disagreements.append(
                f"{method}[{bits}b,{cfg}] cycles diverged: " +
                ", ".join(f"{k}={v}" for k, v in sorted(cycles.items())))

    # -- the full matrix -------------------------------------------------

    def run(self, methods: Optional[Sequence[str]] = None,
            precisions: Sequence[int] = SUPPORTED_PRECISIONS,
            ) -> ConformanceReport:
        """Run every requested cell; returns the aggregate report."""
        report = ConformanceReport(seed=self.seed)
        picked = METHOD_CONFIGS if methods is None else {
            m: METHOD_CONFIGS[m] for m in methods}
        for method, cfgs in sorted(picked.items()):
            for bits in precisions:
                for cfg in cfgs:
                    if bits >= 64 and not cfg.startswith("s") \
                            and not method.startswith("logic_"):
                        continue
                    self.run_cell(method, bits, cfg, report)
        self._coverage_gauge.set(report.ledger.coverage())
        return report
