"""CLI driver: run the full conformance harness, emit a JSON report.

::

    PYTHONPATH=src python -m repro.verify --seed 2026 \\
        --out verify_report.json --check-baseline tests/conformance_baseline.json

The ``chaos`` subcommand runs the serving-layer fault storm instead::

    PYTHONPATH=src python -m repro.verify chaos --seed 0 --frames 40

Runs, in order: the conformance matrix (every cell, all backends),
the differential fuzzer, the persisted regression corpus, and the
fault-injection robustness trials (stored and transient).  The exit
code is non-zero when any backend mismatched the golden model, a
corpus entry regressed, a fault went undetected, or -- with
``--check-baseline`` -- matrix coverage regressed against the
committed baseline.  ``--write-baseline`` refreshes that baseline
from this run instead of gating.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.verify.coverage import CoverageLedger
from repro.verify.fuzz import DifferentialFuzzer, replay_corpus
from repro.verify.matrix import ConformanceRunner
from repro.verify.robustness import fault_detection_trials

__all__ = ["main"]

#: Coverage below this fraction fails the run even without a baseline.
MIN_COVERAGE = 0.95


def main(argv=None) -> int:
    """Entry point; returns the process exit code.

    ``python -m repro.verify chaos ...`` dispatches to the chaos
    harness (:mod:`repro.verify.chaos`); everything else runs the
    conformance harness below.
    """
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "chaos":
        from repro.verify.chaos import main as chaos_main
        return chaos_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Differential ISA conformance harness")
    parser.add_argument("--seed", type=int, default=2026,
                        help="root seed for random vectors and fuzzing")
    parser.add_argument("--samples", type=int, default=1,
                        help="random vector rounds per matrix cell")
    parser.add_argument("--fuzz-cases", type=int, default=150,
                        help="differential fuzz cases to run")
    parser.add_argument("--fault-trials", type=int, default=25,
                        help="fault-injection trials per mode")
    parser.add_argument("--corpus", default="tests/corpus",
                        help="regression corpus directory to replay")
    parser.add_argument("--out", default="verify_report.json",
                        help="where to write the JSON report")
    parser.add_argument("--check-baseline", default=None,
                        help="coverage baseline JSON to gate against")
    parser.add_argument("--write-baseline", default=None,
                        help="write this run's coverage as the baseline")
    parser.add_argument("--methods", nargs="*", default=None,
                        help="restrict the matrix to these methods")
    args = parser.parse_args(argv)

    problems = []

    runner = ConformanceRunner(seed=args.seed, samples=args.samples)
    conformance = runner.run(methods=args.methods)
    if not conformance.ok:
        problems.append(
            f"{len(conformance.mismatches)} matrix mismatches, "
            f"{len(conformance.cycle_disagreements)} cycle "
            f"disagreements")

    coverage = conformance.ledger.coverage()
    if args.methods is None and coverage < MIN_COVERAGE:
        problems.append(f"coverage {coverage:.3f} < {MIN_COVERAGE}")

    baseline_diff = None
    if args.check_baseline:
        baseline = CoverageLedger.load_report(args.check_baseline)
        baseline_diff = conformance.ledger.regressions(baseline)
        if baseline_diff["missing_cells"]:
            problems.append(
                f"coverage regressed: "
                f"{len(baseline_diff['missing_cells'])} baseline "
                f"cells no longer covered")
    if args.write_baseline:
        conformance.ledger.write(args.write_baseline)

    fuzzer = DifferentialFuzzer(seed=args.seed)
    fuzz_report = fuzzer.run(cases=args.fuzz_cases,
                             corpus_dir=Path(args.corpus))
    if not fuzz_report["ok"]:
        problems.append(
            f"{len(fuzz_report['failures'])} fuzz failures "
            f"(minimized cases persisted under {args.corpus})")

    corpus_results = replay_corpus(args.corpus)
    corpus_failures = [r for r in corpus_results if r["mismatches"]]
    if corpus_failures:
        problems.append(
            f"{len(corpus_failures)} corpus regressions: " +
            ", ".join(r["name"] for r in corpus_failures))

    faults = {
        "stored": fault_detection_trials(trials=args.fault_trials,
                                         seed=args.seed),
        "transient": fault_detection_trials(trials=args.fault_trials,
                                            seed=args.seed,
                                            transient=True),
    }
    for mode, summary in faults.items():
        if not summary["ok"]:
            problems.append(
                f"{mode} fault trials: {len(summary['missed'])} of "
                f"{summary['armed']} armed faults missed")

    report = {
        "schema": "repro.verify.report/1",
        "seed": args.seed,
        "ok": not problems,
        "problems": problems,
        "conformance": conformance.to_dict(),
        "baseline_diff": baseline_diff,
        "fuzz": fuzz_report,
        "corpus": corpus_results,
        "faults": faults,
    }
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")

    print(f"conformance: {conformance.cells_run} cells, "
          f"{conformance.vectors} vectors, "
          f"coverage {coverage:.3f}, "
          f"{len(conformance.mismatches)} mismatches")
    print(f"fuzz: {fuzz_report['cases']} cases, "
          f"{len(fuzz_report['failures'])} failures; "
          f"corpus: {len(corpus_results)} entries, "
          f"{len(corpus_failures)} regressions")
    for mode, summary in faults.items():
        print(f"faults[{mode}]: {summary['detected']} detected + "
              f"{summary['masked']} masked of {summary['armed']} "
              f"armed ({summary['trials']} trials)")
    print(f"report: {out}")
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
