"""Chaos harness: seeded fault storms against a live ``VOService``.

The conformance harness (:mod:`repro.verify.matrix`) pins what the
simulator *computes*; this module pins how the full serving stack
*recovers*.  A chaos run builds a deterministic fault storm from one
seed -- frame-level faults (dropped frames, bit-rotted images, depth
holes, stalled clients) via
:class:`~repro.dataset.synthetic.FrameCorruptor`, plus device-level
faults via :class:`~repro.pim.faults.FaultInjector` armed on live pool
workers mid-run -- and drives it through concurrent client sessions,
exactly like :mod:`repro.serve.loadgen` but with the storm applied.

Each session is then classified:

* ``recovered`` -- finished with tracking health ``OK`` and an ATE
  within the inflation bound of its clean solo reference.
* ``degraded``  -- ATE within bound but final health not ``OK``.
* ``unrecovered`` -- ATE beyond bound, final health ``LOST``, or a
  terminal frame error with no successful frame after it.

The gate (:func:`run_chaos` / ``python -m repro.verify chaos``) holds
the SLO: **zero unrecovered sessions**, every injected fault
attributed in the recovery report (repair events on the served frame,
a device eviction, or a client-side record), and a pre-storm control
phase whose served trajectory is bit-identical to the solo tracker --
pinning that the fault-free path is unchanged by the resilience
machinery.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import logging
import os
import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dataset.synthetic import FrameCorruptor
from repro.evaluation.ate import absolute_trajectory_error
from repro.obs.metrics import get_registry
from repro.obs.stamp import run_stamp
from repro.obs.tracer import get_tracer
from repro.pim.faults import FaultInjector, FaultPlan
from repro.serve.loadgen import (
    build_workload,
    solo_trajectories,
)
from repro.serve.scheduler import Backpressure
from repro.serve.service import _FRONTENDS, VOService
from repro.vo.health import LOST, OK

__all__ = ["ChaosConfig", "InjectedFault", "build_fault_storm",
           "run_chaos", "run_chaos_kill", "run_chaos_migration",
           "main"]

log = logging.getLogger(__name__)

#: Frame-fault kinds, in injection-cycling order.
FRAME_FAULTS = ("bitrot", "depth-holes", "drop", "stall")


@dataclass
class ChaosConfig:
    """One chaos run, fully determined by these knobs."""

    seed: int = 0
    sessions: int = 4
    frames: int = 40
    scale: float = 0.25
    workers: int = 2
    frontend: str = "pim"
    device_detect: bool = True
    #: Fraction of each faulted session's frames that get a frame
    #: fault (session 0 is always the fault-free control).
    frame_fault_rate: float = 0.15
    #: Worker-device fault injections across the whole run.
    device_faults: int = 2
    #: Client stall duration for ``stall`` faults.
    stall_s: float = 0.15
    #: Transient read-corruption probability of device faults.
    read_flip_prob: float = 0.002
    #: A session recovers if ``ate <= max(clean_ate * ate_inflation,
    #: ate_floor_m)``.
    ate_inflation: float = 5.0
    ate_floor_m: float = 0.05
    #: Migration storms (:func:`run_chaos_migration`): the sequence
    #: index every client rendezvouses at before the worker kill and
    #: drain.  ``None`` = midpoint of the run.
    migrate_frame: Optional[int] = None
    #: Kill storms (:func:`run_chaos_kill`): shard worker *processes*
    #: behind the router, how many get SIGKILLed mid-stream, and the
    #: sequence index the kill lands on (``None`` = midpoint).
    shards: int = 3
    kills: int = 1
    kill_frame: Optional[int] = None


@dataclass
class InjectedFault:
    """One scheduled fault and, after the run, its attribution."""

    sid: str
    frame: int                 # sequence index the fault lands on
    kind: str                  # FRAME_FAULTS entry or "device"
    worker: Optional[int] = None   # device faults: target worker
    attributed: bool = False
    evidence: str = ""

    def to_dict(self) -> dict:
        return {
            "sid": self.sid, "frame": self.frame, "kind": self.kind,
            "worker": self.worker, "attributed": self.attributed,
            "evidence": self.evidence,
        }


def build_fault_storm(config: ChaosConfig
                      ) -> Tuple[List[InjectedFault], List[InjectedFault]]:
    """Derive the deterministic fault schedule from the seed.

    Returns ``(frame_faults, device_faults)``.  Session 0 is left
    fault-free as the bit-identity control; every other session gets
    at least one frame fault.  Faults land on frames >= 2 (the first
    keyframe anchors clean) and device faults land before the final
    stretch so the eviction that clears them is observed within the
    run.
    """
    rng = np.random.default_rng(config.seed)
    frame_faults: List[InjectedFault] = []
    kind_cursor = 0
    for i in range(1, config.sessions):
        sid = f"client-{i}"
        n = max(1, int(round(config.frame_fault_rate * config.frames)))
        lo, hi = 2, max(3, config.frames - 2)
        picks = sorted(rng.choice(np.arange(lo, hi),
                                  size=min(n, hi - lo),
                                  replace=False).tolist())
        for frame in picks:
            kind = FRAME_FAULTS[kind_cursor % len(FRAME_FAULTS)]
            kind_cursor += 1
            frame_faults.append(InjectedFault(sid=sid, frame=int(frame),
                                              kind=kind))
    device_faults: List[InjectedFault] = []
    if config.sessions > 1:
        hi = max(4, config.frames - 6)
        for j in range(config.device_faults):
            sid = f"client-{1 + j % (config.sessions - 1)}"
            frame = int(rng.integers(max(2, config.frames // 4), hi))
            worker = int(rng.integers(0, config.workers))
            device_faults.append(InjectedFault(
                sid=sid, frame=frame, kind="device", worker=worker))
    return frame_faults, device_faults


@dataclass
class _ChaosClient:
    """One session's live bookkeeping during the storm."""

    sid: str
    #: Sequence index of each *successful* submission, in order.
    tracked: List[int] = field(default_factory=list)
    results: List = field(default_factory=list)
    dropped: int = 0
    stalls: int = 0
    errors: int = 0
    #: Sequence index of the last terminal frame error (-1 = none).
    last_error_frame: int = -1
    #: Sequence index of the last successful frame (-1 = none).
    last_ok_frame: int = -1
    backpressure_retries: int = 0


def _arm_device_fault(service: VOService, fault: InjectedFault,
                      seed: int,
                      read_flip_prob: float) -> Optional[FaultInjector]:
    """Attach a fault injector to the target worker's devices.

    Prefers the scheduled worker; falls back to any worker that has
    materialised devices (they are created lazily per shape).  Returns
    the injector, or ``None`` when no device exists yet.
    """
    workers = service.pool.workers
    order = [fault.worker] + [w.index for w in workers
                              if w.index != fault.worker]
    plan = FaultPlan(seed=seed, stored_flips=((0, 0),),
                     read_flip_prob=read_flip_prob)
    for index in order:
        devices = list(workers[index]._devices())
        if not devices:
            continue
        injector = FaultInjector(plan)
        for dev in devices:
            dev.attach_fault_injector(injector)
        fault.worker = index
        log.warning("chaos: armed device fault on worker %d "
                    "(%d devices) at %s frame %d", index,
                    len(devices), fault.sid, fault.frame)
        return injector
    return None


def _apply_and_submit(service: VOService, sid: str, index: int,
                      frame, fault: Optional[InjectedFault],
                      corruptor: FrameCorruptor, stall_s: float,
                      client: _ChaosClient) -> None:
    """Apply one frame's scheduled fault (if any) and submit it.

    The shared per-frame body of every chaos client: fault
    application is a pure function of ``(corruptor seed, index,
    kind)``, so two runs fed the same schedule submit bit-identical
    pixels -- the property the migration storm's control comparison
    rests on.
    """
    submit = frame
    if fault is not None:
        if fault.kind == "drop":
            client.dropped += 1
            fault.attributed = True
            fault.evidence = "client dropped frame before submit"
            return
        if fault.kind == "stall":
            client.stalls += 1
            time.sleep(stall_s)
            fault.attributed = True
            fault.evidence = f"client stalled {stall_s:.2f}s"
        else:
            submit = corruptor.corrupt(frame, fault.kind)
    while True:
        try:
            result = service.submit(sid, submit.gray, submit.depth,
                                    submit.timestamp)
            client.tracked.append(index)
            client.results.append(result)
            client.last_ok_frame = index
            if fault is not None and not fault.attributed:
                repaired = [e for e in result.events
                            if e.startswith("repaired:")]
                signals = [e for e in result.events
                           if e.startswith("signal:")]
                if repaired or signals:
                    fault.attributed = True
                    fault.evidence = "events: " + ",".join(
                        repaired + signals)
            return
        except Backpressure as bp:
            client.backpressure_retries += 1
            time.sleep(max(bp.retry_after_s, 0.001))
        except Exception as exc:  # noqa: BLE001 -- chaos outcome
            client.errors += 1
            client.last_error_frame = index
            if fault is not None and not fault.attributed:
                fault.attributed = True
                fault.evidence = (
                    f"frame error: {type(exc).__name__}")
            log.warning("chaos: %s frame %d failed terminally "
                        "(%s)", sid, index, type(exc).__name__)
            return


def _chaos_client(service: VOService, sid: str, sequence,
                  faults: Dict[int, InjectedFault],
                  device_faults: Dict[int, InjectedFault],
                  corruptor: FrameCorruptor, stall_s: float,
                  read_flip_prob: float,
                  client: _ChaosClient,
                  injectors: List[FaultInjector],
                  injectors_lock: threading.Lock) -> None:
    for index, frame in enumerate(sequence.frames):
        device_fault = device_faults.get(index)
        if device_fault is not None:
            injector = _arm_device_fault(service, device_fault,
                                         seed=corruptor.seed + index,
                                         read_flip_prob=read_flip_prob)
            if injector is not None:
                with injectors_lock:
                    injectors.append(injector)
                device_fault.evidence = "armed"
        _apply_and_submit(service, sid, index, frame,
                          faults.get(index), corruptor, stall_s,
                          client)


def _classify(client: _ChaosClient, ate_m: Optional[float],
              bound_m: float) -> Tuple[str, str]:
    """Session outcome and the reason it was assigned."""
    if not client.results:
        return "unrecovered", "no frame ever tracked"
    if client.last_error_frame > client.last_ok_frame:
        return "unrecovered", (
            f"terminal error on frame {client.last_error_frame} "
            f"with no recovery after it")
    final_health = client.results[-1].health
    if ate_m is not None and ate_m > bound_m:
        return "unrecovered", (
            f"ATE {ate_m:.4f} m exceeds bound {bound_m:.4f} m")
    if final_health == LOST:
        return "unrecovered", "session finished LOST"
    if final_health != OK:
        return "degraded", f"final health {final_health}"
    faults_seen = (client.errors or client.dropped or
                   any(r.events for r in client.results))
    return "recovered", ("came back healthy within bound"
                         if faults_seen else
                         "clean finish within bound")


def run_chaos(config: ChaosConfig, incident_dir=None) -> dict:
    """Run one seeded fault storm; returns the JSON-ready report.

    With ``incident_dir`` set, an unrecovered session additionally
    dumps the service's flight-recorder bundle (recent events plus
    captured failed-request span trees) to
    ``<incident_dir>/chaos_incident.json`` for post-mortems.
    """
    tracer = get_tracer()
    registry = get_registry()
    recovered_ctr = registry.counter(
        "chaos_recovered_total",
        "Chaos sessions by final outcome")
    injected_ctr = registry.counter(
        "chaos_faults_injected_total",
        "Faults injected by the chaos harness, by kind")

    with tracer.span("chaos.storm", seed=config.seed,
                     sessions=config.sessions, frames=config.frames):
        workload = build_workload(sessions=config.sessions,
                                  frames=config.frames,
                                  scale=config.scale,
                                  seed=config.seed)
        frame_faults, device_faults = build_fault_storm(config)
        for fault in frame_faults + device_faults:
            injected_ctr.inc(kind=fault.kind)

        frontend_cls = _FRONTENDS[config.frontend]
        service = VOService(workers=config.workers,
                            frontend=config.frontend,
                            device_detect=config.device_detect)

        # Clean references: each sequence through an isolated tracker
        # with the same config (also the bit-identity reference for
        # the fault-free control session).
        solo = solo_trajectories(workload, frontend_cls, service.config)
        clean_ate = {
            sid: absolute_trajectory_error(
                solo[sid], workload[sid].groundtruth).rmse
            for sid in workload}

        evictions = registry.counter("serve_device_evictions_total")
        evictions_before = evictions.total()

        by_sid_frame: Dict[str, Dict[int, InjectedFault]] = {}
        for fault in frame_faults:
            by_sid_frame.setdefault(fault.sid, {})[fault.frame] = fault
        dev_by_sid_frame: Dict[str, Dict[int, InjectedFault]] = {}
        for fault in device_faults:
            dev_by_sid_frame.setdefault(fault.sid, {})[fault.frame] = \
                fault

        clients = {sid: _ChaosClient(sid=sid) for sid in workload}
        injectors: List[FaultInjector] = []
        injectors_lock = threading.Lock()
        threads = []
        control_mismatch: List[str] = []
        with service:
            # Phase 1 -- fault-free bit-identity: the control
            # sequence through the full serve stack *before* any
            # fault is armed.  Device faults corrupt a shared worker,
            # so only a storm-free phase can pin the fault-free path
            # bit-for-bit against the solo tracker.
            control_poses = []
            for frame in workload["client-0"].frames:
                result = service.submit("control", frame.gray,
                                        frame.depth, frame.timestamp)
                control_poses.append(result.pose)
            reference = solo["client-0"]
            if len(control_poses) != len(reference):
                control_mismatch.append(
                    f"{len(control_poses)} served vs "
                    f"{len(reference)} solo frames")
            else:
                for i, (a, b) in enumerate(zip(control_poses,
                                               reference)):
                    if not (np.array_equal(a.R, b.R) and
                            np.array_equal(a.t, b.t)):
                        control_mismatch.append(
                            f"pose {i} differs from solo")
                        break

            # Phase 2 -- the storm.
            for i, (sid, sequence) in enumerate(workload.items()):
                corruptor = FrameCorruptor(seed=config.seed * 1000 + i)
                threads.append(threading.Thread(
                    target=_chaos_client, name=f"chaos-{sid}",
                    args=(service, sid, sequence,
                          by_sid_frame.get(sid, {}),
                          dev_by_sid_frame.get(sid, {}),
                          corruptor, config.stall_s,
                          config.read_flip_prob, clients[sid],
                          injectors, injectors_lock)))
            t0 = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            wall_s = time.perf_counter() - t0
            final_stats = service.stats()
        evictions_delta = int(evictions.total() - evictions_before)

        # Device-fault attribution: an armed injector makes its
        # devices suspect, so the owning worker's next frame evicts
        # (resets) them -- the eviction counter is the evidence.
        armed = [f for f in device_faults if f.evidence == "armed"]
        fired = sum(inj.read_faults + inj.stored_faults
                    for inj in injectors)
        for i, fault in enumerate(armed):
            if i < evictions_delta:
                fault.attributed = True
                fault.evidence = (
                    f"worker {fault.worker} device evicted "
                    f"({fired} bits corrupted across run)")
        for fault in device_faults:
            if fault.evidence == "":
                # No devices existed yet when the client tried to arm
                # it: nothing was injected, so nothing to attribute.
                fault.attributed = True
                fault.evidence = "skipped: no devices materialised"

        # Per-session classification.
        sessions_report = {}
        unrecovered = []
        for sid, client in clients.items():
            ate_m = None
            if client.results:
                estimated = [r.pose for r in client.results]
                groundtruth = [workload[sid].groundtruth[i]
                               for i in client.tracked]
                if len(estimated) == len(groundtruth) >= 3:
                    ate_m = absolute_trajectory_error(
                        estimated, groundtruth).rmse
            bound_m = max(clean_ate[sid] * config.ate_inflation,
                          config.ate_floor_m)
            outcome, reason = _classify(client, ate_m, bound_m)
            recovered_ctr.inc(outcome=outcome)
            if outcome == "unrecovered":
                unrecovered.append(sid)
            session_faults = ([f for f in frame_faults
                               if f.sid == sid] +
                              [f for f in device_faults
                               if f.sid == sid])
            sessions_report[sid] = {
                "sequence": workload[sid].name,
                "frames": config.frames,
                "tracked": len(client.results),
                "dropped": client.dropped,
                "stalls": client.stalls,
                "errors": client.errors,
                "backpressure_retries": client.backpressure_retries,
                "final_health": (client.results[-1].health
                                 if client.results else None),
                "ate_m": ate_m,
                "clean_ate_m": clean_ate[sid],
                "bound_m": bound_m,
                "outcome": outcome,
                "reason": reason,
                "faults": [f.to_dict() for f in session_faults],
            }

        # An unrecovered session is the chaos harness's incident: feed
        # it to the flight recorder so the run's lead-up (events plus
        # failed-request span trees) survives as a dumped bundle.
        for sid in unrecovered:
            service.flight.incident(
                "chaos_unrecovered", session=sid,
                detail=sessions_report[sid]["reason"])
        if unrecovered and incident_dir is not None:
            service.flight.dump(
                Path(incident_dir) / "chaos_incident.json",
                reason="chaos_unrecovered", sessions=unrecovered,
                seed=config.seed)

        unattributed = [f.to_dict() for f in frame_faults + device_faults
                        if not f.attributed]
        ok = (not unrecovered and not unattributed
              and not control_mismatch)
        report = {
            "schema": "repro.verify.chaos/1",
            **run_stamp(),
            "seed": config.seed,
            "config": {
                "sessions": config.sessions,
                "frames": config.frames,
                "scale": config.scale,
                "workers": config.workers,
                "frontend": config.frontend,
                "device_detect": config.device_detect,
                "frame_fault_rate": config.frame_fault_rate,
                "device_faults": config.device_faults,
                "read_flip_prob": config.read_flip_prob,
                "ate_inflation": config.ate_inflation,
                "ate_floor_m": config.ate_floor_m,
            },
            "ok": ok,
            "wall_s": wall_s,
            "faults_injected": len(frame_faults) + len(device_faults),
            "device_evictions": evictions_delta,
            "device_bits_corrupted": fired,
            "unrecovered_sessions": unrecovered,
            "unattributed_faults": unattributed,
            "control_bit_identity": {
                "phase": "pre-storm",
                "sequence": workload["client-0"].name,
                "ok": not control_mismatch,
                "problems": control_mismatch,
            },
            "sessions": sessions_report,
            "flight": service.flight.stats(),
            "service": {
                "health": final_stats["health"],
                "retries_total": final_stats["pool"]["retries_total"],
                "checkpoints_total":
                    final_stats["sessions"]["checkpoints_total"],
                "restores_total":
                    final_stats["sessions"]["restores_total"],
            },
        }
        return report


class _ServiceHolder:
    """Mutable pointer to the service a client should submit to.

    The migration coordinator flips ``service`` from source to target
    while every client is parked at the rendezvous, so no submit can
    race the migration and recreate a sid as a fresh stream on the
    source.
    """

    def __init__(self, service: VOService):
        self.service = service


class _Rendezvous:
    """Clients park here at ``frame``; the coordinator migrates, then
    releases them against the target service."""

    def __init__(self, frame: int, parties: int):
        self.frame = frame
        self.barrier = threading.Barrier(parties)
        self.released = threading.Event()

    def arrive(self) -> None:
        self.barrier.wait(timeout=60.0)
        if not self.released.wait(timeout=60.0):
            raise TimeoutError("migration coordinator never released "
                               "the rendezvous")


def _migration_client(holder: _ServiceHolder, sid: str, sequence,
                      faults: Dict[int, InjectedFault],
                      corruptor: FrameCorruptor, stall_s: float,
                      client: _ChaosClient,
                      rendezvous: Optional[_Rendezvous]) -> None:
    """Chaos client without device faults, with a migration stop.

    Frame faults are applied exactly as in :func:`_chaos_client`; at
    ``rendezvous.frame`` the client parks until the coordinator has
    killed the worker, drained the source, and flipped ``holder`` to
    the target.
    """
    for index, frame in enumerate(sequence.frames):
        if rendezvous is not None and index == rendezvous.frame:
            rendezvous.arrive()
        _apply_and_submit(holder.service, sid, index, frame,
                          faults.get(index), corruptor, stall_s,
                          client)


def run_chaos_migration(config: ChaosConfig, incident_dir=None) -> dict:
    """Kill a worker mid-storm, drain every session to a second
    service, and require the migrated trajectories to be bit-identical
    to an unmigrated control run of the same storm.

    Two runs of the same seeded frame-fault storm:

    * **control** -- one service serves the whole storm.
    * **migrated** -- a source service serves the first half; at the
      rendezvous frame one source worker is killed (simulating the
      dying node that motivates the drain), every session is
      live-migrated (:meth:`VOService.drain_to`) onto a fresh target
      service, and the storm finishes there.

    Device faults are forced off: they corrupt shared worker devices
    as a function of *dispatch timing*, so two runs of the same storm
    would legitimately diverge and the bit-identity comparison would
    be meaningless.  Frame faults are pure functions of the seed, so
    with them alone the two runs see bit-identical inputs -- any
    output divergence is migration state loss, which is exactly what
    the gate pins.  The gate also holds the usual chaos SLO on the
    migrated run: zero unrecovered sessions, every fault attributed.
    """
    if config.sessions < 2:
        raise ValueError("migration storm needs >= 2 sessions "
                         "(session 0 stays the fault-free control)")
    registry = get_registry()
    tracer = get_tracer()
    migrate_frame = (config.migrate_frame
                     if config.migrate_frame is not None
                     else max(2, config.frames // 2))
    if not 0 < migrate_frame < config.frames:
        raise ValueError(
            f"migrate_frame {migrate_frame} outside the run "
            f"(1..{config.frames - 1})")

    with tracer.span("chaos.migration_storm", seed=config.seed,
                     sessions=config.sessions, frames=config.frames,
                     migrate_frame=migrate_frame):
        workload = build_workload(sessions=config.sessions,
                                  frames=config.frames,
                                  scale=config.scale,
                                  seed=config.seed)
        # Device faults off by construction; the same deterministic
        # schedule is derived twice so control and migrated runs own
        # independent attribution records.
        storm_config = ChaosConfig(**{**config.__dict__,
                                      "device_faults": 0})
        control_faults, _ = build_fault_storm(storm_config)
        migrated_faults, _ = build_fault_storm(storm_config)

        def fault_index(faults):
            by_sid: Dict[str, Dict[int, InjectedFault]] = {}
            for fault in faults:
                by_sid.setdefault(fault.sid, {})[fault.frame] = fault
            return by_sid

        def run_storm(holders, rendezvous, clients):
            threads = []
            for i, (sid, sequence) in enumerate(workload.items()):
                threads.append(threading.Thread(
                    target=_migration_client,
                    name=f"chaos-migrate-{sid}",
                    args=(holders[sid], sid, sequence,
                          fault_index(clients["faults"]).get(sid, {}),
                          FrameCorruptor(seed=config.seed * 1000 + i),
                          config.stall_s, clients["by_sid"][sid],
                          rendezvous)))
            for t in threads:
                t.start()
            return threads

        service_config = None

        # -- control run: one service, no migration -------------------
        control = {"faults": control_faults,
                   "by_sid": {sid: _ChaosClient(sid=sid)
                              for sid in workload}}
        with VOService(workers=config.workers,
                       frontend=config.frontend,
                       device_detect=config.device_detect) as svc:
            service_config = svc.config
            holders = {sid: _ServiceHolder(svc) for sid in workload}
            for t in run_storm(holders, None, control):
                t.join()

        # -- migrated run: source -> kill -> drain -> target ----------
        migrated = {"faults": migrated_faults,
                    "by_sid": {sid: _ChaosClient(sid=sid)
                               for sid in workload}}
        migrated_ctr = registry.counter("serve_sessions_migrated_total")
        migrated_before = migrated_ctr.total()
        killed_worker = None
        source = VOService(workers=config.workers,
                           frontend=config.frontend,
                           device_detect=config.device_detect,
                           config=service_config)
        target = VOService(workers=config.workers,
                           frontend=config.frontend,
                           device_detect=config.device_detect,
                           config=service_config)
        t0 = time.perf_counter()
        with source, target:
            holders = {sid: _ServiceHolder(source) for sid in workload}
            rendezvous = _Rendezvous(migrate_frame,
                                     parties=len(workload) + 1)
            threads = run_storm(holders, rendezvous, migrated)
            # Coordinator: once every client is parked, the "node
            # failure" happens -- one worker dies -- and the operator
            # response is a whole-service drain onto the target.
            rendezvous.barrier.wait(timeout=60.0)
            killed_worker = config.workers - 1
            source.pool.workers[killed_worker].stop()
            source.flight.event("worker_killed",
                                worker=killed_worker,
                                reason="chaos_migration_storm")
            drained = source.drain_to(target)
            for holder in holders.values():
                holder.service = target
            rendezvous.released.set()
            for t in threads:
                t.join()
        wall_s = time.perf_counter() - t0

        # -- bit-identity: migrated trajectories vs the control run ---
        problems: List[str] = []
        for sid in workload:
            a = control["by_sid"][sid]
            b = migrated["by_sid"][sid]
            if a.tracked != b.tracked:
                problems.append(
                    f"{sid}: tracked frames differ "
                    f"({len(a.tracked)} control vs {len(b.tracked)} "
                    f"migrated)")
                continue
            for i, (ra, rb) in enumerate(zip(a.results, b.results)):
                if not (np.array_equal(ra.pose.R, rb.pose.R) and
                        np.array_equal(ra.pose.t, rb.pose.t)):
                    problems.append(
                        f"{sid}: pose {i} (frame {a.tracked[i]}) "
                        f"diverged after migration")
                    break
                if ra.health != rb.health:
                    problems.append(
                        f"{sid}: health diverged at frame "
                        f"{a.tracked[i]}: {ra.health} vs {rb.health}")
                    break

        # -- classification of the migrated run -----------------------
        frontend_cls = _FRONTENDS[config.frontend]
        solo = solo_trajectories(workload, frontend_cls, service_config)
        clean_ate = {
            sid: absolute_trajectory_error(
                solo[sid], workload[sid].groundtruth).rmse
            for sid in workload}
        sessions_report = {}
        unrecovered = []
        for sid, client in migrated["by_sid"].items():
            ate_m = None
            if client.results:
                estimated = [r.pose for r in client.results]
                groundtruth = [workload[sid].groundtruth[i]
                               for i in client.tracked]
                if len(estimated) == len(groundtruth) >= 3:
                    ate_m = absolute_trajectory_error(
                        estimated, groundtruth).rmse
            bound_m = max(clean_ate[sid] * config.ate_inflation,
                          config.ate_floor_m)
            outcome, reason = _classify(client, ate_m, bound_m)
            if outcome == "unrecovered":
                unrecovered.append(sid)
            sessions_report[sid] = {
                "sequence": workload[sid].name,
                "tracked": len(client.results),
                "dropped": client.dropped,
                "errors": client.errors,
                "final_health": (client.results[-1].health
                                 if client.results else None),
                "ate_m": ate_m,
                "bound_m": bound_m,
                "outcome": outcome,
                "reason": reason,
                "faults": [f.to_dict() for f in migrated_faults
                           if f.sid == sid],
            }

        if (problems or unrecovered) and incident_dir is not None:
            source.flight.dump(
                Path(incident_dir) / "chaos_migration_incident.json",
                reason="chaos_migration_failed",
                problems=problems, unrecovered=unrecovered,
                seed=config.seed)

        unattributed = [f.to_dict() for f in migrated_faults
                        if not f.attributed]
        ok = not problems and not unrecovered and not unattributed
        return {
            "schema": "repro.verify.chaos-migration/1",
            **run_stamp(),
            "seed": config.seed,
            "ok": ok,
            "wall_s": wall_s,
            "migrate_frame": migrate_frame,
            "killed_worker": killed_worker,
            "sessions_migrated": int(migrated_ctr.total() -
                                     migrated_before),
            "drained": drained,
            "faults_injected": len(migrated_faults),
            "bit_identity": {"ok": not problems, "problems": problems},
            "unrecovered_sessions": unrecovered,
            "unattributed_faults": unattributed,
            "sessions": sessions_report,
        }


def _kill_client(router, sid: str, sequence, client: _ChaosClient,
                 checkpoint_stop: "_Rendezvous",
                 kill_stop: "_Rendezvous") -> None:
    """Closed-loop shard client with two parks: once so the
    coordinator can checkpoint, once so it can kill.  Frames between
    the two ride only the router's capture-ring tail -- exactly the
    state the failover replay has to rebuild."""
    for index, frame in enumerate(sequence.frames):
        if index == checkpoint_stop.frame:
            checkpoint_stop.arrive()
        if index == kill_stop.frame:
            kill_stop.arrive()
        while True:
            try:
                result = router.submit(sid, frame.gray, frame.depth,
                                       frame.timestamp, timeout=120)
                client.tracked.append(index)
                client.results.append(result)
                client.last_ok_frame = index
                break
            except Backpressure as bp:
                client.backpressure_retries += 1
                time.sleep(max(bp.retry_after_s, 0.001))
            except Exception as exc:  # noqa: BLE001 -- storm outcome
                client.errors += 1
                client.last_error_frame = index
                log.warning("kill storm: %s frame %d failed (%s)",
                            sid, index, type(exc).__name__)
                break


def run_chaos_kill(config: ChaosConfig, incident_dir=None) -> dict:
    """SIGKILL storm against the supervised shard plane.

    ``config.shards`` worker processes serve ``config.sessions``
    closed-loop clients through a
    :class:`~repro.shard.router.ShardRouter` under a
    :class:`~repro.shard.supervisor.Supervisor`.  Mid-stream, after a
    checkpoint sweep and two more frames (so the capture-ring tail is
    non-empty), the ``config.kills`` busiest shards are SIGKILLed at
    once.  The gate:

    * **zero lost sessions** -- every session finishes;
    * **bit-identity** -- every served trajectory equals its solo
      (unkilled) tracker run, pose for pose;
    * **respawn within budget** -- every victim is back ``up`` with
      its restart budget not exhausted.

    No frame or device faults are injected: the kill itself is the
    fault, and clean inputs are what make the bit-identity comparison
    meaningful.  Crash incident bundles land in ``incident_dir``.
    """
    from repro.shard import ShardRouter, ShardSpec, Supervisor
    from repro.vo.config import TrackerConfig

    if config.shards < 2:
        raise ValueError("kill storm needs >= 2 shards (someone must "
                         "survive)")
    if not 0 < config.kills < config.shards:
        raise ValueError("kills must leave at least one shard up")
    kill_frame = (config.kill_frame if config.kill_frame is not None
                  else max(3, config.frames // 2))
    if not 2 < kill_frame < config.frames:
        raise ValueError(f"kill_frame {kill_frame} outside the run "
                         f"(3..{config.frames - 1})")
    checkpoint_frame = kill_frame - 2

    tracker_config = TrackerConfig(
        pim_device_detect=config.device_detect)
    if config.scale != 1.0:
        tracker_config = dataclasses.replace(
            tracker_config,
            camera=tracker_config.camera.scaled(config.scale))
    workload = build_workload(sessions=config.sessions,
                              frames=config.frames,
                              scale=config.scale, seed=config.seed)
    frontend_cls = _FRONTENDS[config.frontend]
    solo = solo_trajectories(workload, frontend_cls, tracker_config)

    spec = ShardSpec(workers=config.workers,
                     frontend=config.frontend,
                     config=tracker_config,
                     device_detect=config.device_detect,
                     heartbeat_s=0.1)
    clients = {sid: _ChaosClient(sid=sid) for sid in workload}
    checkpoint_stop = _Rendezvous(checkpoint_frame,
                                  parties=len(workload) + 1)
    kill_stop = _Rendezvous(kill_frame, parties=len(workload) + 1)
    victims: List[int] = []
    respawn_deadline_s = 60.0
    t0 = time.perf_counter()
    with ShardRouter(shards=config.shards, spec=spec,
                     incident_dir=incident_dir) as router, \
            Supervisor(router, poll_s=0.02,
                       heartbeat_timeout_s=5.0,
                       incident_dir=incident_dir) as supervisor:
        threads = [threading.Thread(
            target=_kill_client, name=f"chaos-kill-{sid}",
            args=(router, sid, workload[sid], clients[sid],
                  checkpoint_stop, kill_stop))
            for sid in workload]
        for t in threads:
            t.start()

        # Park 1: a consistent checkpoint of every resident session.
        checkpoint_stop.barrier.wait(timeout=120.0)
        checkpointed = supervisor.checkpoint_now()
        checkpoint_stop.released.set()

        # Park 2: the storm.  Kill the busiest shards -- maximum
        # sessions in flight, maximum failover work.
        kill_stop.barrier.wait(timeout=120.0)
        by_load = sorted(
            (s for s, h in router.shards.items() if h.state == "up"),
            key=lambda s: -sum(1 for p in router._placement.values()
                               if p == s))
        victims = by_load[:config.kills]
        for victim in victims:
            os.kill(router.shards[victim].pid, signal.SIGKILL)
            log.warning("kill storm: SIGKILLed shard %d (pid %d)",
                        victim, router.shards[victim].pid)
        kill_stop.released.set()

        for t in threads:
            t.join()

        # Victims must come back up within the restart budget.
        respawns = {}
        deadline = time.monotonic() + respawn_deadline_s
        for victim in victims:
            handle = router.shards[victim]
            while time.monotonic() < deadline and \
                    handle.state != "up":
                time.sleep(0.02)
            respawns[victim] = {
                "state": handle.state,
                "restarts": handle.restarts,
                "budget_remaining": handle.backoff.remaining(),
            }
        wall_s = time.perf_counter() - t0
        status = router.shards_status()

    # -- the gate ---------------------------------------------------------
    problems: List[str] = []
    for sid in workload:
        client = clients[sid]
        reference = solo[sid]
        if client.errors:
            problems.append(f"{sid}: {client.errors} frame errors")
        if len(client.results) != len(reference):
            problems.append(
                f"{sid}: tracked {len(client.results)} of "
                f"{len(reference)} frames")
            continue
        for i, (result, ref) in enumerate(zip(client.results,
                                              reference)):
            if not (np.array_equal(result.pose.R, ref.R) and
                    np.array_equal(result.pose.t, ref.t)):
                problems.append(
                    f"{sid}: pose {i} diverged from the unkilled "
                    f"solo run")
                break
    if status["lost_sessions"]:
        problems.append(
            f"sessions lost in failover: {status['lost_sessions']}")
    if status["failovers_total"] < 1:
        problems.append("kill produced no failovers -- the storm "
                        "never landed")
    for victim, entry in respawns.items():
        if entry["state"] != "up":
            problems.append(
                f"shard {victim} never respawned (state "
                f"{entry['state']} after {respawn_deadline_s:.0f}s)")
        elif entry["budget_remaining"] <= 0:
            problems.append(
                f"shard {victim} exhausted its restart budget "
                f"recovering from one kill")

    bundles = []
    if incident_dir is not None:
        bundles = sorted(p.name for p in
                         Path(incident_dir).glob("shard*_*.json"))
    return {
        "schema": "repro.verify.chaos-kill/1",
        **run_stamp(),
        "seed": config.seed,
        "ok": not problems,
        "wall_s": wall_s,
        "shards": config.shards,
        "kills": victims,
        "kill_frame": kill_frame,
        "checkpoint_frame": checkpoint_frame,
        "checkpointed_sessions": checkpointed,
        "failovers_total": status["failovers_total"],
        "lost_sessions": status["lost_sessions"],
        "respawns": respawns,
        "bit_identity": {"ok": not any("diverged" in p or "tracked"
                                       in p for p in problems),
                         "problems": problems},
        "sessions": {sid: {
            "sequence": workload[sid].name,
            "tracked": len(clients[sid].results),
            "errors": clients[sid].errors,
            "backpressure_retries": clients[sid].backpressure_retries,
        } for sid in workload},
        "shards_status": status,
        "incident_bundles": bundles,
    }


def main(argv=None) -> int:
    """``python -m repro.verify chaos``: run the storm, gate the SLO."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify chaos",
        description="Seeded chaos storm against a live VOService")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sessions", type=int, default=4)
    parser.add_argument("--frames", type=int, default=40)
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--frontend", default="pim",
                        choices=sorted(_FRONTENDS))
    parser.add_argument("--no-device-detect", action="store_true",
                        help="keep edge detection on the host")
    parser.add_argument("--device-faults", type=int, default=2)
    parser.add_argument("--migrate", action="store_true",
                        help="run the migration storm instead: kill a "
                             "worker mid-storm, drain to a second "
                             "service, gate bit-identity vs an "
                             "unmigrated control run")
    parser.add_argument("--migrate-frame", type=int, default=None,
                        help="rendezvous frame for --migrate "
                             "(default: midpoint)")
    parser.add_argument("--kill", action="store_true",
                        help="run the shard kill storm instead: "
                             "SIGKILL worker processes mid-stream, "
                             "gate zero lost sessions, solo "
                             "bit-identity, and respawn within the "
                             "restart budget")
    parser.add_argument("--shards", type=int, default=3,
                        help="shard worker processes for --kill")
    parser.add_argument("--kill-count", type=int, default=1,
                        help="how many shards get SIGKILLed")
    parser.add_argument("--kill-frame", type=int, default=None,
                        help="rendezvous frame for --kill "
                             "(default: midpoint)")
    parser.add_argument("--out", default="chaos_report.json",
                        help="where to write the recovery report")
    args = parser.parse_args(argv)

    config = ChaosConfig(seed=args.seed, sessions=args.sessions,
                         frames=args.frames, scale=args.scale,
                         workers=args.workers, frontend=args.frontend,
                         device_detect=not args.no_device_detect,
                         device_faults=args.device_faults,
                         migrate_frame=args.migrate_frame,
                         shards=args.shards, kills=args.kill_count,
                         kill_frame=args.kill_frame)
    out = Path(args.out)
    if args.kill:
        report = run_chaos_kill(config, incident_dir=out.parent)
        out.write_text(json.dumps(report, indent=1, sort_keys=True)
                       + "\n")
        print(f"chaos kill: SIGKILLed shard(s) {report['kills']} of "
              f"{report['shards']} at frame {report['kill_frame']}; "
              f"{report['failovers_total']} sessions failed over, "
              f"{report['checkpointed_sessions']} checkpointed, "
              f"{report['wall_s']:.1f}s wall")
        print(f"respawns: {report['respawns']}")
        print(f"report: {out}")
        if not report["ok"]:
            for problem in report["bit_identity"]["problems"]:
                print(f"FAIL: {problem}", file=sys.stderr)
            return 1
        print("OK (zero lost sessions, trajectories bit-identical "
              "to unkilled solo runs, victims respawned)")
        return 0
    if args.migrate:
        report = run_chaos_migration(config, incident_dir=out.parent)
        out.write_text(json.dumps(report, indent=1, sort_keys=True)
                       + "\n")
        outcomes = {sid: s["outcome"]
                    for sid, s in report["sessions"].items()}
        print(f"chaos migration: killed worker "
              f"{report['killed_worker']} at frame "
              f"{report['migrate_frame']}, migrated "
              f"{report['sessions_migrated']} sessions in "
              f"{report['wall_s']:.1f}s; outcomes: {outcomes}")
        print(f"report: {out}")
        if not report["ok"]:
            if not report["bit_identity"]["ok"]:
                print(f"FAIL: migrated trajectories diverged: "
                      f"{report['bit_identity']['problems']}",
                      file=sys.stderr)
            if report["unrecovered_sessions"]:
                print(f"FAIL: unrecovered sessions: "
                      f"{report['unrecovered_sessions']}",
                      file=sys.stderr)
            if report["unattributed_faults"]:
                print(f"FAIL: {len(report['unattributed_faults'])} "
                      f"injected faults unattributed", file=sys.stderr)
            return 1
        print("OK (migrated trajectories bit-identical to control)")
        return 0
    report = run_chaos(config, incident_dir=out.parent)
    out.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")

    outcomes = {sid: s["outcome"]
                for sid, s in report["sessions"].items()}
    print(f"chaos: {report['faults_injected']} faults over "
          f"{config.sessions} sessions x {config.frames} frames "
          f"in {report['wall_s']:.1f}s; outcomes: {outcomes}")
    print(f"device evictions: {report['device_evictions']}, "
          f"worker retries: {report['service']['retries_total']}, "
          f"checkpoint restores: "
          f"{report['service']['restores_total']}")
    print(f"report: {out}")
    if not report["ok"]:
        if report["unrecovered_sessions"]:
            print(f"FAIL: unrecovered sessions: "
                  f"{report['unrecovered_sessions']}", file=sys.stderr)
        if report["unattributed_faults"]:
            print(f"FAIL: {len(report['unattributed_faults'])} "
                  f"injected faults unattributed", file=sys.stderr)
        if not report["control_bit_identity"]["ok"]:
            print(f"FAIL: control session diverged: "
                  f"{report['control_bit_identity']['problems']}",
                  file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
