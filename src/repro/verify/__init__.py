"""The differential conformance harness for the PIM ISA.

Three layers pin the simulator's numerical semantics:

* :mod:`repro.verify.golden` -- a pure-python, bit-true golden model
  of every micro-op (independent of the numpy device internals), both
  as the stateless :func:`~repro.verify.golden.golden_op` and as the
  stateful :class:`~repro.verify.golden.GoldenMachine`.
* :mod:`repro.verify.matrix` -- the conformance matrix runner:
  OpKind x lane width x signed/saturation config, every backend
  (word device, bit-true device, eager and batched program replay)
  differentially checked on directed edge vectors and seeded random
  vectors, with a :mod:`repro.verify.coverage` ledger and a baseline
  gate so coverage can only grow.
* :mod:`repro.verify.fuzz` -- a deterministic differential fuzzer
  whose minimized failures persist in ``tests/corpus/`` and replay
  forever.

``python -m repro.verify`` runs the whole harness (matrix + fuzz +
corpus replay + fault-injection trials) and emits a JSON report; CI
gates on zero mismatches and non-regressing coverage.

A fourth layer, :mod:`repro.verify.chaos` (``python -m repro.verify
chaos``), pins *recovery* rather than semantics: seeded fault storms
-- frame corruption, dropped frames, stalled clients, device faults --
against a live :class:`~repro.serve.service.VOService`, gated on zero
unrecovered sessions and full fault attribution.
"""

from repro.verify.chaos import (
    ChaosConfig,
    InjectedFault,
    build_fault_storm,
    run_chaos,
)
from repro.verify.coverage import (
    CoverageLedger,
    METHOD_CONFIGS,
    METHOD_OPKINDS,
    expected_cells,
)
from repro.verify.fuzz import DifferentialFuzzer, FuzzCase, replay_corpus
from repro.verify.golden import GoldenMachine, golden_op, sign_value, to_pattern
from repro.verify.matrix import (
    ConformanceReport,
    ConformanceRunner,
    Mismatch,
    directed_patterns,
)
from repro.verify.robustness import fault_detection_trials

__all__ = [
    "golden_op",
    "GoldenMachine",
    "sign_value",
    "to_pattern",
    "ConformanceRunner",
    "ConformanceReport",
    "Mismatch",
    "directed_patterns",
    "CoverageLedger",
    "expected_cells",
    "METHOD_CONFIGS",
    "METHOD_OPKINDS",
    "DifferentialFuzzer",
    "FuzzCase",
    "replay_corpus",
    "fault_detection_trials",
    "ChaosConfig",
    "InjectedFault",
    "build_fault_storm",
    "run_chaos",
]
