"""Fault-injection robustness trials for the conformance harness.

Each trial arms a seeded :class:`~repro.pim.faults.FaultInjector` on a
word-level device, runs a short op sequence, and classifies the fault
against two golden-model runs:

* **detected** -- the golden model run on the *corrupted* initial
  state diverges from the clean run, i.e. the flip is observable in
  the final machine state, and the differential harness flags it;
* **masked** -- both golden runs agree (the flipped cell was
  overwritten before influencing anything), so the fault is provably
  benign.

In both classes the faulty device must agree bit-for-bit with the
corrupted-golden prediction (the fault's effect is *bounded*: exactly
one modeled flip, no secondary corruption) and must self-report as
suspect via :meth:`~repro.pim.device.PIMDevice.fault_state` -- the
signal the serving layer uses to evict and reset the device
(``repro.serve.pool.PoolWorker``).  Any other outcome is a **miss**
and fails the gate.

Transient sense-amp read errors are probabilistic per read, so those
trials only count when the injector actually fired
(``read_faults > 0``); a fired read error always corrupts an operand
on its way into the accumulator, so it must surface as a divergence
from the clean golden run.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.obs.metrics import get_registry
from repro.pim.config import PIMConfig
from repro.pim.device import PIMDevice
from repro.pim.faults import FaultInjector, FaultPlan
from repro.verify.golden import GoldenMachine

__all__ = ["fault_detection_trials"]


def _load_bytes(machine, memory) -> None:
    machine.set_precision(8)
    for row, data in enumerate(memory):
        machine.load(row, np.array(data, dtype=np.int64), signed=False)


def _run_probe(machine) -> None:
    """A short op sequence touching adds, logic and a multiply."""
    machine.set_precision(8)
    machine.add(2, 0, 1, saturate=True, signed=False)
    machine.logic_xor(3, 0, 2)
    machine.set_precision(16)
    machine.mul(4, 0, 1, saturate=True, signed=True)


def fault_detection_trials(trials: int = 25, seed: int = 2026,
                           config: Optional[PIMConfig] = None,
                           transient: bool = False) -> dict:
    """Run seeded single-fault trials; returns a JSON-ready summary.

    Every trial flips one random stored bit (or, with ``transient``,
    arms a per-read sense-amp error) in an otherwise clean device and
    classifies the outcome as detected, masked or missed (see the
    module docstring).  ``missed == 0`` together with the device
    reporting itself suspect is the gate the CLI and CI enforce.
    """
    config = config or PIMConfig(wordline_bits=128, num_rows=6,
                                 num_tmp_registers=2)
    registry = get_registry()
    trials_ctr = registry.counter(
        "verify_fault_trials_total",
        "Fault-injection robustness trials by outcome")

    def final_state(machine):
        machine.set_precision(8)
        return [[int(v) for v in machine.store(r, signed=False)]
                for r in range(config.num_rows)]

    detected = 0
    masked = 0
    armed = 0
    missed = []
    for t in range(int(trials)):
        rng = np.random.default_rng([int(seed), t])
        memory = [[int(b) for b in rng.integers(0, 256, config.row_bytes)]
                  for _ in range(config.num_rows)]
        clean = GoldenMachine(config)
        _load_bytes(clean, memory)
        _run_probe(clean)
        want_clean = final_state(clean)

        dev = PIMDevice(config)
        _load_bytes(dev, memory)
        if transient:
            plan = FaultPlan(seed=int(seed) * 1000 + t,
                             read_flip_prob=0.02)
            want_faulty = None
        else:
            row = int(rng.integers(0, config.num_rows))
            bit = int(rng.integers(0, config.wordline_bits))
            plan = FaultPlan(seed=int(seed) * 1000 + t,
                             stored_flips=((row, bit),))
            flipped = [list(r) for r in memory]
            flipped[row][bit // 8] ^= 1 << (bit % 8)
            corrupt = GoldenMachine(config)
            _load_bytes(corrupt, flipped)
            _run_probe(corrupt)
            want_faulty = final_state(corrupt)
        dev.attach_fault_injector(FaultInjector(plan))
        _run_probe(dev)
        state = dev.fault_state()
        fired = bool(state["stored_faults"] or state["read_faults"])
        if not fired:
            # A transient plan may not draw an error on this trial;
            # nothing was injected, so there is nothing to detect.
            trials_ctr.inc(outcome="not-armed")
            continue
        armed += 1
        got = final_state(dev)
        bounded = want_faulty is None or got == want_faulty
        if state["suspect"] and bounded and got != want_clean:
            detected += 1
            trials_ctr.inc(outcome="detected")
        elif state["suspect"] and bounded and \
                want_faulty is not None and want_faulty == want_clean:
            masked += 1
            trials_ctr.inc(outcome="masked")
        else:
            missed.append({"trial": t, "plan_seed": plan.seed,
                           "state": state, "bounded": bounded})
            trials_ctr.inc(outcome="missed")
    return {
        "schema": "repro.verify.faults/1",
        "seed": int(seed),
        "mode": "transient" if transient else "stored",
        "trials": int(trials),
        "armed": armed,
        "detected": detected,
        "masked": masked,
        "missed": missed,
        "ok": not missed and armed == detected + masked,
    }
