"""Deterministic differential fuzzer with a persisted regression corpus.

The fuzzer generates random micro-op programs -- random initial SRAM
contents, random op sequences with precision switches, rows and Tmp
registers as operands -- and runs each one through every backend
(:class:`~repro.pim.device.PIMDevice`, the bit-true
:class:`~repro.pim.device.BitPIMDevice`, and the op stream recorded as
a :class:`~repro.pim.program.PIMProgram` and replayed through
``run_program`` both eagerly and via the compiled lowering backend),
comparing the complete final machine state (every
row, every Tmp register, byte for byte) and the cycle ledgers against
the pure-python golden model.

Everything is seeded: case ``i`` of seed ``s`` is derived from the
string ``"{s}:case:{i}"`` (:class:`random.Random` hashes string seeds
process-stably), so a failure reported by CI reproduces locally with
no corpus transfer needed.

When a case fails it is *minimized* -- shortest failing op prefix,
then greedy removal of interior ops, then shrinking the initial memory
bytes toward zero -- and the shrunk case is written as JSON under the
regression corpus directory (``tests/corpus/``).  Corpus entries are
replayed forever by the test suite: a fixed bug stays fixed.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.obs.metrics import get_registry
from repro.pim.config import SUPPORTED_PRECISIONS, PIMConfig
from repro.pim.device import BitPIMDevice, PIMDevice, Tmp
from repro.pim.program import ProgramRecorder
from repro.verify.golden import GoldenMachine

__all__ = ["FuzzCase", "FuzzFailure", "DifferentialFuzzer",
           "replay_corpus", "CORPUS_SCHEMA"]

CORPUS_SCHEMA = "repro.verify.corpus/1"

#: Bytes overrepresented in generated memory: the carry/sign/saturation
#: edges that historically break lane arithmetic.
EDGE_BYTES = (0x00, 0x01, 0x7F, 0x80, 0xFF, 0x55, 0xAA, 0xFE)

_BACKENDS = ("pim", "bitpim", "replay", "replay-compiled")


def _encode_operand(op) -> object:
    if isinstance(op, Tmp) or type(op).__name__ == "_TmpSentinel":
        return f"T{op.index}"
    return int(op)


def _decode_operand(op):
    if isinstance(op, str) and op.startswith("T"):
        return Tmp(int(op[1:]))
    return int(op)


@dataclass
class FuzzCase:
    """One self-contained differential test case (JSON-serializable).

    Attributes:
        config: Device geometry the case runs on.
        memory: Initial SRAM contents, one byte list per row.
        program: Op steps: ``{"method", "dst", "srcs", "kwargs"}``
            dicts (``set_precision`` steps carry only kwargs).
            Operands are row ints or ``"T<i>"`` Tmp references.
        name: Identifier used in reports and corpus filenames.
    """

    config: PIMConfig
    memory: List[List[int]]
    program: List[dict]
    name: str = "case"

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": CORPUS_SCHEMA,
            "name": self.name,
            "config": {
                "wordline_bits": self.config.wordline_bits,
                "num_rows": self.config.num_rows,
                "slice_bits": self.config.slice_bits,
                "num_tmp_registers": self.config.num_tmp_registers,
            },
            "memory": [list(map(int, row)) for row in self.memory],
            "program": self.program,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzCase":
        if data.get("schema") != CORPUS_SCHEMA:
            raise ValueError(
                f"not a corpus entry (schema={data.get('schema')!r})")
        return cls(config=PIMConfig(**data["config"]),
                   memory=[list(map(int, row))
                           for row in data["memory"]],
                   program=list(data["program"]),
                   name=str(data.get("name", "corpus")))

    # -- execution -------------------------------------------------------

    def _fresh_backends(self) -> Dict[str, object]:
        return {"pim": PIMDevice(self.config),
                "bitpim": BitPIMDevice(self.config),
                "replay": PIMDevice(self.config),
                "replay-compiled": PIMDevice(self.config)}

    def _load(self, machine) -> None:
        machine.set_precision(8)
        for row, data in enumerate(self.memory):
            machine.load(row, np.array(data, dtype=np.int64),
                         signed=False)

    def _apply(self, machine) -> None:
        for step in self.program:
            method = step["method"]
            if method == "set_precision":
                machine.set_precision(step["kwargs"]["precision"])
                continue
            dst = _decode_operand(step["dst"])
            srcs = tuple(_decode_operand(s) for s in step["srcs"])
            getattr(machine, method)(dst, *srcs, **step["kwargs"])

    def run(self, backends: Sequence[str] = _BACKENDS) -> List[str]:
        """Run on every backend; returns mismatch descriptions."""
        failures: List[str] = []
        golden = GoldenMachine(self.config)
        self._load(golden)
        try:
            self._apply(golden)
        except Exception as exc:  # noqa: BLE001 -- report, don't mask
            return [f"{self.name}: golden model raised {exc!r}"]
        golden.set_precision(8)
        want_rows = [golden.store_patterns(r)
                     for r in range(self.config.num_rows)]
        golden_tmps = golden.snapshot()["tmp"]

        cycles: Dict[str, int] = {}
        devices = self._fresh_backends()
        for backend in backends:
            dev = devices[backend]
            self._load(dev)
            try:
                if backend in ("replay", "replay-compiled"):
                    recorder = ProgramRecorder(self.config,
                                               name=self.name)
                    self._apply(recorder)
                    dev.run_program(
                        recorder.finish(), [0],
                        mode="eager" if backend == "replay"
                        else "compiled")
                else:
                    self._apply(dev)
            except Exception as exc:  # noqa: BLE001
                failures.append(
                    f"{self.name}: {backend} raised {exc!r}")
                continue
            cycles[backend] = dev.ledger.cycles
            dev.set_precision(8)
            for row, want in enumerate(want_rows):
                got = [int(v) for v in dev.store(row, signed=False)]
                if got != want:
                    failures.append(
                        f"{self.name}: {backend} row {row} = "
                        f"{got} want {want}")
            for i, want in enumerate(golden_tmps):
                got = [int(v) & 0xFF
                       for v in dev.read_tmp(signed=False, index=i)]
                if got != want:
                    failures.append(
                        f"{self.name}: {backend} tmp{i} = "
                        f"{got} want {want}")
        if len(set(cycles.values())) > 1:
            failures.append(
                f"{self.name}: cycle ledgers diverged: " +
                ", ".join(f"{k}={v}"
                          for k, v in sorted(cycles.items())))
        return failures


@dataclass
class FuzzFailure:
    """A failing case with its minimized form and first mismatch."""

    index: int
    mismatch: str
    case: FuzzCase
    minimized: FuzzCase


class DifferentialFuzzer:
    """Seeded program generator + shrinker + corpus writer.

    Args:
        seed: Root seed; every case derives deterministically from it.
        config: Device geometry (default: 128-bit word line, 6 rows,
            2 Tmp registers -- two 64-bit lanes up to sixteen 8-bit
            lanes, small enough to shrink quickly).
        ops_per_case: Op steps per generated case.
    """

    def __init__(self, seed: int = 2026,
                 config: Optional[PIMConfig] = None,
                 ops_per_case: int = 10):
        self.seed = int(seed)
        self.config = config or PIMConfig(wordline_bits=128,
                                          num_rows=6,
                                          num_tmp_registers=2)
        self.ops_per_case = int(ops_per_case)
        registry = get_registry()
        self._cases_ctr = registry.counter(
            "verify_fuzz_cases_total", "Differential fuzz cases run")
        self._failures_ctr = registry.counter(
            "verify_fuzz_failures_total",
            "Differential fuzz cases that found a mismatch")

    def _rng(self, tag: str) -> random.Random:
        # String seeds hash via sha512 -> stable across processes.
        return random.Random(f"{self.seed}:{tag}")

    # -- generation ------------------------------------------------------

    def generate(self, index: int) -> FuzzCase:
        """Deterministically generate case ``index``."""
        rng = self._rng(f"case:{index}")
        cfg = self.config
        memory = [[rng.choice(EDGE_BYTES) if rng.random() < 0.5
                   else rng.randrange(256)
                   for _ in range(cfg.row_bytes)]
                  for _ in range(cfg.num_rows)]
        precisions = [p for p in SUPPORTED_PRECISIONS
                      if cfg.wordline_bits % p == 0]
        program: List[dict] = []
        precision = 8
        while len(program) < self.ops_per_case:
            if rng.random() < 0.15:
                precision = rng.choice(precisions)
                program.append({"method": "set_precision",
                                "kwargs": {"precision": precision}})
                continue
            program.append(self._gen_op(rng, precision))
        return FuzzCase(config=cfg, memory=memory, program=program,
                        name=f"fuzz-{self.seed}-{index:04d}")

    def _operand(self, rng: random.Random) -> object:
        if rng.random() < 0.2:
            return f"T{rng.randrange(self.config.num_tmp_registers)}"
        return rng.randrange(self.config.num_rows)

    def _gen_op(self, rng: random.Random, precision: int) -> dict:
        method = rng.choice((
            "add", "sub", "avg", "cmp_gt", "logic_and", "logic_or",
            "logic_xor", "logic_nor", "shift_lanes", "shift_bits",
            "copy", "abs_diff", "maximum", "minimum", "mul", "div"))
        # At 64-bit lane width the unsigned view is host-bound on the
        # word device but exact on the bit device -- the architecture
        # contract is signed-only there (see repro.verify.golden).
        signed = True if precision >= 64 else rng.random() < 0.5
        dst = self._operand(rng)
        step = {"method": method, "dst": dst, "kwargs": {}}
        if method in ("shift_lanes", "shift_bits", "copy"):
            step["srcs"] = [self._operand(rng)]
        else:
            step["srcs"] = [self._operand(rng), self._operand(rng)]
        if method in ("add", "sub"):
            step["kwargs"] = {"signed": signed,
                              "saturate": rng.random() < 0.5}
        elif method == "mul":
            step["kwargs"] = {"signed": signed,
                              "saturate": rng.random() < 0.5,
                              "rshift": rng.randrange(4)}
        elif method == "div":
            step["kwargs"] = {"signed": signed}
        elif method == "shift_lanes":
            step["kwargs"] = {"pixels": rng.randint(-2, 2),
                              "signed": signed}
        elif method == "shift_bits":
            step["kwargs"] = {"amount": rng.randint(-4, 4),
                              "signed": signed}
        elif not method.startswith("logic_"):
            step["kwargs"] = {"signed": signed}
        return step

    # -- shrinking -------------------------------------------------------

    def minimize(self, case: FuzzCase) -> FuzzCase:
        """Shrink a failing case while it keeps failing.

        Three passes: shortest failing op prefix, greedy removal of
        interior ops, then memory bytes zeroed/halved row by row.  The
        result is the case that lands in the corpus.
        """

        def variant(program=None, memory=None) -> FuzzCase:
            return FuzzCase(config=case.config,
                            memory=memory if memory is not None
                            else [list(r) for r in case.memory],
                            program=list(program)
                            if program is not None
                            else list(case.program),
                            name=case.name)

        program = list(case.program)
        memory = [list(r) for r in case.memory]
        for k in range(1, len(program) + 1):
            if variant(program=program[:k], memory=memory).run():
                program = program[:k]
                break
        i = 0
        while i < len(program):
            trial = program[:i] + program[i + 1:]
            if trial and variant(program=trial, memory=memory).run():
                program = trial
            else:
                i += 1
        for row in range(len(memory)):
            zeroed = [list(r) for r in memory]
            zeroed[row] = [0] * len(memory[row])
            if variant(program=program, memory=zeroed).run():
                memory = zeroed
        changed = True
        while changed:
            changed = False
            for row in range(len(memory)):
                for j, byte in enumerate(memory[row]):
                    if byte == 0:
                        continue
                    for smaller in (0, byte // 2):
                        trial = [list(r) for r in memory]
                        trial[row][j] = smaller
                        if variant(program=program,
                                   memory=trial).run():
                            memory = trial
                            changed = True
                            break
        return variant(program=program, memory=memory)

    # -- campaign --------------------------------------------------------

    def run(self, cases: int = 50,
            corpus_dir: Optional[Path] = None,
            max_failures: int = 5) -> dict:
        """Fuzz ``cases`` cases; minimize and persist any failures.

        Returns a JSON-ready report.  Stops early after
        ``max_failures`` distinct failing cases (each one costs a
        shrink run).
        """
        failures: List[FuzzFailure] = []
        ran = 0
        for index in range(cases):
            case = self.generate(index)
            ran += 1
            self._cases_ctr.inc()
            mismatches = case.run()
            if not mismatches:
                continue
            self._failures_ctr.inc()
            minimized = self.minimize(case)
            failures.append(FuzzFailure(index=index,
                                        mismatch=mismatches[0],
                                        case=case,
                                        minimized=minimized))
            if corpus_dir is not None:
                corpus_dir = Path(corpus_dir)
                corpus_dir.mkdir(parents=True, exist_ok=True)
                entry = minimized.to_dict()
                entry["mismatch_at_discovery"] = mismatches[0]
                path = corpus_dir / f"{case.name}.json"
                path.write_text(json.dumps(entry, indent=1,
                                           sort_keys=True) + "\n")
            if len(failures) >= max_failures:
                break
        return {
            "schema": "repro.verify.fuzz/1",
            "seed": self.seed,
            "cases": ran,
            "failures": [
                {"index": f.index, "mismatch": f.mismatch,
                 "minimized_ops": len(f.minimized.program)}
                for f in failures],
            "ok": not failures,
        }


def replay_corpus(corpus_dir) -> List[dict]:
    """Replay every corpus entry; returns one result dict per entry.

    Each result is ``{"path", "name", "mismatches"}`` -- an empty
    ``mismatches`` list means the regression stayed fixed.  Missing or
    empty directories yield an empty list (no corpus is a valid
    state, not an error).
    """
    corpus_dir = Path(corpus_dir)
    results: List[dict] = []
    if not corpus_dir.is_dir():
        return results
    for path in sorted(corpus_dir.glob("*.json")):
        case = FuzzCase.from_dict(json.loads(path.read_text()))
        results.append({"path": str(path), "name": case.name,
                        "mismatches": case.run()})
    return results
