"""Observability for the PIM-EBVO stack: spans, metrics, exporters.

The paper's evaluation is an *attribution* exercise -- Fig. 10-a/10-b
break one tracked frame down into per-kernel cycles and per-category
memory accesses.  This package builds that visibility into the stack
instead of bolting it onto one benchmark script:

* :mod:`repro.obs.tracer` -- a hierarchical span tracer on the
  *simulated-cycle* timeline.  Spans snapshot the device
  :class:`~repro.pim.cost.CostLedger` at entry/exit, so every span
  carries its exact cycle/access/energy delta and leaf spans tile their
  parent without drift.  Disabled (the default) it is a true no-op.
* :mod:`repro.obs.metrics` -- a process-wide registry of named
  counters, gauges and histograms (program-cache hits, replay fallback
  reasons, LM iterations, keyframe insertions, per-frame cycles).
* :mod:`repro.obs.export` -- Chrome trace-event JSON (loadable in
  Perfetto / ``chrome://tracing``), a JSONL metrics stream, and a
  console summary reproducing the paper's Fig. 10-a/10-b tables from a
  live run.
* :mod:`repro.obs.context` -- explicit trace-context propagation:
  :class:`TraceContext` handles carried across threads and detached
  :class:`SpanHandle` spans, so a serving request admitted on one
  thread and tracked on another still yields one connected span tree.
* :mod:`repro.obs.slo` -- a rolling-window SLO engine (exact latency /
  queue-wait quantiles, goodput, deadline-miss rate, error-budget burn)
  feeding ``VOService.stats()`` and ``BENCH_serve.json``.
* :mod:`repro.obs.flight` -- an always-on flight recorder: a bounded
  event ring plus span trees of the last N failed requests, dumped as
  a stamped incident bundle when a breaker opens or chaos fails.
* :mod:`repro.obs.promtext` -- Prometheus text exposition (and a
  validating parser) for the metrics registry, served by the status
  endpoint.
* :mod:`repro.obs.stamp` -- the shared git-SHA/toolchain provenance
  stamp every emitted artifact carries.
* :func:`repro.obs.setup_logging` -- one-call stdlib ``logging``
  configuration shared by every CLI entry point.

Nothing in this package imports :mod:`repro.pim` (devices and ledgers
are duck-typed), so the pim/kernels/vo layers can depend on it freely.
"""

from repro.obs.context import (
    NULL_HANDLE,
    SpanHandle,
    TraceContext,
    current_context,
)
from repro.obs.flight import (
    FlightRecorder,
    get_flight_recorder,
    set_flight_recorder,
)
from repro.obs.logconf import setup_logging
from repro.obs.promtext import (
    parse_prometheus_text,
    render_prometheus_text,
)
from repro.obs.slo import SloEngine, SloTargets, percentile
from repro.obs.stamp import git_sha, run_stamp
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.tracer import (
    CLOCK,
    Span,
    Tracer,
    annotate,
    current_span,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
    span,
    tracing_enabled,
)
from repro.obs.export import (
    chrome_trace_events,
    console_summary,
    op_breakdown_rows,
    write_chrome_trace,
    write_metrics_jsonl,
)

__all__ = [
    "CLOCK", "Span", "Tracer", "annotate", "current_span",
    "disable_tracing", "enable_tracing", "get_tracer", "set_tracer",
    "span", "tracing_enabled",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "get_registry",
    "set_registry",
    "chrome_trace_events", "console_summary", "op_breakdown_rows",
    "write_chrome_trace", "write_metrics_jsonl",
    "NULL_HANDLE", "SpanHandle", "TraceContext", "current_context",
    "SloEngine", "SloTargets", "percentile",
    "FlightRecorder", "get_flight_recorder", "set_flight_recorder",
    "parse_prometheus_text", "render_prometheus_text",
    "git_sha", "run_stamp",
    "setup_logging",
]
