"""Observability for the PIM-EBVO stack: spans, metrics, exporters.

The paper's evaluation is an *attribution* exercise -- Fig. 10-a/10-b
break one tracked frame down into per-kernel cycles and per-category
memory accesses.  This package builds that visibility into the stack
instead of bolting it onto one benchmark script:

* :mod:`repro.obs.tracer` -- a hierarchical span tracer on the
  *simulated-cycle* timeline.  Spans snapshot the device
  :class:`~repro.pim.cost.CostLedger` at entry/exit, so every span
  carries its exact cycle/access/energy delta and leaf spans tile their
  parent without drift.  Disabled (the default) it is a true no-op.
* :mod:`repro.obs.metrics` -- a process-wide registry of named
  counters, gauges and histograms (program-cache hits, replay fallback
  reasons, LM iterations, keyframe insertions, per-frame cycles).
* :mod:`repro.obs.export` -- Chrome trace-event JSON (loadable in
  Perfetto / ``chrome://tracing``), a JSONL metrics stream, and a
  console summary reproducing the paper's Fig. 10-a/10-b tables from a
  live run.
* :func:`repro.obs.setup_logging` -- one-call stdlib ``logging``
  configuration shared by every CLI entry point.

Nothing in this package imports :mod:`repro.pim` (devices and ledgers
are duck-typed), so the pim/kernels/vo layers can depend on it freely.
"""

from repro.obs.logconf import setup_logging
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.tracer import (
    CLOCK,
    Span,
    Tracer,
    annotate,
    current_span,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
    span,
    tracing_enabled,
)
from repro.obs.export import (
    chrome_trace_events,
    console_summary,
    write_chrome_trace,
    write_metrics_jsonl,
)

__all__ = [
    "CLOCK", "Span", "Tracer", "annotate", "current_span",
    "disable_tracing", "enable_tracing", "get_tracer", "set_tracer",
    "span", "tracing_enabled",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "get_registry",
    "set_registry",
    "chrome_trace_events", "console_summary", "write_chrome_trace",
    "write_metrics_jsonl",
    "setup_logging",
]
