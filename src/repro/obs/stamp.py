"""One shared provenance stamp for every emitted artifact.

``BENCH_pim.json`` established the attribution contract: every
committed artifact carries the git revision, a timestamp, and the
toolchain versions that produced it, so the PR-over-PR trajectory
stays comparable.  ``BENCH_serve.json``, ``chaos_report.json`` and the
flight-recorder incident bundles reuse the same stamp through
:func:`run_stamp` instead of growing their own variants.
"""

from __future__ import annotations

import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, Optional

__all__ = ["git_sha", "run_stamp"]


def git_sha() -> Optional[str]:
    """Current repository revision, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10, check=True)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha or None


def run_stamp() -> Dict[str, Optional[str]]:
    """Provenance fields in the ``BENCH_pim.json`` stamp format.

    Keys: ``timestamp`` (local ISO-8601), ``git_sha``, ``python``,
    ``numpy``, ``machine``.
    """
    try:
        import numpy as np
        numpy_version = np.__version__
    except ImportError:                      # pragma: no cover
        numpy_version = None
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "git_sha": git_sha(),
        "python": sys.version.split()[0],
        "numpy": numpy_version,
        "machine": platform.machine(),
    }
