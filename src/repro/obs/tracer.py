"""Hierarchical span tracing on the simulated-cycle timeline.

A *span* covers one phase of work (an LPF pass, an LM iteration, a
whole frame).  When a span is opened with a ``device``, the tracer
snapshots the device's :class:`~repro.pim.cost.CostLedger` on entry and
computes the delta on exit, so the span carries exactly the cycles,
SRAM/Tmp accesses and energy charged inside it.  Because the ledger is
the single source of cost truth, leaf spans tile their parent: the sum
of leaf-span cycle deltas over a frame equals the device ledger's total
for that frame, which is what makes the Fig. 10-style attribution
tables exact rather than sampled.

Timestamps come from :data:`CLOCK`, a process-wide simulated-cycle
clock advanced by the instrumented devices' charge hooks
(:meth:`repro.pim.device._DeviceCore._charge_step`).  Using one shared
clock keeps the timeline monotone even when several devices interleave
(the tracker runs one detect device per pyramid level).

Tracing is **disabled by default** and then a true no-op: ``span()``
returns a shared null context manager and the device hook is a single
attribute check, so results and ledger state are bit-identical to an
uninstrumented run.

Thread-safety: the span stack is thread-local; finished spans and span
id allocation are guarded by a lock; each span records its thread so
exporters can lay out one track per thread.

Cross-thread trees: a span opened with an explicit ``parent``
(:class:`~repro.obs.context.TraceContext`) joins that remote tree
instead of the local stack top, and :meth:`Tracer.begin` opens a
detached :class:`~repro.obs.context.SpanHandle` that can be finished
from any thread -- see :mod:`repro.obs.context`.  Every span carries a
``trace_id`` (its root's span id), so one request's spans can be
collected afterwards with :meth:`Tracer.spans_for_trace`.

Finished spans live in a bounded ring (``max_spans``): when a long run
overflows it, the oldest spans are dropped, a one-line warning is
emitted on the first drop, and every drop is counted in the
``obs_tracer_spans_dropped_total`` metric so silent span loss under
heavy load is visible.
"""

from __future__ import annotations

import itertools
import logging
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

from repro.obs.context import NULL_HANDLE, SpanHandle, TraceContext

__all__ = [
    "CLOCK", "SimClock", "Span", "Tracer",
    "annotate", "current_span", "disable_tracing", "enable_tracing",
    "get_tracer", "set_tracer", "span", "tracing_enabled",
]

log = logging.getLogger(__name__)


class SimClock:
    """Process-wide simulated-cycle clock.

    Instrumented devices advance it by every cycle they charge (the
    per-step hook in eager execution, one aggregate bump in batched
    replay), but only while ``enabled`` -- the flag keeps the
    uninstrumented hot path to a single attribute check.
    """

    __slots__ = ("enabled", "_cycles")

    def __init__(self) -> None:
        self.enabled = False
        self._cycles = 0

    def advance(self, cycles: int) -> None:
        """Advance the clock by ``cycles`` simulated cycles."""
        self._cycles += int(cycles)

    def now(self) -> int:
        """Current simulated-cycle timestamp."""
        return self._cycles

    def reset(self) -> None:
        """Rewind to cycle zero (start of a new trace)."""
        self._cycles = 0


#: The shared simulated-cycle clock the device charge hooks advance.
CLOCK = SimClock()


@dataclass
class Span:
    """One finished span with its cost attribution.

    Attributes:
        name: Span label (``"lpf"``, ``"frame"``, ...).
        category: Coarse grouping for exporters (``"kernel"``,
            ``"frame"``, ``"vo"``, ``"replay"``, ``"serve"``...).
        span_id: Unique id, allocated in start order.
        parent_id: Enclosing span's id (None for roots).
        trace_id: Span id of this tree's root (equals ``span_id``
            for a root span) -- shared by every span of one request.
        thread: Native thread id the span ran on.
        ts: Simulated-cycle timestamp at span start (shared clock).
        wall_ts: Host ``perf_counter`` timestamp at span start, for
            the wall-clock export timeline.
        dur: Simulated cycles elapsed on the shared clock.
        cycles: Device-ledger cycle delta (None when no device given).
            Equals ``dur`` when the span's device is the only one
            charging while it is open.
        ledger: The full :class:`~repro.pim.cost.CostLedger` delta
            (None when no device given).
        energy_pj: Energy of the ledger delta under the default model.
        wall_s: Host wall-clock seconds spent in the span.
        attrs: Free-form attributes set at open time or via
            :func:`annotate`.
    """

    name: str
    category: str = ""
    span_id: int = 0
    parent_id: Optional[int] = None
    trace_id: int = 0
    thread: int = 0
    ts: int = 0
    wall_ts: float = 0.0
    dur: int = 0
    cycles: Optional[int] = None
    ledger: Optional[Any] = None
    energy_pj: Optional[float] = None
    wall_s: float = 0.0
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def accesses(self) -> Optional[Dict[str, int]]:
        """Memory accesses of the ledger delta, by category."""
        if self.ledger is None:
            return None
        return {
            "mem_rd": int(self.ledger.sram_reads),
            "mem_wr": int(self.ledger.sram_writes),
            "tmp_reg": int(self.ledger.tmp_accesses),
        }

    def context(self) -> TraceContext:
        """This span as a parent context for cross-thread children."""
        return TraceContext(self.trace_id, self.span_id)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready record (flight-recorder incident bundles)."""
        record: Dict[str, Any] = {
            "name": self.name,
            "category": self.category,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "thread": self.thread,
            "ts": int(self.ts),
            "dur": int(self.dur),
            "wall_ts": float(self.wall_ts),
            "wall_s": float(self.wall_s),
            "attrs": dict(self.attrs),
        }
        if self.cycles is not None:
            record["cycles"] = int(self.cycles)
        if self.energy_pj is not None:
            record["energy_pj"] = float(self.energy_pj)
        if self.ledger is not None:
            record["accesses"] = self.accesses
        return record


class _NullSpan:
    """The shared disabled-tracer context manager (no allocation)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set_attr(self, key: str, value) -> None:
        """No-op attribute setter, mirroring :class:`_ActiveSpan`."""


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager for one live span of an enabled tracer."""

    __slots__ = ("_tracer", "_span", "_device", "_snapshot", "_wall",
                 "_explicit")

    def __init__(self, tracer: "Tracer", span: Span, device,
                 explicit_parent: bool = False) -> None:
        self._tracer = tracer
        self._span = span
        self._device = device
        self._snapshot = None
        self._wall = 0.0
        self._explicit = explicit_parent

    def set_attr(self, key: str, value) -> None:
        """Attach an attribute to the span while it is open."""
        self._span.attrs[key] = value

    @property
    def context(self) -> TraceContext:
        """The open span as a parent context for remote children."""
        return self._span.context()

    def __enter__(self) -> "_ActiveSpan":
        if self._device is not None:
            self._snapshot = self._device.ledger.snapshot()
        self._span.ts = CLOCK.now()
        self._wall = time.perf_counter()
        self._span.wall_ts = self._wall
        self._tracer._push(self._span, explicit=self._explicit)
        return self

    def __exit__(self, *exc) -> None:
        span = self._span
        span.wall_s = time.perf_counter() - self._wall
        span.dur = CLOCK.now() - span.ts
        if self._snapshot is not None:
            delta = self._device.ledger.delta_since(self._snapshot)
            span.ledger = delta
            span.cycles = int(delta.cycles)
            span.energy_pj = float(delta.energy().total_pj)
        self._tracer._pop(span)


class Tracer:
    """Collects spans when enabled; a strict no-op otherwise.

    ``max_spans`` bounds the finished-span ring: a run that outgrows
    it keeps the *newest* spans, warns once, and counts every dropped
    span (``dropped_spans`` and the
    ``obs_tracer_spans_dropped_total`` metric).
    """

    #: Default finished-span ring capacity.
    DEFAULT_MAX_SPANS = 200_000

    def __init__(self, enabled: bool = False,
                 max_spans: Optional[int] = None):
        self.enabled = enabled
        self.max_spans = self.DEFAULT_MAX_SPANS if max_spans is None \
            else int(max_spans)
        if self.max_spans < 1:
            raise ValueError("max_spans must be positive")
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._finished: Deque[Span] = deque(maxlen=self.max_spans)
        self._dropped = 0
        self._drop_warned = False

    # -- lifecycle -------------------------------------------------------

    def enable(self, reset: bool = True) -> None:
        """Turn tracing on (and the device cycle clock with it)."""
        if reset:
            self.reset()
        self.enabled = True
        CLOCK.enabled = True

    def disable(self) -> None:
        """Turn tracing off; collected spans remain readable."""
        self.enabled = False
        CLOCK.enabled = False

    def reset(self) -> None:
        """Drop all finished spans and rewind the cycle clock."""
        with self._lock:
            self._finished = deque(maxlen=self.max_spans)
            self._ids = itertools.count(1)
            self._dropped = 0
            self._drop_warned = False
        CLOCK.reset()

    # -- span API --------------------------------------------------------

    def _new_span(self, name: str, category: str, parent,
                  attrs: Dict[str, Any]) -> Span:
        """Allocate a span record, resolving an explicit parent."""
        with self._lock:
            span_id = next(self._ids)
        record = Span(name=name, category=category, span_id=span_id,
                      thread=threading.get_ident(), attrs=attrs)
        if parent is not None:
            record.parent_id = parent.span_id
            record.trace_id = parent.trace_id or parent.span_id
        return record

    def span(self, name: str, device=None, category: str = "",
             parent: Optional[TraceContext] = None, **attrs):
        """Open a span; returns a context manager.

        Args:
            name: Span label.
            device: Optional PIM device whose ledger delta the span
                should capture (entry/exit snapshots).
            category: Coarse grouping used by exporters.
            parent: Explicit parent (a
                :class:`~repro.obs.context.TraceContext` or
                :class:`Span`) overriding the thread-local stack top
                -- the cross-thread propagation path.  The span still
                pushes onto *this* thread's stack, so nested work
                joins the remote tree automatically.
            **attrs: Initial span attributes.
        """
        if not self.enabled:
            return _NULL_SPAN
        record = self._new_span(name, category, parent, dict(attrs))
        return _ActiveSpan(self, record, device,
                           explicit_parent=parent is not None)

    def begin(self, name: str, category: str = "",
              parent: Optional[TraceContext] = None, **attrs):
        """Open a detached span finishable from any thread.

        Returns a :class:`~repro.obs.context.SpanHandle` (or a shared
        no-op handle while disabled).  The span never joins a thread's
        stack; its parent is ``parent`` (or it roots a new trace).
        """
        if not self.enabled:
            return NULL_HANDLE
        record = self._new_span(name, category, parent, dict(attrs))
        if record.trace_id == 0:
            record.trace_id = record.span_id
        record.ts = CLOCK.now()
        wall = time.perf_counter()
        record.wall_ts = wall
        return SpanHandle(self, record, wall)

    def annotate(self, key: str, value) -> None:
        """Set an attribute on the innermost open span, if any."""
        if not self.enabled:
            return
        stack = self._stack()
        if stack:
            stack[-1].attrs[key] = value

    def current_span(self) -> Optional[Span]:
        """The innermost open span on this thread (None when idle)."""
        if not self.enabled:
            return None
        stack = self._stack()
        return stack[-1] if stack else None

    # -- results ---------------------------------------------------------

    @property
    def spans(self) -> List[Span]:
        """Finished spans in completion order (leaves before parents)."""
        with self._lock:
            return list(self._finished)

    def leaf_spans(self) -> List[Span]:
        """Finished spans that have no finished children."""
        finished = self.spans
        parents = {s.parent_id for s in finished
                   if s.parent_id is not None}
        return [s for s in finished if s.span_id not in parents]

    def roots(self) -> List[Span]:
        """Finished spans with no parent."""
        return [s for s in self.spans if s.parent_id is None]

    def spans_for_trace(self, trace_id: int) -> List[Span]:
        """Finished spans of one trace, in completion order."""
        return [s for s in self.spans if s.trace_id == trace_id]

    @property
    def dropped_spans(self) -> int:
        """Finished spans evicted from the ring since the last reset."""
        with self._lock:
            return self._dropped

    # -- internals -------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span, explicit: bool = False) -> None:
        stack = self._stack()
        if stack and not explicit:
            span.parent_id = stack[-1].span_id
            span.trace_id = stack[-1].trace_id
        if span.trace_id == 0:
            span.trace_id = span.span_id
        stack.append(span)

    def _record(self, span: Span) -> None:
        """Append a finished span, evicting at the ring cap."""
        warn = dropped = False
        with self._lock:
            if len(self._finished) >= self.max_spans:
                self._finished.popleft()
                self._dropped += 1
                dropped = True
                if not self._drop_warned:
                    self._drop_warned = warn = True
            self._finished.append(span)
        if warn:
            log.warning(
                "tracer span ring full (cap %d): dropping oldest "
                "spans; see obs_tracer_spans_dropped_total",
                self.max_spans)
        if dropped:
            _dropped_counter().inc()

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        self._record(span)

    def _finish_detached(self, span: Span, wall_start: float) -> None:
        """Close a :meth:`begin` span (called by its handle)."""
        span.wall_s = time.perf_counter() - wall_start
        span.dur = CLOCK.now() - span.ts
        self._record(span)


def _dropped_counter():
    """The shared span-drop counter (lazy: avoids an import cycle)."""
    from repro.obs.metrics import get_registry
    return get_registry().counter(
        "obs_tracer_spans_dropped_total",
        "Finished spans evicted from the tracer ring buffer")


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer."""
    return _TRACER


def set_tracer(tracer: Tracer) -> None:
    """Swap the process-wide default tracer (tests)."""
    global _TRACER
    _TRACER = tracer


def span(name: str, device=None, category: str = "",
         parent: Optional[TraceContext] = None, **attrs):
    """Open a span on the default tracer (no-op when disabled)."""
    return _TRACER.span(name, device=device, category=category,
                        parent=parent, **attrs)


def annotate(key: str, value) -> None:
    """Set an attribute on the default tracer's innermost span."""
    _TRACER.annotate(key, value)


def current_span() -> Optional[Span]:
    """Innermost open span of the default tracer."""
    return _TRACER.current_span()


def tracing_enabled() -> bool:
    """Whether the default tracer is collecting."""
    return _TRACER.enabled


def enable_tracing(reset: bool = True) -> Tracer:
    """Enable the default tracer (resetting it first by default)."""
    _TRACER.enable(reset=reset)
    return _TRACER


def disable_tracing() -> None:
    """Disable the default tracer."""
    _TRACER.disable()
