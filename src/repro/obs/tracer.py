"""Hierarchical span tracing on the simulated-cycle timeline.

A *span* covers one phase of work (an LPF pass, an LM iteration, a
whole frame).  When a span is opened with a ``device``, the tracer
snapshots the device's :class:`~repro.pim.cost.CostLedger` on entry and
computes the delta on exit, so the span carries exactly the cycles,
SRAM/Tmp accesses and energy charged inside it.  Because the ledger is
the single source of cost truth, leaf spans tile their parent: the sum
of leaf-span cycle deltas over a frame equals the device ledger's total
for that frame, which is what makes the Fig. 10-style attribution
tables exact rather than sampled.

Timestamps come from :data:`CLOCK`, a process-wide simulated-cycle
clock advanced by the instrumented devices' charge hooks
(:meth:`repro.pim.device._DeviceCore._charge_step`).  Using one shared
clock keeps the timeline monotone even when several devices interleave
(the tracker runs one detect device per pyramid level).

Tracing is **disabled by default** and then a true no-op: ``span()``
returns a shared null context manager and the device hook is a single
attribute check, so results and ledger state are bit-identical to an
uninstrumented run.

Thread-safety: the span stack is thread-local; finished spans and span
id allocation are guarded by a lock; each span records its thread so
exporters can lay out one track per thread.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "CLOCK", "SimClock", "Span", "Tracer",
    "annotate", "current_span", "disable_tracing", "enable_tracing",
    "get_tracer", "set_tracer", "span", "tracing_enabled",
]


class SimClock:
    """Process-wide simulated-cycle clock.

    Instrumented devices advance it by every cycle they charge (the
    per-step hook in eager execution, one aggregate bump in batched
    replay), but only while ``enabled`` -- the flag keeps the
    uninstrumented hot path to a single attribute check.
    """

    __slots__ = ("enabled", "_cycles")

    def __init__(self) -> None:
        self.enabled = False
        self._cycles = 0

    def advance(self, cycles: int) -> None:
        """Advance the clock by ``cycles`` simulated cycles."""
        self._cycles += int(cycles)

    def now(self) -> int:
        """Current simulated-cycle timestamp."""
        return self._cycles

    def reset(self) -> None:
        """Rewind to cycle zero (start of a new trace)."""
        self._cycles = 0


#: The shared simulated-cycle clock the device charge hooks advance.
CLOCK = SimClock()


@dataclass
class Span:
    """One finished span with its cost attribution.

    Attributes:
        name: Span label (``"lpf"``, ``"frame"``, ...).
        category: Coarse grouping for exporters (``"kernel"``,
            ``"frame"``, ``"vo"``, ``"replay"``...).
        span_id: Unique id, allocated in start order.
        parent_id: Enclosing span's id (None for roots).
        thread: Native thread id the span ran on.
        ts: Simulated-cycle timestamp at span start (shared clock).
        dur: Simulated cycles elapsed on the shared clock.
        cycles: Device-ledger cycle delta (None when no device given).
            Equals ``dur`` when the span's device is the only one
            charging while it is open.
        ledger: The full :class:`~repro.pim.cost.CostLedger` delta
            (None when no device given).
        energy_pj: Energy of the ledger delta under the default model.
        wall_s: Host wall-clock seconds spent in the span.
        attrs: Free-form attributes set at open time or via
            :func:`annotate`.
    """

    name: str
    category: str = ""
    span_id: int = 0
    parent_id: Optional[int] = None
    thread: int = 0
    ts: int = 0
    dur: int = 0
    cycles: Optional[int] = None
    ledger: Optional[Any] = None
    energy_pj: Optional[float] = None
    wall_s: float = 0.0
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def accesses(self) -> Optional[Dict[str, int]]:
        """Memory accesses of the ledger delta, by category."""
        if self.ledger is None:
            return None
        return {
            "mem_rd": int(self.ledger.sram_reads),
            "mem_wr": int(self.ledger.sram_writes),
            "tmp_reg": int(self.ledger.tmp_accesses),
        }


class _NullSpan:
    """The shared disabled-tracer context manager (no allocation)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set_attr(self, key: str, value) -> None:
        """No-op attribute setter, mirroring :class:`_ActiveSpan`."""


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager for one live span of an enabled tracer."""

    __slots__ = ("_tracer", "_span", "_device", "_snapshot", "_wall")

    def __init__(self, tracer: "Tracer", span: Span, device) -> None:
        self._tracer = tracer
        self._span = span
        self._device = device
        self._snapshot = None
        self._wall = 0.0

    def set_attr(self, key: str, value) -> None:
        """Attach an attribute to the span while it is open."""
        self._span.attrs[key] = value

    def __enter__(self) -> "_ActiveSpan":
        if self._device is not None:
            self._snapshot = self._device.ledger.snapshot()
        self._span.ts = CLOCK.now()
        self._wall = time.perf_counter()
        self._tracer._push(self._span)
        return self

    def __exit__(self, *exc) -> None:
        span = self._span
        span.wall_s = time.perf_counter() - self._wall
        span.dur = CLOCK.now() - span.ts
        if self._snapshot is not None:
            delta = self._device.ledger.delta_since(self._snapshot)
            span.ledger = delta
            span.cycles = int(delta.cycles)
            span.energy_pj = float(delta.energy().total_pj)
        self._tracer._pop(span)


class Tracer:
    """Collects spans when enabled; a strict no-op otherwise."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._finished: List[Span] = []

    # -- lifecycle -------------------------------------------------------

    def enable(self, reset: bool = True) -> None:
        """Turn tracing on (and the device cycle clock with it)."""
        if reset:
            self.reset()
        self.enabled = True
        CLOCK.enabled = True

    def disable(self) -> None:
        """Turn tracing off; collected spans remain readable."""
        self.enabled = False
        CLOCK.enabled = False

    def reset(self) -> None:
        """Drop all finished spans and rewind the cycle clock."""
        with self._lock:
            self._finished = []
            self._ids = itertools.count(1)
        CLOCK.reset()

    # -- span API --------------------------------------------------------

    def span(self, name: str, device=None, category: str = "",
             **attrs):
        """Open a span; returns a context manager.

        Args:
            name: Span label.
            device: Optional PIM device whose ledger delta the span
                should capture (entry/exit snapshots).
            category: Coarse grouping used by exporters.
            **attrs: Initial span attributes.
        """
        if not self.enabled:
            return _NULL_SPAN
        with self._lock:
            span_id = next(self._ids)
        record = Span(name=name, category=category, span_id=span_id,
                      thread=threading.get_ident(), attrs=dict(attrs))
        return _ActiveSpan(self, record, device)

    def annotate(self, key: str, value) -> None:
        """Set an attribute on the innermost open span, if any."""
        if not self.enabled:
            return
        stack = self._stack()
        if stack:
            stack[-1].attrs[key] = value

    def current_span(self) -> Optional[Span]:
        """The innermost open span on this thread (None when idle)."""
        if not self.enabled:
            return None
        stack = self._stack()
        return stack[-1] if stack else None

    # -- results ---------------------------------------------------------

    @property
    def spans(self) -> List[Span]:
        """Finished spans in completion order (leaves before parents)."""
        with self._lock:
            return list(self._finished)

    def leaf_spans(self) -> List[Span]:
        """Finished spans that have no finished children."""
        finished = self.spans
        parents = {s.parent_id for s in finished
                   if s.parent_id is not None}
        return [s for s in finished if s.span_id not in parents]

    def roots(self) -> List[Span]:
        """Finished spans with no parent."""
        return [s for s in self.spans if s.parent_id is None]

    # -- internals -------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            span.parent_id = stack[-1].span_id
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        with self._lock:
            self._finished.append(span)


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer."""
    return _TRACER


def set_tracer(tracer: Tracer) -> None:
    """Swap the process-wide default tracer (tests)."""
    global _TRACER
    _TRACER = tracer


def span(name: str, device=None, category: str = "", **attrs):
    """Open a span on the default tracer (no-op when disabled)."""
    return _TRACER.span(name, device=device, category=category, **attrs)


def annotate(key: str, value) -> None:
    """Set an attribute on the default tracer's innermost span."""
    _TRACER.annotate(key, value)


def current_span() -> Optional[Span]:
    """Innermost open span of the default tracer."""
    return _TRACER.current_span()


def tracing_enabled() -> bool:
    """Whether the default tracer is collecting."""
    return _TRACER.enabled


def enable_tracing(reset: bool = True) -> Tracer:
    """Enable the default tracer (resetting it first by default)."""
    _TRACER.enable(reset=reset)
    return _TRACER


def disable_tracing() -> None:
    """Disable the default tracer."""
    _TRACER.disable()
