"""Explicit trace-context propagation across thread boundaries.

The span tracer's implicit parenting is a thread-local stack, which is
exactly right while one thread runs a frame -- but a serving request
crosses threads: the client thread admits it, the scheduler queues it,
a pool worker tracks it.  A :class:`TraceContext` is the portable
handle that keeps those pieces one tree: it names a ``(trace_id,
span_id)`` pair and can be carried anywhere (a queue item, a closure, a
log line) and later passed as the ``parent`` of a new span on any
thread.

Two propagation styles compose:

* ``tracer.span(name, parent=ctx)`` -- open a *stack* span whose
  parent is the remote context instead of the local stack top.  The
  span still pushes onto the opening thread's stack, so everything the
  thread does underneath (tracker frame spans, kernel spans) nests
  into the request tree automatically.
* ``tracer.begin(name, parent=ctx)`` -- open a *detached*
  :class:`SpanHandle` that never touches any stack and may be finished
  from a different thread than the one that began it (the scheduler
  queue span: begun at admission on the client thread, finished at
  dispatch on a worker thread).

Every span carries a ``trace_id`` -- the span id of its tree's root --
so one request's spans can be collected after the fact with
:meth:`~repro.obs.tracer.Tracer.spans_for_trace` regardless of which
threads executed them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["TraceContext", "SpanHandle", "current_context"]


@dataclass(frozen=True)
class TraceContext:
    """A portable reference to one open (or finished) span.

    Attributes:
        trace_id: Span id of the tree's root span -- shared by every
            span of one request.
        span_id: The referenced span itself (the parent-to-be).
    """

    trace_id: int
    span_id: int


class SpanHandle:
    """A detached span: begun on one thread, finishable on any other.

    Unlike the context-manager spans, a handle never joins a thread's
    span stack -- its parent is whatever ``parent`` context it was
    begun with.  ``finish`` is idempotent (the second call is a no-op)
    because failure paths often race a success path to close the same
    request span.
    """

    __slots__ = ("_tracer", "span", "_wall", "_done")

    def __init__(self, tracer, span, wall_start: float):
        self._tracer = tracer
        self.span = span
        self._wall = wall_start
        self._done = False

    @property
    def context(self) -> Optional[TraceContext]:
        """This span as a parent context for further spans."""
        return TraceContext(self.span.trace_id, self.span.span_id)

    def set_attr(self, key: str, value) -> None:
        """Attach an attribute to the span."""
        self.span.attrs[key] = value

    def finish(self, **attrs) -> None:
        """Close the span (idempotent); ``attrs`` merge in at close."""
        if self._done:
            return
        self._done = True
        if attrs:
            self.span.attrs.update(attrs)
        self._tracer._finish_detached(self.span, self._wall)


class _NullHandle:
    """Shared no-op handle returned while tracing is disabled."""

    __slots__ = ()

    @property
    def context(self) -> Optional[TraceContext]:
        return None

    def set_attr(self, key: str, value) -> None:
        """No-op."""

    def finish(self, **attrs) -> None:
        """No-op."""


NULL_HANDLE = _NullHandle()


def current_context() -> Optional[TraceContext]:
    """Context of the default tracer's innermost open span, if any."""
    from repro.obs.tracer import get_tracer
    span = get_tracer().current_span()
    if span is None:
        return None
    return TraceContext(span.trace_id, span.span_id)
