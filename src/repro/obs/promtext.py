"""Prometheus text exposition of a :class:`MetricsRegistry`.

The status server's ``/metrics`` endpoint speaks the Prometheus
text format (version 0.0.4) so the registry's counters, gauges and
histograms can be scraped by any off-the-shelf collector.  The
renderer maps the registry's snapshot directly:

* counters gain the conventional ``_total`` suffix if missing,
* histograms expand into cumulative ``_bucket{le="..."}`` series plus
  ``_sum`` and ``_count``,
* label values are escaped per the spec (backslash, quote, newline).

:func:`parse_prometheus_text` is the inverse used by tests and the CI
smoke job: it validates that a scraped payload is well-formed and
returns ``{metric_name: {frozenset(labels): value}}`` for assertions.
No external client library is involved in either direction.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = ["render_prometheus_text", "parse_prometheus_text"]


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _labelstr(labels: Dict[str, str], extra: Optional[Tuple[str, str]]
              = None) -> str:
    items = sorted(labels.items())
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape_label(str(v))}"'
                    for k, v in items)
    return "{" + body + "}"


def _fmt(value) -> str:
    value = float(value)
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus_text(registry: Optional[MetricsRegistry] = None
                           ) -> str:
    """The registry as Prometheus exposition text (trailing newline)."""
    registry = registry or get_registry()
    lines = []
    for metric in registry.snapshot():
        name = metric["name"]
        kind = metric["type"]
        if kind == "counter" and not name.endswith("_total"):
            name += "_total"
        if metric["description"]:
            lines.append(f"# HELP {name} {metric['description']}")
        lines.append(f"# TYPE {name} {kind}")
        for series in metric["series"]:
            labels = series["labels"]
            if kind == "histogram":
                for bound, count in series["buckets"].items():
                    lines.append(
                        f"{name}_bucket"
                        f"{_labelstr(labels, ('le', bound))} "
                        f"{_fmt(count)}")
                lines.append(
                    f"{name}_sum{_labelstr(labels)} "
                    f"{_fmt(series['sum'])}")
                lines.append(
                    f"{name}_count{_labelstr(labels)} "
                    f"{_fmt(series['count'])}")
            else:
                lines.append(
                    f"{name}{_labelstr(labels)} "
                    f"{_fmt(series['value'])}")
    return "\n".join(lines) + "\n" if lines else ""


def _parse_labels(body: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    i = 0
    while i < len(body):
        eq = body.index("=", i)
        key = body[i:eq].strip().lstrip(",").strip()
        if body[eq + 1] != '"':
            raise ValueError(f"unquoted label value near {body[eq:]!r}")
        j = eq + 2
        out = []
        while body[j] != '"':
            if body[j] == "\\":
                nxt = body[j + 1]
                out.append({"\\": "\\", '"': '"', "n": "\n"}[nxt])
                j += 2
            else:
                out.append(body[j])
                j += 1
        labels[key] = "".join(out)
        i = j + 1
    return labels


def parse_prometheus_text(text: str
                          ) -> Dict[str, Dict[FrozenSet, float]]:
    """Parse exposition text back into ``name -> {labelset: value}``.

    Raises ``ValueError`` on malformed lines, which is what makes it
    usable as a validator for scraped ``/metrics`` payloads.
    """
    samples: Dict[str, Dict[FrozenSet, float]] = {}
    typed = set()
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(
                    f"line {lineno}: malformed comment {raw!r}")
            if parts[1] == "TYPE":
                typed.add(parts[2])
            continue
        if "{" in line:
            brace = line.index("{")
            close = line.rindex("}")
            name = line[:brace]
            labels = _parse_labels(line[brace + 1:close])
            rest = line[close + 1:].split()
        else:
            fields = line.split()
            name, labels, rest = fields[0], {}, fields[1:]
        if not rest:
            raise ValueError(f"line {lineno}: missing value in {raw!r}")
        value = float(rest[0].replace("+Inf", "inf")
                      .replace("-Inf", "-inf"))
        if not name.replace("_", "").replace(":", "").isalnum():
            raise ValueError(f"line {lineno}: bad metric name {name!r}")
        samples.setdefault(name, {})[
            frozenset(labels.items())] = value
    # Every sample family must trace back to a TYPE comment (histogram
    # samples use the base name + _bucket/_sum/_count suffixes).
    for name in samples:
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and \
                    name[: -len(suffix)] in typed:
                base = name[: -len(suffix)]
                break
        if base not in typed:
            raise ValueError(f"sample {name!r} has no # TYPE line")
    return samples
