"""Exporters: Chrome trace JSON, metrics JSONL, Fig. 10-style summary.

The trace exporter emits the Trace Event Format understood by Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing``: one complete
(``"ph": "X"``) event per span, with ``ts``/``dur`` expressed in
*simulated device cycles* (the shared :data:`repro.obs.tracer.CLOCK`),
not wall time -- the timeline you see is the timeline the modelled
hardware would execute.  Ledger deltas, energy and span attributes ride
along in ``args``, as do ``span_id`` / ``parent_id`` / ``trace_id`` so
a request's tree stays reconstructable from the exported JSON.

Serve-plane spans (category ``"serve"``: the per-request ``request`` /
``queue`` / ``track`` spans) additionally appear on a second process
track -- the **wall-clock** timeline (``pid 1``, 1 us = 1 us of host
time) -- so one trace shows both how long a request really took and
where its simulated device cycles went; the shared ``trace_id`` in
``args`` links the two views of the same request.

The console summary reproduces the paper's evaluation tables from a
live run: per-kernel cycle totals and shares (Fig. 10-a's x-axis) and
the ``mem_rd`` / ``mem_wr`` / ``tmp_reg`` access-share decomposition
(Fig. 10-b), aggregated over leaf spans so nothing is double-counted.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracer import Span, Tracer, get_tracer

__all__ = [
    "chrome_trace_events", "write_chrome_trace",
    "write_metrics_jsonl", "kernel_cycle_rows", "access_share_rows",
    "op_breakdown_rows", "console_summary",
]


def _leaf_spans(spans: Sequence[Span]) -> List[Span]:
    parents = {s.parent_id for s in spans if s.parent_id is not None}
    return [s for s in spans if s.span_id not in parents]


#: Span categories exported on the wall-clock process track too.
WALL_CLOCK_CATEGORIES = frozenset({"serve"})

#: First pid used for simulated-schedule tracks (``sim_track`` attr).
SIM_TRACK_BASE_PID = 2


def _sim_track_key(track: str):
    """Sort sim tracks as array-0, array-1, ..., dma-0, dma-1, ..."""
    prefix, _, suffix = track.rpartition("-")
    return (prefix, int(suffix)) if suffix.isdigit() else (track, 0)


def chrome_trace_events(spans: Sequence[Span]) -> List[dict]:
    """Spans as Chrome trace-event dicts, sorted by start timestamp.

    Timestamps/durations are simulated cycles written into the ``ts`` /
    ``dur`` microsecond fields, so 1 us in the viewer = 1 device cycle
    (``pid 0``).  Serve-plane spans (categories in
    :data:`WALL_CLOCK_CATEGORIES`) are exported a second time on
    ``pid 1`` with real wall-clock timestamps, so the request timeline
    and the device timeline sit side by side in one trace.

    Spans carrying a ``sim_track`` attribute -- the
    :mod:`repro.sim` engine's per-array / per-DMA-channel schedule
    (:meth:`repro.sim.engine.SimResult.to_spans`) -- get one process
    track each (pids from :data:`SIM_TRACK_BASE_PID`) instead of
    joining ``pid 0``, so a multi-array simulation lays out next to
    the serial device timeline in the same viewer.
    """
    tids = {}
    events: List[dict] = []
    wall_spans = [s for s in spans
                  if s.category in WALL_CLOCK_CATEGORIES
                  and s.wall_ts > 0.0]
    wall_t0 = min((s.wall_ts for s in wall_spans), default=0.0)
    sim_tracks = sorted({s.attrs["sim_track"] for s in spans
                         if "sim_track" in s.attrs},
                        key=_sim_track_key)
    sim_pids = {track: SIM_TRACK_BASE_PID + i
                for i, track in enumerate(sim_tracks)}
    for span in spans:
        args: Dict[str, object] = dict(span.attrs)
        args["wall_ms"] = round(span.wall_s * 1e3, 3)
        args["span_id"] = span.span_id
        args["parent_id"] = span.parent_id
        if span.trace_id:
            args["trace_id"] = span.trace_id
        if span.ledger is not None:
            args["cycles"] = int(span.cycles) \
                if span.cycles is not None else None
            args["energy_pj"] = round(float(span.energy_pj), 1)
            args.update(span.accesses)
            args["host_transfers"] = int(span.ledger.host_transfers)
        if "sim_track" in span.attrs:
            events.append({
                "name": span.name,
                "cat": span.category or "sim",
                "ph": "X",
                "ts": int(span.ts),
                "dur": int(span.dur),
                "pid": sim_pids[span.attrs["sim_track"]],
                "tid": 0,
                "args": args,
            })
            continue
        tid = tids.setdefault(span.thread, len(tids))
        events.append({
            "name": span.name,
            "cat": span.category or "span",
            "ph": "X",
            "ts": int(span.ts),
            "dur": int(span.dur),
            "pid": 0,
            "tid": tid,
            "args": args,
        })
        if span.category in WALL_CLOCK_CATEGORIES \
                and span.wall_ts > 0.0:
            events.append({
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": int((span.wall_ts - wall_t0) * 1e6),
                "dur": max(1, int(span.wall_s * 1e6)),
                "pid": 1,
                "tid": tid,
                "args": args,
            })
    events.sort(key=lambda e: (e["ts"], -e["dur"]))
    meta: List[dict] = [{
        "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
        "args": {"name": "PIM-EBVO (simulated cycles)"},
    }]
    if wall_spans:
        meta.append({
            "name": "process_name", "ph": "M", "pid": 1, "tid": 0,
            "args": {"name": "serve (wall clock)"},
        })
    for track, pid in sim_pids.items():
        meta.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": f"sim {track}"},
        })
    for thread, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        meta.append({
            "name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
            "args": {"name": f"thread-{thread}"},
        })
        if wall_spans:
            meta.append({
                "name": "thread_name", "ph": "M", "pid": 1,
                "tid": tid, "args": {"name": f"thread-{thread}"},
            })
    return meta + events


def write_chrome_trace(path, spans: Optional[Sequence[Span]] = None,
                       tracer: Optional[Tracer] = None) -> Path:
    """Write a Perfetto-loadable trace JSON; returns the path."""
    if spans is None:
        spans = (tracer or get_tracer()).spans
    payload = {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
        "otherData": {"timeline": "simulated device cycles (1 us = 1 cycle)"},
    }
    path = Path(path)
    path.write_text(json.dumps(payload, indent=1) + "\n")
    return path


def write_metrics_jsonl(path,
                        registry: Optional[MetricsRegistry] = None
                        ) -> Path:
    """Write the registry snapshot as JSON Lines (one metric per line)."""
    registry = registry or get_registry()
    path = Path(path)
    lines = [json.dumps(entry, sort_keys=True)
             for entry in registry.snapshot()]
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path


# -- console summary (Fig. 10-a / 10-b style) ---------------------------


def _table(headers: Sequence[str], rows: Sequence[Sequence],
           title: str = "") -> str:
    cells = [[str(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells
              else len(h) for i, h in enumerate(headers)]
    def line(row):
        return "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def kernel_cycle_rows(spans: Sequence[Span],
                      category: str = "kernel") -> List[dict]:
    """Aggregate spans by name: cycles, share, energy (Fig. 10-a).

    ``category`` selects which spans count as kernels; spans of one
    category never nest within each other (kernel spans are siblings
    under a frame/pipeline span), so filtering by category cannot
    double-book cycles even though kernels contain sub-spans (e.g. the
    ``run_program`` replay spans).  Pass ``category=None`` to aggregate
    leaf spans of any category instead.
    """
    if category is None:
        pool = _leaf_spans(spans)
    else:
        pool = [s for s in spans if s.category == category]
    totals: Dict[str, dict] = {}
    for span in pool:
        if span.cycles is None:
            continue
        agg = totals.setdefault(span.name, {
            "kernel": span.name, "calls": 0, "cycles": 0,
            "energy_pj": 0.0, "mem_rd": 0, "mem_wr": 0, "tmp_reg": 0})
        agg["calls"] += 1
        agg["cycles"] += int(span.cycles)
        agg["energy_pj"] += float(span.energy_pj or 0.0)
        for key, val in span.accesses.items():
            agg[key] += val
    rows = sorted(totals.values(), key=lambda r: -r["cycles"])
    grand = sum(r["cycles"] for r in rows)
    for row in rows:
        row["cycle_share"] = row["cycles"] / grand if grand else 0.0
    return rows


def access_share_rows(spans: Sequence[Span],
                      category: str = "kernel") -> List[dict]:
    """Per-kernel ``mem_rd``/``mem_wr``/``tmp_reg`` shares (Fig. 10-b)."""
    rows = []
    for agg in kernel_cycle_rows(spans, category=category):
        total = agg["mem_rd"] + agg["mem_wr"] + agg["tmp_reg"]
        rows.append({
            "kernel": agg["kernel"],
            "accesses": total,
            "mem_rd": agg["mem_rd"] / total if total else 0.0,
            "mem_wr": agg["mem_wr"] / total if total else 0.0,
            "tmp_reg": agg["tmp_reg"] / total if total else 0.0,
        })
    return rows


def op_breakdown_rows(spans: Sequence[Span],
                      category: str = "kernel") -> List[dict]:
    """Per-op-class cycle/energy rows from the spans' merged ledgers.

    Folds every selected span's ledger delta into one
    :class:`~repro.pim.cost.CostLedger` and renders its
    :meth:`~repro.pim.cost.CostLedger.breakdown` -- which micro-op
    *classes* (add, mul, shift, ...) the cycles and energy went to,
    across all kernels.  Ledgers stay duck-typed (``snapshot`` /
    ``merge`` / ``breakdown``), preserving this package's
    no-pim-imports rule.
    """
    if category is None:
        pool = _leaf_spans(spans)
    else:
        pool = [s for s in spans if s.category == category]
    merged = None
    for span in pool:
        if span.ledger is None:
            continue
        if merged is None:
            merged = span.ledger.snapshot()
        else:
            merged.merge(span.ledger)
    if merged is None:
        return []
    return [{"op": op, **row}
            for op, row in merged.breakdown().items()]


def console_summary(spans: Optional[Sequence[Span]] = None,
                    tracer: Optional[Tracer] = None,
                    category: str = "kernel") -> str:
    """The Fig. 10-a/10-b tables of a traced run, as printable text.

    Three tables: per-kernel cycles/energy (Fig. 10-a), per-kernel
    memory-access shares (Fig. 10-b), and the per-op-class breakdown
    of the merged ledger (:meth:`CostLedger.breakdown`).
    """
    if spans is None:
        spans = (tracer or get_tracer()).spans
    cycle_rows = kernel_cycle_rows(spans, category=category)
    if not cycle_rows:
        return "(no kernel spans recorded)"
    share_rows = access_share_rows(spans, category=category)
    total_cycles = sum(r["cycles"] for r in cycle_rows)
    total_pj = sum(r["energy_pj"] for r in cycle_rows)
    fig10a = _table(
        ["kernel", "calls", "cycles", "share", "energy (uJ)"],
        [[r["kernel"], r["calls"], r["cycles"],
          f"{r['cycle_share']:6.1%}", f"{r['energy_pj'] / 1e6:.2f}"]
         for r in cycle_rows] +
        [["total", sum(r["calls"] for r in cycle_rows), total_cycles,
          "100.0%", f"{total_pj / 1e6:.2f}"]],
        title="Per-kernel cycles (Fig. 10-a style)")
    fig10b = _table(
        ["kernel", "accesses", "mem_rd", "mem_wr", "tmp_reg"],
        [[r["kernel"], r["accesses"], f"{r['mem_rd']:6.1%}",
          f"{r['mem_wr']:6.1%}", f"{r['tmp_reg']:6.1%}"]
         for r in share_rows],
        title="Memory-access shares (Fig. 10-b style)")
    tables = [fig10a, fig10b]
    op_rows = op_breakdown_rows(spans, category=category)
    if op_rows:
        tables.append(_table(
            ["op class", "count", "cycles", "share", "energy (uJ)"],
            [[r["op"], r["count"], r["cycles"],
              f"{r['cycle_share']:6.1%}",
              f"{r['energy_pj'] / 1e6:.2f}"] for r in op_rows],
            title="Per-op-class breakdown (CostLedger.breakdown)"))
    return "\n\n".join(tables)
