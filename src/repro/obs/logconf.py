"""One-call stdlib ``logging`` setup shared by every CLI entry point.

The analysis CLI, the wall-clock benchmark runner and any future
driver call :func:`setup_logging` once instead of configuring handlers
(or sprinkling ``print``) themselves, so ``--verbose`` means the same
thing everywhere and library code can log under the ``repro.*``
namespace without worrying about missing handlers.
"""

from __future__ import annotations

import logging

__all__ = ["setup_logging"]

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATEFMT = "%H:%M:%S"


def setup_logging(verbose: bool = False,
                  stream=None) -> logging.Logger:
    """Configure console logging for the ``repro`` namespace.

    Idempotent: repeated calls adjust the level (and, if ``stream`` is
    given, retarget the existing handler) but attach only one handler.
    Returns the ``repro`` root logger.

    Args:
        verbose: DEBUG level when true, INFO otherwise.
        stream: Output stream (default ``sys.stderr``).  Passing a
            different stream on a later call redirects the already
            attached handler rather than being silently ignored.
    """
    logger = logging.getLogger("repro")
    level = logging.DEBUG if verbose else logging.INFO
    logger.setLevel(level)
    handler = next(
        (h for h in logger.handlers
         if getattr(h, "_repro_console", False)), None)
    if handler is None:
        handler = logging.StreamHandler(stream)
        handler._repro_console = True
        handler.setFormatter(logging.Formatter(_FORMAT, _DATEFMT))
        logger.addHandler(handler)
    elif stream is not None and handler.stream is not stream:
        try:
            handler.setStream(stream)
        except (ValueError, OSError):
            # setStream flushes the old stream first; if that stream
            # is already closed (a captured stream of a finished test,
            # a redirected pipe torn down by the caller), swap without
            # the flush instead of failing the whole setup call.
            handler.stream = stream
    handler.setLevel(level)
    # The CLIs are the top of the process; don't duplicate into root.
    logger.propagate = False
    return logger
